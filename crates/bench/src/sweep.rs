//! The parallel scenario-sweep core behind the `bsor-sweep` CLI.
//!
//! The paper's evaluation is a grid — topology × workload × routing
//! algorithm × VC count × injection rate — and oblivious routing's
//! selling point is that the expensive part (route selection) happens
//! once per case while evaluation amortizes it over many load points.
//! This module mirrors that structure with the plan/evaluate split: a
//! [`GridSpec`] expands into *cases* (everything but the rate), cases
//! fan out across `std::thread::scope` workers, and every load point —
//! the rate axis and each saturation-bisection probe alike — requests
//! its case's [`bsor_sim::RoutePlan`] through one shared
//! [`Planner`] and evaluates it with [`SimEvaluator`]. A
//! [`bsor_sim::PlanCache`] (on by default; see
//! [`plan_cache_enabled_from_env`]) collapses those requests to exactly
//! one route solve per case; disabling it re-solves per request — the
//! cost profile of driving `Experiment::run` once per grid point, which
//! the pre-plan sweep avoided only by hand-hoisting route selection out
//! of its loops — with byte-identical output, which is how CI proves
//! the cache changes cost and nothing else. [`PlanStats`]
//! reports the solve/cache-hit counters.
//!
//! Every axis is registry-driven ([`SweepRegistries`]): topologies come
//! from [`TopologyRegistry`], workloads from [`WorkloadRegistry`] and
//! algorithms from [`AlgorithmRegistry`], so registering a new entry
//! makes it sweepable with no sweep-code changes. Each case plans
//! through the unified [`Scenario`] pipeline, which validates deadlock
//! freedom (paper Lemma 1) before simulating; algorithms whose routes
//! would deadlock surface as per-case errors instead of silently
//! jamming the simulator.
//!
//! Output is a schema-stable [`Json`] document. Every field is present
//! in every run; wall-clock fields are zeroed when
//! [`GridSpec::record_timings`] is off so CI can diff two sweeps
//! byte-for-byte to prove determinism.

use crate::json::Json;
use bsor::AlgorithmRegistry;
use bsor_sim::{
    BurstyOnOff, EvalPoint, Evaluator, ExperimentError, PlanCache, PlanStats, Planner,
    RouteAlgorithm, Scenario, SimConfig, SimEvaluator,
};
use bsor_topology::TopologyRegistry;
use bsor_workloads::WorkloadRegistry;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// The pluggable name spaces a sweep draws its axes from.
///
/// [`SweepRegistries::standard`] carries the built-in families (four
/// topologies, six workloads, seven algorithms); extend any member
/// before running to sweep custom entries.
#[derive(Default)]
pub struct SweepRegistries {
    /// Topology families (`mesh`, `torus`, `ring`, `hypercube`, …).
    pub topologies: TopologyRegistry,
    /// Workload generators (`transpose`, `h264`, …).
    pub workloads: WorkloadRegistry,
    /// Routing algorithms (`xy`, `bsor-dijkstra`, …).
    pub algorithms: AlgorithmRegistry,
}

impl SweepRegistries {
    /// The built-in name spaces.
    pub fn standard() -> SweepRegistries {
        SweepRegistries {
            topologies: TopologyRegistry::standard(),
            workloads: WorkloadRegistry::standard(),
            algorithms: AlgorithmRegistry::standard(),
        }
    }
}

/// One topology axis entry: a registry name plus grid dimensions, or a
/// full registry spec string (`dragonfly:2,3,2`, `file:assets/...`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopoSpec {
    /// Registry name (`mesh`, `torus`, `ring`, `hypercube`, …).
    pub name: String,
    /// Grid dimensions handed to the factory (non-grid families
    /// reinterpret them; see `bsor_topology::registry`).
    pub dims: (u16, u16),
    /// When set, the full spec string resolved through
    /// `TopologyRegistry::build_spec` instead of `name`/`dims` — the
    /// family-generator and file-loader path.
    pub spec: Option<String>,
}

impl TopoSpec {
    /// A mesh entry (the historical default axis).
    pub fn mesh(width: u16, height: u16) -> TopoSpec {
        TopoSpec {
            name: "mesh".to_owned(),
            dims: (width, height),
            spec: None,
        }
    }

    /// A named entry.
    pub fn new(name: impl Into<String>, width: u16, height: u16) -> TopoSpec {
        TopoSpec {
            name: name.into(),
            dims: (width, height),
            spec: None,
        }
    }

    /// A full-spec entry (`dragonfly:2,3,2`, `fattree:4`, `fullmesh:8`,
    /// `file:<path>`), resolved through `TopologyRegistry::build_spec`.
    pub fn from_spec(spec: impl Into<String>) -> TopoSpec {
        TopoSpec {
            name: String::new(),
            dims: (0, 0),
            spec: Some(spec.into()),
        }
    }

    /// Display label: bare `WxH` for meshes (schema compatibility with
    /// the original mesh-only grid), `name:WxH` for named grid entries,
    /// and the raw spec string for full-spec entries.
    pub fn label(&self) -> String {
        if let Some(spec) = &self.spec {
            return spec.clone();
        }
        let (w, h) = self.dims;
        if self.name == "mesh" {
            format!("{w}x{h}")
        } else {
            format!("{}:{w}x{h}", self.name)
        }
    }
}

/// Saturation-point search configuration: bisect the offered injection
/// rate until the latency knee.
///
/// A case is *saturated* at a rate when its mean latency exceeds
/// `knee ×` the latency measured at `lo`, or delivery collapses
/// (fewer than [`SATURATION_DELIVERY_FLOOR`] of the packets generated
/// in the window are delivered in it — latency is only tracked for
/// delivered packets, so the survivor-biased mean alone can miss deep
/// saturation in short windows), or the run deadlocks or delivers
/// nothing. The search measures the baseline at `lo`, probes `hi`,
/// then bisects `iterations` times; the reported saturation rate is
/// the highest rate observed unsaturated. Fully seeded and
/// thread-count independent, like every other sweep measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SaturationSpec {
    /// Baseline (assumed unsaturated) rate, packets/cycle.
    pub lo: f64,
    /// Upper probe rate, packets/cycle.
    pub hi: f64,
    /// Bisection steps after the two endpoint probes.
    pub iterations: u32,
    /// Latency-knee multiplier over the baseline mean latency.
    pub knee: f64,
}

impl Default for SaturationSpec {
    fn default() -> SaturationSpec {
        SaturationSpec {
            lo: 0.05,
            hi: 4.0,
            iterations: 10,
            knee: 4.0,
        }
    }
}

impl SaturationSpec {
    /// Rejects degenerate search ranges: both bounds must be finite and
    /// `0 < lo < hi`. The sweep JSON echoes the bounds verbatim, so an
    /// inverted or non-finite range would otherwise flow into the
    /// artifact (and into every bisection) unchallenged.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.lo.is_finite() && self.hi.is_finite() && self.lo > 0.0 && self.hi > self.lo) {
            return Err(format!(
                "saturation range must satisfy 0 < lo < hi with finite bounds, got lo={} hi={}",
                self.lo, self.hi
            ));
        }
        Ok(())
    }
}

/// Minimum delivered/generated ratio below which a saturation-search
/// probe counts as saturated regardless of its (survivor-biased)
/// latency.
pub const SATURATION_DELIVERY_FLOOR: f64 = 0.9;

/// A declarative scenario grid.
#[derive(Clone, Debug)]
pub struct GridSpec {
    /// Topology axis, e.g. `[TopoSpec::mesh(8, 8)]`.
    pub topologies: Vec<TopoSpec>,
    /// Workload specs: exact registry names or parameterized spec
    /// strings such as `hotspot:4` / `rand-perm:42` (see
    /// [`WorkloadRegistry::build`]).
    pub workloads: Vec<String>,
    /// Algorithm names (see [`AlgorithmRegistry::names`]).
    pub algorithms: Vec<String>,
    /// VC counts.
    pub vcs: Vec<u8>,
    /// Offered aggregate injection rates, packets/cycle.
    pub rates: Vec<f64>,
    /// Warmup cycles per run.
    pub warmup: u64,
    /// Measured cycles per run.
    pub measurement: u64,
    /// Flits per packet.
    pub packet_len: usize,
    /// RNG seed for the injection processes.
    pub seed: u64,
    /// When false, every wall-clock field in the JSON is zeroed so two
    /// runs of the same grid diff byte-identically.
    pub record_timings: bool,
    /// Engine worker threads per simulation run (see
    /// [`bsor_sim::SimConfig::engine_threads`]). Purely a wall-clock
    /// knob: the engine is byte-deterministic at every value, and the
    /// knob is deliberately *not* echoed in the JSON so sweeps at
    /// different thread counts diff byte-identically.
    pub engine_threads: usize,
    /// Idle-cycle fast-forward (see
    /// [`bsor_sim::SimConfig::fast_forward`]). Also byte-invariant and
    /// also not echoed in the JSON.
    pub fast_forward: bool,
    /// Optional on/off bursty injection applied to every run.
    pub burst: Option<BurstyOnOff>,
    /// Optional saturation-point search appended to every case.
    pub saturation: Option<SaturationSpec>,
    /// Compile each case's router tables into the interval-compressed
    /// representation (see `bsor_routing::CompactTables`). Routing
    /// behavior — and therefore every measurement — is byte-identical
    /// either way; only the per-case `table_bytes` figure (and the
    /// echoed knob) changes.
    pub compact_tables: bool,
}

impl GridSpec {
    /// The full evaluation grid on the paper's 8×8 mesh.
    ///
    /// The workload axis stays pinned to the paper's six (the registry
    /// also carries the adversarial patterns and parameterized
    /// families; ask for them with `--workloads` or by editing the
    /// spec) so the default artifact remains comparable with the
    /// paper's tables run to run.
    pub fn standard() -> GridSpec {
        GridSpec {
            topologies: vec![TopoSpec::mesh(8, 8)],
            workloads: [
                "transpose",
                "bit-complement",
                "shuffle",
                "h264",
                "perf-model",
                "wifi",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            algorithms: vec![
                "xy".into(),
                "yx".into(),
                "romm".into(),
                "valiant".into(),
                "bsor-dijkstra".into(),
            ],
            vcs: vec![2],
            rates: crate::standard_rates(),
            warmup: 2_000,
            measurement: 10_000,
            packet_len: 8,
            seed: 0xB50B,
            record_timings: true,
            engine_threads: 1,
            fast_forward: true,
            burst: None,
            saturation: None,
            compact_tables: false,
        }
    }

    /// A reduced grid for CI smoke runs: one mesh, two workloads, three
    /// algorithms, three rates, short windows.
    pub fn smoke() -> GridSpec {
        GridSpec {
            topologies: vec![TopoSpec::mesh(8, 8)],
            workloads: vec!["transpose".into(), "h264".into()],
            algorithms: vec!["xy".into(), "yx".into(), "bsor-dijkstra".into()],
            vcs: vec![2],
            rates: vec![0.1, 0.8, 1.6],
            warmup: 500,
            measurement: 2_000,
            packet_len: 8,
            seed: 0xB50B,
            record_timings: true,
            engine_threads: 1,
            fast_forward: true,
            burst: None,
            saturation: None,
            compact_tables: false,
        }
    }

    /// Number of cases (route computations) the grid expands to.
    pub fn num_cases(&self) -> usize {
        self.topologies.len() * self.workloads.len() * self.algorithms.len() * self.vcs.len()
    }

    /// Number of simulation runs the grid expands to.
    pub fn num_runs(&self) -> usize {
        self.num_cases() * self.rates.len()
    }
}

/// One case: everything but the injection rate.
#[derive(Clone, Debug)]
pub struct Case {
    /// Topology axis entry.
    pub topo: TopoSpec,
    /// Workload name.
    pub workload: String,
    /// Algorithm name.
    pub algorithm: String,
    /// VC count.
    pub vcs: u8,
}

/// Expands the grid into cases, topology-major then workload, algorithm,
/// VC — a deterministic order the output preserves.
pub fn expand(spec: &GridSpec) -> Vec<Case> {
    let mut cases = Vec::with_capacity(spec.num_cases());
    for topo in &spec.topologies {
        for workload in &spec.workloads {
            for algorithm in &spec.algorithms {
                for &vcs in &spec.vcs {
                    cases.push(Case {
                        topo: topo.clone(),
                        workload: workload.clone(),
                        algorithm: algorithm.clone(),
                        vcs,
                    });
                }
            }
        }
    }
    cases
}

/// One load point's measurements.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// Requested aggregate rate, packets/cycle.
    pub rate: f64,
    /// Load actually generated, packets/cycle.
    pub offered: f64,
    /// Delivered throughput, packets/cycle.
    pub throughput: f64,
    /// Mean packet latency, cycles.
    pub mean_latency: Option<f64>,
    /// Median packet latency, cycles (histogram bucket lower bound).
    pub p50_latency: Option<u64>,
    /// 95th-percentile packet latency, cycles.
    pub p95_latency: Option<u64>,
    /// 99th-percentile packet latency, cycles.
    pub p99_latency: Option<u64>,
    /// Worst packet latency, cycles.
    pub max_latency: u64,
    /// Busiest channel's observed load, accepted flits/cycle.
    pub max_channel_load: f64,
    /// Packets generated in the measurement window.
    pub generated: u64,
    /// Packets delivered in the measurement window.
    pub delivered: u64,
    /// Whether the watchdog flagged a deadlock.
    pub deadlocked: bool,
    /// Cycles actually simulated.
    pub cycles: u64,
    /// Wall-clock milliseconds for the run (0 when timings are off).
    pub wall_ms: f64,
    /// Simulation speed (0 when timings are off).
    pub cycles_per_sec: f64,
}

/// How a saturation-point search concluded.
///
/// The bisection itself cannot distinguish "found the knee" from two
/// degenerate brackets, so the search classifies them explicitly
/// instead of silently reporting a rate:
///
/// * [`Knee`](SaturationOutcome::Knee) — a rate above the baseline was
///   observed unsaturated and a higher one saturated; the reported rate
///   is a real knee estimate.
/// * [`Censored`](SaturationOutcome::Censored) — even the upper probe
///   stayed unsaturated; the reported rate is a lower bound, not a
///   knee.
/// * [`BaselineSaturated`](SaturationOutcome::BaselineSaturated) — the
///   baseline at `lo` was itself already saturated (deadlock, delivery
///   collapse, or nothing delivered), or no probe above `lo` was ever
///   observed unsaturated, so the "knee" would rest entirely on the
///   unverified assumption that `lo` is below it. The reported rate is
///   meaningless as a knee and callers must not treat it as one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SaturationOutcome {
    /// The bracket closed on a genuine latency knee.
    Knee,
    /// The upper probe never saturated; the result is a lower bound.
    Censored,
    /// The baseline itself was saturated (or never confirmed
    /// unsaturated above `lo`); no knee exists in the probed range.
    BaselineSaturated,
}

impl SaturationOutcome {
    /// The stable JSON label (`knee` / `censored` /
    /// `baseline-saturated`).
    pub fn label(self) -> &'static str {
        match self {
            SaturationOutcome::Knee => "knee",
            SaturationOutcome::Censored => "censored",
            SaturationOutcome::BaselineSaturated => "baseline-saturated",
        }
    }
}

/// Outcome of a per-case saturation-point search.
#[derive(Clone, Debug)]
pub struct SaturationResult {
    /// Highest rate observed unsaturated, packets/cycle.
    pub rate: f64,
    /// Baseline mean latency at the search's `lo` rate, cycles.
    pub base_latency: f64,
    /// Latency threshold defining the knee, cycles.
    pub threshold: f64,
    /// True when even the upper probe stayed below the knee (the
    /// reported rate is then a lower bound, not a knee).
    pub censored: bool,
    /// Simulation runs the search consumed.
    pub runs: u32,
    /// Highest rate the search actually observed unsaturated — the
    /// lower edge of the final bisection bracket, packets/cycle. Unlike
    /// the CLI-level `--sat-range` echo in `grid`, this records where
    /// the search *ended up*, so truncated or censored searches are
    /// auditable per case.
    pub lo: f64,
    /// Lowest rate the search actually observed saturated — the upper
    /// edge of the final bracket (the knee lies in `[lo, hi]`). Equals
    /// the configured upper bound when censored: no saturated probe was
    /// seen and the bracket never closed.
    pub hi: f64,
    /// Bisection steps actually executed (0 when the search censored at
    /// the upper probe and never bisected).
    pub iterations: u32,
    /// How the search concluded (see [`SaturationOutcome`]). `censored`
    /// is kept alongside for schema stability; it is `true` exactly
    /// when the outcome is [`SaturationOutcome::Censored`].
    pub outcome: SaturationOutcome,
}

/// One completed case: its route-set summary plus all load points.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// The case parameters.
    pub case: Case,
    /// Maximum channel load of the routes in MB/s (the paper's MCL
    /// metric), when routing succeeded.
    pub mcl: Option<f64>,
    /// Route-computation, workload or validation error, when the case
    /// failed. Deadlock-capable route sets rejected by the pipeline
    /// (`ExperimentError::CyclicCdg`) land here too.
    pub error: Option<String>,
    /// Per-rate measurements (empty when `error` is set).
    pub points: Vec<PointResult>,
    /// Saturation-point search outcome, when the grid requested one.
    /// Degenerate searches (baseline already saturated, upper probe
    /// never saturated) are classified via
    /// [`SaturationResult::outcome`], not dropped.
    pub saturation: Option<SaturationResult>,
    /// Measured size of the case's compiled routing tables in bytes —
    /// dense or interval-compressed per [`GridSpec::compact_tables`] —
    /// when routing succeeded.
    pub table_bytes: Option<u64>,
    /// Wall-clock milliseconds for the whole case (0 when timings off).
    pub wall_ms: f64,
}

fn failed_case(case: &Case, error: String) -> CaseResult {
    CaseResult {
        case: case.clone(),
        mcl: None,
        error: Some(error),
        points: Vec::new(),
        saturation: None,
        table_bytes: None,
        wall_ms: 0.0,
    }
}

fn run_case(spec: &GridSpec, case: &Case, regs: &SweepRegistries, planner: &Planner) -> CaseResult {
    let started = Instant::now();
    let built = match &case.topo.spec {
        Some(spec) => regs.topologies.build_spec(spec),
        None => {
            let (w, h) = case.topo.dims;
            regs.topologies.build(&case.topo.name, w, h)
        }
    };
    let topo = match built {
        Ok(t) => t,
        Err(e) => return failed_case(case, e.to_string()),
    };
    let workload = match regs.workloads.build(&topo, &case.workload) {
        Ok(w) => w,
        Err(e) => return failed_case(case, e.to_string()),
    };
    let Some(algorithm) = regs.algorithms.get(&case.algorithm) else {
        return failed_case(case, format!("unknown algorithm '{}'", case.algorithm));
    };
    let scenario = match Scenario::builder(topo, workload.flows)
        .named(&case.workload)
        .vcs(case.vcs)
        .build()
    {
        Ok(s) => s,
        Err(e) => return failed_case(case, e.to_string()),
    };
    // Plan up front: route selection, Lemma-1 certification and table
    // compilation happen here; failures become the case error exactly
    // as the pre-plan pipeline reported them.
    let plan = match planner.plan(&scenario, algorithm) {
        Ok(p) => p,
        Err(e) => return failed_case(case, ExperimentError::from(e).to_string()),
    };
    let mcl = plan.predicted_mcl();
    let table_bytes = plan.table_bytes() as u64;
    let sim_config = |vcs: u8| {
        SimConfig::new(vcs)
            .with_warmup(spec.warmup)
            .with_measurement(spec.measurement)
            .with_packet_len(spec.packet_len)
            .with_seed(spec.seed)
            .with_engine_threads(spec.engine_threads.max(1))
            .with_fast_forward(spec.fast_forward)
    };
    let point_for = |rate: f64| {
        let mut point = EvalPoint::new(rate, sim_config(case.vcs));
        if let Some(burst) = spec.burst {
            point = point.with_burst(burst);
        }
        point
    };
    let evaluator = SimEvaluator::new();
    let mut points = Vec::with_capacity(spec.rates.len());
    for &rate in &spec.rates {
        // Every point re-requests the plan — with the cache on that is
        // one lookup, with it off a full re-solve (the naive
        // Experiment-per-point cost) — and evaluates on the plan's
        // precompiled tables. Either step failing (e.g. a CLI rate the
        // simulator rejects) is a recorded case error, never a panic.
        let plan = match planner.plan(&scenario, algorithm) {
            Ok(p) => p,
            Err(e) => return failed_case(case, ExperimentError::from(e).to_string()),
        };
        let ev = match evaluator.evaluate(&plan, &point_for(rate)) {
            Ok(ev) => ev,
            Err(e) => return failed_case(case, format!("rate {rate}: {e}")),
        };
        let timing = ev.timing;
        points.push(PointResult {
            rate,
            offered: ev.offered,
            throughput: ev.throughput,
            mean_latency: ev.mean_latency,
            p50_latency: ev.p50_latency,
            p95_latency: ev.p95_latency,
            p99_latency: ev.p99_latency,
            max_latency: ev.max_latency,
            max_channel_load: ev.max_channel_load,
            generated: ev.generated,
            delivered: ev.delivered,
            deadlocked: ev.deadlocked,
            cycles: ev.cycles,
            wall_ms: match &timing {
                Some(t) if spec.record_timings => t.elapsed.as_secs_f64() * 1e3,
                _ => 0.0,
            },
            cycles_per_sec: match &timing {
                Some(t) if spec.record_timings => t.cycles_per_sec(),
                _ => 0.0,
            },
        });
    }
    let saturation = match spec.saturation {
        None => None,
        Some(sat) => match saturation_search(&sat, &scenario, algorithm, planner, &point_for) {
            Ok(s) => Some(s),
            Err(e) => return failed_case(case, e),
        },
    };
    CaseResult {
        case: case.clone(),
        mcl: Some(mcl),
        error: None,
        points,
        saturation,
        table_bytes: Some(table_bytes),
        wall_ms: if spec.record_timings {
            started.elapsed().as_secs_f64() * 1e3
        } else {
            0.0
        },
    }
}

/// Bisects the offered rate to the latency knee (see [`SaturationSpec`]).
/// Every requested search produces a result; degenerate brackets are
/// classified by [`SaturationOutcome`] instead of being silently
/// dropped or — worse — reported as knees. `Err` carries a probe
/// failure (e.g. a rate the simulator rejects) for the caller to record
/// as the case error.
///
/// The saturation axis requests the case's plan per probe, exactly like
/// the rate axis — the shared [`PlanCache`] is what makes the whole
/// case cost a single route solve.
fn saturation_search(
    sat: &SaturationSpec,
    scenario: &Scenario,
    algorithm: &dyn RouteAlgorithm,
    planner: &Planner,
    point_for: &dyn Fn(f64) -> EvalPoint,
) -> Result<SaturationResult, String> {
    let evaluator = SimEvaluator::new();
    let mut runs = 0u32;
    // `None` means unconditionally saturated (deadlock, nothing
    // delivered, or delivery collapse); `Some(l)` defers to the knee.
    let mut mean_latency_at = |rate: f64| -> Result<Option<f64>, String> {
        runs += 1;
        let plan = planner
            .plan(scenario, algorithm)
            .map_err(|e| ExperimentError::from(e).to_string())?;
        let ev = evaluator
            .evaluate(&plan, &point_for(rate))
            .map_err(|e| format!("saturation probe at rate {rate}: {e}"))?;
        let delivery_ok = ev.generated == 0
            || ev.delivered as f64 >= SATURATION_DELIVERY_FLOOR * ev.generated as f64;
        if ev.deadlocked || !delivery_ok {
            Ok(None)
        } else {
            Ok(ev.mean_latency)
        }
    };
    let Some(base_latency) = mean_latency_at(sat.lo)? else {
        // The baseline itself deadlocked or collapsed: there is no
        // latency to anchor a knee on, and silently reporting one (or
        // nothing) would hide that the whole probed range is saturated.
        return Ok(SaturationResult {
            rate: 0.0,
            base_latency: 0.0,
            threshold: 0.0,
            censored: false,
            runs,
            lo: 0.0,
            hi: sat.lo,
            iterations: 0,
            outcome: SaturationOutcome::BaselineSaturated,
        });
    };
    let threshold = base_latency * sat.knee;
    let mut saturated = |rate: f64| -> Result<bool, String> {
        Ok(mean_latency_at(rate)?.is_none_or(|l| l > threshold))
    };
    if !saturated(sat.hi)? {
        // Censored: even the upper probe stayed unsaturated, so the
        // final "bracket" is degenerate at the configured upper bound.
        return Ok(SaturationResult {
            rate: sat.hi,
            base_latency,
            threshold,
            censored: true,
            runs,
            lo: sat.hi,
            hi: sat.hi,
            iterations: 0,
            outcome: SaturationOutcome::Censored,
        });
    }
    let (mut lo, mut hi) = (sat.lo, sat.hi);
    let mut iterations = 0u32;
    let mut observed_unsaturated_above_lo = false;
    for _ in 0..sat.iterations {
        let mid = 0.5 * (lo + hi);
        iterations += 1;
        if saturated(mid)? {
            hi = mid;
        } else {
            lo = mid;
            observed_unsaturated_above_lo = true;
        }
    }
    // If every bisection probe above `lo` saturated, the bracket
    // collapsed onto the baseline: the only "unsaturated" rate is the
    // assumed-unsaturated `lo` itself, which was never verified against
    // anything. Reporting it as a knee would be exactly the silent
    // failure this classification exists to prevent.
    let outcome = if observed_unsaturated_above_lo {
        SaturationOutcome::Knee
    } else {
        SaturationOutcome::BaselineSaturated
    };
    Ok(SaturationResult {
        rate: lo,
        base_latency,
        threshold,
        censored: false,
        runs,
        lo,
        hi,
        iterations,
        outcome,
    })
}

/// Whether the `BSOR_PLAN_CACHE` environment variable enables the
/// sweep's plan cache: on unless set to `off`, `0`, `false` or `no`
/// (case-insensitive). Caching only changes how often route selection
/// runs (off = once per plan request, i.e. per rate point and
/// saturation probe; on = once per case) — the output JSON is
/// byte-identical either way.
pub fn plan_cache_enabled_from_env() -> bool {
    match std::env::var("BSOR_PLAN_CACHE") {
        Ok(v) => !matches!(
            v.to_ascii_lowercase().as_str(),
            "off" | "0" | "false" | "no"
        ),
        Err(_) => true,
    }
}

/// A completed sweep: per-case results in grid order plus the planner's
/// solve/cache-hit counters.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// One entry per case, in deterministic expansion order.
    pub results: Vec<CaseResult>,
    /// Route solves performed and plan-cache hits across the whole
    /// sweep. With the cache on, `solves` equals the number of cases —
    /// one MILP / route selection per `(topo, workload, algo, vc)` no
    /// matter how many rate points and saturation probes ran.
    pub plans: PlanStats,
}

/// Runs every case of `spec` across `threads` scoped workers with the
/// standard registries.
pub fn run_grid(spec: &GridSpec, threads: usize) -> Vec<CaseResult> {
    run_grid_with(spec, threads, &SweepRegistries::standard())
}

/// Runs every case of `spec` across `threads` scoped workers using
/// `regs` for name resolution, and returns the results in deterministic
/// grid order (plan cache on).
pub fn run_grid_with(spec: &GridSpec, threads: usize, regs: &SweepRegistries) -> Vec<CaseResult> {
    run_grid_stats(spec, threads, regs, true).results
}

/// Like [`run_grid_with`], additionally choosing whether the shared
/// [`PlanCache`] is enabled and returning the planner counters.
///
/// Workers claim case indices from a shared atomic counter, so thread
/// count and scheduling affect only wall-clock fields — the simulation
/// results per case are independent and reassembled in expansion order.
/// The planner (and its cache) is shared across workers.
pub fn run_grid_stats(
    spec: &GridSpec,
    threads: usize,
    regs: &SweepRegistries,
    cache: bool,
) -> SweepOutcome {
    let planner = if cache {
        Planner::new().with_cache(PlanCache::shared())
    } else {
        Planner::new()
    };
    let planner = planner.with_compact_tables(spec.compact_tables);
    let cases = expand(spec);
    let threads = threads.max(1).min(cases.len().max(1));
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<CaseResult>> = vec![None; cases.len()];
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let cases = &cases;
                let planner = &planner;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cases.len() {
                            break;
                        }
                        mine.push((i, run_case(spec, &cases[i], regs, planner)));
                    }
                    mine
                })
            })
            .collect();
        for worker in workers {
            for (i, result) in worker.join().expect("sweep worker panicked") {
                results[i] = Some(result);
            }
        }
    });
    SweepOutcome {
        results: results
            .into_iter()
            .map(|r| r.expect("every case index was claimed"))
            .collect(),
        plans: planner.stats(),
    }
}

/// Assembles the schema-stable `BENCH_sweep.json` document.
///
/// Schema `bsor-sweep/v2`: `grid` echoes the expanded spec (including
/// the `burst` and `saturation` knobs, `null` when unused), `cases`
/// holds one entry per case in grid order — each point carrying
/// `p50/p95/p99` latency percentiles and the busiest observed channel
/// load, each case a `saturation` search outcome — and `timing` carries
/// run-wide wall-clock numbers. The entire timing block — thread count
/// included — is zeroed when timings are off, so two `--no-timings`
/// sweeps of the same grid are byte-identical even across different
/// `--threads`. v2 is a strict superset of v1: every v1 key survives
/// with unchanged semantics. Per-case `saturation` objects additionally
/// record the final bracket the search actually reached — `lo`/`hi`,
/// the highest-unsaturated / lowest-saturated probes — and the
/// bisection `iterations` actually executed (the `grid` block only
/// echoes the CLI-level request), an additive extension that leaves
/// every pre-existing key and all cache-off/cache-on runs
/// byte-identical. Each saturation object also carries an `outcome`
/// label (`knee` / `censored` / `baseline-saturated`, see
/// [`SaturationOutcome`]) — additive again, and `engine_threads` /
/// `fast_forward` are deliberately absent from the document so runs at
/// any engine configuration diff byte-identically. Each case further
/// carries the measured `table_bytes` of its compiled routing tables
/// and the grid echoes the `compact_tables` knob — the only two keys
/// that differ between a compact and a dense sweep of the same grid,
/// since compression never changes routing behavior.
///
/// The `meshes`/`mesh` keys predate the topology axis and are kept for
/// schema stability; non-mesh entries carry `name:WxH` labels in the
/// same fields.
pub fn sweep_json(
    spec: &GridSpec,
    results: &[CaseResult],
    threads: usize,
    total_wall_ms: f64,
) -> Json {
    let threads = if spec.record_timings { threads } else { 0 };
    let grid = Json::object(vec![
        (
            "meshes",
            Json::Array(
                spec.topologies
                    .iter()
                    .map(|t| Json::from(t.label()))
                    .collect(),
            ),
        ),
        (
            "workloads",
            Json::Array(
                spec.workloads
                    .iter()
                    .map(|w| Json::from(w.as_str()))
                    .collect(),
            ),
        ),
        (
            "algorithms",
            Json::Array(
                spec.algorithms
                    .iter()
                    .map(|a| Json::from(a.as_str()))
                    .collect(),
            ),
        ),
        (
            "vcs",
            Json::Array(spec.vcs.iter().map(|&v| Json::from(v as u64)).collect()),
        ),
        (
            "rates",
            Json::Array(spec.rates.iter().map(|&r| Json::from(r)).collect()),
        ),
        ("warmup", Json::from(spec.warmup)),
        ("measurement", Json::from(spec.measurement)),
        ("packet_len", Json::from(spec.packet_len)),
        ("seed", Json::from(spec.seed)),
        (
            "burst",
            match spec.burst {
                None => Json::Null,
                Some(b) => Json::object(vec![
                    ("mean_on", Json::from(b.mean_on)),
                    ("mean_off", Json::from(b.mean_off)),
                ]),
            },
        ),
        (
            "saturation",
            match spec.saturation {
                None => Json::Null,
                Some(s) => Json::object(vec![
                    ("lo", Json::from(s.lo)),
                    ("hi", Json::from(s.hi)),
                    ("iterations", Json::from(u64::from(s.iterations))),
                    ("knee", Json::from(s.knee)),
                ]),
            },
        ),
        ("compact_tables", Json::from(spec.compact_tables)),
    ]);
    let cases = results
        .iter()
        .map(|r| {
            let points = r
                .points
                .iter()
                .map(|p| {
                    Json::object(vec![
                        ("rate", Json::from(p.rate)),
                        ("offered", Json::from(p.offered)),
                        ("throughput", Json::from(p.throughput)),
                        ("mean_latency", Json::from(p.mean_latency)),
                        ("p50_latency", Json::from(p.p50_latency)),
                        ("p95_latency", Json::from(p.p95_latency)),
                        ("p99_latency", Json::from(p.p99_latency)),
                        ("max_latency", Json::from(p.max_latency)),
                        ("max_channel_load", Json::from(p.max_channel_load)),
                        ("generated", Json::from(p.generated)),
                        ("delivered", Json::from(p.delivered)),
                        ("deadlocked", Json::from(p.deadlocked)),
                        ("cycles", Json::from(p.cycles)),
                        ("wall_ms", Json::from(p.wall_ms)),
                        ("cycles_per_sec", Json::from(p.cycles_per_sec)),
                    ])
                })
                .collect();
            let saturation = match &r.saturation {
                None => Json::Null,
                Some(s) => Json::object(vec![
                    ("rate", Json::from(s.rate)),
                    ("base_latency", Json::from(s.base_latency)),
                    ("threshold", Json::from(s.threshold)),
                    ("censored", Json::from(s.censored)),
                    ("runs", Json::from(u64::from(s.runs))),
                    ("lo", Json::from(s.lo)),
                    ("hi", Json::from(s.hi)),
                    ("iterations", Json::from(u64::from(s.iterations))),
                    ("outcome", Json::from(s.outcome.label())),
                ]),
            };
            Json::object(vec![
                ("mesh", Json::from(r.case.topo.label())),
                ("workload", Json::from(r.case.workload.as_str())),
                ("algorithm", Json::from(r.case.algorithm.as_str())),
                ("vcs", Json::from(r.case.vcs as u64)),
                ("mcl_mb_s", Json::from(r.mcl)),
                ("error", Json::from(r.error.clone())),
                ("points", Json::Array(points)),
                ("saturation", saturation),
                ("table_bytes", Json::from(r.table_bytes)),
                ("wall_ms", Json::from(r.wall_ms)),
            ])
        })
        .collect();
    Json::object(vec![
        ("schema", Json::from("bsor-sweep/v2")),
        ("grid", grid),
        ("cases", Json::Array(cases)),
        (
            "timing",
            Json::object(vec![
                ("threads", Json::from(threads)),
                ("total_wall_ms", Json::from(total_wall_ms)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> GridSpec {
        GridSpec {
            topologies: vec![TopoSpec::mesh(4, 4)],
            workloads: vec!["transpose".into()],
            algorithms: vec!["xy".into(), "yx".into()],
            vcs: vec![2],
            rates: vec![0.1, 0.4],
            warmup: 100,
            measurement: 500,
            packet_len: 4,
            seed: 7,
            record_timings: false,
            engine_threads: 1,
            fast_forward: true,
            burst: None,
            saturation: None,
            compact_tables: false,
        }
    }

    #[test]
    fn expansion_counts_and_order() {
        let spec = tiny_spec();
        assert_eq!(spec.num_cases(), 2);
        assert_eq!(spec.num_runs(), 4);
        let cases = expand(&spec);
        assert_eq!(cases[0].algorithm, "xy");
        assert_eq!(cases[1].algorithm, "yx");
    }

    #[test]
    fn parallel_matches_serial() {
        let spec = tiny_spec();
        let serial = run_grid(&spec, 1);
        let parallel = run_grid(&spec, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.case.algorithm, b.case.algorithm);
            assert_eq!(a.mcl, b.mcl);
            for (pa, pb) in a.points.iter().zip(&b.points) {
                assert_eq!(pa.throughput, pb.throughput);
                assert_eq!(pa.mean_latency, pb.mean_latency);
                assert_eq!(pa.generated, pb.generated);
            }
        }
    }

    #[test]
    fn json_is_byte_identical_without_timings() {
        let spec = tiny_spec();
        // Different worker counts must not leak into the document: with
        // timings off the whole timing block is zeroed.
        let a = sweep_json(&spec, &run_grid(&spec, 2), 2, 0.0).pretty();
        let b = sweep_json(&spec, &run_grid(&spec, 3), 3, 0.0).pretty();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_names_error_as_cases() {
        let mut spec = tiny_spec();
        spec.workloads = vec!["nope".into()];
        let results = run_grid(&spec, 1);
        assert_eq!(results.len(), 2);
        assert!(results[0].error.as_deref().unwrap().contains("nope"));
        assert!(results[0].points.is_empty());
    }

    #[test]
    fn bad_topology_for_workload_reports_error() {
        let mut spec = tiny_spec();
        spec.topologies = vec![TopoSpec::mesh(3, 4)];
        let results = run_grid(&spec, 2);
        assert!(results.iter().all(|r| r.error.is_some()));
    }

    #[test]
    fn topology_axis_sweeps_non_meshes() {
        let mut spec = tiny_spec();
        // Synthetic patterns need square power-of-two meshes, so pair
        // the torus/ring entries with an applicable workload instead.
        spec.topologies = vec![
            TopoSpec::new("torus", 4, 4),
            TopoSpec::new("ring", 8, 1),
            TopoSpec::new("nowhere", 4, 4),
        ];
        spec.workloads = vec!["h264".into()];
        spec.algorithms = vec!["bsor-dijkstra".into()];
        spec.rates = vec![0.1];
        let results = run_grid(&spec, 2);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].case.topo.label(), "torus:4x4");
        assert!(
            results[0].error.is_none(),
            "torus routes: {:?}",
            results[0].error
        );
        assert!(results[0].mcl.unwrap() > 0.0);
        // A ring of 8 nodes is too small for the 9-module H.264 graph —
        // the workload error is recorded, not fatal.
        assert!(results[1].error.is_some());
        assert!(results[2]
            .error
            .as_deref()
            .unwrap()
            .contains("unknown topology"));
    }

    #[test]
    fn mesh_labels_stay_schema_compatible() {
        assert_eq!(TopoSpec::mesh(8, 8).label(), "8x8");
        assert_eq!(TopoSpec::new("hypercube", 4, 2).label(), "hypercube:4x2");
        assert_eq!(
            TopoSpec::from_spec("dragonfly:2,3,2").label(),
            "dragonfly:2,3,2"
        );
    }

    #[test]
    fn family_spec_entries_sweep_end_to_end() {
        let mut spec = tiny_spec();
        spec.topologies = vec![
            TopoSpec::from_spec("dragonfly:2,3,2"),
            TopoSpec::from_spec("fullmesh:8"),
            TopoSpec::from_spec("fattree:nope"),
        ];
        // uniform-random works on any node count; the grid walkers
        // would report typed RequiresGrid errors here instead.
        spec.workloads = vec!["uniform-random".into()];
        spec.algorithms = vec!["bsor-dijkstra".into()];
        spec.rates = vec![0.1];
        let results = run_grid(&spec, 2);
        assert_eq!(results.len(), 3);
        for r in &results[..2] {
            assert!(r.error.is_none(), "{}: {:?}", r.case.topo.label(), r.error);
            assert!(r.mcl.unwrap() > 0.0);
        }
        assert!(results[2]
            .error
            .as_deref()
            .unwrap()
            .contains("bad topology spec"));
    }

    #[test]
    fn parameterized_workload_specs_sweep() {
        let mut spec = tiny_spec();
        spec.workloads = vec![
            "hotspot:2".into(),
            "rand-perm:42".into(),
            "tornado".into(),
            "hotspot:nope".into(),
        ];
        spec.algorithms = vec!["xy".into()];
        let results = run_grid(&spec, 2);
        assert_eq!(results.len(), 4);
        assert!(results[0].error.is_none(), "{:?}", results[0].error);
        assert!(results[1].error.is_none(), "{:?}", results[1].error);
        // tornado on a 4x4 mesh shifts one hop in each dimension.
        assert!(results[2].error.is_none(), "{:?}", results[2].error);
        // A malformed family argument is a recorded case error, not a
        // panic and not a sweep abort.
        assert!(results[3]
            .error
            .as_deref()
            .unwrap()
            .contains("bad workload spec"));
        for r in &results[..3] {
            for p in &r.points {
                assert!(p.max_channel_load >= 0.0);
                if p.mean_latency.is_some() {
                    let p50 = p.p50_latency.expect("delivered packets have a median");
                    let p99 = p.p99_latency.expect("and a p99");
                    assert!(p50 <= p99);
                    assert!(p99 <= p.max_latency);
                }
            }
        }
    }

    #[test]
    fn saturation_search_finds_a_knee_and_is_deterministic() {
        let mut spec = tiny_spec();
        spec.workloads = vec!["transpose".into()];
        spec.algorithms = vec!["xy".into()];
        spec.rates = vec![0.1];
        spec.saturation = Some(SaturationSpec {
            lo: 0.05,
            hi: 4.0,
            iterations: 6,
            knee: 4.0,
        });
        let a = run_grid(&spec, 1);
        let b = run_grid(&spec, 4);
        let sat_a = a[0].saturation.as_ref().expect("search ran");
        let sat_b = b[0].saturation.as_ref().expect("search ran");
        assert_eq!(
            sat_a.rate, sat_b.rate,
            "bisection must be thread-independent"
        );
        assert!(
            !sat_a.censored,
            "4.0 packets/cycle saturates a 4x4 transpose"
        );
        assert!(
            sat_a.rate > spec.saturation.unwrap().lo && sat_a.rate < spec.saturation.unwrap().hi
        );
        assert!(sat_a.threshold > sat_a.base_latency);
        assert_eq!(sat_a.runs, 2 + 6, "endpoints plus iterations");
        // The per-case echo records the bracket the search actually
        // reached, not the CLI-level bounds: the knee lies in [lo, hi],
        // one bisection-resolution wide.
        assert_eq!(sat_a.lo, sat_a.rate);
        assert!(sat_a.hi > sat_a.lo);
        let resolution = (4.0 - 0.05) / 64.0;
        assert!((sat_a.hi - sat_a.lo - resolution).abs() < 1e-12);
        assert_eq!(sat_a.iterations, 6);
        assert_eq!(sat_a.outcome, SaturationOutcome::Knee);
        // The knee must lie between an unsaturated and a saturated probe
        // width of the final bisection interval.
        let width = (spec.saturation.unwrap().hi - spec.saturation.unwrap().lo) / 64.0;
        assert!(width > 0.0 && sat_a.rate + 2.0 * width <= spec.saturation.unwrap().hi);
        let doc = sweep_json(&spec, &a, 1, 0.0).pretty();
        assert!(doc.contains("\"outcome\": \"knee\""));
    }

    #[test]
    fn saturated_baseline_is_reported_not_silently_kneed() {
        let mut spec = tiny_spec();
        spec.workloads = vec!["transpose".into()];
        spec.algorithms = vec!["xy".into()];
        spec.rates = vec![0.1];
        // A 4x4 transpose under XY collapses well below 3 packets/cycle,
        // so the "baseline" itself is already saturated.
        spec.saturation = Some(SaturationSpec {
            lo: 3.0,
            hi: 4.0,
            iterations: 4,
            knee: 4.0,
        });
        let results = run_grid(&spec, 1);
        let sat = results[0].saturation.as_ref().expect("search ran");
        assert_eq!(sat.outcome, SaturationOutcome::BaselineSaturated);
        assert!(!sat.censored);
        assert_eq!(sat.rate, 0.0, "no rate was observed unsaturated");
        assert_eq!(sat.runs, 1, "the search stops at the baseline probe");
        let doc = sweep_json(&spec, &results, 1, 0.0).pretty();
        assert!(doc.contains("\"outcome\": \"baseline-saturated\""));
    }

    #[test]
    fn unsaturated_upper_probe_is_censored_not_a_knee() {
        let mut spec = tiny_spec();
        spec.workloads = vec!["transpose".into()];
        spec.algorithms = vec!["xy".into()];
        spec.rates = vec![0.1];
        // Both probes sit far below the 4x4 transpose knee, so the
        // bracket never closes.
        spec.saturation = Some(SaturationSpec {
            lo: 0.05,
            hi: 0.2,
            iterations: 4,
            knee: 4.0,
        });
        let results = run_grid(&spec, 1);
        let sat = results[0].saturation.as_ref().expect("search ran");
        assert_eq!(sat.outcome, SaturationOutcome::Censored);
        assert!(sat.censored);
        assert_eq!(
            sat.rate, 0.2,
            "censored result reports the lower bound probed"
        );
        assert_eq!(
            sat.iterations, 0,
            "no bisection after an unsaturated upper probe"
        );
        let doc = sweep_json(&spec, &results, 1, 0.0).pretty();
        assert!(doc.contains("\"outcome\": \"censored\""));
    }

    #[test]
    fn engine_knobs_do_not_change_sweep_bytes() {
        let mut spec = tiny_spec();
        spec.workloads = vec!["transpose".into()];
        spec.algorithms = vec!["xy".into()];
        let reference = sweep_json(&spec, &run_grid(&spec, 1), 1, 0.0).pretty();
        spec.engine_threads = 4;
        spec.fast_forward = false;
        let tuned = sweep_json(&spec, &run_grid(&spec, 2), 2, 0.0).pretty();
        assert_eq!(
            tuned, reference,
            "engine knobs must never leak into the document"
        );
    }

    #[test]
    fn compact_tables_change_bytes_not_behavior() {
        let mut spec = tiny_spec();
        let dense = run_grid(&spec, 1);
        spec.compact_tables = true;
        let compact = run_grid(&spec, 1);
        for (d, c) in dense.iter().zip(&compact) {
            let db = d.table_bytes.expect("dense case routed");
            let cb = c.table_bytes.expect("compact case routed");
            assert!(
                cb < db,
                "{}: compact tables must shrink ({cb} vs {db} bytes)",
                d.case.algorithm
            );
        }
        // Outside the two table-representation keys, the documents are
        // byte-identical: compression changes memory, never routing.
        let strip = |doc: String| -> String {
            doc.lines()
                .filter(|l| !l.contains("\"table_bytes\"") && !l.contains("\"compact_tables\""))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let mut dense_spec = tiny_spec();
        let a = strip(sweep_json(&dense_spec, &dense, 1, 0.0).pretty());
        dense_spec.compact_tables = true;
        let b = strip(sweep_json(&dense_spec, &compact, 1, 0.0).pretty());
        assert_eq!(a, b);
        // And the keys really are in the document.
        let doc = sweep_json(&dense_spec, &compact, 1, 0.0).pretty();
        assert!(doc.contains("\"compact_tables\": true"));
        assert!(doc.contains("\"table_bytes\""));
    }

    #[test]
    fn saturation_ranges_are_validated() {
        let ok = SaturationSpec::default();
        assert!(ok.validate().is_ok());
        for (lo, hi) in [
            (2.0, 1.0),
            (0.0, 1.0),
            (-1.0, 1.0),
            (f64::NAN, 1.0),
            (0.1, f64::INFINITY),
            (0.1, 0.1),
        ] {
            let bad = SaturationSpec {
                lo,
                hi,
                ..SaturationSpec::default()
            };
            let err = bad.validate().expect_err("degenerate range rejected");
            assert!(err.contains("lo < hi"), "typed message: {err}");
        }
    }

    #[test]
    fn bursty_grid_matches_flat_mean_load() {
        let mut spec = tiny_spec();
        spec.workloads = vec!["neighbor".into()];
        spec.algorithms = vec!["xy".into()];
        spec.rates = vec![0.4];
        spec.measurement = 4_000;
        let flat = run_grid(&spec, 1);
        spec.burst = Some(BurstyOnOff::new(50.0, 150.0));
        let bursty = run_grid(&spec, 1);
        let (f, b) = (&flat[0].points[0], &bursty[0].points[0]);
        let ratio = b.offered / f.offered;
        assert!(
            (0.8..=1.2).contains(&ratio),
            "bursty offered load drifted: {ratio}"
        );
        // JSON carries the burst knob.
        let doc = sweep_json(&spec, &bursty, 1, 0.0).pretty();
        assert!(doc.contains("\"mean_on\": 50.0"));
        assert!(doc.contains("\"schema\": \"bsor-sweep/v2\""));
    }
}
