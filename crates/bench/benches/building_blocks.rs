//! Criterion micro-benchmarks for the framework's building blocks:
//! CDG construction and cycle breaking, the route selectors, the simplex
//! core, and simulator speed. These complement the table/figure binaries
//! by timing the pieces the paper's §3.6 scalability claims rest on
//! ("the Dijkstra-based heuristic can be run on thousands of nodes
//! within seconds").

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;

use bsor_cdg::{AcyclicCdg, Cdg, TurnModel};
use bsor_flow::FlowNetwork;
use bsor_lp::{Cmp, MilpOptions, Model, VarKind};
use bsor_routing::selectors::{DijkstraSelector, MilpSelector};
use bsor_routing::Baseline;
use bsor_sim::{SimConfig, Simulator, TrafficSpec};
use bsor_topology::Topology;
use bsor_workloads::transpose;

fn bench_cdg(c: &mut Criterion) {
    let mesh = Topology::mesh2d(8, 8);
    let mut g = c.benchmark_group("cdg");
    g.bench_function("build_8x8_2vc", |b| {
        b.iter(|| Cdg::build(&mesh, 2));
    });
    g.bench_function("turn_model_8x8_2vc", |b| {
        b.iter(|| AcyclicCdg::turn_model(&mesh, 2, &TurnModel::west_first()).expect("valid"));
    });
    g.bench_function("valid_models_enumeration_8x8", |b| {
        b.iter(|| TurnModel::valid_models(&mesh).expect("grid"));
    });
    g.bench_function("ad_hoc_routable_8x8_2vc", |b| {
        b.iter(|| AcyclicCdg::ad_hoc_routable(&mesh, 2, 7).expect("grid"));
    });
    g.finish();
}

fn bench_selectors(c: &mut Criterion) {
    let mesh = Topology::mesh2d(8, 8);
    let w = transpose(&mesh).expect("square");
    let acyclic =
        AcyclicCdg::turn_model(&mesh, 2, &TurnModel::negative_first().mirrored_y()).expect("valid");
    let mut g = c.benchmark_group("selectors");
    g.sample_size(20);
    g.bench_function("dijkstra_transpose_8x8", |b| {
        b.iter(|| {
            let net = FlowNetwork::new(&mesh, &acyclic);
            DijkstraSelector::new()
                .select(&net, &w.flows)
                .expect("routable")
        });
    });
    g.bench_function("dijkstra_refined_transpose_8x8", |b| {
        b.iter(|| {
            let net = FlowNetwork::new(&mesh, &acyclic);
            DijkstraSelector::new()
                .with_refinement(2)
                .select(&net, &w.flows)
                .expect("routable")
        });
    });
    g.bench_function("xy_baseline_transpose_8x8", |b| {
        b.iter(|| Baseline::XY.select(&mesh, &w.flows, 2).expect("xy"));
    });
    g.sample_size(10);
    g.bench_function("milp_transpose_4x4", |b| {
        let mesh4 = Topology::mesh2d(4, 4);
        let w4 = transpose(&mesh4).expect("square");
        let acyclic4 = AcyclicCdg::turn_model(&mesh4, 1, &TurnModel::west_first()).expect("valid");
        b.iter(|| {
            let net = FlowNetwork::new(&mesh4, &acyclic4);
            MilpSelector::new()
                .with_hop_slack(2)
                .with_max_paths(40)
                .with_options(MilpOptions {
                    max_nodes: 10,
                    time_limit: Some(Duration::from_secs(5)),
                    ..MilpOptions::default()
                })
                .select(&net, &w4.flows)
                .expect("solvable")
        });
    });
    g.finish();
}

fn bench_lp(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp");
    g.bench_function("simplex_dense_120x80", |b| {
        // A dense feasible LP: min sum x, A x >= b with random-ish A.
        b.iter_batched(
            || {
                let mut m = Model::minimize();
                let vars: Vec<_> = (0..80)
                    .map(|i| {
                        m.add_var(
                            VarKind::Continuous,
                            0.0,
                            f64::INFINITY,
                            1.0 + (i % 7) as f64 * 0.1,
                        )
                    })
                    .collect();
                for r in 0..120 {
                    let terms: Vec<_> = vars
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| (j + r) % 3 != 0)
                        .map(|(j, &v)| (v, 1.0 + ((r * 31 + j * 17) % 5) as f64 * 0.25))
                        .collect();
                    m.add_constraint(terms, Cmp::Ge, 10.0 + (r % 9) as f64);
                }
                m
            },
            |m| m.solve_relaxation().expect("feasible"),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("milp_knapsack_24", |b| {
        b.iter_batched(
            || {
                let mut m = Model::minimize();
                let vars: Vec<_> = (0..24)
                    .map(|i| m.add_binary(-(1.0 + ((i * 37) % 11) as f64)))
                    .collect();
                let weights: Vec<_> = vars
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (v, 1.0 + ((i * 13) % 7) as f64))
                    .collect();
                m.add_constraint(weights, Cmp::Le, 30.0);
                m
            },
            |m| m.solve().expect("feasible"),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_sim(c: &mut Criterion) {
    let mesh = Topology::mesh2d(8, 8);
    let w = transpose(&mesh).expect("square");
    let routes = Baseline::XY.select(&mesh, &w.flows, 2).expect("xy");
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.bench_function("cycles_10k_8x8_xy", |b| {
        b.iter(|| {
            let traffic = TrafficSpec::proportional(&w.flows, 1.0);
            let config = SimConfig::new(2).with_warmup(0).with_measurement(10_000);
            Simulator::new(&mesh, &w.flows, &routes, traffic, config)
                .expect("consistent")
                .run()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_cdg, bench_selectors, bench_lp, bench_sim);
criterion_main!(benches);
