//! Regenerates **Figure 6-1**: network throughput and average latency
//! versus offered injection rate for the Transpose workload
//! under XY, YX, ROMM, Valiant and the two BSOR selectors (8×8 mesh,
//! 2 VCs).
//!
//! ```text
//! cargo run -p bsor-bench --release --bin fig_6_1 [--paper] [--csv]
//! ```

use bsor_bench::{paper_mode, print_figure, standard_mesh, standard_rates, SweepConfig};
use bsor_workloads::transpose;

fn main() {
    let topo = standard_mesh();
    let workload = transpose(&topo).expect("8x8 supports the workload");
    let cfg = if paper_mode() {
        SweepConfig::paper(2)
    } else {
        SweepConfig::quick(2)
    };
    print_figure(
        "Figure 6-1: Transpose — throughput & latency vs offered rate",
        &topo,
        &workload,
        &cfg,
        &standard_rates(),
    );
}
