//! Regenerates the paper's CDG illustrations as GraphViz DOT:
//!
//! * **Figure 3-1** — the full (cyclic) CDG of the 3×3 mesh,
//! * **Figure 3-3(a)/(b)** — acyclic CDGs from the north-last and
//!   west-first turn models (8 edges removed),
//! * **Figure 3-4** — an ad-hoc random derivation (more edges removed),
//! * **Figure 3-6(a)** — the VC-expanded CDG of a 2×2 mesh with z = 2.
//!
//! Pipe any section into `dot -Tsvg` to render.
//!
//! ```text
//! cargo run -p bsor-bench --release --bin fig_3_x
//! ```

use bsor_cdg::render::{acyclic_to_dot, cdg_to_dot};
use bsor_cdg::{AcyclicCdg, TurnModel};
use bsor_topology::Topology;

fn main() {
    let mesh = Topology::mesh2d(3, 3);
    println!(
        "{}",
        cdg_to_dot(&mesh, 1, "Figure 3-1: CDG of the 3x3 mesh")
    );

    for model in [TurnModel::north_last(), TurnModel::west_first()] {
        let acyclic = AcyclicCdg::turn_model(&mesh, 1, &model).expect("valid model");
        println!(
            "{}",
            acyclic_to_dot(
                &acyclic,
                &format!(
                    "Figure 3-3: acyclic CDG via {} ({} edges removed)",
                    model.name(),
                    acyclic.removed_edges()
                ),
            )
        );
    }

    let ad_hoc = AcyclicCdg::ad_hoc(&mesh, 1, 4);
    println!(
        "{}",
        acyclic_to_dot(
            &ad_hoc,
            &format!(
                "Figure 3-4: ad hoc acyclic CDG ({} edges removed)",
                ad_hoc.removed_edges()
            ),
        )
    );

    let sub = Topology::mesh2d(2, 2);
    println!(
        "{}",
        cdg_to_dot(
            &sub,
            2,
            "Figure 3-6(a): 2x2 mesh CDG with 2 virtual channels"
        )
    );
}
