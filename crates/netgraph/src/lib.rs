//! # bsor-netgraph
//!
//! A compact, from-scratch directed-graph substrate used by the BSOR
//! reproduction for channel dependence graphs (CDGs) and the flow networks
//! derived from them.
//!
//! The graphs manipulated by BSOR are small (hundreds to a few thousand
//! vertices) but are queried intensively: cycle detection while breaking CDG
//! cycles, Dijkstra during route selection, and exhaustive bounded path
//! enumeration for the MILP selector. This crate provides exactly those
//! operations with no external dependencies.
//!
//! ## Quick start
//!
//! ```
//! use bsor_netgraph::{DiGraph, algo};
//!
//! let mut g: DiGraph<&str, f64> = DiGraph::new();
//! let a = g.add_node("a");
//! let b = g.add_node("b");
//! let c = g.add_node("c");
//! g.add_edge(a, b, 1.0);
//! g.add_edge(b, c, 2.0);
//! assert!(algo::is_acyclic(&g));
//! let order = algo::toposort(&g).expect("acyclic");
//! assert_eq!(order, vec![a, b, c]);
//! ```

pub mod algo;
pub mod graph;

pub use graph::{DiGraph, EdgeId, NodeId};
