//! Byte-identity goldens pinning the unified scenario/registry pipeline
//! to the pre-refactor outputs.
//!
//! The files under `tests/golden/` were captured from the string-matched
//! glue (`routes_by_name`/`workload_by_name` + per-binary plumbing)
//! *before* the migration onto `Scenario`/`RouteAlgorithm`/registries:
//!
//! * `sweep_smoke.json` — `bsor-sweep --quick --no-timings --threads 2`
//! * `fig_6_7_quick.csv` — `fig_6_7 --quick --csv`
//!
//! The new pipeline must reproduce both byte-for-byte at the fixed
//! seeds: the refactor is an API change, not a behavioral one.

use bsor_bench::sweep::{run_grid, sweep_json, GridSpec};
use bsor_bench::{standard_mesh, vc_sweep_report, RunMode};

#[test]
fn sweep_smoke_json_is_byte_identical_to_pre_refactor() {
    let mut spec = GridSpec::smoke();
    spec.record_timings = false;
    let results = run_grid(&spec, 2);
    let doc = sweep_json(&spec, &results, 2, 0.0).pretty();
    assert_eq!(
        doc,
        include_str!("golden/sweep_smoke.json"),
        "registry-driven sweep diverged from the pre-refactor BENCH_sweep.json"
    );
}

#[test]
fn fig_6_7_csv_is_byte_identical_to_pre_refactor() {
    let report = vc_sweep_report(&standard_mesh(), RunMode::Quick, true);
    assert_eq!(
        report,
        include_str!("golden/fig_6_7_quick.csv"),
        "scenario-pipeline figure diverged from the pre-refactor fig_6_7 output"
    );
}
