//! Regenerates **Figure 6-1**: network throughput and average latency
//! versus offered injection rate for the Transpose workload
//! under XY, YX, ROMM, Valiant and the two BSOR selectors (8×8 mesh,
//! 2 VCs).
//!
//! ```text
//! cargo run -p bsor-bench --release --bin fig_6_1 [--quick] [--paper] [--csv]
//! ```

use bsor_bench::{
    csv_mode, rates_for, run_mode, standard_mesh, sweep_for, write_figure, StdoutSink,
};
use bsor_workloads::transpose;

fn main() {
    let topo = standard_mesh();
    let workload = transpose(&topo).expect("8x8 supports the workload");
    let mode = run_mode();
    let cfg = sweep_for(mode, 2);
    write_figure(
        &mut StdoutSink,
        "Figure 6-1: Transpose — throughput & latency vs offered rate",
        &topo,
        &workload,
        &cfg,
        &rates_for(mode),
        mode,
        csv_mode(),
    )
    .expect("stdout writes cannot fail");
}
