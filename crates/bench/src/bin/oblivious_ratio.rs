//! The oblivious-routing competitive table committed as
//! `BENCH_oblivious.json`: the Applegate–Cohen oblivious ratio per
//! topology (where the LP budget admits it — the dense tableau refuses
//! oversized instances with a typed cell) and the per-workload plus
//! worst-case static MCL of `ac-oblivious` / `random-walk` /
//! `bsor-dijkstra` / `xy`, all resolved through
//! [`AlgorithmRegistry::standard`] so the table measures exactly what
//! `bsor-sweep` and `bsor-serve` run.
//!
//! ```text
//! cargo run -p bsor_bench --release --bin oblivious_ratio [--quick] [--json] [--max-links N]
//! ```
//!
//! `--max-links N` raises (or lowers) the `ac-oblivious` LP's
//! directed-link budget from its 16-link default, for both the ratio
//! solver and the registry's `ac-oblivious` column — larger topologies
//! get real numbers instead of typed budget refusals, at dense-tableau
//! cost.
//!
//! Cases: the paper's six 8x8 workloads, `fullmesh:8`, and the WAN
//! sample (`--quick` shrinks the ratio commodity set from all ordered
//! pairs to the shift ring so CI finishes in seconds). Output is
//! deterministic byte for byte — same binary, same flags, same bytes —
//! which the `oblivious-smoke` CI job checks by running it twice.

use bsor::{AlgorithmRegistry, RegistryConfig};
use bsor_bench::json::Json;
use bsor_bench::{fmt_row, run_mode, scenario_for, standard_mesh, RunMode};
use bsor_routing::selectors::AcObliviousSelector;
use bsor_sim::{ExperimentError, Planner};
use bsor_topology::{NodeId, Topology};
use bsor_workloads::{all_six, uniform_random, Workload};

/// The four algorithms compared, in column order (registry names).
const ALGORITHMS: [&str; 4] = ["ac-oblivious", "random-walk", "bsor-dijkstra", "xy"];

/// One table case: a topology and the workloads evaluated on it.
struct Case {
    spec: String,
    topo: Topology,
    workloads: Vec<Workload>,
}

fn cases() -> Vec<Case> {
    let mesh = standard_mesh();
    let mesh_spec = format!("{}x{}", mesh.width(), mesh.height());
    let fullmesh = bsor_topology::full_mesh(8).expect("8 is in range");
    let wan = bsor_topology::load_topology_file("assets/topologies/wan5.topo")
        .expect("committed sample parses (run from the workspace root)");
    vec![
        Case {
            spec: mesh_spec,
            workloads: all_six(&mesh).expect("square mesh supports all six"),
            topo: mesh,
        },
        Case {
            spec: "fullmesh:8".to_owned(),
            workloads: vec![uniform_random(&fullmesh).expect("non-trivial")],
            topo: fullmesh,
        },
        Case {
            spec: "file:assets/topologies/wan5.topo".to_owned(),
            workloads: vec![uniform_random(&wan).expect("non-trivial")],
            topo: wan,
        },
    ]
}

/// The commodity set the ratio is reported for: every ordered pair
/// (the canonical oblivious-ratio definition), or the shift ring under
/// `--quick` to keep the LP CI-sized.
fn ratio_commodities(topo: &Topology, mode: RunMode) -> Vec<(NodeId, NodeId)> {
    let n = topo.num_nodes() as u32;
    match mode {
        RunMode::Quick => (0..n).map(|i| (NodeId(i), NodeId((i + 1) % n))).collect(),
        _ => (0..n)
            .flat_map(|s| {
                (0..n)
                    .filter(move |&d| d != s)
                    .map(move |d| (NodeId(s), NodeId(d)))
            })
            .collect(),
    }
}

/// A table cell: a number, or the typed error that replaced it.
enum Cell {
    Value(f64),
    Error(String),
}

impl Cell {
    fn json(&self) -> Json {
        match self {
            Cell::Value(v) => Json::Float(*v),
            Cell::Error(e) => Json::Str(format!("({e})")),
        }
    }

    fn text(&self, decimals: usize) -> String {
        match self {
            Cell::Value(v) => format!("{v:.decimals$}"),
            Cell::Error(e) => format!("({e})"),
        }
    }
}

/// Parses `--max-links N`, exiting 1 with a message on a malformed or
/// zero value.
fn max_links_arg() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == "--max-links")?;
    let parsed = args
        .get(i + 1)
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0);
    match parsed {
        Some(n) => Some(n),
        None => {
            eprintln!("oblivious_ratio: --max-links needs a positive integer");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mode = run_mode();
    let json_out = std::env::args().any(|a| a == "--json");
    let max_links = max_links_arg();
    let registry = match max_links {
        Some(n) => AlgorithmRegistry::standard_with(RegistryConfig::new().with_max_links(n)),
        None => AlgorithmRegistry::standard(),
    };
    let planner = Planner::new();
    // The ratio solver mirrors the registry's `ac-oblivious` budget;
    // topologies it refuses get a typed cell, not a hung tableau.
    let mut ratio_solver = AcObliviousSelector::new();
    if let Some(n) = max_links {
        ratio_solver = ratio_solver.with_max_links(n);
    }

    let widths = [16usize, 24, 16, 16, 16];
    let mut out_cases: Vec<Json> = Vec::new();
    for case in cases() {
        let ratio = match ratio_solver.solve(&case.topo, &ratio_commodities(&case.topo, mode)) {
            Ok(sol) => Cell::Value(sol.ratio()),
            Err(e) => Cell::Error(e.to_string()),
        };
        if !json_out {
            println!(
                "{} ({} links): oblivious ratio {}",
                case.spec,
                case.topo.num_links(),
                ratio.text(6)
            );
            let mut header = vec!["Example".to_owned()];
            header.extend(ALGORITHMS.iter().map(|a| (*a).to_owned()));
            println!("{}", fmt_row(&header, &widths));
        }
        // worst[a]: the per-algorithm max MCL over this case's workloads
        // (an error cell if no workload planned).
        let mut worst: Vec<Option<Cell>> = ALGORITHMS.iter().map(|_| None).collect();
        let mut workload_rows: Vec<Json> = Vec::new();
        for workload in &case.workloads {
            let scenario = scenario_for(&case.topo, workload, 2);
            let mut row = vec![workload.name.clone()];
            let mut mcl_pairs: Vec<(&str, Json)> = Vec::new();
            for (i, name) in ALGORITHMS.iter().enumerate() {
                let algo = registry.get(name).expect("standard registry has all four");
                let cell = match planner.plan(&scenario, algo) {
                    Ok(plan) => Cell::Value(plan.predicted_mcl()),
                    Err(e) => Cell::Error(ExperimentError::from(e).to_string()),
                };
                match (&cell, &worst[i]) {
                    (Cell::Value(v), Some(Cell::Value(w))) if *v > *w => {
                        worst[i] = Some(Cell::Value(*v));
                    }
                    (Cell::Value(v), None) | (Cell::Value(v), Some(Cell::Error(_))) => {
                        worst[i] = Some(Cell::Value(*v));
                    }
                    (Cell::Error(e), None) => worst[i] = Some(Cell::Error(e.clone())),
                    _ => {}
                }
                row.push(cell.text(2));
                mcl_pairs.push((name, cell.json()));
            }
            if json_out {
                workload_rows.push(Json::object(vec![
                    ("workload", Json::from(workload.name.as_str())),
                    ("mcl", Json::object(mcl_pairs)),
                ]));
            } else {
                println!("{}", fmt_row(&row, &widths));
            }
        }
        let worst: Vec<Cell> = worst
            .into_iter()
            .map(|c| c.expect("every case has at least one workload"))
            .collect();
        if json_out {
            out_cases.push(Json::object(vec![
                ("topology", Json::from(case.spec.as_str())),
                ("links", Json::from(case.topo.num_links() as u64)),
                ("oblivious_ratio", ratio.json()),
                ("workloads", Json::array(workload_rows)),
                (
                    "worst_case_mcl",
                    Json::object(
                        ALGORITHMS
                            .iter()
                            .zip(&worst)
                            .map(|(a, c)| (*a, c.json()))
                            .collect(),
                    ),
                ),
            ]));
        } else {
            let mut row = vec!["worst-case".to_owned()];
            row.extend(worst.iter().map(|c| c.text(2)));
            println!("{}", fmt_row(&row, &widths));
            println!();
        }
    }
    if json_out {
        let doc = Json::object(vec![
            ("schema", Json::from("bsor-oblivious-bench@1")),
            (
                "mode",
                Json::from(match mode {
                    RunMode::Quick => "quick",
                    RunMode::Default => "default",
                    RunMode::Paper => "paper",
                }),
            ),
            ("vcs", Json::UInt(2)),
            (
                "algorithms",
                Json::array(ALGORITHMS.iter().map(|a| Json::from(*a)).collect()),
            ),
            ("cases", Json::array(out_cases)),
        ]);
        print!("{}", doc.pretty());
    }
}
