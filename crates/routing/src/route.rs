//! Routes, virtual-channel masks, and route sets with channel-load
//! accounting.

use bsor_flow::{FlowId, FlowSet};
use bsor_topology::{LinkId, NodeId, Topology};
use std::error::Error;
use std::fmt;

/// A set of virtual channels a packet may occupy on one channel, as a
/// bitmask (bit `i` = VC `i`; at most 8 VCs, matching the paper's
/// evaluation range of 1–8).
///
/// Static VC allocation uses single-bit masks; dynamic allocation uses
/// all-ones; the two-phase baselines (ROMM, Valiant) use half masks.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct VcMask(pub u8);

impl VcMask {
    /// Mask allowing exactly one VC.
    pub fn single(vc: u8) -> VcMask {
        assert!(vc < 8, "at most 8 virtual channels");
        VcMask(1 << vc)
    }

    /// Mask allowing all of `vcs` virtual channels.
    pub fn all(vcs: u8) -> VcMask {
        assert!((1..=8).contains(&vcs), "1..=8 virtual channels");
        if vcs == 8 {
            VcMask(0xff)
        } else {
            VcMask((1u8 << vcs) - 1)
        }
    }

    /// The lower half of `vcs` channels (phase-1 mask); with `vcs == 1`
    /// this is the single channel.
    pub fn low_half(vcs: u8) -> VcMask {
        let half = (vcs / 2).max(1);
        VcMask::all(half)
    }

    /// The upper half of `vcs` channels (phase-2 mask).
    ///
    /// # Panics
    ///
    /// Panics if `vcs < 2` (no distinct upper half exists).
    pub fn high_half(vcs: u8) -> VcMask {
        assert!(vcs >= 2, "phase splitting needs at least 2 VCs");
        let half = vcs / 2;
        VcMask(VcMask::all(vcs).0 & !VcMask::all(half).0)
    }

    /// Whether VC `vc` is allowed.
    pub fn contains(self, vc: u8) -> bool {
        vc < 8 && self.0 & (1 << vc) != 0
    }

    /// Number of allowed VCs.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// True if no VC is allowed (an invalid mask for a route hop).
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over allowed VC indices in ascending order.
    pub fn iter(self) -> impl Iterator<Item = u8> {
        (0..8).filter(move |&v| self.contains(v))
    }

    /// Lowest allowed VC.
    ///
    /// # Panics
    ///
    /// Panics if the mask is empty.
    pub fn first(self) -> u8 {
        self.iter().next().expect("mask must be nonempty")
    }
}

impl fmt::Debug for VcMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VcMask({:#010b})", self.0)
    }
}

/// One hop of a route: a physical channel plus the VCs the packet may use
/// on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RouteHop {
    /// The channel traversed.
    pub link: LinkId,
    /// Permitted virtual channels on that channel.
    pub vcs: VcMask,
}

/// The path taken by all packets of one flow (paper Definition 1: a
/// single path `pi` from `si` to `ti`).
#[derive(Clone, Debug, PartialEq)]
pub struct Route {
    /// The flow this route carries.
    pub flow: FlowId,
    /// Channels from source to sink, in order.
    pub hops: Vec<RouteHop>,
}

impl Route {
    /// Number of channels traversed.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True for degenerate empty routes (never produced by selectors).
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The node sequence visited, derived from the hop list.
    pub fn node_path(&self, topo: &Topology) -> Vec<NodeId> {
        let mut nodes = Vec::with_capacity(self.hops.len() + 1);
        if let Some(first) = self.hops.first() {
            nodes.push(topo.link(first.link).src);
        }
        for h in &self.hops {
            nodes.push(topo.link(h.link).dst);
        }
        nodes
    }
}

/// Problems detected by [`RouteSet::validate`].
#[derive(Clone, Debug, PartialEq)]
pub enum RouteError {
    /// The set has no route for a flow.
    MissingRoute(FlowId),
    /// A route's first channel does not leave the flow's source.
    WrongSource(FlowId),
    /// A route's last channel does not enter the flow's sink.
    WrongSink(FlowId),
    /// Two consecutive channels do not share a node.
    Discontinuous(FlowId, usize),
    /// A hop allows no virtual channel at all.
    EmptyVcMask(FlowId, usize),
    /// A hop references a VC index `>= vcs`.
    VcOutOfRange(FlowId, usize),
    /// A route is empty.
    EmptyRoute(FlowId),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::MissingRoute(id) => write!(f, "no route for flow {id}"),
            RouteError::WrongSource(id) => write!(f, "route for {id} does not start at its source"),
            RouteError::WrongSink(id) => write!(f, "route for {id} does not end at its sink"),
            RouteError::Discontinuous(id, i) => {
                write!(f, "route for {id} breaks continuity at hop {i}")
            }
            RouteError::EmptyVcMask(id, i) => write!(f, "route for {id} hop {i} allows no VC"),
            RouteError::VcOutOfRange(id, i) => {
                write!(f, "route for {id} hop {i} references an out-of-range VC")
            }
            RouteError::EmptyRoute(id) => write!(f, "route for {id} is empty"),
        }
    }
}

impl Error for RouteError {}

/// Distribution of channel loads over the channels a routing uses.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BalanceStats {
    /// Channels carrying any traffic.
    pub used_links: usize,
    /// Mean load over used channels, MB/s.
    pub mean_load: f64,
    /// Standard deviation of the load over used channels.
    pub std_dev: f64,
    /// Peak load (the MCL), MB/s.
    pub max_load: f64,
}

impl BalanceStats {
    /// Peak-to-mean ratio: 1.0 is perfectly balanced; large values mean
    /// a hot spot.
    pub fn peak_to_mean(&self) -> f64 {
        if self.mean_load == 0.0 {
            0.0
        } else {
            self.max_load / self.mean_load
        }
    }
}

/// One route per flow, indexed by [`FlowId`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RouteSet {
    routes: Vec<Route>,
}

impl RouteSet {
    /// Builds a route set from routes listed in flow-id order.
    ///
    /// # Panics
    ///
    /// Panics if ids are not `0..n` in order.
    pub fn from_routes(routes: Vec<Route>) -> RouteSet {
        for (i, r) in routes.iter().enumerate() {
            assert_eq!(r.flow.index(), i, "routes must be listed in flow-id order");
        }
        RouteSet { routes }
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when the set holds no routes.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// The route for `flow`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn route(&self, flow: FlowId) -> &Route {
        &self.routes[flow.index()]
    }

    /// Iterates over routes in flow-id order.
    pub fn iter(&self) -> impl Iterator<Item = &Route> + '_ {
        self.routes.iter()
    }

    /// Per-channel bandwidth loads given the flows' demands.
    pub fn link_loads(&self, topo: &Topology, flows: &FlowSet) -> Vec<f64> {
        let mut loads = vec![0.0; topo.num_links()];
        for r in &self.routes {
            let d = flows.flow(r.flow).demand;
            for h in &r.hops {
                loads[h.link.index()] += d;
            }
        }
        loads
    }

    /// The maximum channel load (MCL) of this routing (paper
    /// Definition 3).
    pub fn mcl(&self, topo: &Topology, flows: &FlowSet) -> f64 {
        self.link_loads(topo, flows).into_iter().fold(0.0, f64::max)
    }

    /// The maximum number of flows sharing any channel (the alternative
    /// objective of paper §7.2).
    pub fn max_flows_per_link(&self, topo: &Topology) -> usize {
        let mut counts = vec![0usize; topo.num_links()];
        for r in &self.routes {
            for h in &r.hops {
                counts[h.link.index()] += 1;
            }
        }
        counts.into_iter().max().unwrap_or(0)
    }

    /// Mean route length in hops (channels), unweighted across flows.
    pub fn mean_hops(&self) -> f64 {
        if self.routes.is_empty() {
            return 0.0;
        }
        self.routes.iter().map(|r| r.len() as f64).sum::<f64>() / self.routes.len() as f64
    }

    /// Load-balance statistics over the channels that carry any traffic
    /// (the paper defines load balancing as "the degree to which
    /// resources … are uniformly utilized across the different links").
    pub fn balance(&self, topo: &Topology, flows: &FlowSet) -> BalanceStats {
        let loads = self.link_loads(topo, flows);
        let used: Vec<f64> = loads.iter().copied().filter(|&l| l > 0.0).collect();
        if used.is_empty() {
            return BalanceStats::default();
        }
        let n = used.len() as f64;
        let mean = used.iter().sum::<f64>() / n;
        let var = used.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / n;
        let max = used.iter().copied().fold(0.0, f64::max);
        BalanceStats {
            used_links: used.len(),
            mean_load: mean,
            std_dev: var.sqrt(),
            max_load: max,
        }
    }

    /// Checks structural validity of every route against `flows` and the
    /// topology: continuity, endpoints, VC masks within `vcs`.
    ///
    /// # Errors
    ///
    /// The first [`RouteError`] found.
    pub fn validate(&self, topo: &Topology, flows: &FlowSet, vcs: u8) -> Result<(), RouteError> {
        if self.routes.len() != flows.len() {
            let missing = FlowId(self.routes.len() as u32);
            return Err(RouteError::MissingRoute(missing));
        }
        for r in &self.routes {
            let f = flows.flow(r.flow);
            let Some(first) = r.hops.first() else {
                return Err(RouteError::EmptyRoute(r.flow));
            };
            if topo.link(first.link).src != f.src {
                return Err(RouteError::WrongSource(r.flow));
            }
            let last = r.hops.last().expect("nonempty");
            if topo.link(last.link).dst != f.dst {
                return Err(RouteError::WrongSink(r.flow));
            }
            for (i, pair) in r.hops.windows(2).enumerate() {
                if topo.link(pair[0].link).dst != topo.link(pair[1].link).src {
                    return Err(RouteError::Discontinuous(r.flow, i + 1));
                }
            }
            for (i, h) in r.hops.iter().enumerate() {
                if h.vcs.is_empty() {
                    return Err(RouteError::EmptyVcMask(r.flow, i));
                }
                if h.vcs.iter().any(|v| v >= vcs) {
                    return Err(RouteError::VcOutOfRange(r.flow, i));
                }
            }
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a RouteSet {
    type Item = &'a Route;
    type IntoIter = std::slice::Iter<'a, Route>;

    fn into_iter(self) -> Self::IntoIter {
        self.routes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsor_flow::FlowSet;

    #[test]
    fn vc_mask_basics() {
        let m = VcMask::all(4);
        assert_eq!(m.count(), 4);
        assert!(m.contains(0) && m.contains(3) && !m.contains(4));
        let s = VcMask::single(2);
        assert_eq!(s.count(), 1);
        assert_eq!(s.first(), 2);
        assert_eq!(VcMask::all(8).0, 0xff);
    }

    #[test]
    fn vc_mask_halves_partition() {
        for vcs in [2u8, 4, 8] {
            let low = VcMask::low_half(vcs);
            let high = VcMask::high_half(vcs);
            assert_eq!(low.0 & high.0, 0, "halves are disjoint");
            assert_eq!(low.0 | high.0, VcMask::all(vcs).0, "halves cover all VCs");
        }
        assert_eq!(VcMask::low_half(1), VcMask::single(0));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn high_half_needs_two_vcs() {
        VcMask::high_half(1);
    }

    fn xy_route(topo: &Topology, flow: FlowId, src: NodeId, dst: NodeId) -> Route {
        // Straight-line helper for tests: assumes same row or column.
        let mut hops = Vec::new();
        let mut cur = src;
        while cur != dst {
            let cc = topo.coord(cur);
            let dc = topo.coord(dst);
            let next = if cc.x < dc.x {
                topo.node_at(cc.x + 1, cc.y)
            } else if cc.x > dc.x {
                topo.node_at(cc.x - 1, cc.y)
            } else if cc.y < dc.y {
                topo.node_at(cc.x, cc.y + 1)
            } else {
                topo.node_at(cc.x, cc.y - 1)
            }
            .expect("in range");
            hops.push(RouteHop {
                link: topo.find_link(cur, next).expect("adjacent"),
                vcs: VcMask::all(2),
            });
            cur = next;
        }
        Route { flow, hops }
    }

    #[test]
    fn mcl_accumulates_demands() {
        let topo = Topology::mesh2d(3, 1);
        let mut flows = FlowSet::new();
        let a = flows.push(NodeId(0), NodeId(2), 10.0);
        let b = flows.push(NodeId(1), NodeId(2), 5.0);
        let routes = RouteSet::from_routes(vec![
            xy_route(&topo, a, NodeId(0), NodeId(2)),
            xy_route(&topo, b, NodeId(1), NodeId(2)),
        ]);
        // Link 1->2 carries both flows: 15.
        assert_eq!(routes.mcl(&topo, &flows), 15.0);
        assert_eq!(routes.max_flows_per_link(&topo), 2);
        assert_eq!(routes.mean_hops(), 1.5);
        routes.validate(&topo, &flows, 2).expect("valid routes");
    }

    #[test]
    fn balance_stats_summarize_loads() {
        let topo = Topology::mesh2d(3, 1);
        let mut flows = FlowSet::new();
        let a = flows.push(NodeId(0), NodeId(2), 10.0);
        let b = flows.push(NodeId(1), NodeId(2), 5.0);
        let routes = RouteSet::from_routes(vec![
            xy_route(&topo, a, NodeId(0), NodeId(2)),
            xy_route(&topo, b, NodeId(1), NodeId(2)),
        ]);
        let stats = routes.balance(&topo, &flows);
        // Loads: link 0->1 = 10, link 1->2 = 15.
        assert_eq!(stats.used_links, 2);
        assert!((stats.mean_load - 12.5).abs() < 1e-9);
        assert!((stats.max_load - 15.0).abs() < 1e-9);
        assert!((stats.std_dev - 2.5).abs() < 1e-9);
        assert!((stats.peak_to_mean() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn empty_route_set_balance_is_zero() {
        let topo = Topology::mesh2d(2, 2);
        let flows = FlowSet::new();
        let routes = RouteSet::from_routes(vec![]);
        let stats = routes.balance(&topo, &flows);
        assert_eq!(stats, BalanceStats::default());
        assert_eq!(stats.peak_to_mean(), 0.0);
    }

    #[test]
    fn node_path_reconstruction() {
        let topo = Topology::mesh2d(3, 3);
        let r = xy_route(&topo, FlowId(0), NodeId(0), NodeId(2));
        assert_eq!(r.node_path(&topo), vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn validate_rejects_discontinuity() {
        let topo = Topology::mesh2d(3, 1);
        let mut flows = FlowSet::new();
        let id = flows.push(NodeId(0), NodeId(1), 1.0);
        // Two hops that don't connect: 0->1 then 0->1 again (endpoints of
        // the whole route are fine, so continuity is what trips).
        let l01 = topo.find_link(NodeId(0), NodeId(1)).expect("adjacent");
        let bad = Route {
            flow: id,
            hops: vec![
                RouteHop {
                    link: l01,
                    vcs: VcMask::all(1),
                },
                RouteHop {
                    link: l01,
                    vcs: VcMask::all(1),
                },
            ],
        };
        let rs = RouteSet::from_routes(vec![bad]);
        assert!(matches!(
            rs.validate(&topo, &flows, 1),
            Err(RouteError::Discontinuous(_, 1))
        ));
    }

    #[test]
    fn validate_rejects_vc_out_of_range() {
        let topo = Topology::mesh2d(2, 1);
        let mut flows = FlowSet::new();
        let id = flows.push(NodeId(0), NodeId(1), 1.0);
        let l = topo.find_link(NodeId(0), NodeId(1)).expect("adjacent");
        let r = Route {
            flow: id,
            hops: vec![RouteHop {
                link: l,
                vcs: VcMask::single(3),
            }],
        };
        let rs = RouteSet::from_routes(vec![r]);
        assert!(matches!(
            rs.validate(&topo, &flows, 2),
            Err(RouteError::VcOutOfRange(_, 0))
        ));
        assert!(rs.validate(&topo, &flows, 4).is_ok());
    }

    #[test]
    fn validate_rejects_wrong_endpoints() {
        let topo = Topology::mesh2d(3, 1);
        let mut flows = FlowSet::new();
        let id = flows.push(NodeId(0), NodeId(2), 1.0);
        let l12 = topo.find_link(NodeId(1), NodeId(2)).expect("adjacent");
        let r = Route {
            flow: id,
            hops: vec![RouteHop {
                link: l12,
                vcs: VcMask::all(1),
            }],
        };
        let rs = RouteSet::from_routes(vec![r]);
        assert!(matches!(
            rs.validate(&topo, &flows, 1),
            Err(RouteError::WrongSource(_))
        ));
    }
}
