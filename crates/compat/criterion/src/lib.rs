//! Minimal vendored stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access to crates.io, so this
//! crate implements the subset of criterion's API the workspace benches
//! use — `criterion_group!` / `criterion_main!`, benchmark groups with
//! `sample_size` / `measurement_time`, `bench_function` /
//! `bench_with_input`, and `Bencher::{iter, iter_batched}`.
//!
//! Instead of criterion's statistical analysis it times a fixed number
//! of iterations per benchmark (one warmup plus `sample_size` measured
//! runs) and prints `group/id  mean ± spread` lines to stdout. That
//! keeps `cargo bench` runnable and its output greppable without any
//! external dependency; absolute numbers are comparable only within a
//! single run.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// An opaque value barrier, re-exported for benches that use it.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim runs one setup per
/// measured iteration regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Runs one benchmark's timing loop.
pub struct Bencher {
    samples: usize,
    /// Mean and spread (min..max) of the measured samples.
    result: Option<(Duration, Duration, Duration)>,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            result: None,
        }
    }

    /// Times `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std_black_box(routine()); // warmup
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(routine());
            times.push(start.elapsed());
        }
        self.record(times);
    }

    /// Times `routine` on fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std_black_box(routine(setup())); // warmup
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            times.push(start.elapsed());
        }
        self.record(times);
    }

    fn record(&mut self, times: Vec<Duration>) {
        let total: Duration = times.iter().sum();
        let mean = total / times.len().max(1) as u32;
        let min = times.iter().min().copied().unwrap_or_default();
        let max = times.iter().max().copied().unwrap_or_default();
        self.result = Some((mean, min, max));
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim's run length is set by
    /// [`BenchmarkGroup::sample_size`] alone.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs `f` as the benchmark `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, f);
        self
    }

    /// Runs `f` with `input` as the benchmark `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.sample_size,
            |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher::new(samples);
    f(&mut b);
    match b.result {
        Some((mean, min, max)) => {
            println!(
                "{label:<52} {:>12?} (min {:?} .. max {:?}, n={samples})",
                mean, min, max
            );
            append_json_line(label, samples, mean, min, max);
        }
        None => println!("{label:<52} (no measurement recorded)"),
    }
}

/// When `BSOR_BENCH_JSON` names a file, every benchmark also appends one
/// JSON line there — the same shape the `bsor-sweep` harness records in
/// `BENCH_sweep.json` timing fields — so CI can collect micro-benchmark
/// trajectories without scraping stdout.
fn append_json_line(label: &str, samples: usize, mean: Duration, min: Duration, max: Duration) {
    let Ok(path) = std::env::var("BSOR_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!(
        "{{\"id\": \"{}\", \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"samples\": {}}}\n",
        label.replace('\\', "\\\\").replace('"', "\\\""),
        mean.as_nanos(),
        min.as_nanos(),
        max.as_nanos(),
        samples
    );
    use std::io::Write as _;
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = appended {
        eprintln!("criterion shim: cannot append to {path}: {e}");
    }
}

/// The harness entry point handed to each benchmark function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the shim has no CLI options.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Runs `f` as a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.id, self.default_sample_size, f);
        self
    }
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
