//! Shared types for route selectors.

use crate::route::RouteSet;
use bsor_flow::FlowId;
use bsor_lp::LpError;
use std::error::Error;
use std::fmt;

/// Order in which sequential selectors route the flows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowOrder {
    /// Route flows in the order the application listed them.
    AsGiven,
    /// Route the largest demands first (the default; big flows get the
    /// emptiest network).
    DemandDescending,
    /// Route in a seeded random order.
    Random {
        /// RNG seed for reproducibility.
        seed: u64,
    },
}

/// Errors produced by route selectors.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectError {
    /// The acyclic CDG admits no route at all for this flow (its cycle
    /// breaking disconnected the pair).
    Unroutable {
        /// The flow with no conforming route.
        flow: FlowId,
    },
    /// The algorithm needs more virtual channels than the configuration
    /// provides (e.g. ROMM and Valiant need 2 for deadlock freedom).
    NeedsVirtualChannels {
        /// Minimum VC count required.
        required: u8,
        /// VC count available.
        available: u8,
    },
    /// The MILP solver failed (infeasible model, budget exhausted, …).
    Milp(LpError),
    /// An LP-based selector refused the topology because its model would
    /// exceed the configured link budget (the dense simplex tableau
    /// grows with the square of the directed-link count, so oversized
    /// instances are rejected up front instead of hanging the solver).
    BudgetExceeded {
        /// Directed links of the offending topology.
        links: usize,
        /// The configured budget.
        max_links: usize,
    },
    /// A selected route is longer than the configured hop budget
    /// (`with_max_hops`): the selection is rejected rather than silently
    /// shipping a route whose tail latency the budget was meant to cap.
    HopBudgetExceeded {
        /// The flow whose route broke the budget.
        flow: FlowId,
        /// Hops of the offending route.
        hops: usize,
        /// The configured budget.
        max_hops: usize,
    },
}

impl fmt::Display for SelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectError::Unroutable { flow } => {
                write!(f, "no route for flow {flow} conforms to the acyclic CDG")
            }
            SelectError::NeedsVirtualChannels {
                required,
                available,
            } => write!(
                f,
                "algorithm needs {required} virtual channels but only {available} are available"
            ),
            SelectError::Milp(e) => write!(f, "MILP route selection failed: {e}"),
            SelectError::BudgetExceeded { links, max_links } => write!(
                f,
                "topology has {links} directed links, over the selector's {max_links}-link \
                 LP budget (raise it with with_max_links to solve anyway)"
            ),
            SelectError::HopBudgetExceeded {
                flow,
                hops,
                max_hops,
            } => write!(
                f,
                "route for flow {flow} takes {hops} hops, over the selector's {max_hops}-hop \
                 budget (raise it with with_max_hops or drop the budget)"
            ),
        }
    }
}

/// Enforces a selector's hop budget on its final route set: every route
/// must take at most `max_hops` hops. `None` means unbounded.
///
/// # Errors
///
/// [`SelectError::HopBudgetExceeded`] naming the first offending flow.
pub(crate) fn check_hop_budget(
    routes: &RouteSet,
    max_hops: Option<usize>,
) -> Result<(), SelectError> {
    let Some(max_hops) = max_hops else {
        return Ok(());
    };
    for route in routes.iter() {
        if route.hops.len() > max_hops {
            return Err(SelectError::HopBudgetExceeded {
                flow: route.flow,
                hops: route.hops.len(),
                max_hops,
            });
        }
    }
    Ok(())
}

impl Error for SelectError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SelectError::Milp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LpError> for SelectError {
    fn from(e: LpError) -> Self {
        SelectError::Milp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SelectError::Unroutable { flow: FlowId(3) };
        assert!(e.to_string().contains("f3"));
        let e = SelectError::NeedsVirtualChannels {
            required: 2,
            available: 1,
        };
        assert!(e.to_string().contains('2'));
        let e: SelectError = LpError::Infeasible.into();
        assert!(Error::source(&e).is_some());
        let e = SelectError::HopBudgetExceeded {
            flow: FlowId(7),
            hops: 12,
            max_hops: 8,
        };
        let msg = e.to_string();
        assert!(msg.contains("f7") && msg.contains("12") && msg.contains("8-hop"));
    }
}
