//! Adversarial and randomized synthetic traffic patterns.
//!
//! The paper evaluates BSOR on three bit-permutations (see
//! [`crate::synthetic`]); worst-case-throughput claims only become
//! credible under the adversarial patterns the oblivious-routing
//! literature sweeps — hotspots, tornado shifts, bit reversal, nearest
//! neighbor, uniform random and seeded random permutations. Every
//! generator here is deterministic (randomized ones carry an explicit
//! seed) and normalizes per-source demand to [`SYNTHETIC_DEMAND`] so
//! MCL numbers stay comparable with the paper's Table 6.3 calibration.
//!
//! The parameterized families (`hotspot:<k>`, `rand-perm:<seed>`) are
//! addressable through [`crate::WorkloadRegistry`] spec strings; see the
//! registry docs for the grammar.

use crate::synthetic::SYNTHETIC_DEMAND;
use crate::{Workload, WorkloadError};
use bsor_flow::FlowSet;
use bsor_topology::{NodeId, Topology, TopologyKind};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Families whose `(x, y)` coordinates describe a real grid the
/// coordinate-walking patterns may traverse. The arbitrary-graph
/// families are laid out as a 1 × n line purely for node identity, so a
/// coordinate walk there would be silently meaningless.
fn has_grid_coordinates(kind: TopologyKind) -> bool {
    matches!(
        kind,
        TopologyKind::Mesh2D | TopologyKind::Torus2D | TopologyKind::Ring | TopologyKind::Hypercube
    )
}

/// Uniform-random traffic as a static flow graph: every ordered pair of
/// distinct nodes carries a flow, and each source's total demand is
/// [`SYNTHETIC_DEMAND`] (split evenly over its `n - 1` destinations).
///
/// # Errors
///
/// [`WorkloadError::EmptyWorkload`] on single-node topologies.
pub fn uniform_random(topo: &Topology) -> Result<Workload, WorkloadError> {
    let n = topo.num_nodes() as u32;
    if n < 2 {
        return Err(WorkloadError::EmptyWorkload {
            name: "uniform-random".to_owned(),
        });
    }
    let per_flow = SYNTHETIC_DEMAND / (n - 1) as f64;
    let mut flows = FlowSet::new();
    for s in 0..n {
        for d in 0..n {
            if s != d {
                flows.push(NodeId(s), NodeId(d), per_flow);
            }
        }
    }
    Ok(Workload::new("uniform-random", flows))
}

/// Tornado traffic (Dally & Towles §3.2): node `(x, y)` sends to
/// `((x + ⌈w/2⌉ − 1) mod w, (y + ⌈h/2⌉ − 1) mod h)` — the classic
/// adversary for dimension-order and minimal oblivious routing, rotating
/// traffic almost half-way around each dimension.
///
/// # Errors
///
/// [`WorkloadError::RequiresGrid`] on the arbitrary-graph families, or
/// [`WorkloadError::EmptyWorkload`] when both dimensional shifts are
/// zero (grids narrower than 3 in every dimension), where the pattern
/// degenerates to self-flows.
pub fn tornado(topo: &Topology) -> Result<Workload, WorkloadError> {
    if !has_grid_coordinates(topo.kind()) {
        return Err(WorkloadError::RequiresGrid {
            name: "tornado".to_owned(),
            kind: topo.kind(),
        });
    }
    let (w, h) = (topo.width(), topo.height());
    let shift_x = w.div_ceil(2).saturating_sub(1);
    let shift_y = h.div_ceil(2).saturating_sub(1);
    if shift_x == 0 && shift_y == 0 {
        return Err(WorkloadError::EmptyWorkload {
            name: "tornado".to_owned(),
        });
    }
    let mut flows = FlowSet::new();
    for s in topo.node_ids() {
        let c = topo.coord(s);
        let d = topo
            .node_at((c.x + shift_x) % w, (c.y + shift_y) % h)
            .expect("wrapped coordinate stays in the grid");
        if d != s {
            flows.push(s, d, SYNTHETIC_DEMAND);
        }
    }
    Ok(Workload::new("tornado", flows))
}

/// Bit-reversal: destination address is the source address with its
/// `b` bits reversed (`dᵢ = s_{b−1−i}`). Palindromic addresses are fixed
/// points and carry no flow.
///
/// # Errors
///
/// [`WorkloadError`] if the topology is not a square power-of-two grid.
/// The arbitrary-graph families (whose 1 × n layout carries no grid
/// semantics) skip the squareness check: any power-of-two node count
/// works, since the pattern only permutes node indices.
pub fn bit_reversal(topo: &Topology) -> Result<Workload, WorkloadError> {
    if has_grid_coordinates(topo.kind()) && topo.width() != topo.height() {
        return Err(WorkloadError::NotSquare);
    }
    let n = topo.num_nodes();
    if !n.is_power_of_two() {
        return Err(WorkloadError::NotPowerOfTwo);
    }
    let b = n.trailing_zeros();
    let mut flows = FlowSet::new();
    for s in 0..n as u32 {
        let d = s.reverse_bits() >> (32 - b);
        if d != s {
            flows.push(NodeId(s), NodeId(d), SYNTHETIC_DEMAND);
        }
    }
    Ok(Workload::new("bit-reversal", flows))
}

/// Nearest-neighbor ring traffic: node `(x, y)` sends to
/// `((x + 1) mod w, y)` — the benign short-haul baseline against which
/// the adversarial patterns are compared.
///
/// # Errors
///
/// [`WorkloadError::RequiresGrid`] on the arbitrary-graph families, or
/// [`WorkloadError::EmptyWorkload`] on single-column topologies, where
/// every node would send to itself.
pub fn neighbor(topo: &Topology) -> Result<Workload, WorkloadError> {
    if !has_grid_coordinates(topo.kind()) {
        return Err(WorkloadError::RequiresGrid {
            name: "neighbor".to_owned(),
            kind: topo.kind(),
        });
    }
    let w = topo.width();
    if w < 2 {
        return Err(WorkloadError::EmptyWorkload {
            name: "neighbor".to_owned(),
        });
    }
    let mut flows = FlowSet::new();
    for s in topo.node_ids() {
        let c = topo.coord(s);
        let d = topo
            .node_at((c.x + 1) % w, c.y)
            .expect("wrapped coordinate stays in the grid");
        if d != s {
            flows.push(s, d, SYNTHETIC_DEMAND);
        }
    }
    Ok(Workload::new("neighbor", flows))
}

/// The `k` hotspot nodes of [`hotspot`] on `topo`: a centered
/// `⌈√k⌉ × ⌈k/⌈√k⌉⌉` lattice over the grid, de-duplicated and padded
/// with evenly spaced node indices on degenerate (skinny or tiny)
/// topologies so exactly `k` distinct nodes come back.
///
/// # Panics
///
/// Panics unless `1 <= k < topo.num_nodes()` ([`hotspot`] reports the
/// same bound as a typed [`WorkloadError::BadSpec`]).
pub fn hotspot_nodes(topo: &Topology, k: usize) -> Vec<NodeId> {
    let n = topo.num_nodes();
    assert!(
        k >= 1 && k < n,
        "hotspot count {k} outside 1..{n} on this topology"
    );
    let (w, h) = (topo.width() as usize, topo.height() as usize);
    let kx = (k as f64).sqrt().ceil() as usize;
    let ky = k.div_ceil(kx);
    let mut spots: Vec<NodeId> = Vec::with_capacity(k);
    for j in 0..k {
        let (gx, gy) = (j % kx, j / kx);
        let x = (((2 * gx + 1) * w) / (2 * kx)).min(w - 1) as u16;
        let y = (((2 * gy + 1) * h) / (2 * ky)).min(h - 1) as u16;
        let node = topo.node_at(x, y).expect("lattice point is on the grid");
        if !spots.contains(&node) {
            spots.push(node);
        }
    }
    // Pad collisions (skinny grids fold lattice rows together) with an
    // even index spread, preserving determinism.
    let mut j = 0;
    while spots.len() < k {
        let candidate = NodeId(((j * n) / k) as u32);
        if !spots.contains(&candidate) {
            spots.push(candidate);
        }
        j += 1;
    }
    spots
}

/// Hotspot traffic: `k` hotspot nodes spread over the grid each receive
/// an equal share of every other node's [`SYNTHETIC_DEMAND`] — each
/// source sends `SYNTHETIC_DEMAND / k` to every hotspot other than
/// itself, concentrating load the way shared-memory homes or
/// memory-controller tiles do.
///
/// # Errors
///
/// [`WorkloadError::BadSpec`] unless `1 <= k < num_nodes`.
pub fn hotspot(topo: &Topology, k: usize) -> Result<Workload, WorkloadError> {
    let n = topo.num_nodes();
    if k == 0 || k >= n {
        return Err(WorkloadError::BadSpec {
            spec: format!("hotspot:{k}"),
            reason: format!("k must be between 1 and {} on this topology", n - 1),
        });
    }
    let spots = hotspot_nodes(topo, k);
    let per_spot = SYNTHETIC_DEMAND / k as f64;
    let mut flows = FlowSet::new();
    for s in topo.node_ids() {
        for &d in &spots {
            if d != s {
                flows.push(s, d, per_spot);
            }
        }
    }
    Ok(Workload::new(format!("hotspot:{k}"), flows))
}

/// Seeded random permutation traffic: a Fisher–Yates shuffle of the node
/// set under `seed` maps each source to its destination; fixed points
/// carry no flow. The same seed always produces the same permutation, so
/// `rand-perm:<seed>` sweeps are reproducible.
///
/// # Errors
///
/// [`WorkloadError::EmptyWorkload`] in the (astronomically unlikely past
/// trivial sizes) case that the shuffle is the identity permutation.
pub fn rand_perm(topo: &Topology, seed: u64) -> Result<Workload, WorkloadError> {
    let n = topo.num_nodes() as u32;
    let mut perm: Vec<u32> = (0..n).collect();
    perm.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut flows = FlowSet::new();
    for (s, &d) in perm.iter().enumerate() {
        if s as u32 != d {
            flows.push(NodeId(s as u32), NodeId(d), SYNTHETIC_DEMAND);
        }
    }
    if flows.is_empty() {
        return Err(WorkloadError::EmptyWorkload {
            name: format!("rand-perm:{seed}"),
        });
    }
    Ok(Workload::new(format!("rand-perm:{seed}"), flows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_random_covers_all_pairs_with_normalized_demand() {
        let topo = Topology::mesh2d(4, 4);
        let w = uniform_random(&topo).expect("16 nodes");
        assert_eq!(w.flows.len(), 16 * 15);
        for s in topo.node_ids() {
            let out: f64 = w
                .flows
                .iter()
                .filter(|f| f.src == s)
                .map(|f| f.demand)
                .sum();
            assert!(
                (out - SYNTHETIC_DEMAND).abs() < 1e-9,
                "src {s:?} sums {out}"
            );
        }
    }

    #[test]
    fn tornado_shifts_each_dimension_almost_halfway() {
        let topo = Topology::mesh2d(8, 8);
        let w = tornado(&topo).expect("8x8");
        assert_eq!(w.flows.len(), 64, "no fixed points on an 8x8 tornado");
        for f in w.flows.iter() {
            let s = topo.coord(f.src);
            let d = topo.coord(f.dst);
            assert_eq!(d.x, (s.x + 3) % 8);
            assert_eq!(d.y, (s.y + 3) % 8);
        }
    }

    #[test]
    fn tornado_degenerates_on_tiny_grids() {
        let topo = Topology::mesh2d(2, 2);
        assert_eq!(
            tornado(&topo).unwrap_err(),
            WorkloadError::EmptyWorkload {
                name: "tornado".into()
            }
        );
    }

    #[test]
    fn bit_reversal_is_an_involution() {
        let topo = Topology::mesh2d(8, 8);
        let w = bit_reversal(&topo).expect("square power of two");
        // 2^3 palindromes of 6 bits are fixed points.
        assert_eq!(w.flows.len(), 64 - 8);
        for f in w.flows.iter() {
            assert!(
                w.flows.iter().any(|g| g.src == f.dst && g.dst == f.src),
                "bit reversal pairs are symmetric"
            );
        }
        assert_eq!(
            bit_reversal(&Topology::mesh2d(8, 4)).unwrap_err(),
            WorkloadError::NotSquare
        );
    }

    #[test]
    fn neighbor_sends_one_column_east() {
        let topo = Topology::mesh2d(4, 4);
        let w = neighbor(&topo).expect("4 columns");
        assert_eq!(w.flows.len(), 16);
        for f in w.flows.iter() {
            let s = topo.coord(f.src);
            let d = topo.coord(f.dst);
            assert_eq!((d.x, d.y), ((s.x + 1) % 4, s.y));
        }
    }

    #[test]
    fn hotspot_nodes_are_distinct_and_spread() {
        let topo = Topology::mesh2d(8, 8);
        let spots = hotspot_nodes(&topo, 4);
        assert_eq!(spots.len(), 4);
        let coords: Vec<_> = spots.iter().map(|&s| topo.coord(s)).collect();
        // The 2x2 lattice on an 8x8 grid centers at (2,2),(6,2),(2,6),(6,6).
        assert!(coords.iter().all(|c| c.x == 2 || c.x == 6));
        assert!(coords.iter().all(|c| c.y == 2 || c.y == 6));
        // Skinny grids fall back to the index spread but stay distinct.
        let ring = Topology::ring(8);
        let spots = hotspot_nodes(&ring, 4);
        assert_eq!(spots.len(), 4);
        let mut dedup = spots.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
    }

    #[test]
    fn hotspot_per_source_demand_sums_correctly() {
        let topo = Topology::mesh2d(4, 4);
        let k = 3;
        let w = hotspot(&topo, k).expect("3 < 16");
        let spots = hotspot_nodes(&topo, k);
        for s in topo.node_ids() {
            let out: f64 = w
                .flows
                .iter()
                .filter(|f| f.src == s)
                .map(|f| f.demand)
                .sum();
            let expected = if spots.contains(&s) {
                SYNTHETIC_DEMAND * (k - 1) as f64 / k as f64
            } else {
                SYNTHETIC_DEMAND
            };
            assert!((out - expected).abs() < 1e-9, "src {s:?} sums {out}");
        }
    }

    #[test]
    fn hotspot_rejects_out_of_range_k() {
        let topo = Topology::mesh2d(2, 2);
        assert!(matches!(
            hotspot(&topo, 0).unwrap_err(),
            WorkloadError::BadSpec { .. }
        ));
        assert!(matches!(
            hotspot(&topo, 4).unwrap_err(),
            WorkloadError::BadSpec { .. }
        ));
        assert!(hotspot(&topo, 3).is_ok());
    }

    #[test]
    fn grid_walkers_reject_arbitrary_graphs_with_typed_errors() {
        let df = bsor_topology::dragonfly(2, 3, 2).expect("valid");
        for (name, result) in [("tornado", tornado(&df)), ("neighbor", neighbor(&df))] {
            match result.unwrap_err() {
                WorkloadError::RequiresGrid { name: n, kind } => {
                    assert_eq!(n, name);
                    assert_eq!(kind, TopologyKind::Dragonfly);
                }
                other => panic!("{name}: expected RequiresGrid, got {other:?}"),
            }
        }
    }

    #[test]
    fn node_count_patterns_work_on_arbitrary_graphs() {
        // uniform-random, hotspot and rand-perm only need node identity.
        let fm = bsor_topology::full_mesh(6).expect("valid");
        assert_eq!(uniform_random(&fm).expect("any n").flows.len(), 6 * 5);
        assert!(hotspot(&fm, 2).is_ok());
        assert!(rand_perm(&fm, 3).is_ok());
        // bit-reversal skips the squareness check off-grid but still
        // needs a power-of-two node count.
        let ft = bsor_topology::fat_tree(4).expect("valid"); // 20 nodes
        assert_eq!(bit_reversal(&ft).unwrap_err(), WorkloadError::NotPowerOfTwo);
        let fm8 = bsor_topology::full_mesh(8).expect("valid");
        let w = bit_reversal(&fm8).expect("8 is a power of two");
        assert!(!w.flows.is_empty());
    }

    #[test]
    fn rand_perm_is_seed_deterministic_and_a_permutation() {
        let topo = Topology::mesh2d(4, 4);
        let a = rand_perm(&topo, 7).expect("nontrivial shuffle");
        let b = rand_perm(&topo, 7).expect("nontrivial shuffle");
        assert_eq!(a.flows, b.flows, "same seed, same permutation");
        let c = rand_perm(&topo, 8).expect("nontrivial shuffle");
        assert_ne!(a.flows, c.flows, "different seeds should differ");
        // Injective over non-fixed points: destinations are distinct.
        let mut dsts: Vec<u32> = a.flows.iter().map(|f| f.dst.0).collect();
        dsts.sort_unstable();
        dsts.dedup();
        assert_eq!(dsts.len(), a.flows.len());
    }
}
