//! Plan-cache contract for the sweep harness: caching changes *cost*
//! (route solves), never *content* (the JSON document).
//!
//! * `bsor-sweep` output must be byte-identical with the cache enabled
//!   vs disabled, saturation search included.
//! * With the cache on, a saturation sweep performs exactly one route
//!   solve per `(topo, workload, algo, vc)` case — the acceptance
//!   criterion the CLI's `route solves:` log line and CI's `plan-cache`
//!   job audit.

use bsor_bench::sweep::{
    run_grid_stats, sweep_json, GridSpec, SaturationSpec, SweepRegistries, TopoSpec,
};

fn sat_spec() -> GridSpec {
    GridSpec {
        topologies: vec![TopoSpec::mesh(4, 4)],
        workloads: vec!["transpose".into(), "neighbor".into()],
        algorithms: vec!["xy".into(), "yx".into()],
        vcs: vec![2],
        rates: vec![0.1, 0.4],
        warmup: 100,
        measurement: 500,
        packet_len: 4,
        seed: 7,
        record_timings: false,
        engine_threads: 1,
        fast_forward: true,
        burst: None,
        saturation: Some(SaturationSpec {
            lo: 0.05,
            hi: 4.0,
            iterations: 4,
            knee: 4.0,
        }),
        compact_tables: false,
    }
}

#[test]
fn sweep_json_is_byte_identical_with_cache_on_vs_off() {
    let spec = sat_spec();
    let regs = SweepRegistries::standard();
    let on = run_grid_stats(&spec, 2, &regs, true);
    let off = run_grid_stats(&spec, 3, &regs, false);
    let doc_on = sweep_json(&spec, &on.results, 2, 0.0).pretty();
    let doc_off = sweep_json(&spec, &off.results, 3, 0.0).pretty();
    assert_eq!(doc_on, doc_off, "plan cache must not change results");
    // The per-case saturation echo records the final bracket and the
    // bisection steps actually executed.
    assert!(doc_on.contains("\"iterations\": 4"));
    for case in &on.results {
        let sat = case.saturation.as_ref().expect("search ran");
        assert_eq!(sat.lo, sat.rate, "lo is the highest unsaturated probe");
        assert!(sat.hi > sat.lo || sat.censored);
    }
}

#[test]
fn cached_saturation_sweep_solves_exactly_once_per_case() {
    let spec = sat_spec();
    let regs = SweepRegistries::standard();
    let on = run_grid_stats(&spec, 2, &regs, true);
    assert_eq!(
        on.plans.solves,
        spec.num_cases() as u64,
        "one route solve per case with the cache on"
    );
    // Every plan request beyond the per-case up-front solve — one per
    // rate point, one per saturation probe — was served from the cache.
    let per_point_requests: u64 = on
        .results
        .iter()
        .map(|r| r.points.len() as u64 + r.saturation.as_ref().map_or(0, |s| u64::from(s.runs)))
        .sum();
    assert_eq!(on.plans.cache_hits, per_point_requests);
    let off = run_grid_stats(&spec, 2, &regs, false);
    assert_eq!(
        off.plans.solves,
        spec.num_cases() as u64 + per_point_requests,
        "the uncached sweep re-solves per plan request"
    );
    assert_eq!(off.plans.cache_hits, 0);
}

#[test]
fn sweep_outcome_exposes_plan_stats_and_saturation_programmatically() {
    // The counters the CLI prints must be reachable by API callers:
    // `SweepOutcome.plans` carries the planner's `PlanStats`, and every
    // case's `SaturationOutcome` is a struct, not a log line.
    let spec = sat_spec();
    let regs = SweepRegistries::standard();
    let outcome = run_grid_stats(&spec, 1, &regs, true);
    let stats = outcome.plans;
    assert_eq!(stats.solves, spec.num_cases() as u64);
    let requests: u64 = outcome
        .results
        .iter()
        .map(|r| r.points.len() as u64 + r.saturation.as_ref().map_or(0, |s| u64::from(s.runs)))
        .sum();
    assert_eq!(
        stats.solves + stats.cache_hits,
        spec.num_cases() as u64 + requests,
        "solves and hits partition every plan request the sweep made"
    );
    for case in &outcome.results {
        let sat = case.saturation.as_ref().expect("search outcome reachable");
        assert!(sat.runs > 0);
        assert!(sat.rate >= spec.saturation.as_ref().unwrap().lo);
    }
}

#[test]
fn failed_cases_cost_one_solve_and_report_unchanged_errors() {
    let mut spec = sat_spec();
    spec.workloads = vec!["nope".into(), "transpose".into()];
    let regs = SweepRegistries::standard();
    let on = run_grid_stats(&spec, 1, &regs, true);
    // Unknown workloads fail before planning; only the transpose cases
    // solve.
    assert_eq!(on.plans.solves, 2);
    assert!(on.results[0].error.as_deref().unwrap().contains("nope"));
    assert!(on.results[2].error.is_none());
}
