//! Application flow graphs (paper §5.2): the H.264 decoder (Figure 5-1),
//! processor performance modeling (Figure 5-2) and the IEEE 802.11a/g
//! Wi-Fi baseband transmitter (Table 5.2).
//!
//! The paper gives flow demands but no module→node placement; the
//! [`spread_placement`] used here distributes modules evenly across the
//! mesh, which preserves the sharing structure the paper's MCL arithmetic
//! implies (in particular, the best achievable MCL equals the single
//! largest flow: 120.4 MB/s for H.264, 62.73 MB/s for performance
//! modeling, and 7.34 MB/s for the transmitter, as in Table 6.3).

use crate::{Workload, WorkloadError};
use bsor_flow::FlowSet;
use bsor_topology::{NodeId, Topology};

/// Evenly spreads `count` module sites across a grid topology, row-major
/// over a `⌈√count⌉ × ⌈√count⌉` virtual grid scaled to the mesh.
///
/// # Errors
///
/// [`WorkloadError::TooSmall`] when the topology has fewer nodes than
/// requested.
pub fn spread_placement(topo: &Topology, count: usize) -> Result<Vec<NodeId>, WorkloadError> {
    if topo.num_nodes() < count {
        return Err(WorkloadError::TooSmall {
            required: count,
            available: topo.num_nodes(),
        });
    }
    let k = (count as f64).sqrt().ceil() as usize;
    let scale = |i: usize, extent: u16| -> u16 {
        if k <= 1 {
            0
        } else {
            ((i * (extent as usize - 1)) / (k - 1)) as u16
        }
    };
    let mut nodes = Vec::with_capacity(count);
    for i in 0..count {
        let gx = i % k;
        let gy = i / k;
        let x = scale(gx, topo.width());
        let y = scale(gy, topo.height());
        let node = topo.node_at(x, y).expect("scaled coordinates are in range");
        if nodes.contains(&node) {
            // The mesh is too tight for a spread placement (scaled rows
            // or columns collide); fall back to dense row-major sites.
            return Ok((0..count as u32).map(NodeId).collect());
        }
        nodes.push(node);
    }
    Ok(nodes)
}

/// Places modules at explicit grid coordinates when they fit, falling
/// back to [`spread_placement`] on smaller meshes.
fn cluster_placement(topo: &Topology, coords: &[(u16, u16)]) -> Result<Vec<NodeId>, WorkloadError> {
    let placed: Option<Vec<NodeId>> = coords.iter().map(|&(x, y)| topo.node_at(x, y)).collect();
    match placed {
        Some(nodes) => Ok(nodes),
        None => spread_placement(topo, coords.len()),
    }
}

fn build(
    topo: &Topology,
    name: &str,
    placement: &[(u16, u16)],
    edges: &[(usize, usize, f64, &str)],
) -> Result<Workload, WorkloadError> {
    let place = cluster_placement(topo, placement)?;
    let mut flows = FlowSet::new();
    for &(src, dst, demand, label) in edges {
        flows.push_labeled(place[src], place[dst], demand, label);
    }
    Ok(Workload::new(name, flows))
}

/// The H.264 decoder flow graph (paper Figure 5-1): 9 modules — entropy
/// decoding (M1), inverse transform/quantization (M2), interpolation
/// (M3, M5, M7, M8), reference pixel loading (M4), intra-prediction /
/// deblocking reconstruction (M6) and the off-chip memory controller
/// (M9). The 120.4 MB/s reference-pixel stream from memory dominates.
///
/// # Errors
///
/// [`WorkloadError::TooSmall`] if the topology has fewer than 9 nodes.
pub fn h264_decoder(topo: &Topology) -> Result<Workload, WorkloadError> {
    // Module indices: 0..=8 map to M1..=M9, laid out as a compact 3x3
    // cluster near the mesh center (SoC modules are floorplanned close
    // together); the 120.4 MB/s memory stream's XY route then collides
    // with the entropy-decoder traffic, as the paper's Table 6.3 numbers
    // imply for its (unpublished) placement.
    const P: &[(u16, u16)] = &[
        (3, 4), // M1 entropy decoding
        (2, 4), // M2 inverse transform / quantization
        (2, 3), // M3 interpolation
        (2, 2), // M4 reference pixel loading
        (3, 3), // M5 interpolation
        (3, 2), // M6 intra-prediction / deblocking reconstruction
        (4, 3), // M7 interpolation
        (4, 2), // M8 interpolation
        (4, 4), // M9 off-chip memory controller
    ];
    const E: &[(usize, usize, f64, &str)] = &[
        (0, 1, 39.7, "f1"),   // entropy -> inverse transform
        (0, 3, 3.27, "f2"),   // motion vectors -> reference loading
        (3, 2, 20.4, "f3"),   // reference pixels -> interpolation
        (3, 4, 20.47, "f4"),  // reference pixels -> interpolation
        (3, 6, 13.97, "f5"),  // reference pixels -> interpolation
        (3, 7, 3.97, "f6"),   // reference pixels -> interpolation
        (8, 3, 120.4, "f7"),  // off-chip memory -> reference loading
        (2, 5, 30.1, "f8"),   // interpolation -> reconstruction
        (1, 5, 39.7, "f9"),   // residuals -> reconstruction
        (4, 5, 1.3, "f10"),   // interpolation -> reconstruction
        (6, 5, 1.63, "f11"),  // interpolation -> reconstruction
        (7, 5, 0.824, "f12"), // interpolation -> reconstruction
        (0, 5, 0.824, "f13"), // intra modes -> reconstruction
        (5, 8, 41.47, "f14"), // reconstructed frame -> memory
        (5, 0, 0.473, "f15"), // feedback -> entropy decoding
    ];
    build(topo, "H.264", P, E)
}

/// The processor performance-modeling flow graph (paper Figure 5-2): a
/// three-stage pipeline with independent instruction memory, data memory
/// and register-file modules — Fetch (M1), Imem (M2), Decode (M3),
/// Register File (M4), Execute (M5), Dmem (M6).
///
/// # Errors
///
/// [`WorkloadError::TooSmall`] if the topology has fewer than 6 nodes.
pub fn performance_modeling(topo: &Topology) -> Result<Workload, WorkloadError> {
    // A compact 3x2 cluster: the 62.73 MB/s register stream's XY route
    // shares a channel with the Imem return traffic, reproducing the
    // DOR-vs-BSOR gap of Table 6.3.
    const P: &[(u16, u16)] = &[
        (2, 3), // M1 Fetch
        (3, 3), // M2 Imem
        (4, 3), // M3 Decode
        (2, 2), // M4 Register File
        (3, 2), // M5 Execute
        (4, 2), // M6 Dmem
    ];
    const E: &[(usize, usize, f64, &str)] = &[
        (0, 1, 41.82, "f1"),  // Fetch -> Imem (instruction address)
        (4, 0, 41.82, "f2"),  // Execute -> Fetch (redirect)
        (2, 4, 41.82, "f3"),  // Decode -> Execute
        (2, 3, 62.73, "f4"),  // Decode -> Register File
        (1, 0, 41.82, "f5"),  // Imem -> Fetch (instruction word)
        (5, 4, 41.82, "f6"),  // Dmem -> Execute (load data)
        (3, 4, 7.1, "f7"),    // Register File -> Execute (operands)
        (4, 3, 7.1, "f8"),    // Execute -> Register File (writeback)
        (3, 0, 4.3, "f9"),    // Register File -> Fetch
        (0, 2, 41.82, "f10"), // Fetch -> Decode
        (4, 5, 41.82, "f11"), // Execute -> Dmem (store/address)
    ];
    build(topo, "perf. modeling", P, E)
}

/// The IEEE 802.11a/g OFDM transmitter flow graph (paper Table 5.2,
/// rates converted from Mbit/s to MB/s): 17 sites — the data-bit source
/// (module 0), M1–M15, and the digital-to-analog converter sink (module
/// 16). The IFFT is partitioned over four modules (M8–M11), as in the
/// paper.
///
/// # Errors
///
/// [`WorkloadError::TooSmall`] if the topology has fewer than 17 nodes.
pub fn wifi_transmitter(topo: &Topology) -> Result<Workload, WorkloadError> {
    const MBIT: f64 = 1.0 / 8.0; // Mbit/s -> MB/s
    let e: &[(usize, usize, f64, &str)] = &[
        (4, 1, 0.7 * MBIT, "f1"),
        (1, 2, 36.2 * MBIT, "f2"),
        (2, 5, 36.2 * MBIT, "f3"),
        (3, 5, 48.0 * MBIT, "f4"),
        (13, 6, 36.8 * MBIT, "f5"),
        (5, 6, 38.9 * MBIT, "f6"),
        (6, 7, 37.0 * MBIT, "f7"),
        (12, 13, 36.7 * MBIT, "f8"),
        (13, 14, 58.72 * MBIT, "f9"),
        (14, 15, 36.8 * MBIT, "f10"),
        (15, 16, 36.0 * MBIT, "f11"),
        (7, 11, 18.0 * MBIT, "f12"),
        (7, 10, 18.0 * MBIT, "f13"),
        (7, 9, 18.0 * MBIT, "f14"),
        (7, 8, 18.0 * MBIT, "f15"),
        (8, 12, 9.0 * MBIT, "f16"),
        (9, 12, 9.0 * MBIT, "f17"),
        (10, 12, 9.0 * MBIT, "f18"),
        (11, 12, 9.0 * MBIT, "f19"),
        (0, 1, 18.1 * MBIT, "data-bits"),
    ];
    // A 5x4 pipeline snake: consecutive stages adjacent, IFFT modules
    // (M8..M11) fanned out around M7/M12.
    const P: &[(u16, u16)] = &[
        (1, 4), // module 0: data-bit source
        (2, 4), // M1 scrambler/FEC
        (3, 4), // M2
        (4, 4), // M3
        (2, 5), // M4
        (4, 3), // M5
        (3, 3), // M6
        (2, 3), // M7 load/interleave for IFFT
        (1, 2), // M8 IFFT slice
        (2, 2), // M9 IFFT slice
        (3, 2), // M10 IFFT slice
        (4, 2), // M11 IFFT slice
        (3, 1), // M12 IFFT merger input collector
        (4, 1), // M13 merger
        (5, 1), // M14 window
        (6, 1), // M15 GI insertion
        (6, 0), // module 16: DAC sink
    ];
    build(topo, "transmitter", P, e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h264_matches_paper_profile() {
        let topo = Topology::mesh2d(8, 8);
        let w = h264_decoder(&topo).expect("fits");
        assert_eq!(w.flows.len(), 15);
        // Paper §6.1: "flow rates from 0.824 MB/s up to 120.4 MB/s".
        assert_eq!(w.flows.max_demand(), 120.4);
        let min = w
            .flows
            .iter()
            .map(|f| f.demand)
            .fold(f64::INFINITY, f64::min);
        assert!(min < 0.5, "the 0.473 MB/s feedback flow exists");
        w.flows.validate(&topo).expect("valid");
    }

    #[test]
    fn perf_modeling_matches_paper_profile() {
        let topo = Topology::mesh2d(8, 8);
        let w = performance_modeling(&topo).expect("fits");
        assert_eq!(w.flows.len(), 11);
        // Paper §6.1: "flow demands ranging from 4.3 MB/s to 41.82 MB/s"
        // plus the 62.73 MB/s register traffic of Figure 5-2.
        assert_eq!(w.flows.max_demand(), 62.73);
        let n_4182 = w
            .flows
            .iter()
            .filter(|f| (f.demand - 41.82).abs() < 1e-9)
            .count();
        assert_eq!(n_4182, 7, "seven 41.82 MB/s pipeline flows");
        w.flows.validate(&topo).expect("valid");
    }

    #[test]
    fn transmitter_matches_table_5_2() {
        let topo = Topology::mesh2d(8, 8);
        let w = wifi_transmitter(&topo).expect("fits");
        assert_eq!(w.flows.len(), 20);
        // 58.72 Mbit/s = 7.34 MB/s is the largest flow (Table 6.3's
        // BSOR-MILP MCL).
        assert!((w.flows.max_demand() - 7.34).abs() < 1e-9);
        w.flows.validate(&topo).expect("valid");
        // The IFFT fan-out: M7 feeds four 18 Mbit/s streams.
        let fan_out = w
            .flows
            .iter()
            .filter(|f| (f.demand - 2.25).abs() < 1e-9)
            .count();
        assert_eq!(fan_out, 4);
    }

    #[test]
    fn placements_are_distinct_and_spread() {
        let topo = Topology::mesh2d(8, 8);
        for count in [6, 9, 17] {
            let p = spread_placement(&topo, count).expect("fits");
            let mut sorted = p.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), count, "no collisions for {count} modules");
            // The extremes of the mesh are used: modules really spread out.
            assert!(p.contains(&topo.node_at(0, 0).expect("in range")));
        }
    }

    #[test]
    fn too_small_topology_rejected() {
        let topo = Topology::mesh2d(2, 2);
        assert_eq!(
            h264_decoder(&topo).unwrap_err(),
            WorkloadError::TooSmall {
                required: 9,
                available: 4
            }
        );
    }

    #[test]
    fn apps_fit_on_minimal_meshes() {
        assert!(performance_modeling(&Topology::mesh2d(3, 2)).is_ok());
        assert!(h264_decoder(&Topology::mesh2d(3, 3)).is_ok());
        assert!(wifi_transmitter(&Topology::mesh2d(5, 4)).is_ok());
    }

    #[test]
    fn labels_follow_paper_numbering() {
        let topo = Topology::mesh2d(8, 8);
        let w = h264_decoder(&topo).expect("fits");
        let labels: Vec<&str> = w
            .flows
            .iter()
            .map(|f| f.label.as_deref().expect("labeled"))
            .collect();
        assert_eq!(labels[0], "f1");
        assert_eq!(labels[14], "f15");
    }
}
