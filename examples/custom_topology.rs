//! Topology independence (paper §1.1, §3): the unified pipeline only
//! needs a name the `TopologyRegistry` knows, so the same experiment
//! runs unchanged on rings and tori where turn models do not apply —
//! the BSOR framework falls back to ad-hoc cycle breaking there.
//!
//! ```text
//! cargo run --release --example custom_topology
//! ```

use bsor::{BsorAlgorithm, Scenario, TopologyRegistry};
use bsor_flow::FlowSet;
use bsor_routing::deadlock;
use bsor_topology::NodeId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = TopologyRegistry::standard();
    println!("registered topologies: {}", registry.names().join(", "));

    // The same shifted traffic pattern on three families.
    for (family, w, h, shift) in [
        ("ring", 8u16, 1u16, 3u32),
        ("torus", 4, 4, 7),
        ("mesh", 4, 4, 7),
    ] {
        let topo = registry.build(family, w, h)?;
        let n = topo.num_nodes() as u32;
        let mut flows = FlowSet::new();
        for i in 0..n {
            flows.push(NodeId(i), NodeId((i + shift) % n), 10.0);
        }
        let scenario = Scenario::builder(topo, flows)
            .named(format!("{family}-{w}x{h}"))
            .vcs(2)
            .build()?;
        // One trait call routes every family: on meshes the framework
        // explores turn models, elsewhere ad-hoc acyclic CDGs.
        let routes = scenario.select_routes(&BsorAlgorithm::dijkstra())?;
        assert!(deadlock::is_deadlock_free(scenario.topology(), &routes, 2));
        println!(
            "{}: MCL {:.1} MB/s, mean {:.2} hops, deadlock-free",
            scenario.name(),
            routes.mcl(scenario.topology(), scenario.flows()),
            routes.mean_hops()
        );
    }
    Ok(())
}
