//! The cycle-accurate simulation engine.
//!
//! Router model (per cycle, single-cycle per hop as in paper §6.1):
//!
//! 1. **Generation** — Bernoulli or on/off bursty packet arrivals per
//!    flow (optionally Markov-modulated, optionally phase-scheduled)
//!    into per-node source queues.
//! 2. **RC + VA** — head flits at buffer fronts look up the node table
//!    (packets carry a table index, paper §4.2.1) and request an output
//!    VC within the hop's VC mask. VC allocation is *atomic*: a VC buffer
//!    holds at most one packet at a time, and a new packet acquires it
//!    only after the previous tail has departed.
//! 3. **SA + ST** — each output channel moves at most one flit per cycle
//!    and each input port forwards at most one flit per cycle (rotating
//!    arbiters); the ejection "channel" moves up to `local_bandwidth`
//!    flits per cycle (the paper's 4× resource links). Arrivals land in
//!    the downstream buffer at the end of the cycle.
//! 4. **Injection** — up to `local_bandwidth` flits move from the source
//!    queue into the injection port's VC buffers.
//!
//! Credits are modelled as direct downstream-occupancy checks (an ideal
//! zero-latency credit loop). A progress watchdog aborts the run and
//! flags `deadlocked` when in-network flits stop moving entirely, which
//! is how the deadlock tests in this crate observe cyclic routings
//! actually jam.
//!
//! # Execution strategies
//!
//! The engine runs the *same* router schedule three ways, all producing
//! byte-identical reports for a fixed seed:
//!
//! * **Serial** (`engine_threads = 1`, the default): one pass over the
//!   nodes per phase in node-id order, skipping nodes with no occupied
//!   input buffer (an exact optimization — arbiter state only advances
//!   when a candidate exists).
//! * **Parallel** (`engine_threads > 1` on row-major grids: mesh, torus,
//!   ring): the grid is split into contiguous column bands, one
//!   `std::thread::scope` worker per band. The route phase is
//!   node-parallel (VC claims never cross a node's own downstream
//!   buffers). The switch phase sweeps rows as a wavefront — band `b`
//!   enters row `y` only after band `b - 1` leaves it — which serializes
//!   every pair of horizontally adjacent routers in exactly the serial
//!   node order while letting bands pipeline across rows. Per-worker
//!   outboxes (sent flits, freed packet slots) are merged at the cycle
//!   barrier in fixed band order, so the merged stream equals the serial
//!   one and results are independent of the thread count. Non-grid
//!   topologies fall back to the serial schedule.
//! * **Fast-forward** (`fast_forward`, default on): cycles where the
//!   network is provably empty — no flit buffered in any VC, no backlog
//!   in any source queue, nothing in the hop pipeline — skip the router
//!   phases entirely. Packet generation still runs every cycle, so the
//!   RNG stream (Bernoulli gap sampling, on/off dwell boundaries,
//!   phase-schedule edges) is consumed identically and delivery timing
//!   is provably unchanged: a flit sent on resume cycle `t` still lands
//!   at the end of `t + pipeline_latency - 1` regardless of how many
//!   pipeline slots were skipped.

use crate::config::{SimConfig, SimError};
use crate::stats::{FlowStats, RunTiming, SimReport};
use crate::traffic::{BurstState, InjectionProcess, TrafficSpec, VariationState};
use bsor_flow::{FlowId, FlowSet};
use bsor_routing::tables::{NodeTables, RouteTables};
use bsor_routing::RouteSet;
use bsor_topology::{LinkId, NodeId, TopoIndex, Topology, TopologyKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

#[derive(Clone, Copy, Debug)]
struct Flit {
    /// Slot in the simulator's packet arena (unique while the packet is
    /// alive; recycled after the tail ejects).
    packet: u32,
    flow: FlowId,
    is_head: bool,
    is_tail: bool,
    /// Routing-table cursor for the next lookup; `None` on a head means
    /// "eject at the next router". Only meaningful on head flits.
    cursor: Option<u32>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OutKind {
    Forward(LinkId),
    Eject,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PortState {
    /// No packet is being forwarded from this VC buffer.
    Idle,
    /// The head was routed but no output VC is allocated yet.
    Routed {
        out: LinkId,
        mask: u8,
        next_cursor: Option<u32>,
    },
    /// Output VC allocated; body flits follow the head.
    Active {
        out: OutKind,
        out_vc: u8,
        next_cursor: Option<u32>,
    },
}

/// Streaming state of a source queue into the injection port.
#[derive(Clone, Copy, Debug)]
struct InjectionProgress {
    vc: u8,
    remaining: usize,
}

/// Per-packet bookkeeping, indexed by the arena slot the packet's flits
/// carry. Slots are recycled when the tail ejects, so the arena stays as
/// small as the peak number of live packets — no hashing, no growth.
#[derive(Clone, Copy, Debug, Default)]
struct PacketSlot {
    /// Cycle the head flit entered the network (injection-port write).
    entry_cycle: u64,
    /// Whether the packet was generated during measurement (latency and
    /// delivery statistics follow only tracked packets).
    tracked: bool,
}

// ---------------------------------------------------------------------------
// Shared-state cells
//
// The parallel schedule partitions every per-element array by *node
// ownership*: during a phase, each element is accessed by exactly one
// worker (the proofs live on the phase methods below). `ShardVec` and
// `SlotVec` make that discipline expressible: they hand out element
// references through `&self` so disjoint elements can be touched from
// different scoped threads, and the `unsafe` contract is exactly the
// ownership protocol.
// ---------------------------------------------------------------------------

/// A fixed-length array of interior-mutable elements shared across
/// engine workers. Element access is unsynchronized; callers must
/// guarantee that no element is aliased mutably (the engine's phase
/// protocol assigns every element to exactly one worker at a time).
struct ShardVec<T> {
    cells: Vec<UnsafeCell<T>>,
}

// SAFETY: `ShardVec` only hands out element references under the
// caller-guaranteed disjointness protocol; with `T: Send` the elements
// may be mutated from whichever thread owns them for the phase.
unsafe impl<T: Send> Sync for ShardVec<T> {}

impl<T> Default for ShardVec<T> {
    fn default() -> Self {
        ShardVec { cells: Vec::new() }
    }
}

impl<T> ShardVec<T> {
    fn from_fn(n: usize, mut f: impl FnMut() -> T) -> Self {
        ShardVec {
            cells: (0..n).map(|_| UnsafeCell::new(f())).collect(),
        }
    }

    fn from_cells(cells: Vec<UnsafeCell<T>>) -> Self {
        ShardVec { cells }
    }

    fn into_cells(self) -> Vec<UnsafeCell<T>> {
        self.cells
    }

    /// # Safety
    ///
    /// No thread may hold a mutable reference to element `i`.
    #[inline]
    unsafe fn get(&self, i: usize) -> &T {
        debug_assert!(i < self.cells.len());
        &*self.cells[i].get()
    }

    /// # Safety
    ///
    /// The caller must be the unique accessor of element `i` for the
    /// lifetime of the returned reference (the phase ownership protocol).
    #[inline]
    #[allow(clippy::mut_from_ref)]
    unsafe fn get_mut(&self, i: usize) -> &mut T {
        debug_assert!(i < self.cells.len());
        &mut *self.cells[i].get()
    }

    /// Clones every element out. `&mut self` proves exclusivity, so this
    /// needs no unsafe contract.
    fn snapshot(&mut self) -> Vec<T>
    where
        T: Clone,
    {
        self.cells.iter_mut().map(|c| c.get_mut().clone()).collect()
    }
}

/// The growable packet-slot arena, shared like a [`ShardVec`] but
/// appendable from `&self` while workers are parked between cycles.
/// Element access goes through a cached raw data pointer so no `&mut
/// Vec` (which would assert unique access to *all* slots) is ever
/// materialized while workers hold element references.
struct SlotVec {
    vec: UnsafeCell<Vec<PacketSlot>>,
    data: Cell<*mut PacketSlot>,
    len: Cell<usize>,
}

// SAFETY: same disjoint-element protocol as `ShardVec`; `push` is
// restricted to the serial windows between cycle barriers.
unsafe impl Sync for SlotVec {}

impl SlotVec {
    fn new() -> SlotVec {
        SlotVec {
            vec: UnsafeCell::new(Vec::new()),
            data: Cell::new(std::ptr::null_mut()),
            len: Cell::new(0),
        }
    }

    /// # Safety
    ///
    /// Only callable while no thread holds any slot reference (the
    /// serial window of the cycle loop): growth may reallocate and
    /// invalidate every element pointer.
    unsafe fn push(&self, slot: PacketSlot) -> u32 {
        let v = &mut *self.vec.get();
        let id = u32::try_from(v.len()).expect("live packets exceed u32 slots");
        v.push(slot);
        self.data.set(v.as_mut_ptr());
        self.len.set(v.len());
        id
    }

    /// # Safety
    ///
    /// `i` must be in bounds and no thread may be mutating slot `i`.
    #[inline]
    unsafe fn slot(&self, i: usize) -> PacketSlot {
        debug_assert!(i < self.len.get());
        *self.data.get().add(i)
    }

    /// # Safety
    ///
    /// `i` must be in bounds and the caller must be the unique accessor
    /// of slot `i` for the lifetime of the returned reference.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    unsafe fn slot_mut(&self, i: usize) -> &mut PacketSlot {
        debug_assert!(i < self.len.get());
        &mut *self.data.get().add(i)
    }
}

// ---------------------------------------------------------------------------
// Cycle synchronization
// ---------------------------------------------------------------------------

/// A reusable generation-counting barrier. Parties spin briefly (the
/// cheap case: all workers active on separate cores), then fall back to
/// a condvar (the polite case: oversubscribed machines).
struct CycleBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl CycleBarrier {
    fn new(parties: usize) -> CycleBarrier {
        CycleBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Last arriver: reset the count for the next round (late
            // re-arrivers RMW the latest value, so Relaxed suffices),
            // then open the generation under the lock so condvar
            // waiters cannot miss the wakeup.
            self.arrived.store(0, Ordering::Relaxed);
            let _held = self.lock.lock().expect("barrier mutex");
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            self.cv.notify_all();
        } else {
            for _ in 0..128 {
                if self.generation.load(Ordering::Acquire) != gen {
                    return;
                }
                std::hint::spin_loop();
            }
            let mut guard = self.lock.lock().expect("barrier mutex");
            while self.generation.load(Ordering::Acquire) == gen {
                guard = self.cv.wait(guard).expect("barrier condvar");
            }
        }
    }
}

/// Spin-then-yield wait until a wavefront row counter reaches `target`.
#[inline]
fn wait_row(progress: &AtomicU64, target: u64) {
    let mut spins = 0u32;
    while progress.load(Ordering::Acquire) < target {
        spins += 1;
        if spins < 64 {
            std::hint::spin_loop();
        } else {
            // On oversubscribed (or single-core) machines the producer
            // band needs the CPU to make the row progress we wait for.
            std::thread::yield_now();
        }
    }
}

/// One contiguous column range `[x0, x1)` of a row-major grid.
#[derive(Clone, Copy, Debug)]
struct Band {
    x0: usize,
    x1: usize,
}

/// Per-cycle facts every phase needs.
#[derive(Clone, Copy, Debug)]
struct CycleCtx {
    cycle: u64,
    measuring: bool,
}

/// What the main thread publishes to workers before barrier A.
#[derive(Clone, Copy, Debug)]
struct CycleCtl {
    ctx: CycleCtx,
    /// Monotone base for the wavefront row counters this cycle
    /// (`row_progress[band]` stores `row_base + row + 1`; monotonicity
    /// means the counters never need resetting).
    row_base: u64,
    done: bool,
}

/// The control word, written by the main thread while workers are
/// parked at barrier A and read by workers right after it.
struct CtlCell(UnsafeCell<CycleCtl>);

// SAFETY: writes and reads are separated by the cycle barrier.
unsafe impl Sync for CtlCell {}

impl CtlCell {
    fn new() -> CtlCell {
        CtlCell(UnsafeCell::new(CycleCtl {
            ctx: CycleCtx {
                cycle: 0,
                measuring: false,
            },
            row_base: 0,
            done: false,
        }))
    }

    /// # Safety
    ///
    /// Only callable while all workers are parked at barrier A.
    unsafe fn publish(&self, ctl: CycleCtl) {
        *self.0.get() = ctl;
    }

    /// # Safety
    ///
    /// Only callable after passing barrier A (which orders the read
    /// after the main thread's `publish`).
    unsafe fn read(&self) -> CycleCtl {
        *self.0.get()
    }
}

// ---------------------------------------------------------------------------
// Per-worker state
// ---------------------------------------------------------------------------

/// Scratch buffers reused across cycles so the per-cycle loop never
/// allocates. Taken out of the worker box while `switch_node` iterates
/// (to sidestep aliasing with the `&mut WorkerBox` the move/eject calls
/// need) and put back when the node finishes.
#[derive(Clone, Debug, Default)]
struct SwitchScratch {
    /// `port_forwarded` flags, sized to the widest router.
    port_forwarded: Vec<bool>,
    /// Per output-link candidate buckets `(input port, buffer index)`,
    /// indexed by the link's position in its node's out-link list and
    /// filled in input-buffer order (the arbitration order).
    forward: Vec<Vec<(u32, u32)>>,
    /// Eject candidates in input-buffer order.
    eject: Vec<(u32, u32)>,
    /// A bucket filtered down to this instant's eligible candidates.
    eligible: Vec<(u32, u32)>,
    /// The current node's output links.
    outs: Vec<LinkId>,
}

/// Everything one band worker accumulates during a cycle. Merged by the
/// main thread between barrier C and the next barrier A, in fixed band
/// order — which makes the merged streams identical to the serial
/// engine's regardless of thread count.
#[derive(Clone, Debug, Default)]
struct WorkerBox {
    scratch: SwitchScratch,
    /// Flits sent this cycle: (flat destination buffer, flit), in this
    /// band's serial discovery order.
    outbox: Vec<(u32, Flit)>,
    /// Packet slots freed by tail ejections this cycle.
    released: Vec<u32>,
    /// Flits moved from source queues into injection buffers.
    injected_flits: u64,
    /// Flits ejected (all of them, measured or not).
    ejected_flits: u64,
    /// Measured-window ejected flits.
    delivered_flits: u64,
    /// Measured-window delivered packets (tail ejections).
    delivered_packets: u64,
    /// Whether any flit moved in this band this cycle.
    progress: bool,
}

impl WorkerBox {
    fn new(max_ports: usize, max_out_degree: usize, vcs: usize) -> WorkerBox {
        WorkerBox {
            scratch: SwitchScratch {
                port_forwarded: vec![false; max_ports],
                forward: vec![Vec::with_capacity(max_ports * vcs); max_out_degree],
                eject: Vec::with_capacity(max_ports * vcs),
                eligible: Vec::with_capacity(max_ports * vcs),
                outs: Vec::with_capacity(max_out_degree),
            },
            ..WorkerBox::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Cross-case arena reuse
// ---------------------------------------------------------------------------

/// Flit-queue allocations kept alive between simulator instances on the
/// same thread. A sweep worker churning through hundreds of cases reuses
/// the previous case's `VecDeque` heap buffers instead of reallocating
/// `(links + nodes) * vcs` of them per case.
#[derive(Default)]
struct EngineArena {
    bufs: Vec<UnsafeCell<VecDeque<Flit>>>,
    srcs: Vec<UnsafeCell<VecDeque<Flit>>>,
}

thread_local! {
    static ARENA: RefCell<EngineArena> = RefCell::new(EngineArena::default());
}

// ---------------------------------------------------------------------------
// Shared router state
// ---------------------------------------------------------------------------

/// All router state touched by the per-node phase methods, stored as
/// structure-of-arrays so that cross-node accesses (a router claiming a
/// VC in its *downstream* neighbor's buffer, or checking its occupancy)
/// land in different arrays than the fields the neighbor itself mutates.
///
/// Buffer indexing matches the previous engine: the buffer downstream of
/// link `l` on VC `v` is index `l * vcs + v`; node `n`'s injection-port
/// buffer on VC `v` is `inj_base + n * vcs + v`.
///
/// # Phase ownership protocol (what makes the `unsafe` sound)
///
/// * **Route** (fully node-parallel): node `n` reads `flits[r].front()`
///   and rewrites `state[r]` only for its own input buffers `r`, and
///   writes `owner[d]` only for buffers `d` downstream of its own
///   out-links. Every buffer has exactly one upstream router, so no two
///   nodes touch the same element, and `state`/`owner` are distinct
///   arrays, so the downstream node's own route pass never aliases.
/// * **Switch** (row wavefront): node `n` pops its own input buffers and
///   reads `flits[d].len() + transit_counts[d]` of its downstream
///   buffers. The wavefront orders every horizontally adjacent pair
///   (the only cross-band neighbors) exactly as the serial node order;
///   vertical neighbors share a band and run on one thread.
/// * **Inject** (fully node-parallel): touches only node-local state
///   (source queue, injection buffers, `node_occ[n]`) plus the
///   `entry_cycle` of a packet that is only now entering the network —
///   which therefore cannot be concurrently ejecting anywhere.
/// * **Stats**: a flow ejects only at its single route endpoint, so
///   `stats[flow]` is written by exactly one node (one band).
/// * Everything else (generation, arrival delivery, outbox merging)
///   runs on the main thread while workers are parked at a barrier.
struct Shared {
    /// Flit queues per VC buffer (link buffers, then injection buffers).
    flits: ShardVec<VecDeque<Flit>>,
    /// Packet currently allowed to occupy each buffer (atomic VCs).
    owner: ShardVec<Option<u32>>,
    /// RC/VA control state per buffer.
    state: ShardVec<PortState>,
    /// Undelivered flits already bound for each link buffer (claims
    /// buffer slots ahead of arrival). Link buffers only.
    transit_counts: ShardVec<u8>,
    /// Number of non-empty input buffers per node. Nodes at zero are
    /// skipped by the route and switch phases — an exact optimization,
    /// since arbiters only advance when a candidate exists.
    node_occ: ShardVec<u32>,
    /// Per-node source queues (whole packets, flit by flit).
    src_queues: ShardVec<VecDeque<Flit>>,
    inj_progress: ShardVec<Option<InjectionProgress>>,
    rr_out: ShardVec<usize>,
    rr_eject: ShardVec<usize>,
    link_flits: ShardVec<u64>,
    stats: ShardVec<FlowStats>,
    slots: SlotVec,

    /// CSR of each node's input buffers in arbitration order (every
    /// in-link's VCs, then the injection VCs): node `n` reads
    /// `node_inputs[node_input_off[n] .. node_input_off[n + 1]]`.
    node_inputs: Vec<u32>,
    node_input_off: Vec<u32>,
    /// Each link's position within its source node's out-link list.
    link_out_pos: Vec<u8>,
    /// Owning (downstream) node of every buffer.
    buf_node: Vec<u32>,
    /// Offset of the first injection-port buffer.
    inj_base: u32,

    vcs: usize,
    buffer_depth: usize,
    local_bandwidth: usize,
    packet_len: usize,
}

impl Shared {
    /// RC + VA for every input buffer of node `n`.
    ///
    /// # Safety
    ///
    /// Route-phase ownership: the caller must be the unique worker
    /// processing node `n` this phase, with no concurrent switch or
    /// serial-window activity.
    unsafe fn route_node<T: RouteTables>(&self, n: usize, tables: &T) {
        let node = NodeId(n as u32);
        let start = self.node_input_off[n] as usize;
        let end = self.node_input_off[n + 1] as usize;
        for &r in &self.node_inputs[start..end] {
            let r = r as usize;
            let Some(front) = self.flits.get(r).front().copied() else {
                continue;
            };
            let state = self.state.get_mut(r);
            // RC: a head flit at the front of an Idle buffer gets routed.
            if *state == PortState::Idle {
                debug_assert!(front.is_head, "body flit at front of idle buffer");
                *state = match front.cursor {
                    None => PortState::Active {
                        out: OutKind::Eject,
                        out_vc: 0,
                        next_cursor: None,
                    },
                    Some(idx) => {
                        let entry = tables.entry(node, idx);
                        PortState::Routed {
                            out: entry.out_link,
                            mask: entry.vcs.0,
                            next_cursor: entry.next_index,
                        }
                    }
                };
            }
            // VA: try to claim a downstream VC within the mask.
            if let PortState::Routed {
                out,
                mask,
                next_cursor,
            } = *state
            {
                let out_base = out.index() * self.vcs;
                let chosen = (0..self.vcs as u8)
                    .filter(|v| mask & (1 << v) != 0)
                    .find(|&v| self.owner.get(out_base + v as usize).is_none());
                if let Some(v) = chosen {
                    *self.owner.get_mut(out_base + v as usize) = Some(front.packet);
                    *state = PortState::Active {
                        out: OutKind::Forward(out),
                        out_vc: v,
                        next_cursor,
                    };
                }
            }
        }
    }

    /// SA + ST for node `n`.
    ///
    /// One pass over the node's input buffers buckets forward candidates
    /// per output link and collects eject candidates; the per-output and
    /// per-eject arbitration then works off the buckets. This visits each
    /// buffer once instead of once per output channel, and is exactly
    /// equivalent to rescanning: within a node, a move on output `X` can
    /// only change `X`'s own downstream occupancy (checked before any
    /// move) and the mover's port flag (filtered at pick time), and
    /// ejections only mutate the ejecting buffer itself.
    ///
    /// # Safety
    ///
    /// Switch-phase ownership: the caller must be the unique worker
    /// processing node `n`, and the row wavefront must have retired both
    /// horizontal neighbors' conflicting rows (or the run is serial).
    unsafe fn switch_node(&self, n: usize, index: &TopoIndex, ctx: CycleCtx, wb: &mut WorkerBox) {
        let node = NodeId(n as u32);
        let vcs = self.vcs;
        let ports_start = self.node_input_off[n] as usize;
        let ports_end = self.node_input_off[n + 1] as usize;
        let num_ports = (ports_end - ports_start) / vcs;
        // Detach the scratch so the arbitration loops can pass `wb`
        // mutably to `move_flit`/`eject_flit`.
        let mut scratch = std::mem::take(&mut wb.scratch);
        scratch.port_forwarded[..num_ports].fill(false);
        scratch.outs.clear();
        scratch.outs.extend_from_slice(index.out_links(node));
        for bucket in &mut scratch.forward[..scratch.outs.len()] {
            bucket.clear();
        }
        scratch.eject.clear();

        // Single scan: sort every occupied, allocated buffer front into
        // its output's bucket (space permitting) or the eject list, in
        // input order.
        for bi in 0..ports_end - ports_start {
            let r = self.node_inputs[ports_start + bi];
            if self.flits.get(r as usize).is_empty() {
                continue;
            }
            match *self.state.get(r as usize) {
                PortState::Active {
                    out: OutKind::Forward(l),
                    out_vc,
                    ..
                } => {
                    let dst = l.index() * vcs + out_vc as usize;
                    let occupied =
                        self.flits.get(dst).len() + *self.transit_counts.get(dst) as usize;
                    if occupied < self.buffer_depth {
                        scratch.forward[self.link_out_pos[l.index()] as usize]
                            .push(((bi / vcs) as u32, r));
                    }
                }
                PortState::Active {
                    out: OutKind::Eject,
                    ..
                } => scratch.eject.push(((bi / vcs) as u32, r)),
                _ => {}
            }
        }

        // Forward outputs: one flit per output channel and per input
        // port per cycle.
        for (oi, &out) in scratch.outs.iter().enumerate() {
            scratch.eligible.clear();
            scratch.eligible.extend(
                scratch.forward[oi]
                    .iter()
                    .copied()
                    .filter(|&(port, _)| !scratch.port_forwarded[port as usize]),
            );
            if scratch.eligible.is_empty() {
                continue;
            }
            let rr = self.rr_out.get_mut(out.index());
            let pick = *rr % scratch.eligible.len();
            *rr = rr.wrapping_add(1);
            let (port, r) = scratch.eligible[pick];
            scratch.port_forwarded[port as usize] = true;
            self.move_flit(r as usize, out, ctx, wb);
        }

        // Ejection: up to local_bandwidth flits per cycle (the 4×
        // resource channel); independent of the forward crossbar.
        // After each ejection only the picked buffer can drop out of
        // the candidate list, so the list shrinks in place.
        let mut budget = self.local_bandwidth;
        while budget > 0 && !scratch.eject.is_empty() {
            let rr = self.rr_eject.get_mut(n);
            let pick = *rr % scratch.eject.len();
            *rr = rr.wrapping_add(1);
            let (_, r) = scratch.eject[pick];
            self.eject_flit(r as usize, ctx, wb);
            budget -= 1;
            let still_candidate = !self.flits.get(r as usize).is_empty()
                && matches!(
                    *self.state.get(r as usize),
                    PortState::Active {
                        out: OutKind::Eject,
                        ..
                    }
                );
            if !still_candidate {
                scratch.eject.remove(pick);
            }
        }
        wb.scratch = scratch;
    }

    /// # Safety
    ///
    /// Switch-phase ownership of node `buf_node[r]` (see `switch_node`).
    unsafe fn move_flit(&self, r: usize, out: LinkId, ctx: CycleCtx, wb: &mut WorkerBox) {
        let state = self.state.get_mut(r);
        let (out_vc, next_cursor) = match *state {
            PortState::Active {
                out_vc,
                next_cursor,
                ..
            } => (out_vc, next_cursor),
            _ => unreachable!("move_flit on non-active buffer"),
        };
        let queue = self.flits.get_mut(r);
        let mut flit = queue.pop_front().expect("candidate had a front flit");
        if flit.is_head {
            flit.cursor = next_cursor;
        }
        if flit.is_tail {
            // The vacated buffer frees its ownership and control state.
            *self.owner.get_mut(r) = None;
            *state = PortState::Idle;
        }
        if queue.is_empty() {
            *self.node_occ.get_mut(self.buf_node[r] as usize) -= 1;
        }
        let dst = out.index() * self.vcs + out_vc as usize;
        *self.transit_counts.get_mut(dst) += 1;
        wb.outbox.push((dst as u32, flit));
        if ctx.measuring {
            *self.link_flits.get_mut(out.index()) += 1;
        }
        wb.progress = true;
    }

    /// # Safety
    ///
    /// Switch-phase ownership of node `buf_node[r]` (see `switch_node`);
    /// additionally relies on each flow ejecting at a single node for
    /// the `stats` write.
    unsafe fn eject_flit(&self, r: usize, ctx: CycleCtx, wb: &mut WorkerBox) {
        let queue = self.flits.get_mut(r);
        let flit = queue.pop_front().expect("candidate had a front flit");
        if flit.is_tail {
            *self.owner.get_mut(r) = None;
            *self.state.get_mut(r) = PortState::Idle;
        }
        if queue.is_empty() {
            *self.node_occ.get_mut(self.buf_node[r] as usize) -= 1;
        }
        wb.ejected_flits += 1;
        if ctx.measuring {
            wb.delivered_flits += 1;
        }
        if flit.is_tail {
            if ctx.measuring {
                self.stats.get_mut(flit.flow.index()).delivered += 1;
                wb.delivered_packets += 1;
            }
            let slot = self.slots.slot(flit.packet as usize);
            wb.released.push(flit.packet);
            if slot.tracked {
                let latency = ctx.cycle - slot.entry_cycle;
                let fs = self.stats.get_mut(flit.flow.index());
                fs.latency_sum += latency;
                fs.latency_count += 1;
                fs.latency_max = fs.latency_max.max(latency);
                fs.histogram.record(latency);
            }
        }
        wb.progress = true;
    }

    /// Moves flits from node `n`'s source queue into its injection-port
    /// buffers.
    ///
    /// # Safety
    ///
    /// Inject-phase ownership of node `n` (all state touched is local
    /// to the node, plus the entry stamp of a packet entering here).
    unsafe fn inject_node(&self, n: usize, ctx: CycleCtx, wb: &mut WorkerBox) {
        let vcs = self.vcs;
        let inj_base = self.inj_base as usize;
        let src = self.src_queues.get_mut(n);
        let progress_slot = self.inj_progress.get_mut(n);
        let mut budget = self.local_bandwidth;
        while budget > 0 && !src.is_empty() {
            match *progress_slot {
                Some(InjectionProgress { vc, remaining }) => {
                    let b = inj_base + n * vcs + vc as usize;
                    let queue = self.flits.get_mut(b);
                    if queue.len() >= self.buffer_depth {
                        break;
                    }
                    let flit = src.pop_front().expect("nonempty");
                    if queue.is_empty() {
                        *self.node_occ.get_mut(n) += 1;
                    }
                    queue.push_back(flit);
                    wb.injected_flits += 1;
                    wb.progress = true;
                    budget -= 1;
                    *progress_slot = (remaining > 1).then_some(InjectionProgress {
                        vc,
                        remaining: remaining - 1,
                    });
                }
                None => {
                    let head = *src.front().expect("nonempty");
                    debug_assert!(head.is_head, "packet streams are contiguous");
                    let chosen = (0..vcs as u8).find(|&v| {
                        let b = inj_base + n * vcs + v as usize;
                        self.owner.get(b).is_none() && self.flits.get(b).len() < self.buffer_depth
                    });
                    let Some(v) = chosen else { break };
                    let flit = src.pop_front().expect("nonempty");
                    let b = inj_base + n * vcs + v as usize;
                    *self.owner.get_mut(b) = Some(head.packet);
                    let queue = self.flits.get_mut(b);
                    if queue.is_empty() {
                        *self.node_occ.get_mut(n) += 1;
                    }
                    queue.push_back(flit);
                    wb.injected_flits += 1;
                    self.slots.slot_mut(head.packet as usize).entry_cycle = ctx.cycle;
                    wb.progress = true;
                    budget -= 1;
                    if self.packet_len > 1 {
                        *progress_slot = Some(InjectionProgress {
                            vc: v,
                            remaining: self.packet_len - 1,
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Serial-window state (generation, pipeline, counters)
// ---------------------------------------------------------------------------

/// Engine state only ever touched on the main thread, in the serial
/// windows between cycle barriers (or anywhere in a serial run).
struct SerState {
    rng: StdRng,
    var_states: Vec<VariationState>,
    burst_states: Vec<BurstState>,
    /// Recycled packet-slot ids.
    free_slots: Vec<u32>,
    /// Arrivals in flight through the router pipeline: the back slot is
    /// this cycle's sends, the front slot delivers after
    /// `pipeline_latency` cycles.
    in_transit: VecDeque<Vec<(u32, Flit)>>,
    /// Emptied send vectors kept for reuse (zero steady-state allocs).
    spare_sends: Vec<Vec<(u32, Flit)>>,
    in_network_flits: u64,
    /// Flits sitting in source queues, waiting to be injected.
    backlog_flits: u64,
    cycle: u64,
    last_progress: u64,
    generated_total: u64,
    delivered_total: u64,
    delivered_flits: u64,
}

impl SerState {
    fn measuring(&self, config: &SimConfig) -> bool {
        self.cycle >= config.warmup && self.cycle < config.warmup + config.measurement
    }

    /// True when the network is provably empty and the router phases can
    /// be skipped outright (the fast-forward condition). `in_network`
    /// covers VC buffers *and* the hop pipeline (flits in transit were
    /// injected but not yet ejected); `backlog` covers source queues.
    fn network_empty(&self) -> bool {
        self.in_network_flits == 0 && self.backlog_flits == 0
    }

    /// Packet generation for one cycle. Consumes the RNG stream
    /// identically on every execution path (serial, parallel,
    /// fast-forwarded), which is what keeps reports byte-identical.
    ///
    /// # Safety
    ///
    /// Serial window: all workers parked at a barrier (or serial run).
    unsafe fn generate<T: RouteTables>(
        &mut self,
        sh: &Shared,
        flows: &FlowSet,
        traffic: &TrafficSpec,
        tables: &T,
        config: &SimConfig,
    ) {
        let measuring = self.measuring(config);
        // Phase scaling is deterministic (no RNG), so the default
        // schedule-free path multiplies by exactly 1.0 and the seeded
        // packet stream is bit-identical to the pre-schedule engine.
        let phase_scale = traffic
            .phases
            .as_ref()
            .map_or(1.0, |s| s.scale_at(self.cycle));
        for i in 0..flows.len() {
            let flow = flows.flow(FlowId(i as u32));
            let mut p = traffic.rates[i] * phase_scale;
            if let Some(var) = traffic.variation {
                p *= self.var_states[i].step(&var, &mut self.rng);
            }
            if let InjectionProcess::OnOff(burst) = traffic.injection {
                p = if self.burst_states[i].step(&burst, &mut self.rng) {
                    p * burst.on_multiplier()
                } else {
                    0.0
                };
            }
            while p > 0.0 {
                let fire = if p >= 1.0 { true } else { self.rng.gen_bool(p) };
                if fire {
                    let slot = PacketSlot {
                        entry_cycle: 0,
                        tracked: measuring,
                    };
                    let packet = match self.free_slots.pop() {
                        Some(id) => {
                            *sh.slots.slot_mut(id as usize) = slot;
                            id
                        }
                        None => sh.slots.push(slot),
                    };
                    let len = config.packet_len;
                    let cursor = Some(tables.initial_cursor(flow.id));
                    let queue = sh.src_queues.get_mut(flow.src.index());
                    for k in 0..len {
                        queue.push_back(Flit {
                            packet,
                            flow: flow.id,
                            is_head: k == 0,
                            is_tail: k == len - 1,
                            cursor: if k == 0 { cursor } else { None },
                        });
                    }
                    self.backlog_flits += len as u64;
                    if measuring {
                        sh.stats.get_mut(flow.id.index()).generated += 1;
                        self.generated_total += 1;
                    }
                }
                p -= 1.0;
            }
        }
    }

    /// End-of-cycle bookkeeping: merge the worker boxes in fixed band
    /// order, advance the hop pipeline, deliver arrivals. Returns
    /// whether any flit moved this cycle.
    ///
    /// # Safety
    ///
    /// Serial window: all workers parked at a barrier (or serial run).
    unsafe fn finish_cycle(
        &mut self,
        sh: &Shared,
        boxes: &ShardVec<WorkerBox>,
        bands: usize,
        pipeline_latency: usize,
    ) -> bool {
        let mut progress = false;
        let mut sends = self.spare_sends.pop().unwrap_or_default();
        for b in 0..bands {
            let wb = boxes.get_mut(b);
            progress |= std::mem::take(&mut wb.progress);
            sends.append(&mut wb.outbox);
            self.free_slots.append(&mut wb.released);
            self.in_network_flits += wb.injected_flits;
            self.in_network_flits -= wb.ejected_flits;
            self.backlog_flits -= wb.injected_flits;
            self.delivered_flits += wb.delivered_flits;
            self.delivered_total += wb.delivered_packets;
            wb.injected_flits = 0;
            wb.ejected_flits = 0;
            wb.delivered_flits = 0;
            wb.delivered_packets = 0;
        }
        // This cycle's sends enter the pipeline; the oldest slot lands.
        self.in_transit.push_back(sends);
        if self.in_transit.len() >= pipeline_latency {
            let mut arrivals = self
                .in_transit
                .pop_front()
                .expect("nonempty by length check");
            for (buf, flit) in arrivals.drain(..) {
                let b = buf as usize;
                *sh.transit_counts.get_mut(b) -= 1;
                let queue = sh.flits.get_mut(b);
                if queue.is_empty() {
                    *sh.node_occ.get_mut(sh.buf_node[b] as usize) += 1;
                }
                queue.push_back(flit);
            }
            // Hand the emptied Vec back as a future send buffer so the
            // pipeline churns zero allocations at steady state.
            self.spare_sends.push(arrivals);
        }
        progress
    }
}

// ---------------------------------------------------------------------------
// Parallel drivers
// ---------------------------------------------------------------------------

/// Everything the band workers share by reference for the whole run.
struct ParCtx<'e, T: RouteTables> {
    sh: &'e Shared,
    boxes: &'e ShardVec<WorkerBox>,
    index: &'e TopoIndex,
    tables: &'e T,
    bands: &'e [Band],
    /// Wavefront row counters, one per band: `row_base + row + 1` once
    /// the band finished switching that row this cycle (monotone, never
    /// reset).
    rows: Vec<AtomicU64>,
    barrier: CycleBarrier,
    ctl: CtlCell,
    width: usize,
    height: usize,
}

/// One band's route/switch/inject work for a published cycle. Called
/// between barriers A and C by the main thread (band 0) and every
/// worker (bands 1..); contains barrier B between route and switch.
///
/// # Safety
///
/// `b` must be this caller's unique band index and the cycle protocol
/// (barrier A passed, `ctl` published) must be in force.
unsafe fn band_cycle<T: RouteTables>(pc: &ParCtx<'_, T>, b: usize, ctx: CycleCtx, row_base: u64) {
    let band = pc.bands[b];
    let sh = pc.sh;
    let wb = pc.boxes.get_mut(b);
    // Route: node-parallel, no intra-phase ordering needed.
    for y in 0..pc.height {
        let row = y * pc.width;
        for x in band.x0..band.x1 {
            let n = row + x;
            if *sh.node_occ.get(n) > 0 {
                sh.route_node(n, pc.tables);
            }
        }
    }
    pc.barrier.wait(); // barrier B: route -> switch
                       // Switch: row wavefront. Band b enters row y only after band b-1
                       // has left it, which orders all horizontally adjacent neighbor
                       // pairs exactly as the serial schedule (including torus wraps, by
                       // transitivity along the row).
    for y in 0..pc.height {
        if b > 0 {
            wait_row(&pc.rows[b - 1], row_base + y as u64 + 1);
        }
        let row = y * pc.width;
        for x in band.x0..band.x1 {
            let n = row + x;
            if *sh.node_occ.get(n) > 0 {
                sh.switch_node(n, pc.index, ctx, wb);
            }
        }
        pc.rows[b].store(row_base + y as u64 + 1, Ordering::Release);
    }
    // Inject: node-local, safe to overlap with other bands' switch.
    for y in 0..pc.height {
        let row = y * pc.width;
        for x in band.x0..band.x1 {
            let n = row + x;
            if !sh.src_queues.get(n).is_empty() {
                sh.inject_node(n, ctx, wb);
            }
        }
    }
}

/// A band worker: wait for the cycle to be published, run the band,
/// wait out the merge window; exit when `done` is published.
fn worker_loop<T: RouteTables>(pc: &ParCtx<'_, T>, b: usize) {
    loop {
        pc.barrier.wait(); // barrier A: cycle published
                           // SAFETY: barrier A orders this read after the main thread's
                           // publish; band_cycle runs under the band ownership protocol.
        unsafe {
            let ctl = pc.ctl.read();
            if ctl.done {
                break;
            }
            band_cycle(pc, b, ctl.ctx, ctl.row_base);
        }
        pc.barrier.wait(); // barrier C: effects visible to the merge
    }
}

/// Splits a row-major grid into `threads` contiguous column bands.
/// Returns a single band (the serial schedule) for non-grid topologies,
/// for `threads == 1`, and for grids narrower than the thread count
/// would allow. The layout is verified (node id `y * width + x`), so
/// hand-built topologies that merely claim a grid kind fall back too.
fn make_bands(topo: &Topology, threads: usize) -> Vec<Band> {
    let width = topo.width() as usize;
    let height = topo.height() as usize;
    let serial = vec![Band { x0: 0, x1: width }];
    let k = threads.min(width).max(1);
    if k <= 1 {
        return serial;
    }
    match topo.kind() {
        TopologyKind::Mesh2D | TopologyKind::Torus2D | TopologyKind::Ring => {}
        _ => return serial,
    }
    if width * height != topo.num_nodes() {
        return serial;
    }
    for y in 0..height {
        for x in 0..width {
            if topo.node_at(x as u16, y as u16) != Some(NodeId((y * width + x) as u32)) {
                return serial;
            }
        }
    }
    (0..k)
        .map(|b| Band {
            x0: b * width / k,
            x1: (b + 1) * width / k,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The simulator
// ---------------------------------------------------------------------------

/// The simulator. Construct with [`Simulator::new`], execute with
/// [`Simulator::run`].
///
/// All per-cycle state lives in flat arenas keyed by the dense
/// `NodeId`/`LinkId`/VC indices of a [`TopoIndex`] snapshot: VC buffers
/// as structure-of-arrays (`link * vcs + vc`, then injection ports),
/// per-packet bookkeeping in a recycled slot arena, and per-node
/// input-port lists in a precomputed CSR. The cycle loop performs no
/// hashing and no allocation, skips routers with no occupied input
/// buffer, fast-forwards provably idle cycles, and (on grid topologies
/// with `engine_threads > 1`) splits the mesh into column bands run by
/// scoped worker threads — all with byte-identical reports for a fixed
/// seed (see the module docs for the determinism argument).
pub struct Simulator<'a, T: RouteTables + Clone = NodeTables> {
    topo: &'a Topology,
    flows: &'a FlowSet,
    config: SimConfig,
    /// Borrowed when a caller (a `RoutePlan` evaluation) already holds
    /// compiled tables; owned when built here. The hot path reads
    /// through `Deref` either way.
    tables: std::borrow::Cow<'a, T>,
    traffic: TrafficSpec,
    index: TopoIndex,
    /// Column bands of the parallel schedule; a single band runs serial.
    bands: Vec<Band>,
    sh: Shared,
    boxes: ShardVec<WorkerBox>,
    ser: SerState,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator for `flows` routed by `routes` under `traffic`.
    ///
    /// # Errors
    ///
    /// [`SimError`] when routes, flows, traffic and VC configuration are
    /// inconsistent.
    pub fn new(
        topo: &'a Topology,
        flows: &'a FlowSet,
        routes: &RouteSet,
        traffic: TrafficSpec,
        config: SimConfig,
    ) -> Result<Simulator<'a>, SimError> {
        let tables = NodeTables::build(topo, routes);
        Simulator::assemble(
            topo,
            flows,
            routes,
            std::borrow::Cow::Owned(tables),
            traffic,
            config,
        )
    }
}

impl<'a, T: RouteTables + Clone + Sync> Simulator<'a, T> {
    /// Like [`Simulator::new`], but borrows `tables` already compiled
    /// from `routes` (e.g. the ones a `RoutePlan` carries, in either the
    /// dense or the compact representation) instead of rebuilding them —
    /// no per-run recompilation *or* copy.
    ///
    /// The caller is responsible for `tables` matching `routes`; table
    /// builds are deterministic and every [`RouteTables`] realization
    /// resolves the same `(out_link, vcs)` per hop, so a plan's compiled
    /// tables reproduce `Simulator::new` behavior bit for bit.
    ///
    /// # Errors
    ///
    /// [`SimError`] when routes, flows, traffic and VC configuration are
    /// inconsistent.
    pub fn with_tables(
        topo: &'a Topology,
        flows: &'a FlowSet,
        routes: &RouteSet,
        tables: &'a T,
        traffic: TrafficSpec,
        config: SimConfig,
    ) -> Result<Simulator<'a, T>, SimError> {
        Simulator::assemble(
            topo,
            flows,
            routes,
            std::borrow::Cow::Borrowed(tables),
            traffic,
            config,
        )
    }

    fn assemble(
        topo: &'a Topology,
        flows: &'a FlowSet,
        routes: &RouteSet,
        tables: std::borrow::Cow<'a, T>,
        traffic: TrafficSpec,
        config: SimConfig,
    ) -> Result<Simulator<'a, T>, SimError> {
        if routes.len() != flows.len() {
            return Err(SimError::RouteCountMismatch {
                flows: flows.len(),
                routes: routes.len(),
            });
        }
        if traffic.rates.len() != flows.len() {
            return Err(SimError::TrafficCountMismatch {
                flows: flows.len(),
                rates: traffic.rates.len(),
            });
        }
        for (i, &r) in traffic.rates.iter().enumerate() {
            if !(r.is_finite() && r >= 0.0) {
                return Err(SimError::BadRate { flow: i, rate: r });
            }
        }
        for route in routes.iter() {
            for hop in &route.hops {
                if hop.vcs.iter().any(|v| v >= config.vcs) {
                    return Err(SimError::VcOutOfRange { vcs: config.vcs });
                }
            }
        }
        let index = TopoIndex::new(topo);
        let nl = topo.num_links();
        let nn = topo.num_nodes();
        let vcs = config.vcs as usize;
        let inj_base = (nl * vcs) as u32;
        let nbufs = (nl + nn) * vcs;
        // Per-node input buffers in arbitration order: each in-link's
        // VCs, then the injection VCs — the order round-robin picks see.
        // In-links are recorded in link-id order, which makes the
        // per-node route pass identical to the old global link scan.
        let mut node_inputs = Vec::with_capacity(nbufs);
        let mut node_input_off = Vec::with_capacity(nn + 1);
        node_input_off.push(0u32);
        for n in topo.node_ids() {
            debug_assert!(
                index
                    .in_links(n)
                    .windows(2)
                    .all(|w| w[0].index() < w[1].index()),
                "in-link order must ascend for route-order equivalence"
            );
            for &l in index.in_links(n) {
                let base = l.index() * vcs;
                node_inputs.extend((base..base + vcs).map(|i| i as u32));
            }
            let base = inj_base as usize + n.index() * vcs;
            node_inputs.extend((base..base + vcs).map(|i| i as u32));
            node_input_off.push(node_inputs.len() as u32);
        }
        let max_ports = index.max_in_degree() + 1;
        let mut link_out_pos = vec![0u8; nl];
        let mut max_out_degree = 0usize;
        for n in topo.node_ids() {
            let outs = index.out_links(n);
            max_out_degree = max_out_degree.max(outs.len());
            for (i, &l) in outs.iter().enumerate() {
                link_out_pos[l.index()] = u8::try_from(i).expect("out degree fits u8");
            }
        }
        let mut buf_node = vec![0u32; nbufs];
        for l in 0..nl {
            let dst = index.link_dst(LinkId(l as u32)).0;
            for v in 0..vcs {
                buf_node[l * vcs + v] = dst;
            }
        }
        for n in 0..nn {
            for v in 0..vcs {
                buf_node[inj_base as usize + n * vcs + v] = n as u32;
            }
        }
        let bands = make_bands(topo, config.engine_threads);
        let boxes = ShardVec::from_fn(bands.len(), || {
            WorkerBox::new(max_ports, max_out_degree, vcs)
        });
        let (mut buf_cells, mut src_cells) = ARENA
            .try_with(|a| {
                let mut arena = a.borrow_mut();
                (
                    std::mem::take(&mut arena.bufs),
                    std::mem::take(&mut arena.srcs),
                )
            })
            .unwrap_or_default();
        resize_cells(&mut buf_cells, nbufs, config.buffer_depth);
        resize_cells(&mut src_cells, nn, 0);
        let sh = Shared {
            flits: ShardVec::from_cells(buf_cells),
            owner: ShardVec::from_fn(nbufs, || None),
            state: ShardVec::from_fn(nbufs, || PortState::Idle),
            transit_counts: ShardVec::from_fn(nl * vcs, || 0u8),
            node_occ: ShardVec::from_fn(nn, || 0u32),
            src_queues: ShardVec::from_cells(src_cells),
            inj_progress: ShardVec::from_fn(nn, || None),
            rr_out: ShardVec::from_fn(nl, || 0usize),
            rr_eject: ShardVec::from_fn(nn, || 0usize),
            link_flits: ShardVec::from_fn(nl, || 0u64),
            stats: ShardVec::from_fn(flows.len(), FlowStats::default),
            slots: SlotVec::new(),
            node_inputs,
            node_input_off,
            link_out_pos,
            buf_node,
            inj_base,
            vcs,
            buffer_depth: config.buffer_depth,
            local_bandwidth: config.local_bandwidth,
            packet_len: config.packet_len,
        };
        let ser = SerState {
            rng: StdRng::seed_from_u64(config.seed),
            var_states: (0..flows.len()).map(|_| VariationState::new()).collect(),
            burst_states: (0..flows.len()).map(|_| BurstState::new()).collect(),
            free_slots: Vec::new(),
            in_transit: VecDeque::new(),
            spare_sends: Vec::new(),
            in_network_flits: 0,
            backlog_flits: 0,
            cycle: 0,
            last_progress: 0,
            generated_total: 0,
            delivered_total: 0,
            delivered_flits: 0,
        };
        Ok(Simulator {
            topo,
            flows,
            config,
            tables,
            traffic,
            index,
            bands,
            sh,
            boxes,
            ser,
        })
    }

    /// Runs warmup + measurement (+ drain) and returns the report.
    pub fn run(&mut self) -> SimReport {
        self.run_timed().0
    }

    /// Like [`Simulator::run`], additionally measuring wall-clock time.
    ///
    /// The report itself stays fully deterministic for a fixed seed —
    /// independent of `engine_threads`, `fast_forward`, and wall-clock
    /// jitter; the timing travels separately so callers (the sweep
    /// harness, CI) can record cycles/sec without perturbing
    /// reproducibility checks.
    pub fn run_timed(&mut self) -> (SimReport, RunTiming) {
        let started = Instant::now();
        let deadlocked = if self.bands.len() > 1 {
            self.run_parallel()
        } else {
            self.run_serial()
        };
        let report = SimReport {
            cycles: self.ser.cycle,
            measured_cycles: self.config.measurement,
            generated_packets: self.ser.generated_total,
            delivered_packets: self.ser.delivered_total,
            delivered_flits: self.ser.delivered_flits,
            per_flow: self.sh.stats.snapshot(),
            link_flits: self.sh.link_flits.snapshot(),
            deadlocked,
        };
        let timing = RunTiming::new(self.ser.cycle, started.elapsed());
        (report, timing)
    }

    /// The single-threaded schedule: one pass per phase in node order.
    fn run_serial(&mut self) -> bool {
        let total = self.config.total_cycles();
        let nn = self.topo.num_nodes();
        let config = &self.config;
        let sh = &self.sh;
        let boxes = &self.boxes;
        let index = &self.index;
        let tables: &T = self.tables.as_ref();
        let flows = self.flows;
        let traffic = &self.traffic;
        let ser = &mut self.ser;
        let mut deadlocked = false;
        while ser.cycle < total {
            // SAFETY: single-threaded run — every access is exclusive.
            unsafe {
                ser.generate(sh, flows, traffic, tables, config);
                if config.fast_forward && ser.network_empty() {
                    ser.cycle += 1;
                    continue;
                }
                let ctx = CycleCtx {
                    cycle: ser.cycle,
                    measuring: ser.measuring(config),
                };
                let wb = boxes.get_mut(0);
                for n in 0..nn {
                    if *sh.node_occ.get(n) > 0 {
                        sh.route_node(n, tables);
                    }
                }
                for n in 0..nn {
                    if *sh.node_occ.get(n) > 0 {
                        sh.switch_node(n, index, ctx, wb);
                    }
                }
                for n in 0..nn {
                    if !sh.src_queues.get(n).is_empty() {
                        sh.inject_node(n, ctx, wb);
                    }
                }
                let progress = ser.finish_cycle(sh, boxes, 1, config.pipeline_latency as usize);
                if progress {
                    ser.last_progress = ser.cycle;
                } else if ser.in_network_flits > 0
                    && ser.cycle - ser.last_progress > config.watchdog
                {
                    deadlocked = true;
                    break;
                }
                ser.cycle += 1;
            }
        }
        deadlocked
    }

    /// The column-band schedule: one scoped worker per band, three
    /// barriers per simulated cycle, serial merge windows in between.
    fn run_parallel(&mut self) -> bool {
        let total = self.config.total_cycles();
        let config = &self.config;
        let sh = &self.sh;
        let boxes = &self.boxes;
        let index = &self.index;
        let tables: &T = self.tables.as_ref();
        let flows = self.flows;
        let traffic = &self.traffic;
        let bands = self.bands.as_slice();
        let width = self.topo.width() as usize;
        let height = self.topo.height() as usize;
        let ser = &mut self.ser;
        let nb = bands.len();
        let pc = ParCtx {
            sh,
            boxes,
            index,
            tables,
            bands,
            rows: (0..nb).map(|_| AtomicU64::new(0)).collect(),
            barrier: CycleBarrier::new(nb),
            ctl: CtlCell::new(),
            width,
            height,
        };
        let mut deadlocked = false;
        std::thread::scope(|scope| {
            for b in 1..nb {
                let pc = &pc;
                scope.spawn(move || worker_loop(pc, b));
            }
            let mut row_base = 0u64;
            while ser.cycle < total {
                // SAFETY: workers are parked at barrier A, so the main
                // thread owns everything (the serial window).
                unsafe { ser.generate(sh, flows, traffic, tables, config) };
                if config.fast_forward && ser.network_empty() {
                    // Workers stay parked: no barriers on skipped cycles.
                    ser.cycle += 1;
                    continue;
                }
                let ctx = CycleCtx {
                    cycle: ser.cycle,
                    measuring: ser.measuring(config),
                };
                // SAFETY: still in the serial window; barrier A orders
                // this publish before every worker's read.
                unsafe {
                    pc.ctl.publish(CycleCtl {
                        ctx,
                        row_base,
                        done: false,
                    });
                }
                pc.barrier.wait(); // barrier A: start the cycle
                                   // SAFETY: band 0 is the main thread's band.
                unsafe { band_cycle(&pc, 0, ctx, row_base) };
                pc.barrier.wait(); // barrier C: all bands done
                                   // SAFETY: workers parked again — serial merge window.
                let progress =
                    unsafe { ser.finish_cycle(sh, boxes, nb, config.pipeline_latency as usize) };
                if progress {
                    ser.last_progress = ser.cycle;
                } else if ser.in_network_flits > 0
                    && ser.cycle - ser.last_progress > config.watchdog
                {
                    deadlocked = true;
                }
                row_base += height as u64;
                if deadlocked {
                    break;
                }
                ser.cycle += 1;
            }
            // SAFETY: workers parked at barrier A; the final barrier
            // releases them to observe `done` and exit.
            unsafe {
                pc.ctl.publish(CycleCtl {
                    ctx: CycleCtx {
                        cycle: 0,
                        measuring: false,
                    },
                    row_base,
                    done: true,
                });
            }
            pc.barrier.wait();
        });
        deadlocked
    }
}

impl<T: RouteTables + Clone> Drop for Simulator<'_, T> {
    /// Returns the flit-queue allocations to the thread-local arena so
    /// the next simulator on this thread (the common sweep-worker case)
    /// skips reallocating them.
    fn drop(&mut self) {
        let mut bufs = std::mem::take(&mut self.sh.flits).into_cells();
        for c in &mut bufs {
            c.get_mut().clear();
        }
        let mut srcs = std::mem::take(&mut self.sh.src_queues).into_cells();
        for c in &mut srcs {
            c.get_mut().clear();
        }
        let _ = ARENA.try_with(move |a| {
            let mut arena = a.borrow_mut();
            arena.bufs = bufs;
            arena.srcs = srcs;
        });
    }
}

/// Resizes an arena allocation to `n` cleared deques, reusing retained
/// heap capacity where available.
fn resize_cells(cells: &mut Vec<UnsafeCell<VecDeque<Flit>>>, n: usize, capacity: usize) {
    cells.truncate(n);
    for c in cells.iter_mut() {
        c.get_mut().clear();
    }
    while cells.len() < n {
        cells.push(UnsafeCell::new(VecDeque::with_capacity(capacity)));
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use bsor_routing::Baseline;

    fn mesh_and_flows() -> (Topology, FlowSet) {
        let topo = Topology::mesh2d(4, 4);
        let mut flows = FlowSet::new();
        for n in topo.node_ids() {
            let c = topo.coord(n);
            let d = topo.node_at(3 - c.x, 3 - c.y).expect("in range");
            if n != d {
                flows.push(n, d, 25.0);
            }
        }
        (topo, flows)
    }

    fn quick_config() -> SimConfig {
        SimConfig::new(2)
            .with_warmup(500)
            .with_measurement(4_000)
            .with_packet_len(4)
    }

    #[test]
    fn light_load_delivers_everything_generated() {
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let traffic = TrafficSpec::proportional(&flows, 0.05);
        let mut sim =
            Simulator::new(&topo, &flows, &routes, traffic, quick_config()).expect("valid");
        let report = sim.run();
        assert!(!report.deadlocked);
        assert!(report.generated_packets > 0);
        // At 0.05 packets/cycle across 16 flows the network is nearly
        // idle: throughput tracks offered load closely.
        let ratio = report.throughput() / report.offered();
        assert!(
            (0.9..=1.1).contains(&ratio),
            "delivery ratio {ratio} at light load"
        );
    }

    #[test]
    fn latency_at_least_hop_count() {
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let traffic = TrafficSpec::proportional(&flows, 0.02);
        let mut sim =
            Simulator::new(&topo, &flows, &routes, traffic, quick_config()).expect("valid");
        let report = sim.run();
        let min_hops = flows
            .iter()
            .map(|f| topo.min_hops(f.src, f.dst))
            .min()
            .expect("flows");
        // A packet takes at least one cycle per hop plus serialization.
        assert!(
            report.mean_latency().expect("packets delivered") >= min_hops as f64,
            "latency below physical minimum"
        );
    }

    #[test]
    fn zero_rate_generates_nothing() {
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let traffic = TrafficSpec::proportional(&flows, 0.0);
        let mut sim =
            Simulator::new(&topo, &flows, &routes, traffic, quick_config()).expect("valid");
        let report = sim.run();
        assert_eq!(report.generated_packets, 0);
        assert_eq!(report.delivered_packets, 0);
        assert!(!report.deadlocked);
    }

    #[test]
    fn saturation_caps_throughput() {
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let light = TrafficSpec::proportional(&flows, 0.05);
        let heavy = TrafficSpec::proportional(&flows, 5.0);
        let light_tp = Simulator::new(&topo, &flows, &routes, light, quick_config())
            .expect("valid")
            .run()
            .throughput();
        let heavy_report = Simulator::new(&topo, &flows, &routes, heavy, quick_config())
            .expect("valid")
            .run();
        assert!(!heavy_report.deadlocked, "XY cannot deadlock");
        assert!(
            heavy_report.throughput() > light_tp,
            "more load, more delivered"
        );
        assert!(
            heavy_report.throughput() < heavy_report.offered() * 0.9,
            "saturated network cannot deliver everything offered"
        );
    }

    #[test]
    fn cyclic_routing_deadlocks_and_watchdog_fires() {
        // Hand-built cyclic routes (the canonical 2x2 turning ring) must
        // jam the wormhole network; the watchdog reports it.
        use bsor_flow::FlowId;
        use bsor_routing::{Route, RouteHop, RouteSet, VcMask};
        let topo = Topology::mesh2d(2, 2);
        let n = |x, y| topo.node_at(x, y).expect("in range");
        let hop = |a, b| RouteHop {
            link: topo.find_link(a, b).expect("adjacent"),
            vcs: VcMask::all(1),
        };
        // Each flow travels 3/4 of the way around the square, so packets
        // block while holding intermediate channels.
        let mut flows = FlowSet::new();
        flows.push(n(0, 0), n(1, 0), 1.0);
        flows.push(n(0, 1), n(0, 0), 1.0);
        flows.push(n(1, 1), n(0, 1), 1.0);
        flows.push(n(1, 0), n(1, 1), 1.0);
        let routes = RouteSet::from_routes(vec![
            Route {
                flow: FlowId(0),
                hops: vec![
                    hop(n(0, 0), n(0, 1)),
                    hop(n(0, 1), n(1, 1)),
                    hop(n(1, 1), n(1, 0)),
                ],
            },
            Route {
                flow: FlowId(1),
                hops: vec![
                    hop(n(0, 1), n(1, 1)),
                    hop(n(1, 1), n(1, 0)),
                    hop(n(1, 0), n(0, 0)),
                ],
            },
            Route {
                flow: FlowId(2),
                hops: vec![
                    hop(n(1, 1), n(1, 0)),
                    hop(n(1, 0), n(0, 0)),
                    hop(n(0, 0), n(0, 1)),
                ],
            },
            Route {
                flow: FlowId(3),
                hops: vec![
                    hop(n(1, 0), n(0, 0)),
                    hop(n(0, 0), n(0, 1)),
                    hop(n(0, 1), n(1, 1)),
                ],
            },
        ]);
        assert!(!bsor_routing::deadlock::is_deadlock_free(&topo, &routes, 1));
        let config = SimConfig::new(1)
            .with_warmup(0)
            .with_measurement(10_000)
            .with_watchdog(1_000)
            .with_buffer_depth(4)
            .with_packet_len(64); // spans the whole route: hold-and-wait
        let traffic = TrafficSpec::uniform(&flows, 1.0); // all inject at cycle 0
        let mut sim = Simulator::new(&topo, &flows, &routes, traffic, config).expect("valid");
        let report = sim.run();
        assert!(report.deadlocked, "the turning ring must deadlock");
    }

    #[test]
    fn static_vc_routes_simulate() {
        use bsor_cdg::{AcyclicCdg, TurnModel};
        use bsor_flow::FlowNetwork;
        use bsor_routing::selectors::DijkstraSelector;
        let (topo, flows) = mesh_and_flows();
        let acyclic = AcyclicCdg::turn_model(&topo, 2, &TurnModel::west_first()).expect("valid");
        let net = FlowNetwork::new(&topo, &acyclic);
        let routes = DijkstraSelector::new()
            .select(&net, &flows)
            .expect("routable");
        let traffic = TrafficSpec::proportional(&flows, 0.1);
        let mut sim =
            Simulator::new(&topo, &flows, &routes, traffic, quick_config()).expect("valid");
        let report = sim.run();
        assert!(!report.deadlocked);
        assert!(report.delivered_packets > 0);
    }

    #[test]
    fn vc_count_must_cover_routes() {
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::Romm { seed: 1 }
            .select(&topo, &flows, 4)
            .expect("romm");
        let traffic = TrafficSpec::proportional(&flows, 0.1);
        let err = Simulator::new(&topo, &flows, &routes, traffic, SimConfig::new(2))
            .err()
            .expect("4-VC routes cannot run on 2 VCs");
        assert_eq!(err, SimError::VcOutOfRange { vcs: 2 });
    }

    #[test]
    fn reports_are_reproducible_for_a_seed() {
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let run = |seed: u64| {
            let traffic = TrafficSpec::proportional(&flows, 0.2);
            let config = quick_config().with_seed(seed);
            Simulator::new(&topo, &flows, &routes, traffic, config)
                .expect("valid")
                .run()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.delivered_packets, b.delivered_packets);
        assert_eq!(a.generated_packets, b.generated_packets);
        assert_eq!(a.mean_latency(), b.mean_latency());
        let c = run(43);
        assert_ne!(
            (a.generated_packets, a.delivered_flits),
            (c.generated_packets, c.delivered_flits),
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn pipeline_latency_scales_packet_latency() {
        // The Chapter 4 four-stage pipeline costs ~4x the single-cycle
        // router's per-hop latency at light load.
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let run = |pipe: u8| {
            let traffic = TrafficSpec::proportional(&flows, 0.02);
            let config = quick_config().with_pipeline_latency(pipe);
            Simulator::new(&topo, &flows, &routes, traffic, config)
                .expect("valid")
                .run()
                .mean_latency()
                .expect("light load delivers")
        };
        let l1 = run(1);
        let l4 = run(4);
        assert!(
            l4 > l1 * 2.0,
            "4-stage pipeline latency {l4:.1} should far exceed single-cycle {l1:.1}"
        );
    }

    #[test]
    fn bursty_injection_preserves_mean_load_but_clusters_arrivals() {
        use crate::traffic::BurstyOnOff;
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let config = quick_config().with_measurement(20_000);
        let flat = Simulator::new(
            &topo,
            &flows,
            &routes,
            TrafficSpec::proportional(&flows, 0.3),
            config.clone(),
        )
        .expect("valid")
        .run();
        let bursty = Simulator::new(
            &topo,
            &flows,
            &routes,
            TrafficSpec::proportional(&flows, 0.3).with_burst(BurstyOnOff::new(50.0, 150.0)),
            config,
        )
        .expect("valid")
        .run();
        // Same long-run offered load (within sampling noise)...
        let ratio = bursty.offered() / flat.offered();
        assert!(
            (0.85..=1.15).contains(&ratio),
            "bursty offered load drifted: {ratio}"
        );
        // ...but clustered arrivals queue longer.
        let flat_p95 = flat.p95_latency().expect("delivers") as f64;
        let bursty_p95 = bursty.p95_latency().expect("delivers") as f64;
        assert!(
            bursty_p95 > flat_p95,
            "bursts must stretch the latency tail: flat p95 {flat_p95}, bursty p95 {bursty_p95}"
        );
    }

    #[test]
    fn phase_schedule_gates_generation_at_cycle_boundaries() {
        use crate::traffic::PhaseSchedule;
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        // Phase 1 covers exactly the warmup, phase 2 (silent) the rest:
        // nothing may be generated inside the measurement window.
        let config = SimConfig::new(2).with_warmup(500).with_measurement(2_000);
        let traffic = TrafficSpec::proportional(&flows, 0.5)
            .with_phases(PhaseSchedule::from_pairs([(500, 1.0), (2_000, 0.0)]));
        let report = Simulator::new(&topo, &flows, &routes, traffic, config)
            .expect("valid")
            .run();
        assert_eq!(
            report.generated_packets, 0,
            "the zero-scale phase must silence measurement-window generation"
        );
        // Flip the phases: generation only happens during measurement.
        let config = SimConfig::new(2).with_warmup(500).with_measurement(2_000);
        let traffic = TrafficSpec::proportional(&flows, 0.5)
            .with_phases(PhaseSchedule::from_pairs([(500, 0.0), (2_000, 1.0)]));
        let report = Simulator::new(&topo, &flows, &routes, traffic, config)
            .expect("valid")
            .run();
        assert!(report.generated_packets > 0);
    }

    #[test]
    fn default_injection_is_bit_identical_with_traffic_extensions_compiled_in() {
        // The no-burst/no-phase path must not consume any extra RNG
        // draws: a spec with an explicit one-phase schedule of scale 1.0
        // produces the same packet stream as the plain spec.
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        use crate::traffic::PhaseSchedule;
        let plain = Simulator::new(
            &topo,
            &flows,
            &routes,
            TrafficSpec::proportional(&flows, 0.4),
            quick_config(),
        )
        .expect("valid")
        .run();
        let scaled = Simulator::new(
            &topo,
            &flows,
            &routes,
            TrafficSpec::proportional(&flows, 0.4)
                .with_phases(PhaseSchedule::from_pairs([(7, 1.0)])),
            quick_config(),
        )
        .expect("valid")
        .run();
        assert_eq!(plain, scaled);
    }

    #[test]
    fn histograms_agree_with_scalar_latency_stats() {
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let traffic = TrafficSpec::proportional(&flows, 0.2);
        let report = Simulator::new(&topo, &flows, &routes, traffic, quick_config())
            .expect("valid")
            .run();
        let hist = report.latency_histogram();
        let tracked: u64 = report.per_flow.iter().map(|f| f.latency_count).sum();
        assert_eq!(hist.count(), tracked, "every tracked packet is recorded");
        let p50 = report.p50_latency().expect("delivers") as f64;
        let p99 = report.p99_latency().expect("delivers");
        let mean = report.mean_latency().expect("delivers");
        assert!(p50 <= p99 as f64);
        assert!(report.max_latency() >= p99);
        // The histogram's quantiles bracket the mean at light load.
        assert!(p50 <= mean * 1.5 && mean <= report.max_latency() as f64);
    }

    #[test]
    fn link_flit_counts_reflect_routes() {
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let traffic = TrafficSpec::proportional(&flows, 0.1);
        let mut sim =
            Simulator::new(&topo, &flows, &routes, traffic, quick_config()).expect("valid");
        let report = sim.run();
        // Links not on any route carry nothing.
        let mut used = vec![false; topo.num_links()];
        for r in routes.iter() {
            for h in &r.hops {
                used[h.link.index()] = true;
            }
        }
        for (li, &flits) in report.link_flits.iter().enumerate() {
            if !used[li] {
                assert_eq!(flits, 0, "unused link {li} carried flits");
            }
        }
        assert!(report.max_link_flits() > 0);
    }

    // --- engine parallelism & fast-forward ---------------------------------

    /// Reference report for `mesh_and_flows` under `spec` with the given
    /// engine knobs.
    fn run_mesh(
        topo: &Topology,
        flows: &FlowSet,
        traffic: &TrafficSpec,
        threads: usize,
        fast_forward: bool,
    ) -> SimReport {
        let routes = Baseline::XY.select(topo, flows, 2).expect("xy");
        let config = SimConfig::new(2)
            .with_warmup(300)
            .with_measurement(2_000)
            .with_packet_len(4)
            .with_engine_threads(threads)
            .with_fast_forward(fast_forward);
        Simulator::new(topo, flows, &routes, traffic.clone(), config)
            .expect("valid")
            .run()
    }

    #[test]
    fn parallel_and_fast_forward_reports_are_byte_identical() {
        use crate::traffic::{BurstyOnOff, PhaseSchedule};
        let (topo, flows) = mesh_and_flows();
        let specs = [
            TrafficSpec::proportional(&flows, 0.2),
            TrafficSpec::proportional(&flows, 0.15).with_burst(BurstyOnOff::new(50.0, 150.0)),
            // Long silent phases drain the network completely, which is
            // what actually exercises the fast-forward skip path.
            TrafficSpec::proportional(&flows, 0.3)
                .with_phases(PhaseSchedule::from_pairs([(150, 1.0), (450, 0.0)])),
        ];
        for (si, spec) in specs.iter().enumerate() {
            let reference = run_mesh(&topo, &flows, spec, 1, true);
            assert!(reference.delivered_packets > 0, "spec {si} delivers");
            for threads in [1usize, 2, 4] {
                for ff in [true, false] {
                    let report = run_mesh(&topo, &flows, spec, threads, ff);
                    assert_eq!(
                        report, reference,
                        "spec {si}: {threads} threads, fast_forward={ff} must be byte-identical"
                    );
                }
            }
        }
    }

    #[test]
    fn torus_parallel_matches_serial_with_uneven_bands() {
        let topo = Topology::torus2d(4, 4);
        let mut flows = FlowSet::new();
        for n in topo.node_ids() {
            let c = topo.coord(n);
            let d = topo.node_at(c.y, c.x).expect("in range");
            if n != d {
                flows.push(n, d, 25.0);
            }
        }
        let spec = TrafficSpec::proportional(&flows, 0.15);
        // Three bands over four columns: widths 1, 2, 1.
        let serial = run_mesh(&topo, &flows, &spec, 1, true);
        let banded = run_mesh(&topo, &flows, &spec, 3, true);
        assert!(serial.delivered_packets > 0);
        assert_eq!(banded, serial);
    }

    #[test]
    fn ring_wrap_link_handoff_is_deterministic_across_bands() {
        use bsor_routing::{Route, RouteHop, VcMask};
        let topo = Topology::ring(4);
        let n = |i: u16| NodeId(i as u32);
        let hop = |a: NodeId, b: NodeId| RouteHop {
            link: topo.find_link(a, b).expect("adjacent"),
            vcs: VcMask::all(1),
        };
        let mut flows = FlowSet::new();
        flows.push(n(3), n(1), 1.0); // crosses the wrap link 3 -> 0
        flows.push(n(1), n(3), 1.0);
        let routes = RouteSet::from_routes(vec![
            Route {
                flow: FlowId(0),
                hops: vec![hop(n(3), n(0)), hop(n(0), n(1))],
            },
            Route {
                flow: FlowId(1),
                hops: vec![hop(n(1), n(2)), hop(n(2), n(3))],
            },
        ]);
        let run = |threads: usize| {
            let config = SimConfig::new(1)
                .with_warmup(200)
                .with_measurement(2_000)
                .with_packet_len(4)
                .with_engine_threads(threads);
            Simulator::new(
                &topo,
                &flows,
                &routes,
                TrafficSpec::proportional(&flows, 0.3),
                config,
            )
            .expect("valid")
            .run()
        };
        let serial = run(1);
        assert!(serial.delivered_packets > 0);
        // Bands [0,1] and [2,3]: the wrap link's handoff crosses bands
        // "backwards" (band 1 feeds band 0), the transitivity case of
        // the wavefront argument.
        assert_eq!(run(2), serial);
        assert_eq!(run(4), serial);
    }

    #[test]
    fn parallel_engine_detects_deadlock_too() {
        use bsor_routing::{Route, RouteHop, VcMask};
        let topo = Topology::mesh2d(2, 2);
        let n = |x, y| topo.node_at(x, y).expect("in range");
        let hop = |a, b| RouteHop {
            link: topo.find_link(a, b).expect("adjacent"),
            vcs: VcMask::all(1),
        };
        let mut flows = FlowSet::new();
        flows.push(n(0, 0), n(1, 0), 1.0);
        flows.push(n(0, 1), n(0, 0), 1.0);
        flows.push(n(1, 1), n(0, 1), 1.0);
        flows.push(n(1, 0), n(1, 1), 1.0);
        let routes = RouteSet::from_routes(vec![
            Route {
                flow: FlowId(0),
                hops: vec![
                    hop(n(0, 0), n(0, 1)),
                    hop(n(0, 1), n(1, 1)),
                    hop(n(1, 1), n(1, 0)),
                ],
            },
            Route {
                flow: FlowId(1),
                hops: vec![
                    hop(n(0, 1), n(1, 1)),
                    hop(n(1, 1), n(1, 0)),
                    hop(n(1, 0), n(0, 0)),
                ],
            },
            Route {
                flow: FlowId(2),
                hops: vec![
                    hop(n(1, 1), n(1, 0)),
                    hop(n(1, 0), n(0, 0)),
                    hop(n(0, 0), n(0, 1)),
                ],
            },
            Route {
                flow: FlowId(3),
                hops: vec![
                    hop(n(1, 0), n(0, 0)),
                    hop(n(0, 0), n(0, 1)),
                    hop(n(0, 1), n(1, 1)),
                ],
            },
        ]);
        let config = SimConfig::new(1)
            .with_warmup(0)
            .with_measurement(5_000)
            .with_watchdog(500)
            .with_buffer_depth(4)
            .with_packet_len(64)
            .with_engine_threads(2);
        let traffic = TrafficSpec::uniform(&flows, 1.0);
        let mut sim = Simulator::new(&topo, &flows, &routes, traffic, config).expect("valid");
        let report = sim.run();
        assert!(
            report.deadlocked,
            "the turning ring must deadlock in parallel too"
        );
    }

    #[test]
    fn non_grid_topologies_fall_back_to_the_serial_schedule() {
        let topo = Topology::hypercube(3);
        let mut flows = FlowSet::new();
        for n in topo.node_ids() {
            let d = NodeId(n.0 ^ 0b111);
            flows.push(n, d, 1.0);
        }
        // XOR dimension-order routes: flip the lowest differing bit.
        use bsor_routing::{Route, RouteHop, VcMask};
        let route_for = |src: NodeId, dst: NodeId| {
            let mut hops = Vec::new();
            let mut cur = src;
            while cur != dst {
                let next = NodeId(cur.0 ^ (1 << (cur.0 ^ dst.0).trailing_zeros()));
                hops.push(RouteHop {
                    link: topo.find_link(cur, next).expect("cube edge"),
                    vcs: VcMask::all(4),
                });
                cur = next;
            }
            hops
        };
        let routes = RouteSet::from_routes(
            flows
                .iter()
                .map(|f| Route {
                    flow: f.id,
                    hops: route_for(f.src, f.dst),
                })
                .collect(),
        );
        let run = |threads: usize| {
            let config = SimConfig::new(4)
                .with_warmup(200)
                .with_measurement(1_500)
                .with_packet_len(4)
                .with_engine_threads(threads);
            Simulator::new(
                &topo,
                &flows,
                &routes,
                TrafficSpec::proportional(&flows, 0.1),
                config,
            )
            .expect("valid")
            .run()
        };
        let serial = run(1);
        assert!(serial.delivered_packets > 0);
        assert_eq!(run(4), serial, "hypercube must fall back deterministically");
    }

    #[test]
    fn fast_forward_skips_idle_prefixes_without_changing_counts() {
        use crate::traffic::PhaseSchedule;
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        // A long silent phase then a burst of work: most cycles skip.
        let spec = TrafficSpec::proportional(&flows, 0.4)
            .with_phases(PhaseSchedule::from_pairs([(4_000, 0.0), (500, 1.0)]));
        let run = |ff: bool| {
            let config = SimConfig::new(2)
                .with_warmup(4_000)
                .with_measurement(500)
                .with_packet_len(4)
                .with_fast_forward(ff);
            Simulator::new(&topo, &flows, &routes, spec.clone(), config)
                .expect("valid")
                .run()
        };
        let (with_skip, without_skip) = (run(true), run(false));
        assert_eq!(with_skip, without_skip);
        assert_eq!(with_skip.cycles, 4_500, "skipped cycles still count");
        assert!(with_skip.generated_packets > 0);
    }
}
