//! Quickstart: plan once, evaluate many times. A `Planner` turns a
//! scenario + algorithm into an immutable `RoutePlan` — validated
//! deadlock-free routes (paper Lemma 1, carried as a checkable
//! certificate), programmed router tables and the predicted maximum
//! channel load — and `Evaluator` backends judge that plan either
//! analytically or in the cycle-accurate simulator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bsor::{AlgorithmRegistry, EvalPoint, Evaluator, Planner, Scenario, SimEvaluator};
use bsor_sim::SimConfig;
use bsor_topology::{load_topology_file, Topology};
use bsor_workloads::{uniform_random, workload_by_name};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The paper's substrate: an 8x8 mesh with 2 virtual channels,
    //    carrying the transpose workload — all resolved by name.
    let mesh = Topology::mesh2d(8, 8);
    let workload = workload_by_name(&mesh, "transpose")?;
    println!(
        "workload: {} ({} flows, {:.0} MB/s each)",
        workload.name,
        workload.flows.len(),
        workload.flows.max_demand()
    );
    let scenario = Scenario::builder(mesh, workload.flows)
        .named("quickstart")
        .vcs(2)
        .build()?;

    // 2. Plan: every algorithm is one registry lookup away, and a plan
    //    always comes back validated and certified deadlock-free
    //    (paper Lemma 1) or not at all.
    let algorithms = AlgorithmRegistry::standard();
    let planner = Planner::new();
    let bsor = planner.plan(
        &scenario,
        algorithms.get("bsor-dijkstra").expect("registered"),
    )?;
    let xy = planner.plan(&scenario, algorithms.get("xy").expect("registered"))?;
    println!("BSOR MCL: {:.1} MB/s", bsor.predicted_mcl());
    println!("XY MCL: {:.1} MB/s", xy.predicted_mcl());
    println!(
        "deadlock certificate: {} channel dependencies, verifies: {}",
        bsor.certificate().dependencies(),
        bsor.certificate().verify(bsor.routes())
    );

    // 3. The plan already carries the programmed node-table routers
    //    (paper §4.2.1) — no recompilation per run.
    let dense = bsor.tables().as_dense().expect("default plans are dense");
    println!(
        "node tables: max {} entries/router, {} bits/entry, {} bytes total",
        dense.max_entries(),
        dense.entry_bits(),
        bsor.table_bytes()
    );

    // 4. Evaluate at a moderate load — the `SimEvaluator` drives the
    //    cycle-accurate engine on the plan's precompiled tables. Sweeps
    //    re-evaluate the same plan instead of re-solving routes.
    let config = SimConfig::new(2)
        .with_warmup(2_000)
        .with_measurement(10_000);
    let report = SimEvaluator::new().evaluate(&bsor, &EvalPoint::new(1.0, config))?;
    println!(
        "simulated: {:.3} packets/cycle delivered, mean latency {:.1} cycles",
        report.throughput,
        report.mean_latency.unwrap_or(f64::NAN)
    );

    // 5. The same pipeline runs on arbitrary graphs loaded from a file:
    //    a topology-zoo-style WAN plans through the up*/down* escape
    //    ordering and comes back with the same Lemma-1 certificate.
    let wan_path = concat!(env!("CARGO_MANIFEST_DIR"), "/assets/topologies/wan5.topo");
    let wan = load_topology_file(wan_path)?;
    let wan_workload = uniform_random(&wan)?;
    let wan_scenario = Scenario::builder(wan, wan_workload.flows)
        .named("wan5")
        .vcs(1)
        .build()?;
    let wan_plan = planner.plan(
        &wan_scenario,
        algorithms.get("bsor-dijkstra").expect("registered"),
    )?;
    println!(
        "wan5 from file: MCL {:.1} MB/s, certificate verifies: {}",
        wan_plan.predicted_mcl(),
        wan_plan.certificate().verify(wan_plan.routes())
    );
    Ok(())
}
