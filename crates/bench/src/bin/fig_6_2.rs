//! Regenerates **Figure 6-2**: network throughput and average latency
//! versus offered injection rate for the Bit-Complement workload
//! under XY, YX, ROMM, Valiant and the two BSOR selectors (8×8 mesh,
//! 2 VCs).
//!
//! ```text
//! cargo run -p bsor-bench --release --bin fig_6_2 [--paper] [--csv]
//! ```

use bsor_bench::{paper_mode, print_figure, standard_mesh, standard_rates, SweepConfig};
use bsor_workloads::bit_complement;

fn main() {
    let topo = standard_mesh();
    let workload = bit_complement(&topo).expect("8x8 supports the workload");
    let cfg = if paper_mode() {
        SweepConfig::paper(2)
    } else {
        SweepConfig::quick(2)
    };
    print_figure(
        "Figure 6-2: Bit-Complement — throughput & latency vs offered rate",
        &topo,
        &workload,
        &cfg,
        &standard_rates(),
    );
}
