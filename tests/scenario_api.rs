//! The unified Scenario/Experiment API, exercised across every
//! registry: a property test that every registered algorithm on every
//! registered topology (smoke sizes, 2 VCs) yields a deadlock-free
//! route set through the one `RouteAlgorithm` trait — or a *typed*
//! unsupported-topology error, never a panic — plus registry
//! round-trips (`names()` → `get()` → run).

use bsor::{AlgorithmRegistry, BsorAlgorithm, Scenario, TopologyRegistry, WorkloadRegistry};
use bsor_repro::flow::FlowSet;
use bsor_repro::routing::{deadlock, SelectError};
use bsor_repro::sim::{AlgorithmError, Evaluator, ExperimentError, SimConfig, SimEvaluator};
use bsor_repro::topology::{NodeId, Topology};

/// Smoke-size dimensions per registered topology family.
fn smoke_dims(name: &str) -> (u16, u16) {
    match name {
        "mesh" | "torus" => (4, 4),
        "ring" => (6, 1),
        // 4x2 = 8 nodes folds into a dimension-3 hypercube.
        "hypercube" => (4, 2),
        other => panic!("add smoke dimensions for new topology '{other}'"),
    }
}

/// A shift pattern that exists on every topology: node i sends to
/// node (i + n/2) mod n.
fn shift_flows(topo: &Topology) -> FlowSet {
    let mut flows = FlowSet::new();
    let n = topo.num_nodes() as u32;
    for i in 0..n {
        let j = (i + n / 2) % n;
        if i != j {
            flows.push(NodeId(i), NodeId(j), 10.0);
        }
    }
    flows
}

/// The property at the heart of the API: anything the registries can
/// name composes into a scenario, and whatever routes come out of the
/// one trait are deadlock-free (paper Lemma 1) — the only permitted
/// alternative is a typed error, never a panic and never a cyclic
/// route set slipping through.
#[test]
fn every_algorithm_on_every_topology_is_deadlock_free_or_typed() {
    let topologies = TopologyRegistry::standard();
    let algorithms = AlgorithmRegistry::standard();
    let vcs = 2u8;
    for topo_name in topologies.names() {
        let (w, h) = smoke_dims(topo_name);
        let topo = topologies
            .build(topo_name, w, h)
            .expect("smoke dims are valid");
        let flows = shift_flows(&topo);
        let scenario = Scenario::builder(topo, flows)
            .named(format!("{topo_name}-shift"))
            .vcs(vcs)
            .build()
            .expect("smoke scenarios build");
        for algo_name in algorithms.names() {
            let algorithm = algorithms.get(algo_name).expect("listed names resolve");
            match scenario.select_routes(algorithm) {
                Ok(routes) => {
                    assert_eq!(routes.len(), scenario.flows().len());
                    assert!(
                        deadlock::is_deadlock_free(scenario.topology(), &routes, vcs),
                        "{algo_name} on {topo_name} returned a cyclic route set"
                    );
                }
                Err(ExperimentError::Algorithm(AlgorithmError::UnsupportedTopology { .. })) => {
                    // Dimension-order baselines legitimately refuse
                    // hypercubes; anything else must route.
                    assert_eq!(
                        topo_name, "hypercube",
                        "{algo_name} refused {topo_name}, which it should support"
                    );
                }
                Err(ExperimentError::Algorithm(AlgorithmError::Select(
                    SelectError::BudgetExceeded { links, max_links },
                ))) => {
                    // The AC oblivious LP refuses smoke sizes over its
                    // link budget — typed, and only from that algorithm.
                    assert_eq!(
                        algo_name, "ac-oblivious",
                        "only the LP selector carries a link budget"
                    );
                    assert!(links > max_links);
                }
                Err(other) => {
                    panic!("{algo_name} on {topo_name} failed unexpectedly: {other}")
                }
            }
        }
        // The exploring framework must route *every* registered
        // topology, mesh or not — topology independence end-to-end.
        let routes = scenario
            .select_routes(&BsorAlgorithm::dijkstra())
            .expect("bsor-dijkstra routes every registered topology");
        assert!(deadlock::is_deadlock_free(
            scenario.topology(),
            &routes,
            vcs
        ));
    }
}

/// `names()` → `get()` → run: every listed algorithm resolves and
/// drives the full experiment pipeline (routes + simulation) on the
/// paper's substrate.
#[test]
fn algorithm_registry_round_trips_through_an_experiment() {
    let algorithms = AlgorithmRegistry::standard();
    let names = algorithms.names();
    assert!(names.contains(&"xy") && names.contains(&"bsor-dijkstra"));
    let topo = Topology::mesh2d(4, 4);
    let flows = shift_flows(&topo);
    let scenario = Scenario::builder(topo, flows).vcs(2).build().expect("ok");
    for name in names {
        let algorithm = algorithms.get(name).expect("listed names resolve");
        let experiment = scenario
            .experiment(algorithm)
            .config(SimConfig::new(2).with_warmup(100).with_measurement(500))
            .rate(0.2);
        let plan = match experiment.plan() {
            Ok(plan) => plan,
            // The 4x4 mesh (48 directed links) is over the AC LP's
            // default budget; the typed refusal is the contract.
            Err(ExperimentError::Algorithm(AlgorithmError::Select(
                SelectError::BudgetExceeded { .. },
            ))) if name == "ac-oblivious" => continue,
            Err(e) => panic!("{name} failed to plan: {e}"),
        };
        let evaluation = SimEvaluator::new()
            .evaluate(&plan, &experiment.eval_point())
            .unwrap_or_else(|e| panic!("{name} failed the pipeline: {e}"));
        assert!(!evaluation.deadlocked, "{name} deadlocked in simulation");
        assert!(evaluation.delivered > 0, "{name} delivered nothing");
    }
}

/// `names()` → `get()` → build for the workload and topology registries.
#[test]
fn workload_and_topology_registries_round_trip() {
    let workloads = WorkloadRegistry::standard();
    let mesh = Topology::mesh2d(8, 8);
    for name in workloads.names() {
        assert!(workloads.get(name).is_some());
        let w = workloads.build(&mesh, name).expect("8x8 supports all six");
        w.flows.validate(&mesh).expect("valid flows");
    }
    let topologies = TopologyRegistry::standard();
    for name in topologies.names() {
        assert!(topologies.get(name).is_some());
        let (w, h) = smoke_dims(name);
        let topo = topologies.build(name, w, h).expect("smoke dims build");
        assert!(topo.num_nodes() >= 2);
    }
}
