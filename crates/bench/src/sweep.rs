//! The parallel scenario-sweep core behind the `bsor-sweep` CLI.
//!
//! The paper's evaluation is a grid — topology × workload × routing
//! algorithm × VC count × injection rate — and oblivious routing's
//! selling point is that the expensive part (route selection) happens
//! once per case while the simulator amortizes it over many load points.
//! This module mirrors that structure: a [`GridSpec`] expands into
//! *cases* (everything but the rate), cases fan out across
//! `std::thread::scope` workers, and each worker runs its case's rate
//! points serially on one freshly-built route set.
//!
//! Output is a schema-stable [`Json`] document. Every field is present
//! in every run; wall-clock fields are zeroed when
//! [`GridSpec::record_timings`] is off so CI can diff two sweeps
//! byte-for-byte to prove determinism.

use crate::json::Json;
use bsor::{BsorBuilder, SelectorKind};
use bsor_lp::MilpOptions;
use bsor_routing::selectors::{DijkstraSelector, MilpSelector};
use bsor_routing::{Baseline, RouteSet};
use bsor_sim::{SimConfig, Simulator, TrafficSpec};
use bsor_topology::Topology;
use bsor_workloads::{
    bit_complement, h264_decoder, performance_modeling, shuffle, transpose, wifi_transmitter,
    Workload,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Workload names the sweep grid understands, in paper order.
pub const WORKLOAD_NAMES: [&str; 6] = [
    "transpose",
    "bit-complement",
    "shuffle",
    "h264",
    "perf-model",
    "wifi",
];

/// Routing-algorithm names the sweep grid understands.
///
/// `bsor-milp` runs the MILP selector with a node budget instead of a
/// wall-clock limit so its routes stay deterministic.
pub const ALGORITHM_NAMES: [&str; 7] = [
    "xy",
    "yx",
    "romm",
    "valiant",
    "o1turn",
    "bsor-dijkstra",
    "bsor-milp",
];

/// Seed the baseline randomized algorithms (ROMM/Valiant/O1TURN) use
/// throughout the bench harness.
const BASELINE_SEED: u64 = 9;

/// A declarative scenario grid.
#[derive(Clone, Debug)]
pub struct GridSpec {
    /// Mesh sizes, e.g. `[(8, 8)]`.
    pub meshes: Vec<(u16, u16)>,
    /// Workload names (see [`WORKLOAD_NAMES`]).
    pub workloads: Vec<String>,
    /// Algorithm names (see [`ALGORITHM_NAMES`]).
    pub algorithms: Vec<String>,
    /// VC counts.
    pub vcs: Vec<u8>,
    /// Offered aggregate injection rates, packets/cycle.
    pub rates: Vec<f64>,
    /// Warmup cycles per run.
    pub warmup: u64,
    /// Measured cycles per run.
    pub measurement: u64,
    /// Flits per packet.
    pub packet_len: usize,
    /// RNG seed for the injection processes.
    pub seed: u64,
    /// When false, every wall-clock field in the JSON is zeroed so two
    /// runs of the same grid diff byte-identically.
    pub record_timings: bool,
}

impl GridSpec {
    /// The full evaluation grid on the paper's 8×8 mesh.
    pub fn standard() -> GridSpec {
        GridSpec {
            meshes: vec![(8, 8)],
            workloads: WORKLOAD_NAMES.iter().map(|s| s.to_string()).collect(),
            algorithms: vec![
                "xy".into(),
                "yx".into(),
                "romm".into(),
                "valiant".into(),
                "bsor-dijkstra".into(),
            ],
            vcs: vec![2],
            rates: crate::standard_rates(),
            warmup: 2_000,
            measurement: 10_000,
            packet_len: 8,
            seed: 0xB50B,
            record_timings: true,
        }
    }

    /// A reduced grid for CI smoke runs: one mesh, two workloads, three
    /// algorithms, three rates, short windows.
    pub fn smoke() -> GridSpec {
        GridSpec {
            meshes: vec![(8, 8)],
            workloads: vec!["transpose".into(), "h264".into()],
            algorithms: vec!["xy".into(), "yx".into(), "bsor-dijkstra".into()],
            vcs: vec![2],
            rates: vec![0.1, 0.8, 1.6],
            warmup: 500,
            measurement: 2_000,
            packet_len: 8,
            seed: 0xB50B,
            record_timings: true,
        }
    }

    /// Number of cases (route computations) the grid expands to.
    pub fn num_cases(&self) -> usize {
        self.meshes.len() * self.workloads.len() * self.algorithms.len() * self.vcs.len()
    }

    /// Number of simulation runs the grid expands to.
    pub fn num_runs(&self) -> usize {
        self.num_cases() * self.rates.len()
    }
}

/// One case: everything but the injection rate.
#[derive(Clone, Debug)]
pub struct Case {
    /// Mesh dimensions.
    pub mesh: (u16, u16),
    /// Workload name.
    pub workload: String,
    /// Algorithm name.
    pub algorithm: String,
    /// VC count.
    pub vcs: u8,
}

/// Expands the grid into cases, mesh-major then workload, algorithm, VC
/// — a deterministic order the output preserves.
pub fn expand(spec: &GridSpec) -> Vec<Case> {
    let mut cases = Vec::with_capacity(spec.num_cases());
    for &mesh in &spec.meshes {
        for workload in &spec.workloads {
            for algorithm in &spec.algorithms {
                for &vcs in &spec.vcs {
                    cases.push(Case {
                        mesh,
                        workload: workload.clone(),
                        algorithm: algorithm.clone(),
                        vcs,
                    });
                }
            }
        }
    }
    cases
}

/// Instantiates a workload by sweep-grid name.
///
/// # Errors
///
/// Unknown names and topology/workload mismatches come back as text.
pub fn workload_by_name(topo: &Topology, name: &str) -> Result<Workload, String> {
    let built = match name {
        "transpose" => transpose(topo),
        "bit-complement" => bit_complement(topo),
        "shuffle" => shuffle(topo),
        "h264" => h264_decoder(topo),
        "perf-model" => performance_modeling(topo),
        "wifi" => wifi_transmitter(topo),
        other => return Err(format!("unknown workload '{other}'")),
    };
    built.map_err(|e| e.to_string())
}

/// Computes routes for one algorithm by sweep-grid name.
///
/// # Errors
///
/// Unknown names and selection failures come back as text.
pub fn routes_by_name(
    topo: &Topology,
    workload: &Workload,
    name: &str,
    vcs: u8,
) -> Result<RouteSet, String> {
    let baseline = |b: Baseline| {
        b.select(topo, &workload.flows, vcs)
            .map_err(|e| e.to_string())
    };
    match name {
        "xy" => baseline(Baseline::XY),
        "yx" => baseline(Baseline::YX),
        "romm" => baseline(Baseline::Romm {
            seed: BASELINE_SEED,
        }),
        "valiant" => baseline(Baseline::Valiant {
            seed: BASELINE_SEED,
        }),
        "o1turn" => baseline(Baseline::O1Turn {
            seed: BASELINE_SEED,
        }),
        "bsor-dijkstra" => BsorBuilder::new(topo, &workload.flows)
            .vcs(vcs)
            .selector(SelectorKind::Dijkstra(DijkstraSelector::new()))
            .run()
            .map(|r| r.routes)
            .map_err(|e| e.to_string()),
        // Node-budget only: a wall-clock limit would make the chosen
        // routes depend on machine speed and break determinism.
        "bsor-milp" => BsorBuilder::new(topo, &workload.flows)
            .vcs(vcs)
            .selector(SelectorKind::Milp(
                MilpSelector::new()
                    .with_hop_slack(2)
                    .with_max_paths(40)
                    .with_options(MilpOptions {
                        max_nodes: 20,
                        time_limit: None,
                        ..MilpOptions::default()
                    }),
            ))
            .run()
            .map(|r| r.routes)
            .map_err(|e| e.to_string()),
        other => Err(format!("unknown algorithm '{other}'")),
    }
}

/// One load point's measurements.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// Requested aggregate rate, packets/cycle.
    pub rate: f64,
    /// Load actually generated, packets/cycle.
    pub offered: f64,
    /// Delivered throughput, packets/cycle.
    pub throughput: f64,
    /// Mean packet latency, cycles.
    pub mean_latency: Option<f64>,
    /// Worst packet latency, cycles.
    pub max_latency: u64,
    /// Packets generated in the measurement window.
    pub generated: u64,
    /// Packets delivered in the measurement window.
    pub delivered: u64,
    /// Whether the watchdog flagged a deadlock.
    pub deadlocked: bool,
    /// Cycles actually simulated.
    pub cycles: u64,
    /// Wall-clock milliseconds for the run (0 when timings are off).
    pub wall_ms: f64,
    /// Simulation speed (0 when timings are off).
    pub cycles_per_sec: f64,
}

/// One completed case: its route-set summary plus all load points.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// The case parameters.
    pub case: Case,
    /// Maximum channel load of the routes in MB/s (the paper's MCL
    /// metric), when routing succeeded.
    pub mcl: Option<f64>,
    /// Route-computation or workload error, when the case failed.
    pub error: Option<String>,
    /// Per-rate measurements (empty when `error` is set).
    pub points: Vec<PointResult>,
    /// Wall-clock milliseconds for the whole case (0 when timings off).
    pub wall_ms: f64,
}

fn run_case(spec: &GridSpec, case: &Case) -> CaseResult {
    let started = Instant::now();
    let (w, h) = case.mesh;
    let topo = Topology::mesh2d(w, h);
    let workload = match workload_by_name(&topo, &case.workload) {
        Ok(w) => w,
        Err(e) => {
            return CaseResult {
                case: case.clone(),
                mcl: None,
                error: Some(e),
                points: Vec::new(),
                wall_ms: 0.0,
            }
        }
    };
    let routes = match routes_by_name(&topo, &workload, &case.algorithm, case.vcs) {
        Ok(r) => r,
        Err(e) => {
            return CaseResult {
                case: case.clone(),
                mcl: None,
                error: Some(e),
                points: Vec::new(),
                wall_ms: 0.0,
            }
        }
    };
    let mcl = routes.mcl(&topo, &workload.flows);
    let mut points = Vec::with_capacity(spec.rates.len());
    for &rate in &spec.rates {
        let traffic = TrafficSpec::proportional(&workload.flows, rate);
        let config = SimConfig::new(case.vcs)
            .with_warmup(spec.warmup)
            .with_measurement(spec.measurement)
            .with_packet_len(spec.packet_len)
            .with_seed(spec.seed);
        let (report, timing) = Simulator::new(&topo, &workload.flows, &routes, traffic, config)
            .expect("expanded grid scenarios are consistent")
            .run_timed();
        points.push(PointResult {
            rate,
            offered: report.offered(),
            throughput: report.throughput(),
            mean_latency: report.mean_latency(),
            max_latency: report.max_latency(),
            generated: report.generated_packets,
            delivered: report.delivered_packets,
            deadlocked: report.deadlocked,
            cycles: report.cycles,
            wall_ms: if spec.record_timings {
                timing.elapsed.as_secs_f64() * 1e3
            } else {
                0.0
            },
            cycles_per_sec: if spec.record_timings {
                timing.cycles_per_sec()
            } else {
                0.0
            },
        });
    }
    CaseResult {
        case: case.clone(),
        mcl: Some(mcl),
        error: None,
        points,
        wall_ms: if spec.record_timings {
            started.elapsed().as_secs_f64() * 1e3
        } else {
            0.0
        },
    }
}

/// Runs every case of `spec` across `threads` scoped workers and returns
/// the results in deterministic grid order.
///
/// Workers claim case indices from a shared atomic counter, so thread
/// count and scheduling affect only wall-clock fields — the simulation
/// results per case are independent and reassembled in expansion order.
pub fn run_grid(spec: &GridSpec, threads: usize) -> Vec<CaseResult> {
    let cases = expand(spec);
    let threads = threads.max(1).min(cases.len().max(1));
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<CaseResult>> = vec![None; cases.len()];
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let cases = &cases;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cases.len() {
                            break;
                        }
                        mine.push((i, run_case(spec, &cases[i])));
                    }
                    mine
                })
            })
            .collect();
        for worker in workers {
            for (i, result) in worker.join().expect("sweep worker panicked") {
                results[i] = Some(result);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every case index was claimed"))
        .collect()
}

/// Assembles the schema-stable `BENCH_sweep.json` document.
///
/// Schema `bsor-sweep/v1`: `grid` echoes the expanded spec, `cases`
/// holds one entry per case in grid order, `timing` carries run-wide
/// wall-clock numbers. The entire timing block — thread count included —
/// is zeroed when timings are off, so two `--no-timings` sweeps of the
/// same grid are byte-identical even across different `--threads`.
pub fn sweep_json(
    spec: &GridSpec,
    results: &[CaseResult],
    threads: usize,
    total_wall_ms: f64,
) -> Json {
    let threads = if spec.record_timings { threads } else { 0 };
    let grid = Json::object(vec![
        (
            "meshes",
            Json::Array(
                spec.meshes
                    .iter()
                    .map(|(w, h)| Json::from(format!("{w}x{h}")))
                    .collect(),
            ),
        ),
        (
            "workloads",
            Json::Array(
                spec.workloads
                    .iter()
                    .map(|w| Json::from(w.as_str()))
                    .collect(),
            ),
        ),
        (
            "algorithms",
            Json::Array(
                spec.algorithms
                    .iter()
                    .map(|a| Json::from(a.as_str()))
                    .collect(),
            ),
        ),
        (
            "vcs",
            Json::Array(spec.vcs.iter().map(|&v| Json::from(v as u64)).collect()),
        ),
        (
            "rates",
            Json::Array(spec.rates.iter().map(|&r| Json::from(r)).collect()),
        ),
        ("warmup", Json::from(spec.warmup)),
        ("measurement", Json::from(spec.measurement)),
        ("packet_len", Json::from(spec.packet_len)),
        ("seed", Json::from(spec.seed)),
    ]);
    let cases = results
        .iter()
        .map(|r| {
            let points = r
                .points
                .iter()
                .map(|p| {
                    Json::object(vec![
                        ("rate", Json::from(p.rate)),
                        ("offered", Json::from(p.offered)),
                        ("throughput", Json::from(p.throughput)),
                        ("mean_latency", Json::from(p.mean_latency)),
                        ("max_latency", Json::from(p.max_latency)),
                        ("generated", Json::from(p.generated)),
                        ("delivered", Json::from(p.delivered)),
                        ("deadlocked", Json::from(p.deadlocked)),
                        ("cycles", Json::from(p.cycles)),
                        ("wall_ms", Json::from(p.wall_ms)),
                        ("cycles_per_sec", Json::from(p.cycles_per_sec)),
                    ])
                })
                .collect();
            Json::object(vec![
                (
                    "mesh",
                    Json::from(format!("{}x{}", r.case.mesh.0, r.case.mesh.1)),
                ),
                ("workload", Json::from(r.case.workload.as_str())),
                ("algorithm", Json::from(r.case.algorithm.as_str())),
                ("vcs", Json::from(r.case.vcs as u64)),
                ("mcl_mb_s", Json::from(r.mcl)),
                ("error", Json::from(r.error.clone())),
                ("points", Json::Array(points)),
                ("wall_ms", Json::from(r.wall_ms)),
            ])
        })
        .collect();
    Json::object(vec![
        ("schema", Json::from("bsor-sweep/v1")),
        ("grid", grid),
        ("cases", Json::Array(cases)),
        (
            "timing",
            Json::object(vec![
                ("threads", Json::from(threads)),
                ("total_wall_ms", Json::from(total_wall_ms)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> GridSpec {
        GridSpec {
            meshes: vec![(4, 4)],
            workloads: vec!["transpose".into()],
            algorithms: vec!["xy".into(), "yx".into()],
            vcs: vec![2],
            rates: vec![0.1, 0.4],
            warmup: 100,
            measurement: 500,
            packet_len: 4,
            seed: 7,
            record_timings: false,
        }
    }

    #[test]
    fn expansion_counts_and_order() {
        let spec = tiny_spec();
        assert_eq!(spec.num_cases(), 2);
        assert_eq!(spec.num_runs(), 4);
        let cases = expand(&spec);
        assert_eq!(cases[0].algorithm, "xy");
        assert_eq!(cases[1].algorithm, "yx");
    }

    #[test]
    fn parallel_matches_serial() {
        let spec = tiny_spec();
        let serial = run_grid(&spec, 1);
        let parallel = run_grid(&spec, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.case.algorithm, b.case.algorithm);
            assert_eq!(a.mcl, b.mcl);
            for (pa, pb) in a.points.iter().zip(&b.points) {
                assert_eq!(pa.throughput, pb.throughput);
                assert_eq!(pa.mean_latency, pb.mean_latency);
                assert_eq!(pa.generated, pb.generated);
            }
        }
    }

    #[test]
    fn json_is_byte_identical_without_timings() {
        let spec = tiny_spec();
        // Different worker counts must not leak into the document: with
        // timings off the whole timing block is zeroed.
        let a = sweep_json(&spec, &run_grid(&spec, 2), 2, 0.0).pretty();
        let b = sweep_json(&spec, &run_grid(&spec, 3), 3, 0.0).pretty();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_names_error_as_cases() {
        let mut spec = tiny_spec();
        spec.workloads = vec!["nope".into()];
        let results = run_grid(&spec, 1);
        assert_eq!(results.len(), 2);
        assert!(results[0].error.as_deref().unwrap().contains("nope"));
        assert!(results[0].points.is_empty());
    }

    #[test]
    fn bad_topology_for_workload_reports_error() {
        let mut spec = tiny_spec();
        spec.meshes = vec![(3, 4)];
        let results = run_grid(&spec, 2);
        assert!(results.iter().all(|r| r.error.is_some()));
    }
}
