//! Demand-oblivious route selectors.
//!
//! BSOR is application-aware: it optimizes routes for one known traffic
//! matrix. The classic counterpoint is *oblivious* routing, which fixes
//! routes before any demand is known and bounds the worst case instead.
//! This module implements two members of that family:
//!
//! * [`AcObliviousSelector`] (`ac-oblivious`) — the Applegate–Cohen
//!   worst-case-optimal LP. It minimizes the **oblivious ratio** `r`:
//!   the maximum, over all demand matrices on the commodity set, of the
//!   routing's congestion divided by the best possible congestion for
//!   that matrix. The polynomial-size dual formulation is solved exactly
//!   on the workspace's two-phase simplex, then the splittable optimum
//!   is rounded into one CDG-conforming route per commodity by seeded
//!   randomized rounding.
//! * [`RandomWalkSelector`] (`random-walk`) — a scalable stand-in from
//!   the same family: a seeded greedy walk towards the sink with a
//!   detour probability, demand-independent by construction. Where the
//!   LP's dense tableau would be intractable (the model has `L²·S`
//!   coupling rows for `L` directed links and `S` sources), the walk
//!   still produces oblivious route sets on any topology.
//!
//! Both selectors route inside the scenario's acyclic CDG — every step
//! of a produced route follows a CDG edge restricted to sink-reachable
//! vertices — so the routes are deadlock-free by construction and pass
//! the pipeline's mandatory Lemma-1 certification unchanged.
//!
//! # The Applegate–Cohen LP
//!
//! For directed links `e, h`, commodities `k = (i, j)` (distinct
//! source/destination pairs of the flow set) and commodity sources `i`:
//!
//! ```text
//! minimize  r
//! subject to
//!   f is a unit flow per commodity          (conservation rows)
//!   ∀e:        Σ_h cap(h)·π(e,h) ≤ r
//!   ∀e,(i,j):  f_e(i,j) ≤ cap(e)·p_e(i,j)
//!   ∀e,i,h=(u,v):  π(e,h) + p_e(i,u) − p_e(i,v) ≥ 0,   p_e(i,i) = 0
//!   f, π, p ≥ 0
//! ```
//!
//! The `π(e,·)` row makes `Σ cap·π` a feasible fractional cut against
//! *any* demand matrix; LP duality turns the inner maximization over
//! demand matrices into these polynomially many constraints. The
//! optimum `r` is exactly the best oblivious ratio achievable by any
//! (splittable) routing of the commodity set, and is always ≥ 1.
//!
//! The model is dense: `L² + L·K + L·S·(N−1) + 1` variables. A
//! configurable link budget ([`AcObliviousSelector::with_max_links`])
//! refuses topologies beyond it with a typed
//! [`SelectError::BudgetExceeded`] instead of hanging the dense tableau.

use crate::route::{Route, RouteHop, RouteSet, VcMask};
use crate::selector::SelectError;
use bsor_flow::{Flow, FlowId, FlowNetwork, FlowSet};
use bsor_lp::{Cmp, Model, VarId, VarKind};
use bsor_netgraph::{algo, NodeId as GraphNode};
use bsor_topology::{LinkId, NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Default directed-link budget for the AC LP: admits the WAN sample
/// (14 links), small meshes and rings, and `fullmesh4`; refuses the 8×8
/// mesh (224) and `fullmesh8` (56), whose dense tableaus are intractable.
pub const DEFAULT_MAX_LINKS: usize = 16;

/// Additive weight floor during randomized rounding: keeps
/// CDG-reachable channels with zero LP flow usable when cycle breaking
/// forbids the LP's preferred (CDG-ignorant) paths.
const WALK_EPS: f64 = 1e-6;

/// The Applegate–Cohen worst-case-optimal oblivious selector.
///
/// Solves the dual LP for the optimal splittable oblivious routing of
/// the flow set's commodities, then rounds it into one unsplittable
/// CDG-conforming route per commodity (repeated source/destination
/// pairs share a commodity and therefore a route).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AcObliviousSelector {
    /// Randomized-rounding seed (fold into cache keys: different seeds
    /// round to different route sets).
    pub seed: u64,
    /// Maximum directed links before the LP is refused with
    /// [`SelectError::BudgetExceeded`].
    pub max_links: usize,
}

impl Default for AcObliviousSelector {
    fn default() -> Self {
        AcObliviousSelector {
            seed: 9,
            max_links: DEFAULT_MAX_LINKS,
        }
    }
}

impl AcObliviousSelector {
    /// Selector with default parameters.
    pub fn new() -> Self {
        AcObliviousSelector::default()
    }

    /// Overrides the randomized-rounding seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the directed-link budget.
    #[must_use]
    pub fn with_max_links(mut self, max_links: usize) -> Self {
        self.max_links = max_links;
        self
    }

    /// Solves the AC LP for `commodities` over `topo`, returning the
    /// splittable optimum (oblivious ratio + per-commodity link flows)
    /// without rounding. This is what the ratio table reports.
    ///
    /// # Errors
    ///
    /// [`SelectError::BudgetExceeded`] when `topo` has more directed
    /// links than the budget; [`SelectError::Milp`] when the simplex
    /// fails (an infeasible model indicates a disconnected commodity).
    pub fn solve(
        &self,
        topo: &Topology,
        commodities: &[(NodeId, NodeId)],
    ) -> Result<ObliviousSolution, SelectError> {
        let num_links = topo.num_links();
        if num_links > self.max_links {
            return Err(SelectError::BudgetExceeded {
                links: num_links,
                max_links: self.max_links,
            });
        }
        if commodities.is_empty() {
            return Ok(ObliviousSolution {
                ratio: 1.0,
                commodities: Vec::new(),
                link_flow: Vec::new(),
            });
        }
        let sources: Vec<NodeId> = {
            let set: BTreeSet<NodeId> = commodities.iter().map(|&(i, _)| i).collect();
            set.into_iter().collect()
        };
        let source_index = |node: NodeId| -> usize {
            sources
                .binary_search(&node)
                .expect("every commodity source is listed")
        };
        let l = num_links;
        let n = topo.num_nodes();
        let k = commodities.len();
        let s = sources.len();

        let mut m = Model::minimize();
        // Objective: the oblivious ratio alone.
        let r = m.add_var(VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
        // f[c * l + e]: fraction of commodity c's unit demand on link e.
        let f: Vec<VarId> = (0..k * l)
            .map(|_| m.add_var(VarKind::Continuous, 0.0, f64::INFINITY, 0.0))
            .collect();
        // pi[e * l + h]: the fractional-cut weights certifying link e.
        let pi: Vec<VarId> = (0..l * l)
            .map(|_| m.add_var(VarKind::Continuous, 0.0, f64::INFINITY, 0.0))
            .collect();
        // p[(e * s + si) * n + v]: shortest-path potentials under pi(e,·)
        // from source si; p(i, i) is identically 0 and omitted.
        let p: Vec<Option<VarId>> = (0..l * s * n)
            .map(|idx| {
                let si = (idx / n) % s;
                let v = idx % n;
                if sources[si].index() == v {
                    None
                } else {
                    Some(m.add_var(VarKind::Continuous, 0.0, f64::INFINITY, 0.0))
                }
            })
            .collect();
        let p_at = |e: usize, si: usize, v: usize| p[(e * s + si) * n + v];

        let cap = |e: usize| topo.link(LinkId(e as u32)).capacity;

        // ∀e: Σ_h cap(h)·π(e,h) − r ≤ 0.
        for e in 0..l {
            let mut terms: Vec<(VarId, f64)> = (0..l).map(|h| (pi[e * l + h], cap(h))).collect();
            terms.push((r, -1.0));
            m.add_constraint(terms, Cmp::Le, 0.0);
        }
        // Unit flow conservation per commodity (sink row omitted: it is
        // implied by the others and would only add a redundant equality).
        for (c, &(src, dst)) in commodities.iter().enumerate() {
            for u in topo.node_ids() {
                if u == dst {
                    continue;
                }
                let mut terms: Vec<(VarId, f64)> = Vec::new();
                for &e in topo.out_links(u) {
                    terms.push((f[c * l + e.index()], 1.0));
                }
                for &e in topo.in_links(u) {
                    terms.push((f[c * l + e.index()], -1.0));
                }
                let rhs = if u == src { 1.0 } else { 0.0 };
                m.add_constraint(terms, Cmp::Eq, rhs);
            }
        }
        // ∀e,(i,j): f_e(i,j) − cap(e)·p_e(i,j) ≤ 0.
        for e in 0..l {
            for (c, &(src, dst)) in commodities.iter().enumerate() {
                let pj = p_at(e, source_index(src), dst.index()).expect("dst != src");
                m.add_constraint(vec![(f[c * l + e], 1.0), (pj, -cap(e))], Cmp::Le, 0.0);
            }
        }
        // ∀e,i,h=(u,v): π(e,h) + p_e(i,u) − p_e(i,v) ≥ 0, written as ≤ 0
        // of the negation so phase 1 needs no artificials for these rows.
        for e in 0..l {
            for si in 0..s {
                for h in 0..l {
                    let link = topo.link(LinkId(h as u32));
                    let mut terms = vec![(pi[e * l + h], -1.0)];
                    if let Some(pu) = p_at(e, si, link.src.index()) {
                        terms.push((pu, -1.0));
                    }
                    if let Some(pv) = p_at(e, si, link.dst.index()) {
                        terms.push((pv, 1.0));
                    }
                    m.add_constraint(terms, Cmp::Le, 0.0);
                }
            }
        }

        let sol = m.solve_relaxation().map_err(SelectError::Milp)?;
        let ratio = sol.value(r);
        let link_flow: Vec<Vec<f64>> = (0..k)
            .map(|c| (0..l).map(|e| sol.value(f[c * l + e]).max(0.0)).collect())
            .collect();
        Ok(ObliviousSolution {
            ratio,
            commodities: commodities.to_vec(),
            link_flow,
        })
    }

    /// Solves the LP for the flow set's commodities and rounds the
    /// splittable optimum into one CDG-conforming route per flow.
    ///
    /// # Errors
    ///
    /// [`SelectError::BudgetExceeded`] over the link budget,
    /// [`SelectError::Milp`] when the LP fails, and
    /// [`SelectError::Unroutable`] when the acyclic CDG disconnects a
    /// commodity.
    pub fn select(&self, net: &FlowNetwork<'_>, flows: &FlowSet) -> Result<RouteSet, SelectError> {
        let commodities = commodities_of(flows);
        let sol = self.solve(net.topology(), &commodities)?;
        let cdg = net.acyclic().cdg();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut paths: Vec<Vec<GraphNode>> = Vec::with_capacity(commodities.len());
        for (c, &(src, dst)) in commodities.iter().enumerate() {
            let probe = Flow::new(FlowId(0), src, dst, 1.0);
            let path = guided_walk(net, &probe, &mut rng, |v| {
                sol.link_flow[c][cdg.vertex(v).link.index()] + WALK_EPS
            })
            .ok_or_else(|| unroutable(flows, src, dst))?;
            paths.push(path);
        }
        Ok(routes_from_commodity_paths(
            net,
            flows,
            &commodities,
            &paths,
        ))
    }
}

/// The splittable optimum of the AC LP.
#[derive(Clone, Debug)]
pub struct ObliviousSolution {
    ratio: f64,
    commodities: Vec<(NodeId, NodeId)>,
    /// `link_flow[c][e]`: fraction of commodity `c` on directed link `e`.
    link_flow: Vec<Vec<f64>>,
}

impl ObliviousSolution {
    /// The optimal oblivious ratio: worst-case congestion of this
    /// routing over the best per-matrix congestion, ≥ 1 whenever the
    /// commodity set is nonempty.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// The commodity set the LP was solved for.
    pub fn commodities(&self) -> &[(NodeId, NodeId)] {
        &self.commodities
    }

    /// Fraction of commodity `c`'s demand routed over `link`.
    pub fn link_fraction(&self, c: usize, link: LinkId) -> f64 {
        self.link_flow[c][link.index()]
    }
}

/// A seeded random-walk oblivious selector: at every CDG vertex the walk
/// greedily steps toward the sink (fewest dependence hops remaining),
/// taking a uniformly random sink-reachable detour with probability
/// [`RandomWalkSelector::detour_prob`]. Routes depend only on topology,
/// CDG and seed — never on demands — so the selector is oblivious, and
/// it scales to any topology the CDG covers (no LP involved).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RandomWalkSelector {
    /// Walk seed (fold into cache keys).
    pub seed: u64,
    /// Probability of a uniformly random (still sink-reachable) step
    /// instead of a greedy one. 0 degenerates to randomized-tie-break
    /// BFS; 1 is a uniform random walk on the reachable DAG.
    pub detour_prob: f64,
    /// Hop budget: walks producing a route longer than this are rejected
    /// with [`SelectError::HopBudgetExceeded`] (walks can detour far past
    /// minimal length, which this bounds). `None` is unbounded.
    pub max_hops: Option<usize>,
}

impl Default for RandomWalkSelector {
    fn default() -> Self {
        RandomWalkSelector {
            seed: 9,
            detour_prob: 0.15,
            max_hops: None,
        }
    }
}

impl RandomWalkSelector {
    /// Selector with default parameters.
    pub fn new() -> Self {
        RandomWalkSelector::default()
    }

    /// Overrides the walk seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the detour probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    #[must_use]
    pub fn with_detour_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "detour probability must be in [0, 1]"
        );
        self.detour_prob = p;
        self
    }

    /// Caps route length: any walk producing a route longer than
    /// `max_hops` is refused with [`SelectError::HopBudgetExceeded`].
    #[must_use]
    pub fn with_max_hops(mut self, max_hops: usize) -> Self {
        self.max_hops = Some(max_hops);
        self
    }

    /// Walks one CDG-conforming route per commodity (repeated pairs
    /// share a route), ignoring all demands.
    ///
    /// # Errors
    ///
    /// [`SelectError::Unroutable`] when the acyclic CDG disconnects a
    /// commodity.
    pub fn select(&self, net: &FlowNetwork<'_>, flows: &FlowSet) -> Result<RouteSet, SelectError> {
        let commodities = commodities_of(flows);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut paths: Vec<Vec<GraphNode>> = Vec::with_capacity(commodities.len());
        for &(src, dst) in &commodities {
            let probe = Flow::new(FlowId(0), src, dst, 1.0);
            let path = detour_walk(net, &probe, &mut rng, self.detour_prob)
                .ok_or_else(|| unroutable(flows, src, dst))?;
            paths.push(path);
        }
        let routes = routes_from_commodity_paths(net, flows, &commodities, &paths);
        crate::selector::check_hop_budget(&routes, self.max_hops)?;
        Ok(routes)
    }
}

/// The distinct (source, destination) pairs of a flow set, sorted.
fn commodities_of(flows: &FlowSet) -> Vec<(NodeId, NodeId)> {
    let set: BTreeSet<(NodeId, NodeId)> = flows.iter().map(|f| (f.src, f.dst)).collect();
    set.into_iter().collect()
}

/// The `Unroutable` error for the first flow matching a commodity.
fn unroutable(flows: &FlowSet, src: NodeId, dst: NodeId) -> SelectError {
    let flow = flows
        .iter()
        .find(|f| f.src == src && f.dst == dst)
        .map(|f| f.id)
        .unwrap_or(FlowId(0));
    SelectError::Unroutable { flow }
}

/// Expands per-commodity CDG vertex paths into one route per flow.
fn routes_from_commodity_paths(
    net: &FlowNetwork<'_>,
    flows: &FlowSet,
    commodities: &[(NodeId, NodeId)],
    paths: &[Vec<GraphNode>],
) -> RouteSet {
    let cdg = net.acyclic().cdg();
    RouteSet::from_routes(
        flows
            .iter()
            .map(|flow| {
                let c = commodities
                    .binary_search(&(flow.src, flow.dst))
                    .expect("commodities cover every flow");
                Route {
                    flow: flow.id,
                    hops: paths[c]
                        .iter()
                        .map(|&v| {
                            let cv = cdg.vertex(v);
                            RouteHop {
                                link: cv.link,
                                vcs: VcMask::single(cv.vc.0),
                            }
                        })
                        .collect(),
                }
            })
            .collect(),
    )
}

/// Hop distance from every CDG vertex to the flow's nearest sink
/// (`usize::MAX` when no sink is reachable), plus the sink-reachable
/// start vertices. Restricting every walk step to finite-distance
/// vertices guarantees the walk always has a candidate until it stands
/// on a sink, and the DAG guarantees it gets there in finitely many
/// steps — so the walks below cannot stall or cycle.
fn sink_distances(net: &FlowNetwork<'_>, flow: &Flow) -> (Vec<usize>, Vec<GraphNode>) {
    let graph = net.acyclic().graph();
    let dist = algo::bfs_hops_to(graph, &net.sinks(flow));
    let starts: Vec<GraphNode> = net
        .sources(flow)
        .into_iter()
        .filter(|v| dist[v.index()] != usize::MAX)
        .collect();
    (dist, starts)
}

/// Randomized rounding walk: steps are weighted by `weight_of` (the LP's
/// per-link flow mass plus a floor) over sink-reachable candidates.
fn guided_walk(
    net: &FlowNetwork<'_>,
    flow: &Flow,
    rng: &mut StdRng,
    weight_of: impl Fn(GraphNode) -> f64,
) -> Option<Vec<GraphNode>> {
    let (dist, starts) = sink_distances(net, flow);
    if starts.is_empty() {
        return None;
    }
    let graph = net.acyclic().graph();
    let mut cur = weighted_pick(&starts, rng, &weight_of);
    let mut path = vec![cur];
    while dist[cur.index()] > 0 {
        let candidates: Vec<GraphNode> = graph
            .successors(cur)
            .filter(|v| dist[v.index()] != usize::MAX)
            .collect();
        cur = weighted_pick(&candidates, rng, &weight_of);
        path.push(cur);
    }
    Some(path)
}

/// Greedy-towards-sink walk with a uniform detour probability.
fn detour_walk(
    net: &FlowNetwork<'_>,
    flow: &Flow,
    rng: &mut StdRng,
    detour_prob: f64,
) -> Option<Vec<GraphNode>> {
    let (dist, starts) = sink_distances(net, flow);
    if starts.is_empty() {
        return None;
    }
    let graph = net.acyclic().graph();
    let mut cur = step_pick(&starts, &dist, rng, detour_prob);
    let mut path = vec![cur];
    while dist[cur.index()] > 0 {
        let candidates: Vec<GraphNode> = graph
            .successors(cur)
            .filter(|v| dist[v.index()] != usize::MAX)
            .collect();
        cur = step_pick(&candidates, &dist, rng, detour_prob);
        path.push(cur);
    }
    Some(path)
}

/// Weighted choice among `items` (weights are strictly positive).
fn weighted_pick(
    items: &[GraphNode],
    rng: &mut StdRng,
    weight_of: impl Fn(GraphNode) -> f64,
) -> GraphNode {
    debug_assert!(!items.is_empty());
    let total: f64 = items.iter().map(|&v| weight_of(v)).sum();
    let mut t = rng.gen_range(0.0..total);
    for &v in items {
        t -= weight_of(v);
        if t <= 0.0 {
            return v;
        }
    }
    *items.last().expect("non-empty candidate set")
}

/// One random-walk step: uniformly random with probability
/// `detour_prob`, otherwise uniform among the closest-to-sink candidates.
fn step_pick(items: &[GraphNode], dist: &[usize], rng: &mut StdRng, detour_prob: f64) -> GraphNode {
    debug_assert!(!items.is_empty());
    if detour_prob > 0.0 && rng.gen_bool(detour_prob) {
        return items[rng.gen_range(0..items.len())];
    }
    let best = items
        .iter()
        .map(|v| dist[v.index()])
        .min()
        .expect("non-empty candidate set");
    let closest: Vec<GraphNode> = items
        .iter()
        .copied()
        .filter(|v| dist[v.index()] == best)
        .collect();
    closest[rng.gen_range(0..closest.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadlock;
    use bsor_cdg::{AcyclicCdg, TurnModel};

    fn mesh_flows(topo: &Topology, demand: f64) -> FlowSet {
        let mut fs = FlowSet::new();
        let n = topo.num_nodes() as u32;
        for i in 0..n {
            let j = (i + n / 2) % n;
            if i != j {
                fs.push(NodeId(i), NodeId(j), demand);
            }
        }
        fs
    }

    fn all_pairs(topo: &Topology) -> Vec<(NodeId, NodeId)> {
        let mut pairs = Vec::new();
        for a in topo.node_ids() {
            for b in topo.node_ids() {
                if a != b {
                    pairs.push((a, b));
                }
            }
        }
        pairs
    }

    #[test]
    fn single_commodity_ratio_is_one() {
        // With one commodity, scaling invariance makes any fixed routing
        // of it worst-case optimal: the ratio is exactly 1.
        let topo = Topology::ring(4);
        let commodities = vec![(NodeId(0), NodeId(2))];
        let sol = AcObliviousSelector::new()
            .solve(&topo, &commodities)
            .expect("in budget");
        assert!((sol.ratio() - 1.0).abs() < 1e-4, "ratio {}", sol.ratio());
    }

    #[test]
    fn ring_ratios_match_theory() {
        // All-pairs demands on the n-cycle have optimal oblivious ratio
        // 2 - 2/n (Cohen et al.); the two-commodity case on the 4-ring
        // works out to 6/5 by hand (the long alternatives of (0,1) and
        // (2,3) share both reverse links, so a direct-fraction a gives
        // max(2a, max(a, 2(1-a)) * 3/2) minimized at a = 2/3).
        let ring4 = Topology::ring(4);
        let ring5 = Topology::ring(5);
        for (topo, commodities, expect) in [
            (&ring4, all_pairs(&ring4), 1.5),
            (&ring5, all_pairs(&ring5), 1.6),
            (
                &ring4,
                vec![(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))],
                1.2,
            ),
        ] {
            let sol = AcObliviousSelector::new()
                .solve(topo, &commodities)
                .expect("in budget");
            assert!(
                (sol.ratio() - expect).abs() < 1e-3,
                "expected {expect}, got {}",
                sol.ratio()
            );
        }
    }

    #[test]
    fn ratio_is_finite_and_at_least_one_on_small_topologies() {
        let fm4 = bsor_topology::full_mesh(4).expect("valid");
        // Star commodities keep the fullmesh LP small enough for a
        // debug-mode test; the rings get the full all-pairs set.
        let star: Vec<_> = fm4
            .node_ids()
            .filter(|&b| b != NodeId(0))
            .map(|b| (NodeId(0), b))
            .collect();
        let mesh = Topology::mesh2d(2, 2);
        for (topo, commodities) in [(&mesh, all_pairs(&mesh)), (&fm4, star)] {
            let sol = AcObliviousSelector::new()
                .solve(topo, &commodities)
                .expect("in budget");
            assert!(sol.ratio().is_finite());
            // 1e-4 slack: the solver's rhs anti-degeneracy perturbation
            // costs ~1e-5 of absolute precision on these models.
            assert!(sol.ratio() >= 1.0 - 1e-4, "ratio {}", sol.ratio());
        }
    }

    #[test]
    fn lp_flows_conserve_unit_demand() {
        let topo = Topology::mesh2d(2, 2);
        let commodities = vec![(NodeId(0), NodeId(3))];
        let sol = AcObliviousSelector::new()
            .solve(&topo, &commodities)
            .expect("in budget");
        // Net outflow at the source is the unit demand.
        let out: f64 = topo
            .out_links(NodeId(0))
            .iter()
            .map(|&e| sol.link_fraction(0, e))
            .sum();
        let inn: f64 = topo
            .in_links(NodeId(0))
            .iter()
            .map(|&e| sol.link_fraction(0, e))
            .sum();
        assert!((out - inn - 1.0).abs() < 1e-6);
    }

    #[test]
    fn budget_refusal_is_typed() {
        let topo = Topology::mesh2d(8, 8);
        let err = AcObliviousSelector::new()
            .solve(&topo, &[(NodeId(0), NodeId(63))])
            .unwrap_err();
        match err {
            SelectError::BudgetExceeded { links, max_links } => {
                assert_eq!(links, topo.num_links());
                assert_eq!(max_links, DEFAULT_MAX_LINKS);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        // A raised budget would accept it (not solved here: too slow).
        assert!(topo.num_links() <= 224);
    }

    #[test]
    fn ac_routes_are_valid_and_deadlock_free() {
        let topo = Topology::mesh2d(2, 2);
        let acyclic = AcyclicCdg::turn_model(&topo, 2, &TurnModel::west_first()).expect("valid");
        let net = FlowNetwork::new(&topo, &acyclic);
        let flows = mesh_flows(&topo, 10.0);
        let routes = AcObliviousSelector::new()
            .select(&net, &flows)
            .expect("routable");
        routes.validate(&topo, &flows, 2).expect("valid");
        assert!(deadlock::is_deadlock_free(&topo, &routes, 2));
    }

    #[test]
    fn ac_select_is_deterministic_per_seed() {
        let topo = Topology::mesh2d(2, 2);
        let acyclic = AcyclicCdg::turn_model(&topo, 2, &TurnModel::west_first()).expect("valid");
        let net = FlowNetwork::new(&topo, &acyclic);
        let flows = mesh_flows(&topo, 10.0);
        let sel = AcObliviousSelector::new().with_seed(42);
        let a = sel.select(&net, &flows).expect("routable");
        let b = sel.select(&net, &flows).expect("routable");
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_pairs_share_one_commodity_route() {
        let topo = Topology::ring(4);
        let acyclic = AcyclicCdg::ad_hoc(&topo, 2, 1);
        let net = FlowNetwork::new(&topo, &acyclic);
        let mut flows = FlowSet::new();
        flows.push(NodeId(0), NodeId(2), 5.0);
        flows.push(NodeId(0), NodeId(2), 7.0);
        let routes = RandomWalkSelector::new().select(&net, &flows).expect("ok");
        assert_eq!(
            routes.route(FlowId(0)).hops,
            routes.route(FlowId(1)).hops,
            "one commodity, one route"
        );
    }

    #[test]
    fn random_walk_routes_every_topology_family() {
        for topo in [
            Topology::mesh2d(4, 4),
            Topology::ring(6),
            bsor_topology::full_mesh(5).expect("valid"),
        ] {
            let acyclic = if topo.kind() == bsor_topology::TopologyKind::Mesh2D {
                AcyclicCdg::turn_model(&topo, 2, &TurnModel::west_first()).expect("valid")
            } else {
                AcyclicCdg::up_down(&topo, 2).expect("valid")
            };
            let net = FlowNetwork::new(&topo, &acyclic);
            let flows = mesh_flows(&topo, 10.0);
            let routes = RandomWalkSelector::new()
                .select(&net, &flows)
                .expect("routable");
            routes.validate(&topo, &flows, 2).expect("valid");
            assert!(deadlock::is_deadlock_free(&topo, &routes, 2));
        }
    }

    #[test]
    fn random_walk_is_deterministic_and_seed_sensitive() {
        let topo = Topology::mesh2d(4, 4);
        let acyclic = AcyclicCdg::turn_model(&topo, 2, &TurnModel::west_first()).expect("valid");
        let net = FlowNetwork::new(&topo, &acyclic);
        let flows = mesh_flows(&topo, 10.0);
        let a = RandomWalkSelector::new()
            .with_seed(1)
            .select(&net, &flows)
            .expect("ok");
        let b = RandomWalkSelector::new()
            .with_seed(1)
            .select(&net, &flows)
            .expect("ok");
        let c = RandomWalkSelector::new()
            .with_seed(2)
            .select(&net, &flows)
            .expect("ok");
        assert_eq!(a, b);
        // Seeds are allowed to coincide on tiny instances, but on a 4x4
        // transposed-halves flow set two seeds routing identically would
        // indicate the rng is ignored.
        assert_ne!(a, c, "different seeds should explore different walks");
    }

    #[test]
    fn random_walk_hop_budget_refuses_long_walks() {
        let topo = Topology::mesh2d(4, 4);
        let acyclic = AcyclicCdg::turn_model(&topo, 2, &TurnModel::west_first()).expect("valid");
        let net = FlowNetwork::new(&topo, &acyclic);
        let flows = mesh_flows(&topo, 10.0);
        let err = RandomWalkSelector::new()
            .with_max_hops(1)
            .select(&net, &flows)
            .expect_err("corner-to-corner cannot fit in 1 hop");
        assert!(matches!(
            err,
            crate::selector::SelectError::HopBudgetExceeded { max_hops: 1, .. }
        ));
        // An ample budget reproduces the unbudgeted selection exactly.
        let free = RandomWalkSelector::new().select(&net, &flows).expect("ok");
        let capped = RandomWalkSelector::new()
            .with_max_hops(1000)
            .select(&net, &flows)
            .expect("ok");
        assert_eq!(free, capped);
    }

    #[test]
    fn zero_detour_walk_takes_shortest_cdg_routes() {
        let topo = Topology::mesh2d(3, 3);
        let acyclic = AcyclicCdg::turn_model(&topo, 2, &TurnModel::west_first()).expect("valid");
        let net = FlowNetwork::new(&topo, &acyclic);
        let mut flows = FlowSet::new();
        flows.push(NodeId(0), NodeId(8), 10.0);
        let routes = RandomWalkSelector::new()
            .with_detour_prob(0.0)
            .select(&net, &flows)
            .expect("ok");
        let probe = Flow::new(FlowId(0), NodeId(0), NodeId(8), 10.0);
        let min_links = net.min_route_links(&probe).expect("connected");
        assert_eq!(routes.route(FlowId(0)).len(), min_links);
    }

    #[test]
    fn empty_commodity_set_solves_trivially() {
        let topo = Topology::ring(4);
        let sol = AcObliviousSelector::new().solve(&topo, &[]).expect("ok");
        assert_eq!(sol.ratio(), 1.0);
        assert!(sol.commodities().is_empty());
    }
}
