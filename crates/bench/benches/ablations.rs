//! Ablation benches for the design knobs DESIGN.md calls out: the
//! hop-count slack of the MILP (paper §3.5, "hopᵢ should be incremented
//! by 2 or more"), the Dijkstra weight constant `M` (paper §3.6), and
//! the breadth of the CDG exploration. Each benchmark's *report line*
//! carries the quality (MCL) in its id so `cargo bench` output doubles
//! as the ablation table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bsor_cdg::{AcyclicCdg, TurnModel};
use bsor_flow::{FlowNetwork, WeightParams};
use bsor_lp::MilpOptions;
use bsor_routing::selectors::{DijkstraSelector, MilpSelector};
use bsor_topology::Topology;
use bsor_workloads::transpose;

fn ablate_hop_slack(c: &mut Criterion) {
    let mesh = Topology::mesh2d(4, 4);
    let w = transpose(&mesh).expect("square");
    let acyclic =
        AcyclicCdg::turn_model(&mesh, 1, &TurnModel::negative_first().mirrored_y()).expect("valid");
    let mut g = c.benchmark_group("hop_slack");
    g.sample_size(10);
    for slack in [0usize, 2, 4] {
        let net = FlowNetwork::new(&mesh, &acyclic);
        let selector = MilpSelector::new()
            .with_hop_slack(slack)
            .with_max_paths(60)
            .with_options(MilpOptions {
                max_nodes: 20,
                time_limit: Some(Duration::from_secs(5)),
                ..MilpOptions::default()
            });
        let (routes, _) = selector.select(&net, &w.flows).expect("solvable");
        let mcl = routes.mcl(&mesh, &w.flows);
        g.bench_with_input(
            BenchmarkId::new(format!("slack_{slack}_mcl_{mcl:.0}"), slack),
            &slack,
            |b, _| {
                b.iter(|| {
                    let net = FlowNetwork::new(&mesh, &acyclic);
                    selector.select(&net, &w.flows).expect("solvable")
                });
            },
        );
    }
    g.finish();
}

fn ablate_weight_constant(c: &mut Criterion) {
    let mesh = Topology::mesh2d(8, 8);
    let w = transpose(&mesh).expect("square");
    let acyclic =
        AcyclicCdg::turn_model(&mesh, 2, &TurnModel::negative_first().mirrored_y()).expect("valid");
    let mut g = c.benchmark_group("weight_m");
    g.sample_size(20);
    for m_const in [10.0, 100.0, 1000.0, 10_000.0] {
        let selector = DijkstraSelector::new().with_weights(WeightParams {
            m_const,
            vc_bias: 0.001 / m_const,
        });
        let net = FlowNetwork::new(&mesh, &acyclic);
        let routes = selector.select(&net, &w.flows).expect("routable");
        let mcl = routes.mcl(&mesh, &w.flows);
        let hops = routes.mean_hops();
        g.bench_with_input(
            BenchmarkId::new(
                format!("m_{m_const}_mcl_{mcl:.0}_hops_{hops:.2}"),
                m_const as u64,
            ),
            &m_const,
            |b, _| {
                b.iter(|| {
                    let net = FlowNetwork::new(&mesh, &acyclic);
                    selector.select(&net, &w.flows).expect("routable")
                });
            },
        );
    }
    g.finish();
}

fn ablate_exploration_breadth(c: &mut Criterion) {
    let mesh = Topology::mesh2d(8, 8);
    let w = transpose(&mesh).expect("square");
    let models = TurnModel::valid_models(&mesh).expect("grid");
    let mut g = c.benchmark_group("exploration");
    g.sample_size(10);
    for breadth in [1usize, 4, 12] {
        let subset: Vec<_> = models.iter().take(breadth).cloned().collect();
        // Quality of the best CDG within the subset.
        let mut best = f64::INFINITY;
        for m in &subset {
            let acyclic = AcyclicCdg::turn_model(&mesh, 2, m).expect("valid");
            let net = FlowNetwork::new(&mesh, &acyclic);
            let routes = DijkstraSelector::new()
                .select(&net, &w.flows)
                .expect("routable");
            best = best.min(routes.mcl(&mesh, &w.flows));
        }
        g.bench_with_input(
            BenchmarkId::new(format!("breadth_{breadth}_best_{best:.0}"), breadth),
            &breadth,
            |b, _| {
                b.iter(|| {
                    let mut best = f64::INFINITY;
                    for m in &subset {
                        let acyclic = AcyclicCdg::turn_model(&mesh, 2, m).expect("valid");
                        let net = FlowNetwork::new(&mesh, &acyclic);
                        let routes = DijkstraSelector::new()
                            .select(&net, &w.flows)
                            .expect("routable");
                        best = best.min(routes.mcl(&mesh, &w.flows));
                    }
                    best
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    ablate_hop_slack,
    ablate_weight_constant,
    ablate_exploration_breadth
);
criterion_main!(benches);
