//! The arbitrary-graph topology subsystem end to end: every registered
//! algorithm on every generated/loaded graph family (dragonfly,
//! fat-tree, full mesh, file-loaded WAN) composes through
//! `ScenarioBuilder` into deadlock-free routes or a *typed* refusal —
//! never a panic — including the one-VC path where the up*/down* escape
//! ordering is the only thing standing between the explorer and an
//! unroutable CDG.

use bsor::{AlgorithmRegistry, BsorAlgorithm, Scenario, TopologyRegistry};
use bsor_repro::flow::FlowSet;
use bsor_repro::routing::{deadlock, SelectError};
use bsor_repro::sim::{AlgorithmError, ExperimentError};
use bsor_repro::topology::{NodeId, Topology};
use proptest::prelude::*;

/// One spec per new topology family, all resolved through the same
/// registry grammar the CLI and the plan server use.
fn family_specs() -> Vec<String> {
    vec![
        "dragonfly:2,3,2".to_owned(),
        "fattree:4".to_owned(),
        "fullmesh:6".to_owned(),
        format!(
            "file:{}/assets/topologies/wan5.topo",
            env!("CARGO_MANIFEST_DIR")
        ),
    ]
}

/// A shift pattern that exists on every topology: node i sends to
/// node (i + n/2) mod n.
fn shift_flows(topo: &Topology) -> FlowSet {
    let mut flows = FlowSet::new();
    let n = topo.num_nodes() as u32;
    for i in 0..n {
        let j = (i + n / 2) % n;
        if i != j {
            flows.push(NodeId(i), NodeId(j), 10.0);
        }
    }
    flows
}

/// The full matrix, exhaustively: family × registered algorithm × 1–2
/// VCs. Grid-only baselines must refuse with the typed
/// `UnsupportedTopology`; the exploring framework must route.
#[test]
fn every_algorithm_on_every_graph_family_is_deadlock_free_or_typed() {
    let topologies = TopologyRegistry::standard();
    let algorithms = AlgorithmRegistry::standard();
    for spec in family_specs() {
        for vcs in 1u8..=2 {
            let topo = topologies.build_spec(&spec).expect("family specs build");
            let flows = shift_flows(&topo);
            let scenario = Scenario::builder(topo, flows)
                .named(format!("{spec}-shift-{vcs}vc"))
                .vcs(vcs)
                .build()
                .expect("family scenarios build");
            assert_eq!(
                scenario.cdg().name(),
                "up-down",
                "arbitrary graphs default to the up*/down* escape ordering"
            );
            for algo_name in algorithms.names() {
                let algorithm = algorithms.get(algo_name).expect("listed names resolve");
                match scenario.select_routes(algorithm) {
                    Ok(routes) => {
                        assert_eq!(routes.len(), scenario.flows().len());
                        assert!(
                            deadlock::is_deadlock_free(scenario.topology(), &routes, vcs),
                            "{algo_name} on {spec} at {vcs} VCs returned a cyclic route set"
                        );
                    }
                    Err(ExperimentError::Algorithm(AlgorithmError::UnsupportedTopology {
                        ..
                    })) => {
                        // Dimension-order baselines legitimately refuse
                        // non-grid graphs; the framework may not.
                        assert!(
                            !algo_name.starts_with("bsor"),
                            "{algo_name} refused {spec}, which it must support"
                        );
                    }
                    Err(ExperimentError::Algorithm(AlgorithmError::Select(
                        SelectError::BudgetExceeded { links, max_links },
                    ))) => {
                        // The AC oblivious LP refuses graphs over its
                        // link budget — typed, and only from that
                        // algorithm.
                        assert_eq!(
                            algo_name, "ac-oblivious",
                            "only the LP selector carries a link budget"
                        );
                        assert!(links > max_links);
                    }
                    Err(other) => {
                        panic!("{algo_name} on {spec} at {vcs} VCs failed unexpectedly: {other}")
                    }
                }
            }
            // The one-VC run above is the escape-ordering path: with no
            // spare VC to break cycles, only the up*/down* rank keeps
            // every pair routable.
            let routes = scenario
                .select_routes(&BsorAlgorithm::dijkstra())
                .expect("bsor-dijkstra routes every graph family");
            assert!(deadlock::is_deadlock_free(
                scenario.topology(),
                &routes,
                vcs
            ));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random flow sets on random families stay deadlock-free through
    /// the same builder pipeline (node ids folded into each family's
    /// node count, self-loops dropped).
    #[test]
    fn random_flows_on_graph_families_stay_deadlock_free(
        family in 0usize..4,
        vcs in 1u8..=2,
        triples in prop::collection::vec((0u32..64, 0u32..64, 1.0..100.0f64), 1..16),
    ) {
        let spec = &family_specs()[family];
        let topo = TopologyRegistry::standard()
            .build_spec(spec)
            .expect("family specs build");
        let n = topo.num_nodes() as u32;
        let mut flows = FlowSet::new();
        for (s, d, dem) in &triples {
            let (s, d) = (s % n, d % n);
            if s != d {
                flows.push(NodeId(s), NodeId(d), *dem);
            }
        }
        if flows.is_empty() {
            flows.push(NodeId(0), NodeId(1), 1.0);
        }
        let scenario = Scenario::builder(topo, flows).vcs(vcs).build().expect("builds");
        let routes = scenario
            .select_routes(&BsorAlgorithm::dijkstra())
            .expect("bsor-dijkstra routes every graph family");
        prop_assert!(routes.validate(scenario.topology(), scenario.flows(), vcs).is_ok());
        prop_assert!(deadlock::is_deadlock_free(scenario.topology(), &routes, vcs));
    }
}
