//! Regenerates **Table 6.3**: "Comparison of Maximum Channel Load (MCL)
//! in MB/second presented by various routing algorithms" — XY, YX, ROMM,
//! Valiant, BSOR_MILP and BSOR_Dijkstra (each BSOR taking the best CDG of
//! its exploration, as in the paper). An O1TURN column is added as an
//! extension.
//!
//! ```text
//! cargo run -p bsor-bench --release --bin table_6_3 [--quick] [--csv]
//! ```

use bsor_bench::{algorithm_routes, csv_mode, fmt_row, standard_mesh};
use bsor_routing::Baseline;
use bsor_workloads::all_six;

fn main() {
    let topo = standard_mesh();
    let workloads = all_six(&topo).expect("8x8 supports all workloads");
    let csv = csv_mode();

    println!("Table 6.3: MCL (MB/s) by routing algorithm (+O1TURN extension)");
    let header: Vec<String> = vec![
        "Traffic".into(),
        "XY".into(),
        "YX".into(),
        "ROMM".into(),
        "Valiant".into(),
        "BSOR-MILP".into(),
        "BSOR-Dijkstra".into(),
        "O1TURN".into(),
    ];
    let widths = [16usize, 8, 8, 8, 8, 10, 14, 8];
    if csv {
        println!("{}", header.join(","));
    } else {
        println!("{}", fmt_row(&header, &widths));
    }
    for w in &workloads {
        let mut cells: Vec<String> = vec![w.name.clone()];
        for (_, routes) in algorithm_routes(&topo, w, 2) {
            cells.push(match routes {
                Ok(r) => format!("{:.2}", r.mcl(&topo, &w.flows)),
                Err(e) => format!("({e})"),
            });
        }
        // O1TURN extension column.
        let o1turn = Baseline::O1Turn { seed: 9 }.select(&topo, &w.flows, 2);
        cells.push(match o1turn {
            Ok(r) => format!("{:.2}", r.mcl(&topo, &w.flows)),
            Err(e) => format!("({e})"),
        });
        if csv {
            println!("{}", cells.join(","));
        } else {
            println!("{}", fmt_row(&cells, &widths));
        }
    }
}
