//! # bsor-topology
//!
//! Network-on-chip topologies for the BSOR reproduction: nodes, directed
//! channels (links) with bandwidth capacities, and the grid geometry
//! (coordinates, port directions) that the turn-model cycle breaking in
//! `bsor-cdg` relies on.
//!
//! The paper illustrates BSOR on a two-dimensional mesh but stresses that
//! the technique is topology independent; accordingly [`Topology`] is a
//! concrete description that several constructors produce: [`Topology::mesh2d`]
//! (the paper's substrate), [`Topology::torus2d`] and [`Topology::ring`].
//!
//! ```
//! use bsor_topology::{Topology, Direction};
//!
//! let mesh = Topology::mesh2d(3, 3);
//! assert_eq!(mesh.num_nodes(), 9);
//! // 2 directed links per adjacent pair: 2 * (3*2 + 3*2) = 24.
//! assert_eq!(mesh.num_links(), 24);
//! let a = mesh.node_at(0, 0).unwrap();
//! let b = mesh.node_at(1, 0).unwrap();
//! let l = mesh.find_link(a, b).unwrap();
//! assert_eq!(mesh.link(l).direction, Some(Direction::East));
//! ```

pub mod geometry;
pub mod graph;
pub mod index;
pub mod net;
pub mod registry;

pub use geometry::{Coord, Direction};
pub use graph::{
    directed_graph, dragonfly, fat_tree, full_mesh, load_topology_file, parse_topology_file,
    TopologyFileError,
};
pub use index::TopoIndex;
pub use net::{Link, LinkId, NodeId, Topology, TopologyKind};
pub use registry::{TopologyError, TopologyFactory, TopologyFamilyFactory, TopologyRegistry};
