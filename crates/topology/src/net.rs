//! The concrete topology description: nodes, directed links, adjacency.

use crate::geometry::{Coord, Direction};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a network node (router + attached resource).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Dense index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Identifier of a directed channel between two adjacent nodes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Dense index of the link.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A directed channel `src -> dst` with a bandwidth capacity.
#[derive(Clone, Debug, PartialEq)]
pub struct Link {
    /// Upstream node.
    pub src: NodeId,
    /// Downstream node.
    pub dst: NodeId,
    /// Grid direction of the channel, when the topology is a grid.
    pub direction: Option<Direction>,
    /// Bandwidth capacity in MB/s.
    pub capacity: f64,
}

/// The family a [`Topology`] was constructed from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// Two-dimensional mesh.
    Mesh2D,
    /// Two-dimensional torus (mesh with wraparound links).
    Torus2D,
    /// Unidirectional-pair ring.
    Ring,
    /// Binary hypercube (paper Figure 1-3(c)).
    Hypercube,
    /// Dragonfly: fully-connected groups joined by global links
    /// (see [`crate::graph::dragonfly`]).
    Dragonfly,
    /// k-ary fat tree: core, aggregation and edge switch tiers
    /// (see [`crate::graph::fat_tree`]).
    FatTree,
    /// Full mesh (complete graph, see [`crate::graph::full_mesh`]).
    FullMesh,
    /// An arbitrary graph loaded from an edge-list description
    /// (see [`crate::graph::load_topology_file`]).
    Arbitrary,
}

/// A network-on-chip interconnect: nodes joined by directed channels.
///
/// Construct with [`Topology::mesh2d`], [`Topology::torus2d`] or
/// [`Topology::ring`]; customize capacities with
/// [`Topology::set_uniform_capacity`].
#[derive(Clone, Debug)]
pub struct Topology {
    kind: TopologyKind,
    width: u16,
    height: u16,
    coords: Vec<Coord>,
    links: Vec<Link>,
    out: Vec<Vec<LinkId>>,
    incoming: Vec<Vec<LinkId>>,
    lookup: HashMap<(NodeId, NodeId), LinkId>,
    /// Ratio of resource-to-switch bandwidth over switch-to-switch
    /// bandwidth (the paper's evaluation uses 4).
    local_bandwidth_factor: f64,
}

/// Default switch-to-switch channel capacity in MB/s.
pub const DEFAULT_CAPACITY: f64 = 1000.0;

impl Topology {
    pub(crate) fn from_parts(
        kind: TopologyKind,
        width: u16,
        height: u16,
        coords: Vec<Coord>,
    ) -> Self {
        Topology {
            kind,
            width,
            height,
            out: vec![Vec::new(); coords.len()],
            incoming: vec![Vec::new(); coords.len()],
            coords,
            links: Vec::new(),
            lookup: HashMap::new(),
            local_bandwidth_factor: 4.0,
        }
    }

    pub(crate) fn push_link(&mut self, src: NodeId, dst: NodeId, direction: Option<Direction>) {
        debug_assert!(src != dst, "self links are not allowed");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            src,
            dst,
            direction,
            capacity: DEFAULT_CAPACITY,
        });
        self.out[src.index()].push(id);
        self.incoming[dst.index()].push(id);
        self.lookup.insert((src, dst), id);
    }

    /// Builds a `width x height` two-dimensional mesh with one channel in
    /// each direction between adjacent nodes.
    ///
    /// Node `(x, y)` has id `y * width + x`.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero or the mesh has fewer than 2
    /// nodes.
    pub fn mesh2d(width: u16, height: u16) -> Self {
        assert!(
            width >= 1 && height >= 1,
            "mesh dimensions must be positive"
        );
        assert!(
            width as usize * height as usize >= 2,
            "mesh needs at least 2 nodes"
        );
        let coords = (0..height)
            .flat_map(|y| (0..width).map(move |x| Coord::new(x, y)))
            .collect();
        let mut t = Topology::from_parts(TopologyKind::Mesh2D, width, height, coords);
        for y in 0..height {
            for x in 0..width {
                let here = t.node_at(x, y).expect("in range");
                if x + 1 < width {
                    let east = t.node_at(x + 1, y).expect("in range");
                    t.push_link(here, east, Some(Direction::East));
                    t.push_link(east, here, Some(Direction::West));
                }
                if y + 1 < height {
                    let north = t.node_at(x, y + 1).expect("in range");
                    t.push_link(here, north, Some(Direction::North));
                    t.push_link(north, here, Some(Direction::South));
                }
            }
        }
        t
    }

    /// Builds a `width x height` two-dimensional torus: a mesh plus
    /// wraparound channels in both dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is smaller than 3 (wraparound links would
    /// duplicate mesh links otherwise).
    pub fn torus2d(width: u16, height: u16) -> Self {
        assert!(width >= 3 && height >= 3, "torus dimensions must be >= 3");
        let mut t = Topology::mesh2d(width, height);
        t.kind = TopologyKind::Torus2D;
        for y in 0..height {
            let west_edge = t.node_at(0, y).expect("in range");
            let east_edge = t.node_at(width - 1, y).expect("in range");
            t.push_link(east_edge, west_edge, Some(Direction::East));
            t.push_link(west_edge, east_edge, Some(Direction::West));
        }
        for x in 0..width {
            let south_edge = t.node_at(x, 0).expect("in range");
            let north_edge = t.node_at(x, height - 1).expect("in range");
            t.push_link(north_edge, south_edge, Some(Direction::North));
            t.push_link(south_edge, north_edge, Some(Direction::South));
        }
        t
    }

    /// Builds a binary hypercube of dimension `dim` (2^dim nodes, one
    /// channel pair between nodes differing in exactly one address bit —
    /// the orthogonal topology of paper Figure 1-3(c)).
    ///
    /// Hypercube channels carry no 2-D grid direction, so turn models do
    /// not apply; use ad-hoc cycle breaking. Coordinates fold the address
    /// into a grid purely for display.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= dim <= 10`.
    pub fn hypercube(dim: u8) -> Self {
        assert!((1..=10).contains(&dim), "dimension must be 1..=10");
        let n = 1usize << dim;
        let half = dim / 2;
        let coords = (0..n)
            .map(|i| Coord::new((i & ((1 << half) - 1)) as u16, (i >> half) as u16))
            .collect();
        let mut t = Topology::from_parts(
            TopologyKind::Hypercube,
            1u16 << half,
            (n >> half) as u16,
            coords,
        );
        for i in 0..n {
            for b in 0..dim {
                let j = i ^ (1 << b);
                if j > i {
                    t.push_link(NodeId(i as u32), NodeId(j as u32), None);
                    t.push_link(NodeId(j as u32), NodeId(i as u32), None);
                }
            }
        }
        t
    }

    /// Builds a bidirectional ring of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn ring(n: u16) -> Self {
        assert!(n >= 3, "ring needs at least 3 nodes");
        let coords = (0..n).map(|i| Coord::new(i, 0)).collect();
        let mut t = Topology::from_parts(TopologyKind::Ring, n, 1, coords);
        for i in 0..n {
            let here = NodeId(i as u32);
            let next = NodeId(((i + 1) % n) as u32);
            t.push_link(here, next, None);
            t.push_link(next, here, None);
        }
        t
    }

    /// The family this topology belongs to.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Grid width (number of columns); 1-row topologies report their length.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Grid height (number of rows).
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Number of directed links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.coords.len() as u32).map(NodeId)
    }

    /// Iterator over all link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len() as u32).map(LinkId)
    }

    /// The node at grid position `(x, y)`, if in range.
    pub fn node_at(&self, x: u16, y: u16) -> Option<NodeId> {
        if x < self.width && y < self.height {
            Some(NodeId(y as u32 * self.width as u32 + x as u32))
        } else {
            None
        }
    }

    /// Grid coordinate of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coord(&self, node: NodeId) -> Coord {
        self.coords[node.index()]
    }

    /// The link record for `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn link(&self, link: LinkId) -> &Link {
        &self.links[link.index()]
    }

    /// Links leaving `node`.
    pub fn out_links(&self, node: NodeId) -> &[LinkId] {
        &self.out[node.index()]
    }

    /// Links entering `node`.
    pub fn in_links(&self, node: NodeId) -> &[LinkId] {
        &self.incoming[node.index()]
    }

    /// The link `src -> dst` if the nodes are adjacent.
    pub fn find_link(&self, src: NodeId, dst: NodeId) -> Option<LinkId> {
        self.lookup.get(&(src, dst)).copied()
    }

    /// Neighbour of `node` in grid direction `dir`, if the channel exists.
    pub fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        self.out[node.index()]
            .iter()
            .map(|&l| &self.links[l.index()])
            .find(|l| l.direction == Some(dir))
            .map(|l| l.dst)
    }

    /// Sets every switch-to-switch channel's capacity to `capacity` MB/s.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive.
    pub fn set_uniform_capacity(&mut self, capacity: f64) {
        assert!(capacity > 0.0, "capacity must be positive");
        for l in &mut self.links {
            l.capacity = capacity;
        }
    }

    /// Sets one channel's capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive or `link` is out of range.
    pub fn set_capacity(&mut self, link: LinkId, capacity: f64) {
        assert!(capacity > 0.0, "capacity must be positive");
        self.links[link.index()].capacity = capacity;
    }

    /// Largest channel capacity in the network (used as the `M` constant of
    /// the Dijkstra selector's weight function).
    pub fn max_capacity(&self) -> f64 {
        self.links
            .iter()
            .map(|l| l.capacity)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Ratio of resource-to-switch over switch-to-switch bandwidth
    /// (default 4, per the paper's evaluation setup).
    pub fn local_bandwidth_factor(&self) -> f64 {
        self.local_bandwidth_factor
    }

    /// Overrides the resource-to-switch bandwidth factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0`.
    pub fn set_local_bandwidth_factor(&mut self, factor: f64) {
        assert!(factor >= 1.0, "local bandwidth factor must be >= 1");
        self.local_bandwidth_factor = factor;
    }

    /// Minimum hop count between two nodes (BFS over links; Manhattan
    /// distance on meshes).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn min_hops(&self, src: NodeId, dst: NodeId) -> usize {
        if src == dst {
            return 0;
        }
        if self.kind == TopologyKind::Mesh2D {
            return self.coord(src).manhattan(self.coord(dst)) as usize;
        }
        // BFS for wraparound topologies.
        let mut dist = vec![usize::MAX; self.num_nodes()];
        let mut queue = std::collections::VecDeque::new();
        dist[src.index()] = 0;
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            if v == dst {
                return dist[v.index()];
            }
            for &l in &self.out[v.index()] {
                let w = self.links[l.index()].dst;
                if dist[w.index()] == usize::MAX {
                    dist[w.index()] = dist[v.index()] + 1;
                    queue.push_back(w);
                }
            }
        }
        unreachable!("topologies are connected");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_counts() {
        let t = Topology::mesh2d(3, 3);
        assert_eq!(t.num_nodes(), 9);
        assert_eq!(t.num_links(), 24);
        let t = Topology::mesh2d(8, 8);
        assert_eq!(t.num_nodes(), 64);
        // 2 * 2 * 8 * 7 = 224 directed channels.
        assert_eq!(t.num_links(), 224);
    }

    #[test]
    fn mesh_node_indexing() {
        let t = Topology::mesh2d(4, 3);
        let n = t.node_at(2, 1).expect("in range");
        assert_eq!(n, NodeId(6));
        assert_eq!(t.coord(n), Coord::new(2, 1));
        assert!(t.node_at(4, 0).is_none());
        assert!(t.node_at(0, 3).is_none());
    }

    #[test]
    fn mesh_directions_consistent() {
        let t = Topology::mesh2d(3, 3);
        for l in t.link_ids() {
            let link = t.link(l);
            let (dx, dy) = link.direction.expect("mesh links have directions").delta();
            let a = t.coord(link.src);
            let b = t.coord(link.dst);
            assert_eq!(b.x as i32 - a.x as i32, dx);
            assert_eq!(b.y as i32 - a.y as i32, dy);
        }
    }

    #[test]
    fn neighbor_queries() {
        let t = Topology::mesh2d(3, 3);
        let center = t.node_at(1, 1).expect("in range");
        assert_eq!(t.neighbor(center, Direction::North), t.node_at(1, 2));
        assert_eq!(t.neighbor(center, Direction::South), t.node_at(1, 0));
        assert_eq!(t.neighbor(center, Direction::East), t.node_at(2, 1));
        assert_eq!(t.neighbor(center, Direction::West), t.node_at(0, 1));
        let corner = t.node_at(0, 0).expect("in range");
        assert_eq!(t.neighbor(corner, Direction::West), None);
        assert_eq!(t.neighbor(corner, Direction::South), None);
    }

    #[test]
    fn every_pair_link_is_bidirectional() {
        let t = Topology::mesh2d(4, 4);
        for l in t.link_ids() {
            let link = t.link(l);
            assert!(t.find_link(link.dst, link.src).is_some());
        }
    }

    #[test]
    fn torus_counts_and_wraparound() {
        let t = Topology::torus2d(4, 4);
        // Every node has degree 4 in a torus: 4 * 16 = 64 directed links.
        assert_eq!(t.num_links(), 64);
        let west_edge = t.node_at(0, 2).expect("in range");
        let east_edge = t.node_at(3, 2).expect("in range");
        assert!(t.find_link(east_edge, west_edge).is_some());
        assert!(t.find_link(west_edge, east_edge).is_some());
    }

    #[test]
    fn torus_min_hops_uses_wraparound() {
        let t = Topology::torus2d(4, 4);
        let a = t.node_at(0, 0).expect("in range");
        let b = t.node_at(3, 0).expect("in range");
        assert_eq!(t.min_hops(a, b), 1);
        let c = t.node_at(2, 2).expect("in range");
        assert_eq!(t.min_hops(a, c), 4);
    }

    #[test]
    fn mesh_min_hops_is_manhattan() {
        let t = Topology::mesh2d(8, 8);
        let a = t.node_at(0, 0).expect("in range");
        let b = t.node_at(7, 7).expect("in range");
        assert_eq!(t.min_hops(a, b), 14);
        assert_eq!(t.min_hops(a, a), 0);
    }

    #[test]
    fn hypercube_counts_and_hops() {
        let t = Topology::hypercube(3);
        assert_eq!(t.num_nodes(), 8);
        // dim * 2^dim directed channels.
        assert_eq!(t.num_links(), 24);
        // Minimum hops equal Hamming distance.
        for a in t.node_ids() {
            for b in t.node_ids() {
                let hamming = (a.0 ^ b.0).count_ones() as usize;
                assert_eq!(t.min_hops(a, b), hamming, "{a} -> {b}");
            }
        }
        assert_eq!(t.kind(), TopologyKind::Hypercube);
    }

    #[test]
    fn hypercube_links_flip_one_bit() {
        let t = Topology::hypercube(4);
        for l in t.link_ids() {
            let link = t.link(l);
            assert_eq!((link.src.0 ^ link.dst.0).count_ones(), 1);
            assert_eq!(link.direction, None);
        }
    }

    #[test]
    fn ring_counts_and_hops() {
        let t = Topology::ring(6);
        assert_eq!(t.num_nodes(), 6);
        assert_eq!(t.num_links(), 12);
        assert_eq!(t.min_hops(NodeId(0), NodeId(5)), 1);
        assert_eq!(t.min_hops(NodeId(0), NodeId(3)), 3);
    }

    #[test]
    fn capacity_updates() {
        let mut t = Topology::mesh2d(3, 3);
        t.set_uniform_capacity(500.0);
        assert!(t.link_ids().all(|l| t.link(l).capacity == 500.0));
        assert_eq!(t.max_capacity(), 500.0);
        let l = LinkId(0);
        t.set_capacity(l, 750.0);
        assert_eq!(t.link(l).capacity, 750.0);
        assert_eq!(t.max_capacity(), 750.0);
    }

    #[test]
    fn out_and_in_links_are_consistent() {
        let t = Topology::mesh2d(3, 3);
        for n in t.node_ids() {
            for &l in t.out_links(n) {
                assert_eq!(t.link(l).src, n);
            }
            for &l in t.in_links(n) {
                assert_eq!(t.link(l).dst, n);
            }
        }
        // Corner has 2 out links, edge 3, center 4.
        assert_eq!(t.out_links(t.node_at(0, 0).unwrap()).len(), 2);
        assert_eq!(t.out_links(t.node_at(1, 0).unwrap()).len(), 3);
        assert_eq!(t.out_links(t.node_at(1, 1).unwrap()).len(), 4);
    }

    #[test]
    fn local_bandwidth_factor_defaults_to_four() {
        let t = Topology::mesh2d(3, 3);
        assert_eq!(t.local_bandwidth_factor(), 4.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let mut t = Topology::mesh2d(3, 3);
        t.set_uniform_capacity(0.0);
    }
}
