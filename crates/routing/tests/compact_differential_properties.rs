//! Differential property suite for the compact routing tables: across
//! topology family x algorithm x VC count x flow subset, the
//! interval-compressed [`CompactTables`] must route every flow
//! hop-for-hop identically to the dense [`NodeTables`] arena — the same
//! `(out_link, vcs)` projection at every chained entry, termination at
//! the same step, and the same full `walk_route` link sequence. Grid
//! families exercise the destination-keyed prefix path (and its
//! fall-back when randomized baselines conflict); the arbitrary-graph
//! families from the up*/down* CDG — dragonfly, fat-tree, full mesh,
//! hypercube, ring — exercise both keyings on non-grid link structure.

use bsor_cdg::AcyclicCdg;
use bsor_flow::{FlowNetwork, FlowSet};
use bsor_routing::selectors::{DijkstraSelector, RandomWalkSelector};
use bsor_routing::{Baseline, CompactTables, NodeTables, RouteSet, RouteTables};
use bsor_topology::{NodeId, Topology};
use proptest::prelude::*;

/// Seed-driven subset of the ordered node pairs: varying which flows
/// exist stresses exactly what the interval representation folds —
/// runs of destinations with gaps that are never queried.
fn subset_flows(topo: &Topology, stride: u32, offset: u32) -> FlowSet {
    let n = topo.num_nodes() as u32;
    let mut flows = FlowSet::new();
    for s in 0..n {
        for d in 0..n {
            if s != d && (s * n + d + offset) % stride == 0 {
                flows.push(NodeId(s), NodeId(d), 1.0 + f64::from((s + d) % 7));
            }
        }
    }
    if flows.is_empty() {
        flows.push(NodeId(0), NodeId(n - 1), 1.0);
    }
    flows
}

/// The differential oracle: dense and compact tables built from the
/// same route set must agree per hop and per walk for every flow.
fn assert_tables_match(topo: &Topology, flows: &FlowSet, routes: &RouteSet) {
    let dense = NodeTables::build(topo, routes);
    let compact = CompactTables::build(topo, routes);
    for f in flows.iter() {
        assert_eq!(
            compact.walk_route(topo, f.id, f.src),
            dense.walk(topo, f.id, f.src),
            "walk mismatch for flow {} under {}",
            f.id,
            compact.mode()
        );
        // Beyond walks: chain the cursors directly and compare the
        // routing-relevant projection of every entry, plus the step at
        // which each representation terminates.
        let mut node = f.src;
        let mut dc = Some(dense.initial_cursor(f.id));
        let mut cc = Some(compact.initial_cursor(f.id));
        while let (Some(d), Some(c)) = (dc, cc) {
            let de = dense.entry(node, d);
            let ce = compact.entry(node, c);
            assert_eq!(
                (de.out_link, de.vcs),
                (ce.out_link, ce.vcs),
                "entry mismatch at node {} for flow {} under {}",
                node.0,
                f.id,
                compact.mode()
            );
            assert_eq!(
                de.next_index.is_none(),
                ce.next_index.is_none(),
                "termination mismatch at node {} for flow {} under {}",
                node.0,
                f.id,
                compact.mode()
            );
            node = topo.link(de.out_link).dst;
            dc = de.next_index;
            cc = ce.next_index;
        }
        assert_eq!(dc, None, "dense walk outlived compact for flow {}", f.id);
        assert_eq!(cc, None, "compact walk outlived dense for flow {}", f.id);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Grid families x the five baselines x VC count x flow subset.
    /// XY/YX are destination-consistent (prefix path); O1TURN, ROMM and
    /// Valiant route per flow and usually force the flow-keyed
    /// fall-back — both must stay hop-exact.
    #[test]
    fn grid_baselines_route_identically_in_compact_form(
        side in 3u16..=6,
        torus_sel in 0u8..2,
        algo_sel in 0u8..5,
        vcs_sel in 0u8..2,
        stride in 1u32..=5,
        offset in 0u32..7,
        seed in 0u64..100,
    ) {
        let topo = if torus_sel == 1 {
            Topology::torus2d(side, side)
        } else {
            Topology::mesh2d(side, side)
        };
        let vcs = if vcs_sel == 0 { 2 } else { 4 };
        let algo = match algo_sel {
            0 => Baseline::XY,
            1 => Baseline::YX,
            2 => Baseline::O1Turn { seed },
            3 => Baseline::Romm { seed },
            _ => Baseline::Valiant { seed },
        };
        let flows = subset_flows(&topo, stride, offset);
        let routes = algo.select(&topo, &flows, vcs).expect("baseline routes");
        assert_tables_match(&topo, &flows, &routes);
    }

    /// The arbitrary-graph families under the up*/down* CDG, routed by
    /// the Dijkstra selector (deterministic shortest conforming paths)
    /// and the detouring random walk (node revisits exercise the
    /// visit-keyed cursor space).
    #[test]
    fn cdg_selectors_on_arbitrary_graphs_route_identically(
        family in 0u8..5,
        selector in 0u8..2,
        vcs in 1u8..=2,
        stride in 1u32..=4,
        offset in 0u32..5,
        seed in 0u64..50,
    ) {
        let topo = match family {
            0 => bsor_topology::dragonfly(2, 3, 2).expect("valid"),
            1 => bsor_topology::fat_tree(4).expect("valid"),
            2 => bsor_topology::full_mesh(6).expect("valid"),
            3 => Topology::hypercube(3),
            _ => Topology::ring(7),
        };
        let acyclic = AcyclicCdg::up_down(&topo, vcs).expect("vcs >= 1");
        let net = FlowNetwork::new(&topo, &acyclic);
        let flows = subset_flows(&topo, stride, offset);
        let routes = if selector == 0 {
            DijkstraSelector::new().select(&net, &flows).expect("routable")
        } else {
            RandomWalkSelector::new()
                .with_seed(seed)
                .select(&net, &flows)
                .expect("routable")
        };
        assert_tables_match(&topo, &flows, &routes);
    }
}
