//! Value-generation strategies (no shrinking — see the crate docs).

use rand::rngs::StdRng;
use rand::Rng;

/// Generates values of one type from a seeded RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing the predicate, retrying with
    /// fresh draws (a bounded retry loop stands in for proptest's
    /// rejection bookkeeping).
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    /// Generates an intermediate value, then generates from the
    /// strategy `f` builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1_000 {
            let candidate = self.inner.new_value(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 1000 consecutive candidates",
            self.whence
        );
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn new_value(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A strategy returning a constant.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Strategy for core::ops::RangeFull {
    type Value = u64;

    fn new_value(&self, rng: &mut StdRng) -> u64 {
        rng.gen_range(0..u64::MAX)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
