//! # bsor-workloads
//!
//! The six workloads of the paper's evaluation (Chapter 5): three
//! synthetic bit-permutation patterns and three applications whose flow
//! graphs are transcribed from the paper's figures and tables.
//!
//! | Workload | Source | Flows on 8×8 |
//! |---|---|---|
//! | transpose | §5.1.2, `d = (y, x)` | 56 |
//! | bit-complement | §5.1.1, `dᵢ = ¬sᵢ` | 64 |
//! | shuffle | §5.1.3, `dᵢ = s_{i−1 mod b}` | 62 |
//! | H.264 decoder | Figure 5-1 | 15 |
//! | performance modeling | Figure 5-2 | 11 |
//! | 802.11a/g transmitter | Table 5.2 | 20 |
//!
//! Synthetic flows all carry [`SYNTHETIC_DEMAND`] = 25 MB/s, which makes
//! the dimension-order MCLs land exactly on the paper's Table 6.3 values
//! (e.g. transpose XY = 175 MB/s = 7 × 25). Application demands are the
//! paper's own MB/s figures (the transmitter's Mbit/s rates are divided
//! by 8, which is how 58.72 Mbit/s appears as 7.34 MB/s in Table 6.3).
//!
//! Module→node placements for the applications are **not** specified in
//! the paper; the placements here spread modules across the mesh so that
//! the single-largest-flow MCL lower bound is attainable, matching the
//! shape of the paper's results. See `DESIGN.md` for the substitution
//! notes.
//!
//! ```
//! use bsor_topology::Topology;
//! use bsor_workloads::{transpose, SYNTHETIC_DEMAND};
//!
//! let mesh = Topology::mesh2d(8, 8);
//! let w = transpose(&mesh).expect("8x8 is square");
//! assert_eq!(w.flows.len(), 56);
//! assert_eq!(w.flows.max_demand(), SYNTHETIC_DEMAND);
//! ```

pub mod apps;
pub mod patterns;
pub mod registry;
pub mod synthetic;

pub use apps::{h264_decoder, performance_modeling, wifi_transmitter};
pub use patterns::{
    bit_reversal, hotspot, hotspot_nodes, neighbor, rand_perm, tornado, uniform_random,
};
pub use registry::{workload_by_name, WorkloadFactory, WorkloadFamilyFactory, WorkloadRegistry};
pub use synthetic::{bit_complement, shuffle, transpose, SYNTHETIC_DEMAND};

use bsor_flow::FlowSet;
use bsor_topology::Topology;
use std::error::Error;
use std::fmt;

/// A named traffic workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Display name used in the tables ("transpose", "H.264", …).
    pub name: String,
    /// The flows with their bandwidth demands.
    pub flows: FlowSet,
}

impl Workload {
    /// Creates a workload.
    pub fn new(name: impl Into<String>, flows: FlowSet) -> Workload {
        Workload {
            name: name.into(),
            flows,
        }
    }
}

/// Why a workload could not be instantiated on a topology.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// Bit-permutation patterns need a square mesh.
    NotSquare,
    /// Bit-permutation patterns need a power-of-two node count.
    NotPowerOfTwo,
    /// The topology has fewer nodes than the application has modules.
    TooSmall {
        /// Modules required.
        required: usize,
        /// Nodes available.
        available: usize,
    },
    /// No workload is registered under the requested name (see
    /// [`WorkloadRegistry`]).
    UnknownWorkload {
        /// The name that failed to resolve.
        name: String,
    },
    /// A parameterized spec string named a known family but carried a
    /// malformed or out-of-range argument (e.g. `hotspot:lots`).
    BadSpec {
        /// The full offending spec string.
        spec: String,
        /// What was wrong with it.
        reason: String,
    },
    /// The pattern produces no flows on this topology (e.g. tornado on a
    /// 2×2 grid, where every shift is zero).
    EmptyWorkload {
        /// The workload that degenerated.
        name: String,
    },
    /// The pattern walks grid coordinates, which this topology family
    /// does not have (dragonfly, fat-tree, full-mesh and file-loaded
    /// graphs are laid out as a 1 × n line, so a coordinate walk would
    /// silently produce a meaningless pattern).
    RequiresGrid {
        /// The workload that needs a grid.
        name: String,
        /// The offending topology family.
        kind: bsor_topology::TopologyKind,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::NotSquare => write!(f, "synthetic patterns require a square mesh"),
            WorkloadError::NotPowerOfTwo => {
                write!(f, "synthetic patterns require a power-of-two node count")
            }
            WorkloadError::TooSmall {
                required,
                available,
            } => write!(
                f,
                "application needs {required} module nodes but the topology has {available}"
            ),
            WorkloadError::UnknownWorkload { name } => write!(f, "unknown workload '{name}'"),
            WorkloadError::BadSpec { spec, reason } => {
                write!(f, "bad workload spec '{spec}': {reason}")
            }
            WorkloadError::EmptyWorkload { name } => {
                write!(f, "workload '{name}' produces no flows on this topology")
            }
            WorkloadError::RequiresGrid { name, kind } => {
                write!(
                    f,
                    "workload '{name}' requires a grid topology, not {kind:?}"
                )
            }
        }
    }
}

impl Error for WorkloadError {}

/// All six evaluation workloads on `topo` (paper §6.1), in the order the
/// paper's tables list them.
///
/// # Errors
///
/// Any [`WorkloadError`] raised by a member workload (e.g. a non-square
/// or too-small topology).
pub fn all_six(topo: &Topology) -> Result<Vec<Workload>, WorkloadError> {
    Ok(vec![
        transpose(topo)?,
        bit_complement(topo)?,
        shuffle(topo)?,
        h264_decoder(topo)?,
        performance_modeling(topo)?,
        wifi_transmitter(topo)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_six_build_on_8x8() {
        let topo = Topology::mesh2d(8, 8);
        let all = all_six(&topo).expect("8x8 supports every workload");
        assert_eq!(all.len(), 6);
        for w in &all {
            w.flows.validate(&topo).expect("valid flows");
            assert!(!w.flows.is_empty());
        }
        let names: Vec<&str> = all.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "transpose",
                "bit-complement",
                "shuffle",
                "H.264",
                "perf. modeling",
                "transmitter"
            ]
        );
    }

    #[test]
    fn error_display() {
        assert!(!WorkloadError::NotSquare.to_string().is_empty());
        assert!(!WorkloadError::NotPowerOfTwo.to_string().is_empty());
        assert!(!WorkloadError::TooSmall {
            required: 9,
            available: 4
        }
        .to_string()
        .is_empty());
        let e = WorkloadError::BadSpec {
            spec: "hotspot:lots".into(),
            reason: "k must be a positive integer".into(),
        };
        assert!(e.to_string().contains("hotspot:lots"));
        let e = WorkloadError::EmptyWorkload {
            name: "tornado".into(),
        };
        assert!(e.to_string().contains("tornado"));
        let e = WorkloadError::RequiresGrid {
            name: "tornado".into(),
            kind: bsor_topology::TopologyKind::Dragonfly,
        };
        assert!(e.to_string().contains("grid"));
    }
}
