//! `compact_scale` — dense vs interval-compressed routing-state bench
//! across 64x64–256x256 meshes, committed as `BENCH_compact.json`.
//!
//! For every (mesh size, workload, algorithm) cell the bench selects
//! routes directly (no planner, no certificate — this measures table
//! state, not the pipeline), compiles both the dense `NodeTables` and
//! the interval-compressed `CompactTables`, and records measured bytes,
//! bytes per node and build/solve wall times. Combinations that cannot
//! run at a size are *typed records*, never silent gaps:
//!
//! * `skipped` — over the bench's time budget (all-pairs workloads past
//!   64x64, CDG-exploring or walk-based selectors past their last
//!   feasible size), with the reason recorded;
//! * `refused` — the algorithm itself refused with a typed error
//!   (`ac-oblivious` over its directed-link budget), recorded verbatim.
//!
//! That is the point of the artifact: it locates where each algorithm's
//! memory and solve time break as the mesh grows, and what compression
//! buys before that point.
//!
//! ```text
//! cargo run -p bsor_bench --release --bin compact_scale [--quick] [--out PATH]
//! ```
//!
//! `--quick` swaps the size axis for 16x16/32x32 so CI can smoke the
//! bin in seconds; the committed artifact is a full run. Wall times
//! make the artifact non-reproducible byte for byte, so CI asserts on
//! its *shape* (schema, statuses, the headline ratio), not its bytes.
//!
//! Exit codes: 0 on success, 2 when the headline 64x64 uniform-random
//! compression ratio misses the <= 25% acceptance bound, 1 on bad
//! arguments or write failure.

use bsor::{AlgorithmRegistry, Scenario};
use bsor_bench::json::Json;
use bsor_routing::selectors::AcObliviousSelector;
use bsor_routing::tables::RouteTables;
use bsor_routing::{Baseline, CompactTables, NodeTables, RouteSet};
use bsor_topology::{NodeId, Topology};
use bsor_workloads::{tornado, uniform_random, Workload};
use std::process::ExitCode;
use std::time::Instant;

/// Seed matching the registry's randomized baselines.
const SEED: u64 = 9;

/// The acceptance bound: headline compact bytes must be at most this
/// fraction of the dense bytes.
const HEADLINE_MAX_RATIO: f64 = 0.25;

struct Cell {
    size: String,
    workload: &'static str,
    algorithm: &'static str,
    json: Json,
}

fn ms(started: Instant) -> f64 {
    started.elapsed().as_secs_f64() * 1e3
}

/// Measures both table representations for an already-selected route
/// set and renders the `ok` record body.
fn measure_tables(topo: &Topology, routes: &RouteSet, flows: usize, solve_ms: f64) -> (Json, f64) {
    let nodes = topo.num_nodes() as f64;
    let started = Instant::now();
    let dense = NodeTables::build(topo, routes);
    let dense_ms = ms(started);
    let dense_bytes = dense.table_bytes();
    drop(dense);
    let started = Instant::now();
    let compact = CompactTables::build(topo, routes);
    let compact_ms = ms(started);
    let compact_bytes = compact.table_bytes();
    let mode = compact.mode();
    let ratio = compact_bytes as f64 / dense_bytes as f64;
    let body = Json::object(vec![
        ("status", Json::from("ok")),
        ("reason", Json::Null),
        ("flows", Json::from(flows)),
        ("solve_ms", Json::from(solve_ms)),
        (
            "dense",
            Json::object(vec![
                ("bytes", Json::from(dense_bytes)),
                ("bytes_per_node", Json::from(dense_bytes as f64 / nodes)),
                ("build_ms", Json::from(dense_ms)),
            ]),
        ),
        (
            "compact",
            Json::object(vec![
                ("bytes", Json::from(compact_bytes)),
                ("bytes_per_node", Json::from(compact_bytes as f64 / nodes)),
                ("build_ms", Json::from(compact_ms)),
                ("mode", Json::from(mode)),
                ("intervals", Json::from(compact.num_intervals())),
            ]),
        ),
        ("compact_over_dense", Json::from(ratio)),
    ]);
    (body, ratio)
}

fn skipped(reason: String) -> Json {
    Json::object(vec![
        ("status", Json::from("skipped")),
        ("reason", Json::from(reason)),
    ])
}

fn refused(reason: String) -> Json {
    Json::object(vec![
        ("status", Json::from("refused")),
        ("reason", Json::from(reason)),
    ])
}

/// Selects with a deterministic baseline and measures its tables.
fn baseline_cell(topo: &Topology, baseline: Baseline, w: &Workload) -> (Json, f64) {
    let started = Instant::now();
    match baseline.select(topo, &w.flows, 2) {
        Ok(routes) => {
            let solve_ms = ms(started);
            measure_tables(topo, &routes, w.flows.len(), solve_ms)
        }
        Err(e) => (refused(e.to_string()), 0.0),
    }
}

/// Selects through the registry (the framework / selector algorithms)
/// and measures the resulting tables.
fn registry_cell(
    registry: &AlgorithmRegistry,
    topo: &Topology,
    name: &str,
    w: &Workload,
) -> (Json, f64) {
    let scenario = match Scenario::builder(topo.clone(), w.flows.clone())
        .named(&w.name)
        .vcs(2)
        .build()
    {
        Ok(s) => s,
        Err(e) => return (refused(e.to_string()), 0.0),
    };
    let algorithm = registry.get(name).expect("standard registry");
    let started = Instant::now();
    match scenario.select_routes(algorithm) {
        Ok(routes) => {
            let solve_ms = ms(started);
            measure_tables(topo, &routes, w.flows.len(), solve_ms)
        }
        Err(e) => (refused(e.to_string()), 0.0),
    }
}

/// Attempts the `ac-oblivious` LP on the topology's commodity set so
/// its typed directed-link refusal lands in the artifact verbatim.
fn ac_oblivious_cell(topo: &Topology, w: &Workload) -> Json {
    let commodities: Vec<(NodeId, NodeId)> = w.flows.iter().map(|f| (f.src, f.dst)).collect();
    let started = Instant::now();
    match AcObliviousSelector::new().solve(topo, &commodities) {
        // At these sizes the default 16-directed-link budget refuses
        // long before the tableau allocates; a success would mean the
        // budget was raised, and the LP has no per-flow tables to
        // compress, so only the refusal is interesting here.
        Ok(_) => Json::object(vec![
            ("status", Json::from("ok")),
            ("reason", Json::Null),
            ("solve_ms", Json::from(ms(started))),
        ]),
        Err(e) => refused(format!("{e} (raise with --max-links on bsor-sweep)")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = "BENCH_compact.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match it.next() {
                Some(path) => out = path.clone(),
                None => {
                    eprintln!("compact_scale: --out needs a value");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("compact_scale: unknown option '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let sizes: &[u16] = if quick { &[16, 32] } else { &[64, 128, 256] };
    // The headline (uniform-random all-pairs) runs at the smallest
    // size; n^2-flow workloads past it are typed skips.
    let headline_size = sizes[0];
    let registry = AlgorithmRegistry::standard();
    let mut cells: Vec<Cell> = Vec::new();
    let mut headline: Option<Json> = None;
    let mut headline_ratio: Option<f64> = None;
    for &n in sizes {
        let size = format!("{n}x{n}");
        let topo = Topology::mesh2d(n, n);
        let tornado_w = tornado(&topo).expect("meshes support tornado");
        let mut push = |workload: &'static str, algorithm: &'static str, json: Json| {
            cells.push(Cell {
                size: size.clone(),
                workload,
                algorithm,
                json,
            });
        };
        // --- uniform-random (all ordered pairs, n^2-ish flows) ---
        if n == headline_size {
            let ur = uniform_random(&topo).expect("meshes support uniform-random");
            eprintln!(
                "compact_scale: {size} uniform-random ({} flows) ...",
                ur.flows.len()
            );
            let (xy, ratio) = baseline_cell(&topo, Baseline::XY, &ur);
            headline = Some(Json::object(vec![
                ("size", Json::from(size.as_str())),
                ("workload", Json::from("uniform-random")),
                ("algorithm", Json::from("xy")),
                ("max_ratio", Json::from(HEADLINE_MAX_RATIO)),
                ("measured", xy.clone()),
            ]));
            headline_ratio = Some(ratio);
            push("uniform-random", "xy", xy);
            let (yx, _) = baseline_cell(&topo, Baseline::YX, &ur);
            push("uniform-random", "yx", yx);
            for name in ["romm", "valiant"] {
                push(
                    "uniform-random",
                    name,
                    skipped(format!(
                        "randomized routes key tables per flow; {} all-pairs flows of \
                         flow-interval scratch exceed the bench time budget",
                        ur.flows.len()
                    )),
                );
            }
            push(
                "uniform-random",
                "bsor-dijkstra",
                skipped(format!(
                    "CDG exploration re-selects {} flows per candidate CDG; over the bench \
                     time budget",
                    ur.flows.len()
                )),
            );
            push(
                "uniform-random",
                "ac-oblivious",
                ac_oblivious_cell(&topo, &ur),
            );
        } else {
            let flows = u64::from(n) * u64::from(n) * (u64::from(n) * u64::from(n) - 1);
            for name in [
                "xy",
                "yx",
                "romm",
                "valiant",
                "bsor-dijkstra",
                "ac-oblivious",
            ] {
                push(
                    "uniform-random",
                    name,
                    skipped(format!(
                        "all-pairs workload is {flows} flows at {size}; over the bench \
                         memory/time budget"
                    )),
                );
            }
        }
        // --- tornado (one flow per node, O(n) scale) ---
        eprintln!(
            "compact_scale: {size} tornado ({} flows) ...",
            tornado_w.flows.len()
        );
        for (name, baseline) in [
            ("xy", Baseline::XY),
            ("yx", Baseline::YX),
            ("romm", Baseline::Romm { seed: SEED }),
            ("valiant", Baseline::Valiant { seed: SEED }),
        ] {
            let (cell, _) = baseline_cell(&topo, baseline, &tornado_w);
            push("tornado", name, cell);
        }
        if n <= headline_size {
            let (cell, _) = registry_cell(&registry, &topo, "bsor-dijkstra", &tornado_w);
            push("tornado", "bsor-dijkstra", cell);
        } else {
            push(
                "tornado",
                "bsor-dijkstra",
                skipped(format!(
                    "explores ~15 CDGs, each re-running weighted Dijkstra for {} flows on \
                     {} nodes; over the bench time budget past {headline_size}x{headline_size}",
                    tornado_w.flows.len(),
                    topo.num_nodes()
                )),
            );
        }
        push(
            "tornado",
            "ac-oblivious",
            ac_oblivious_cell(&topo, &tornado_w),
        );
    }
    let cases: Vec<Json> = cells
        .into_iter()
        .map(|c| {
            Json::object(vec![
                ("size", Json::from(c.size)),
                ("workload", Json::from(c.workload)),
                ("algorithm", Json::from(c.algorithm)),
                ("result", c.json),
            ])
        })
        .collect();
    let doc = Json::object(vec![
        ("schema", Json::from("bsor-compact-bench@1")),
        ("mode", Json::from(if quick { "quick" } else { "full" })),
        (
            "sizes",
            Json::array(
                sizes
                    .iter()
                    .map(|&n| Json::from(format!("{n}x{n}")))
                    .collect(),
            ),
        ),
        ("vcs", Json::UInt(2)),
        ("headline", headline.expect("headline size always measured")),
        ("cases", Json::array(cases)),
    ]);
    if let Err(e) = std::fs::write(&out, doc.pretty()) {
        eprintln!("compact_scale: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    let ratio = headline_ratio.expect("headline measured");
    eprintln!(
        "compact_scale: wrote {out}; headline compact/dense = {ratio:.4} (bound {HEADLINE_MAX_RATIO})"
    );
    if ratio > HEADLINE_MAX_RATIO {
        eprintln!("compact_scale: headline ratio exceeds the acceptance bound");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}
