//! Routing the IEEE 802.11a/g OFDM transmitter (paper §5.2.3,
//! Table 5.2): a 17-site DSP pipeline with an IFFT partitioned over four
//! modules. Demonstrates static virtual-channel allocation and the
//! flows-per-link alternative objective (paper §7.2).
//!
//! ```text
//! cargo run --release --example wifi_transmitter
//! ```

use bsor::{BsorBuilder, CdgStrategy, SelectorKind};
use bsor_cdg::TurnModel;
use bsor_routing::selectors::{DijkstraSelector, MilpObjective, MilpSelector};
use bsor_routing::Baseline;
use bsor_topology::Topology;
use bsor_workloads::wifi_transmitter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mesh = Topology::mesh2d(8, 8);
    let workload = wifi_transmitter(&mesh)?;
    println!(
        "802.11a/g transmitter: {} flows, total {:.2} MB/s, largest {:.2} MB/s",
        workload.flows.len(),
        workload.flows.total_demand(),
        workload.flows.max_demand()
    );

    // Bandwidth-sensitive routing with static VC allocation.
    let result = BsorBuilder::new(&mesh, &workload.flows)
        .vcs(2)
        .selector(SelectorKind::Dijkstra(DijkstraSelector::new()))
        .run()?;
    println!(
        "BSOR-Dijkstra: MCL {:.2} MB/s on CDG '{}'",
        result.mcl, result.cdg
    );
    // Every hop pins exactly one VC: static allocation (paper §4.2.2).
    let static_hops = result
        .routes
        .iter()
        .flat_map(|r| r.hops.iter())
        .all(|h| h.vcs.count() == 1);
    println!("static VC allocation on every hop: {static_hops}");

    // The §7.2 alternative: minimize the number of flows sharing a link
    // (no bandwidth knowledge needed).
    let shared = BsorBuilder::new(&mesh, &workload.flows)
        .vcs(2)
        .strategies(vec![CdgStrategy::TurnModel(
            TurnModel::negative_first().mirrored_y(),
        )])
        .selector(SelectorKind::Milp(
            MilpSelector::new()
                .with_max_paths(60)
                .with_objective(MilpObjective::MinimizeSharedFlows),
        ))
        .run()?;
    println!(
        "flows-per-link objective: max {} flows share a channel (MCL {:.2} MB/s)",
        shared.routes.max_flows_per_link(&mesh),
        shared.routes.mcl(&mesh, &workload.flows)
    );

    // Baselines for context (Table 6.3's transmitter row).
    println!("\nbaseline MCLs (MB/s):");
    for (name, baseline) in [
        ("XY", Baseline::XY),
        ("YX", Baseline::YX),
        ("ROMM", Baseline::Romm { seed: 5 }),
        ("Valiant", Baseline::Valiant { seed: 5 }),
        ("O1TURN", Baseline::O1Turn { seed: 5 }),
    ] {
        let routes = baseline.select(&mesh, &workload.flows, 2)?;
        println!("  {name:8} {:7.2}", routes.mcl(&mesh, &workload.flows));
    }
    Ok(())
}
