//! Concurrency contract of the sharded single-flight [`PlanCache`]:
//! N racing planners on one key cost exactly one route solve, LRU
//! eviction holds under a capacity-1 cache, `invalidate` during an
//! in-flight solve neither deadlocks nor corrupts the cache, and
//! solver errors propagate to followers without being cached.

use bsor_routing::{Baseline, RouteSet};
use bsor_sim::{
    AlgorithmError, PlanCache, PlanCacheConfig, Planner, RouteAlgorithm, Scenario, ScenarioCtx,
};
use bsor_topology::{NodeId, Topology};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Wraps XY routing with a solve counter, a configurable stall (to
/// hold the single-flight window open) and an optional injected
/// failure.
struct CountingXy {
    solves: AtomicUsize,
    stall: Duration,
    fail: bool,
}

impl CountingXy {
    fn new(stall: Duration, fail: bool) -> CountingXy {
        CountingXy {
            solves: AtomicUsize::new(0),
            stall,
            fail,
        }
    }

    fn solves(&self) -> usize {
        self.solves.load(Ordering::SeqCst)
    }
}

impl RouteAlgorithm for CountingXy {
    fn name(&self) -> &str {
        "counting-xy"
    }

    fn cache_key(&self) -> String {
        format!("counting-xy fail={}", self.fail)
    }

    fn routes(&self, ctx: &ScenarioCtx<'_>) -> Result<RouteSet, AlgorithmError> {
        self.solves.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(self.stall);
        if self.fail {
            return Err(AlgorithmError::Failed("injected solver failure".into()));
        }
        Baseline::XY.routes(ctx)
    }
}

/// A 4x4 mesh with a half-shift pattern: every node sends across the
/// network, so every plan has broad link demand.
fn scenario() -> Scenario {
    let topo = Topology::mesh2d(4, 4);
    let mut flows = bsor_flow::FlowSet::new();
    for i in 0..16u32 {
        let j = (i + 8) % 16;
        flows.push(NodeId(i), NodeId(j), 10.0);
    }
    Scenario::builder(topo, flows)
        .named("shift")
        .vcs(2)
        .build()
        .expect("smoke scenario builds")
}

#[test]
fn racing_planners_on_one_key_cost_exactly_one_solve() {
    let s = scenario();
    let algorithm = CountingXy::new(Duration::from_millis(25), false);
    let planner = Planner::new().with_cache(PlanCache::shared());
    let threads = 8;
    let barrier = Barrier::new(threads);
    let plans = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    planner.plan(&s, &algorithm).expect("shared solve succeeds")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .collect::<Vec<_>>()
    });
    assert_eq!(algorithm.solves(), 1, "followers must not re-solve");
    assert_eq!(planner.stats().solves, 1);
    assert_eq!(planner.stats().cache_hits, threads as u64 - 1);
    for plan in &plans[1..] {
        assert!(
            Arc::ptr_eq(&plans[0], plan),
            "every racer gets the one cached artifact"
        );
    }
}

#[test]
fn capacity_one_cache_is_strict_lru() {
    let s = scenario();
    let cache = PlanCache::shared_with(PlanCacheConfig::new().max_plans(1));
    let planner = Planner::new().with_cache(cache.clone());
    planner.plan(&s, &Baseline::XY).expect("plans");
    planner.plan(&s, &Baseline::YX).expect("evicts xy");
    assert_eq!(cache.len(), 1, "capacity 1 holds one plan");
    planner.plan(&s, &Baseline::XY).expect("re-solves");
    assert_eq!(
        planner.stats().solves,
        3,
        "xy was evicted, so its return is a fresh solve"
    );
    assert_eq!(planner.stats().cache_hits, 0);
    assert_eq!(cache.stats().evicted_lru, 2);
    assert_eq!(cache.len(), 1);
}

#[test]
fn invalidate_during_inflight_solve_neither_deadlocks_nor_corrupts() {
    let s = scenario();
    let algorithm = CountingXy::new(Duration::from_millis(60), false);
    let cache = PlanCache::shared_with(PlanCacheConfig::new());
    let planner = Planner::new().with_cache(cache.clone());
    std::thread::scope(|scope| {
        let leader = scope.spawn(|| planner.plan(&s, &algorithm).expect("solve completes"));
        // Storm the cache with deltas while the solve is in flight: the
        // flight table and the entry table must not block each other.
        for _ in 0..20 {
            let outcome = cache.invalidate(&[(0, 1), (5, 6)]);
            assert_eq!(outcome.evicted + outcome.recertified, outcome.examined);
            std::thread::sleep(Duration::from_millis(2));
        }
        leader.join().expect("no deadlock, no panic")
    });
    // The solve that raced the deltas still landed in the cache...
    assert_eq!(cache.len(), 1);
    // ...and a delta arriving *after* it lands evicts it (the shift
    // pattern is purely vertical on the 4x4 mesh, so flow 0->8 demands
    // the 0->4 hop).
    let outcome = cache.invalidate(&[(0, 4)]);
    assert_eq!(outcome.examined, 1);
    assert_eq!(outcome.evicted, 1);
    assert_eq!(cache.len(), 0);
}

#[test]
fn solver_errors_reach_followers_but_are_never_cached() {
    let s = scenario();
    let algorithm = CountingXy::new(Duration::from_millis(0), true);
    let planner = Planner::new().with_cache(PlanCache::shared());
    // Sequential contract first: every retry re-runs the solver.
    planner.plan(&s, &algorithm).expect_err("injected failure");
    planner.plan(&s, &algorithm).expect_err("still failing");
    assert_eq!(algorithm.solves(), 2, "errors must not be cached");
    assert_eq!(planner.stats().solves, 2);
    assert_eq!(planner.stats().cache_hits, 0);

    // Racing contract: one in-flight failure is broadcast to its
    // followers (no thread panics, every thread sees the error), and
    // late arrivals may retry — but a successful solve is never
    // fabricated.
    let slow = CountingXy::new(Duration::from_millis(25), true);
    let threads = 4;
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                barrier.wait();
                planner
                    .plan(&s, &slow)
                    .expect_err("failure reaches every racer");
            });
        }
    });
    assert!(
        (1..=threads).contains(&slow.solves()),
        "between one shared failure and one per late joiner, got {}",
        slow.solves()
    );
    assert_eq!(planner.cache().unwrap().len(), 0, "no failed plan cached");
}
