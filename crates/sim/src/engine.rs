//! The cycle-accurate simulation engine.
//!
//! Router model (per cycle, single-cycle per hop as in paper §6.1):
//!
//! 1. **Generation** — Bernoulli packet arrivals per flow (optionally
//!    Markov-modulated) into per-node source queues.
//! 2. **RC + VA** — head flits at buffer fronts look up the node table
//!    (packets carry a table index, paper §4.2.1) and request an output
//!    VC within the hop's VC mask. VC allocation is *atomic*: a VC buffer
//!    holds at most one packet at a time, and a new packet acquires it
//!    only after the previous tail has departed.
//! 3. **SA + ST** — each output channel moves at most one flit per cycle
//!    and each input port forwards at most one flit per cycle (rotating
//!    arbiters); the ejection "channel" moves up to `local_bandwidth`
//!    flits per cycle (the paper's 4× resource links). Arrivals land in
//!    the downstream buffer at the end of the cycle.
//! 4. **Injection** — up to `local_bandwidth` flits move from the source
//!    queue into the injection port's VC buffers.
//!
//! Credits are modelled as direct downstream-occupancy checks (an ideal
//! zero-latency credit loop). A progress watchdog aborts the run and
//! flags `deadlocked` when in-network flits stop moving entirely, which
//! is how the deadlock tests in this crate observe cyclic routings
//! actually jam.

use crate::config::{SimConfig, SimError};
use crate::stats::{FlowStats, SimReport};
use crate::traffic::{TrafficSpec, VariationState};
use bsor_flow::{FlowId, FlowSet};
use bsor_routing::tables::NodeTables;
use bsor_routing::RouteSet;
use bsor_topology::{LinkId, NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};

#[derive(Clone, Copy, Debug)]
struct Flit {
    packet: u64,
    flow: FlowId,
    is_head: bool,
    is_tail: bool,
    /// Node-table index for the next lookup; `None` on a head means
    /// "eject at the next router". Only meaningful on head flits.
    cursor: Option<u16>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OutKind {
    Forward(LinkId),
    Eject,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PortState {
    /// No packet is being forwarded from this VC buffer.
    Idle,
    /// The head was routed but no output VC is allocated yet.
    Routed {
        out: LinkId,
        mask: u8,
        next_cursor: Option<u16>,
    },
    /// Output VC allocated; body flits follow the head.
    Active {
        out: OutKind,
        out_vc: u8,
        next_cursor: Option<u16>,
    },
}

/// One virtual-channel flit buffer plus its control state.
#[derive(Clone, Debug)]
struct VcBuffer {
    flits: VecDeque<Flit>,
    /// Packet currently allowed to occupy this buffer (atomic VCs).
    owner: Option<u64>,
    state: PortState,
}

impl VcBuffer {
    fn new() -> VcBuffer {
        VcBuffer {
            flits: VecDeque::new(),
            owner: None,
            state: PortState::Idle,
        }
    }
}

/// Streaming state of a source queue into the injection port.
#[derive(Clone, Copy, Debug)]
struct InjectionProgress {
    vc: u8,
    remaining: usize,
}

/// `(buffer kind, index, vc)` reference into the simulator's buffer pools.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BufferRef {
    /// `(link index, vc)` — the buffer at the link's downstream router.
    Link(usize, usize),
    /// `(node index, vc)` — the node's injection-port buffer.
    Inject(usize, usize),
}

/// The simulator. Construct with [`Simulator::new`], execute with
/// [`Simulator::run`].
pub struct Simulator<'a> {
    topo: &'a Topology,
    flows: &'a FlowSet,
    config: SimConfig,
    tables: NodeTables,
    traffic: TrafficSpec,
    rng: StdRng,
    var_states: Vec<VariationState>,

    /// Per-link downstream buffers: `link_bufs[link][vc]`.
    link_bufs: Vec<Vec<VcBuffer>>,
    /// Injection-port buffers: `inj_bufs[node][vc]`.
    inj_bufs: Vec<Vec<VcBuffer>>,
    /// Per-node source queues (whole packets, flit by flit).
    src_queues: Vec<VecDeque<Flit>>,
    inj_progress: Vec<Option<InjectionProgress>>,

    /// Flits sent this cycle, gathered before entering the pipeline.
    pending_sends: Vec<(LinkId, u8, Flit)>,
    /// Arrivals in flight through the router pipeline: the back slot is
    /// this cycle's sends, the front slot delivers after
    /// `pipeline_latency` cycles.
    in_transit: std::collections::VecDeque<Vec<(LinkId, u8, Flit)>>,
    /// Undelivered flits already bound for each buffer:
    /// `transit_counts[link][vc]` (claims buffer slots ahead of arrival).
    transit_counts: Vec<Vec<u8>>,

    rr_out: Vec<usize>,
    rr_eject: Vec<usize>,

    entry_cycle: HashMap<u64, u64>,
    tracked: HashSet<u64>,

    next_packet: u64,
    in_network_flits: u64,
    cycle: u64,
    last_progress: u64,

    stats: Vec<FlowStats>,
    link_flits: Vec<u64>,
    generated_total: u64,
    delivered_total: u64,
    delivered_flits: u64,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator for `flows` routed by `routes` under `traffic`.
    ///
    /// # Errors
    ///
    /// [`SimError`] when routes, flows, traffic and VC configuration are
    /// inconsistent.
    pub fn new(
        topo: &'a Topology,
        flows: &'a FlowSet,
        routes: &RouteSet,
        traffic: TrafficSpec,
        config: SimConfig,
    ) -> Result<Simulator<'a>, SimError> {
        if routes.len() != flows.len() {
            return Err(SimError::RouteCountMismatch {
                flows: flows.len(),
                routes: routes.len(),
            });
        }
        if traffic.rates.len() != flows.len() {
            return Err(SimError::TrafficCountMismatch {
                flows: flows.len(),
                rates: traffic.rates.len(),
            });
        }
        for (i, &r) in traffic.rates.iter().enumerate() {
            if !(r.is_finite() && r >= 0.0) {
                return Err(SimError::BadRate { flow: i, rate: r });
            }
        }
        for route in routes.iter() {
            for hop in &route.hops {
                if hop.vcs.iter().any(|v| v >= config.vcs) {
                    return Err(SimError::VcOutOfRange { vcs: config.vcs });
                }
            }
        }
        let tables = NodeTables::build(topo, routes);
        let nl = topo.num_links();
        let nn = topo.num_nodes();
        let vcs = config.vcs as usize;
        Ok(Simulator {
            topo,
            flows,
            rng: StdRng::seed_from_u64(config.seed),
            var_states: (0..flows.len()).map(|_| VariationState::new()).collect(),
            tables,
            traffic,
            link_bufs: (0..nl)
                .map(|_| (0..vcs).map(|_| VcBuffer::new()).collect())
                .collect(),
            inj_bufs: (0..nn)
                .map(|_| (0..vcs).map(|_| VcBuffer::new()).collect())
                .collect(),
            src_queues: vec![VecDeque::new(); nn],
            inj_progress: vec![None; nn],
            pending_sends: Vec::new(),
            in_transit: std::collections::VecDeque::new(),
            transit_counts: vec![vec![0; vcs]; nl],
            rr_out: vec![0; nl],
            rr_eject: vec![0; nn],
            entry_cycle: HashMap::new(),
            tracked: HashSet::new(),
            next_packet: 0,
            in_network_flits: 0,
            cycle: 0,
            last_progress: 0,
            stats: vec![FlowStats::default(); flows.len()],
            link_flits: vec![0; nl],
            generated_total: 0,
            delivered_total: 0,
            delivered_flits: 0,
            config,
        })
    }

    fn in_measurement(&self) -> bool {
        self.cycle >= self.config.warmup
            && self.cycle < self.config.warmup + self.config.measurement
    }

    /// Runs warmup + measurement (+ drain) and returns the report.
    pub fn run(&mut self) -> SimReport {
        let total = self.config.total_cycles();
        let mut deadlocked = false;
        while self.cycle < total {
            let progress = self.step();
            if progress {
                self.last_progress = self.cycle;
            } else if self.in_network_flits > 0
                && self.cycle - self.last_progress > self.config.watchdog
            {
                deadlocked = true;
                break;
            }
            self.cycle += 1;
        }
        SimReport {
            cycles: self.cycle,
            measured_cycles: self.config.measurement,
            generated_packets: self.generated_total,
            delivered_packets: self.delivered_total,
            delivered_flits: self.delivered_flits,
            per_flow: self.stats.clone(),
            link_flits: self.link_flits.clone(),
            deadlocked,
        }
    }

    /// Executes one cycle; returns whether any flit moved.
    fn step(&mut self) -> bool {
        self.generate_packets();
        self.route_and_allocate();
        let mut progress = self.switch_and_traverse();
        progress |= self.inject();
        // This cycle's sends enter the pipeline; the oldest slot lands.
        self.in_transit
            .push_back(std::mem::take(&mut self.pending_sends));
        if self.in_transit.len() >= self.config.pipeline_latency as usize {
            let arrivals = self
                .in_transit
                .pop_front()
                .expect("nonempty by length check");
            for (link, vc, flit) in arrivals {
                self.transit_counts[link.index()][vc as usize] -= 1;
                self.link_bufs[link.index()][vc as usize]
                    .flits
                    .push_back(flit);
            }
        }
        progress
    }

    fn generate_packets(&mut self) {
        let measuring = self.in_measurement();
        for i in 0..self.flows.len() {
            let flow = self.flows.flow(FlowId(i as u32));
            let mut p = self.traffic.rates[i];
            if let Some(var) = self.traffic.variation {
                p *= self.var_states[i].step(&var, &mut self.rng);
            }
            while p > 0.0 {
                let fire = if p >= 1.0 { true } else { self.rng.gen_bool(p) };
                if fire {
                    self.spawn_packet(flow.id, flow.src, measuring);
                }
                p -= 1.0;
            }
        }
    }

    fn spawn_packet(&mut self, flow: FlowId, src: NodeId, measuring: bool) {
        let packet = self.next_packet;
        self.next_packet += 1;
        let len = self.config.packet_len;
        let cursor = Some(self.tables.initial_index(flow));
        for k in 0..len {
            self.src_queues[src.index()].push_back(Flit {
                packet,
                flow,
                is_head: k == 0,
                is_tail: k == len - 1,
                cursor: if k == 0 { cursor } else { None },
            });
        }
        if measuring {
            self.stats[flow.index()].generated += 1;
            self.generated_total += 1;
            self.tracked.insert(packet);
        }
    }

    fn buffer(&self, r: BufferRef) -> &VcBuffer {
        match r {
            BufferRef::Link(l, v) => &self.link_bufs[l][v],
            BufferRef::Inject(n, v) => &self.inj_bufs[n][v],
        }
    }

    fn buffer_mut(&mut self, r: BufferRef) -> &mut VcBuffer {
        match r {
            BufferRef::Link(l, v) => &mut self.link_bufs[l][v],
            BufferRef::Inject(n, v) => &mut self.inj_bufs[n][v],
        }
    }

    /// RC + VA for every buffer front.
    fn route_and_allocate(&mut self) {
        for l in 0..self.topo.num_links() {
            let node = self.topo.link(LinkId(l as u32)).dst;
            for v in 0..self.config.vcs as usize {
                self.progress_front(BufferRef::Link(l, v), node);
            }
        }
        for n in 0..self.topo.num_nodes() {
            for v in 0..self.config.vcs as usize {
                self.progress_front(BufferRef::Inject(n, v), NodeId(n as u32));
            }
        }
    }

    fn progress_front(&mut self, r: BufferRef, node: NodeId) {
        let buf = self.buffer(r);
        let Some(front) = buf.flits.front().copied() else {
            return;
        };
        // RC: a head flit at the front of an Idle buffer gets routed.
        if buf.state == PortState::Idle {
            debug_assert!(front.is_head, "body flit at front of idle buffer");
            let state = match front.cursor {
                None => PortState::Active {
                    out: OutKind::Eject,
                    out_vc: 0,
                    next_cursor: None,
                },
                Some(idx) => {
                    let entry = *self.tables.lookup(node, idx);
                    PortState::Routed {
                        out: entry.out_link,
                        mask: entry.vcs.0,
                        next_cursor: entry.next_index,
                    }
                }
            };
            self.buffer_mut(r).state = state;
        }
        // VA: try to claim a downstream VC within the mask.
        if let PortState::Routed {
            out,
            mask,
            next_cursor,
        } = self.buffer(r).state
        {
            let packet = front.packet;
            let chosen = (0..self.config.vcs)
                .filter(|v| mask & (1 << v) != 0)
                .find(|&v| self.link_bufs[out.index()][v as usize].owner.is_none());
            if let Some(v) = chosen {
                self.link_bufs[out.index()][v as usize].owner = Some(packet);
                self.buffer_mut(r).state = PortState::Active {
                    out: OutKind::Forward(out),
                    out_vc: v,
                    next_cursor,
                };
            }
        }
    }

    /// SA + ST for every router; returns whether any flit moved.
    fn switch_and_traverse(&mut self) -> bool {
        let mut progress = false;
        let vcs = self.config.vcs as usize;
        let mut in_ports: Vec<BufferRef> = Vec::new();
        let mut candidates: Vec<(usize, BufferRef)> = Vec::new();
        for n in 0..self.topo.num_nodes() {
            let node = NodeId(n as u32);
            in_ports.clear();
            in_ports.extend(
                self.topo
                    .in_links(node)
                    .iter()
                    .flat_map(|&l| (0..vcs).map(move |v| BufferRef::Link(l.index(), v))),
            );
            in_ports.extend((0..vcs).map(|v| BufferRef::Inject(n, v)));
            let num_ports = in_ports.len() / vcs;
            let mut port_forwarded = vec![false; num_ports];

            // Forward outputs: one flit per output channel and per input
            // port per cycle.
            for &out in self.topo.out_links(node) {
                candidates.clear();
                for (bi, &r) in in_ports.iter().enumerate() {
                    let port = bi / vcs;
                    if port_forwarded[port] {
                        continue;
                    }
                    let buf = self.buffer(r);
                    if buf.flits.is_empty() {
                        continue;
                    }
                    if let PortState::Active {
                        out: OutKind::Forward(l),
                        out_vc,
                        ..
                    } = buf.state
                    {
                        if l != out {
                            continue;
                        }
                        let occupied = self.link_bufs[out.index()][out_vc as usize].flits.len()
                            + self.transit_counts[out.index()][out_vc as usize] as usize;
                        if occupied < self.config.buffer_depth {
                            candidates.push((port, r));
                        }
                    }
                }
                if candidates.is_empty() {
                    continue;
                }
                let pick = self.rr_out[out.index()] % candidates.len();
                self.rr_out[out.index()] = self.rr_out[out.index()].wrapping_add(1);
                let (port, r) = candidates[pick];
                port_forwarded[port] = true;
                self.move_flit(r, out);
                progress = true;
            }

            // Ejection: up to local_bandwidth flits per cycle (the 4×
            // resource channel); independent of the forward crossbar.
            let mut budget = self.config.local_bandwidth;
            while budget > 0 {
                candidates.clear();
                for (bi, &r) in in_ports.iter().enumerate() {
                    let buf = self.buffer(r);
                    if buf.flits.is_empty() {
                        continue;
                    }
                    if matches!(
                        buf.state,
                        PortState::Active {
                            out: OutKind::Eject,
                            ..
                        }
                    ) {
                        candidates.push((bi / vcs, r));
                    }
                }
                if candidates.is_empty() {
                    break;
                }
                let pick = self.rr_eject[n] % candidates.len();
                self.rr_eject[n] = self.rr_eject[n].wrapping_add(1);
                let (_, r) = candidates[pick];
                self.eject_flit(r);
                budget -= 1;
                progress = true;
            }
        }
        progress
    }

    fn move_flit(&mut self, r: BufferRef, out: LinkId) {
        let (out_vc, next_cursor) = match self.buffer(r).state {
            PortState::Active {
                out_vc,
                next_cursor,
                ..
            } => (out_vc, next_cursor),
            _ => unreachable!("move_flit on non-active buffer"),
        };
        let mut flit = self
            .buffer_mut(r)
            .flits
            .pop_front()
            .expect("candidate had a front flit");
        if flit.is_head {
            flit.cursor = next_cursor;
        }
        if flit.is_tail {
            // The vacated buffer frees its ownership and control state.
            let buf = self.buffer_mut(r);
            buf.owner = None;
            buf.state = PortState::Idle;
        }
        self.transit_counts[out.index()][out_vc as usize] += 1;
        self.pending_sends.push((out, out_vc, flit));
        if self.in_measurement() {
            self.link_flits[out.index()] += 1;
        }
    }

    fn eject_flit(&mut self, r: BufferRef) {
        let flit = self
            .buffer_mut(r)
            .flits
            .pop_front()
            .expect("candidate had a front flit");
        self.in_network_flits -= 1;
        let measuring = self.in_measurement();
        if measuring {
            self.delivered_flits += 1;
        }
        if flit.is_tail {
            let buf = self.buffer_mut(r);
            buf.owner = None;
            buf.state = PortState::Idle;
            if measuring {
                self.stats[flit.flow.index()].delivered += 1;
                self.delivered_total += 1;
            }
            let entry = self.entry_cycle.remove(&flit.packet);
            if self.tracked.remove(&flit.packet) {
                if let Some(t0) = entry {
                    let latency = self.cycle - t0;
                    let fs = &mut self.stats[flit.flow.index()];
                    fs.latency_sum += latency;
                    fs.latency_count += 1;
                    fs.latency_max = fs.latency_max.max(latency);
                }
            }
        }
    }

    /// Moves flits from source queues into injection-port buffers.
    fn inject(&mut self) -> bool {
        let mut progress = false;
        for n in 0..self.topo.num_nodes() {
            let mut budget = self.config.local_bandwidth;
            while budget > 0 && !self.src_queues[n].is_empty() {
                match self.inj_progress[n] {
                    Some(InjectionProgress { vc, remaining }) => {
                        if self.inj_bufs[n][vc as usize].flits.len() >= self.config.buffer_depth {
                            break;
                        }
                        let flit = self.src_queues[n].pop_front().expect("nonempty");
                        self.inj_bufs[n][vc as usize].flits.push_back(flit);
                        self.in_network_flits += 1;
                        progress = true;
                        budget -= 1;
                        self.inj_progress[n] = (remaining > 1).then_some(InjectionProgress {
                            vc,
                            remaining: remaining - 1,
                        });
                    }
                    None => {
                        let head = *self.src_queues[n].front().expect("nonempty");
                        debug_assert!(head.is_head, "packet streams are contiguous");
                        let chosen = (0..self.config.vcs).find(|&v| {
                            let buf = &self.inj_bufs[n][v as usize];
                            buf.owner.is_none() && buf.flits.len() < self.config.buffer_depth
                        });
                        let Some(v) = chosen else { break };
                        let flit = self.src_queues[n].pop_front().expect("nonempty");
                        let buf = &mut self.inj_bufs[n][v as usize];
                        buf.owner = Some(head.packet);
                        buf.flits.push_back(flit);
                        self.in_network_flits += 1;
                        self.entry_cycle.insert(head.packet, self.cycle);
                        progress = true;
                        budget -= 1;
                        if self.config.packet_len > 1 {
                            self.inj_progress[n] = Some(InjectionProgress {
                                vc: v,
                                remaining: self.config.packet_len - 1,
                            });
                        }
                    }
                }
            }
        }
        progress
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsor_routing::Baseline;

    fn mesh_and_flows() -> (Topology, FlowSet) {
        let topo = Topology::mesh2d(4, 4);
        let mut flows = FlowSet::new();
        for n in topo.node_ids() {
            let c = topo.coord(n);
            let d = topo.node_at(3 - c.x, 3 - c.y).expect("in range");
            if n != d {
                flows.push(n, d, 25.0);
            }
        }
        (topo, flows)
    }

    fn quick_config() -> SimConfig {
        SimConfig::new(2)
            .with_warmup(500)
            .with_measurement(4_000)
            .with_packet_len(4)
    }

    #[test]
    fn light_load_delivers_everything_generated() {
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let traffic = TrafficSpec::proportional(&flows, 0.05);
        let mut sim =
            Simulator::new(&topo, &flows, &routes, traffic, quick_config()).expect("valid");
        let report = sim.run();
        assert!(!report.deadlocked);
        assert!(report.generated_packets > 0);
        // At 0.05 packets/cycle across 16 flows the network is nearly
        // idle: throughput tracks offered load closely.
        let ratio = report.throughput() / report.offered();
        assert!(
            (0.9..=1.1).contains(&ratio),
            "delivery ratio {ratio} at light load"
        );
    }

    #[test]
    fn latency_at_least_hop_count() {
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let traffic = TrafficSpec::proportional(&flows, 0.02);
        let mut sim =
            Simulator::new(&topo, &flows, &routes, traffic, quick_config()).expect("valid");
        let report = sim.run();
        let min_hops = flows
            .iter()
            .map(|f| topo.min_hops(f.src, f.dst))
            .min()
            .expect("flows");
        // A packet takes at least one cycle per hop plus serialization.
        assert!(
            report.mean_latency().expect("packets delivered") >= min_hops as f64,
            "latency below physical minimum"
        );
    }

    #[test]
    fn zero_rate_generates_nothing() {
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let traffic = TrafficSpec::proportional(&flows, 0.0);
        let mut sim =
            Simulator::new(&topo, &flows, &routes, traffic, quick_config()).expect("valid");
        let report = sim.run();
        assert_eq!(report.generated_packets, 0);
        assert_eq!(report.delivered_packets, 0);
        assert!(!report.deadlocked);
    }

    #[test]
    fn saturation_caps_throughput() {
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let light = TrafficSpec::proportional(&flows, 0.05);
        let heavy = TrafficSpec::proportional(&flows, 5.0);
        let light_tp = Simulator::new(&topo, &flows, &routes, light, quick_config())
            .expect("valid")
            .run()
            .throughput();
        let heavy_report = Simulator::new(&topo, &flows, &routes, heavy, quick_config())
            .expect("valid")
            .run();
        assert!(!heavy_report.deadlocked, "XY cannot deadlock");
        assert!(
            heavy_report.throughput() > light_tp,
            "more load, more delivered"
        );
        assert!(
            heavy_report.throughput() < heavy_report.offered() * 0.9,
            "saturated network cannot deliver everything offered"
        );
    }

    #[test]
    fn cyclic_routing_deadlocks_and_watchdog_fires() {
        // Hand-built cyclic routes (the canonical 2x2 turning ring) must
        // jam the wormhole network; the watchdog reports it.
        use bsor_flow::FlowId;
        use bsor_routing::{Route, RouteHop, RouteSet, VcMask};
        let topo = Topology::mesh2d(2, 2);
        let n = |x, y| topo.node_at(x, y).expect("in range");
        let hop = |a, b| RouteHop {
            link: topo.find_link(a, b).expect("adjacent"),
            vcs: VcMask::all(1),
        };
        // Each flow travels 3/4 of the way around the square, so packets
        // block while holding intermediate channels.
        let mut flows = FlowSet::new();
        flows.push(n(0, 0), n(1, 0), 1.0);
        flows.push(n(0, 1), n(0, 0), 1.0);
        flows.push(n(1, 1), n(0, 1), 1.0);
        flows.push(n(1, 0), n(1, 1), 1.0);
        let routes = RouteSet::from_routes(vec![
            Route {
                flow: FlowId(0),
                hops: vec![
                    hop(n(0, 0), n(0, 1)),
                    hop(n(0, 1), n(1, 1)),
                    hop(n(1, 1), n(1, 0)),
                ],
            },
            Route {
                flow: FlowId(1),
                hops: vec![
                    hop(n(0, 1), n(1, 1)),
                    hop(n(1, 1), n(1, 0)),
                    hop(n(1, 0), n(0, 0)),
                ],
            },
            Route {
                flow: FlowId(2),
                hops: vec![
                    hop(n(1, 1), n(1, 0)),
                    hop(n(1, 0), n(0, 0)),
                    hop(n(0, 0), n(0, 1)),
                ],
            },
            Route {
                flow: FlowId(3),
                hops: vec![
                    hop(n(1, 0), n(0, 0)),
                    hop(n(0, 0), n(0, 1)),
                    hop(n(0, 1), n(1, 1)),
                ],
            },
        ]);
        assert!(!bsor_routing::deadlock::is_deadlock_free(&topo, &routes, 1));
        let config = SimConfig::new(1)
            .with_warmup(0)
            .with_measurement(10_000)
            .with_watchdog(1_000)
            .with_buffer_depth(4)
            .with_packet_len(64); // spans the whole route: hold-and-wait
        let traffic = TrafficSpec::uniform(&flows, 1.0); // all inject at cycle 0
        let mut sim = Simulator::new(&topo, &flows, &routes, traffic, config).expect("valid");
        let report = sim.run();
        assert!(report.deadlocked, "the turning ring must deadlock");
    }

    #[test]
    fn static_vc_routes_simulate() {
        use bsor_cdg::{AcyclicCdg, TurnModel};
        use bsor_flow::FlowNetwork;
        use bsor_routing::selectors::DijkstraSelector;
        let (topo, flows) = mesh_and_flows();
        let acyclic = AcyclicCdg::turn_model(&topo, 2, &TurnModel::west_first()).expect("valid");
        let net = FlowNetwork::new(&topo, &acyclic);
        let routes = DijkstraSelector::new()
            .select(&net, &flows)
            .expect("routable");
        let traffic = TrafficSpec::proportional(&flows, 0.1);
        let mut sim =
            Simulator::new(&topo, &flows, &routes, traffic, quick_config()).expect("valid");
        let report = sim.run();
        assert!(!report.deadlocked);
        assert!(report.delivered_packets > 0);
    }

    #[test]
    fn vc_count_must_cover_routes() {
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::Romm { seed: 1 }
            .select(&topo, &flows, 4)
            .expect("romm");
        let traffic = TrafficSpec::proportional(&flows, 0.1);
        let err = Simulator::new(&topo, &flows, &routes, traffic, SimConfig::new(2))
            .err()
            .expect("4-VC routes cannot run on 2 VCs");
        assert_eq!(err, SimError::VcOutOfRange { vcs: 2 });
    }

    #[test]
    fn reports_are_reproducible_for_a_seed() {
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let run = |seed: u64| {
            let traffic = TrafficSpec::proportional(&flows, 0.2);
            let config = quick_config().with_seed(seed);
            Simulator::new(&topo, &flows, &routes, traffic, config)
                .expect("valid")
                .run()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.delivered_packets, b.delivered_packets);
        assert_eq!(a.generated_packets, b.generated_packets);
        assert_eq!(a.mean_latency(), b.mean_latency());
        let c = run(43);
        assert_ne!(
            (a.generated_packets, a.delivered_flits),
            (c.generated_packets, c.delivered_flits),
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn pipeline_latency_scales_packet_latency() {
        // The Chapter 4 four-stage pipeline costs ~4x the single-cycle
        // router's per-hop latency at light load.
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let run = |pipe: u8| {
            let traffic = TrafficSpec::proportional(&flows, 0.02);
            let config = quick_config().with_pipeline_latency(pipe);
            Simulator::new(&topo, &flows, &routes, traffic, config)
                .expect("valid")
                .run()
                .mean_latency()
                .expect("light load delivers")
        };
        let l1 = run(1);
        let l4 = run(4);
        assert!(
            l4 > l1 * 2.0,
            "4-stage pipeline latency {l4:.1} should far exceed single-cycle {l1:.1}"
        );
    }

    #[test]
    fn link_flit_counts_reflect_routes() {
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let traffic = TrafficSpec::proportional(&flows, 0.1);
        let mut sim =
            Simulator::new(&topo, &flows, &routes, traffic, quick_config()).expect("valid");
        let report = sim.run();
        // Links not on any route carry nothing.
        let mut used = vec![false; topo.num_links()];
        for r in routes.iter() {
            for h in &r.hops {
                used[h.link.index()] = true;
            }
        }
        for (li, &flits) in report.link_flits.iter().enumerate() {
            if !used[li] {
                assert_eq!(flits, 0, "unused link {li} carried flits");
            }
        }
        assert!(report.max_link_flits() > 0);
    }
}
