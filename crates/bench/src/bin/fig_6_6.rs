//! Regenerates **Figure 6-6**: network throughput and average latency
//! versus offered injection rate for the 802.11a/g Transmitter workload
//! under XY, YX, ROMM, Valiant and the two BSOR selectors (8×8 mesh,
//! 2 VCs).
//!
//! ```text
//! cargo run -p bsor-bench --release --bin fig_6_6 [--paper] [--csv]
//! ```

use bsor_bench::{paper_mode, print_figure, standard_mesh, standard_rates, SweepConfig};
use bsor_workloads::wifi_transmitter;

fn main() {
    let topo = standard_mesh();
    let workload = wifi_transmitter(&topo).expect("8x8 supports the workload");
    let cfg = if paper_mode() {
        SweepConfig::paper(2)
    } else {
        SweepConfig::quick(2)
    };
    print_figure(
        "Figure 6-6: 802.11a/g Transmitter — throughput & latency vs offered rate",
        &topo,
        &workload,
        &cfg,
        &standard_rates(),
    );
}
