//! # bsor-lp
//!
//! A from-scratch linear-programming and mixed-integer-linear-programming
//! toolkit used by the BSOR MILP route selector.
//!
//! The paper solves its route-selection MILP with CPLEX; no MILP solver is
//! available in this build environment, so this crate implements the two
//! pieces BSOR needs:
//!
//! * a dense **two-phase primal simplex** solver ([`simplex`]) for linear
//!   programs in the natural `min cᵀx, Ax ⋈ b, l ≤ x ≤ u` form, and
//! * a **branch-and-bound** layer ([`milp`]) for models with binary /
//!   integer variables, with node- and time-limits so it can also be used
//!   as the "ILP as heuristic" mode the thesis describes for large
//!   problems.
//!
//! Models are built with [`Model`]:
//!
//! ```
//! use bsor_lp::{Model, Cmp, VarKind};
//!
//! # fn main() -> Result<(), bsor_lp::LpError> {
//! // min -x - 2y  s.t.  x + y <= 4, x <= 3, y <= 2, x,y >= 0
//! let mut m = Model::minimize();
//! let x = m.add_var(VarKind::Continuous, 0.0, 3.0, -1.0);
//! let y = m.add_var(VarKind::Continuous, 0.0, 2.0, -2.0);
//! m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
//! let sol = m.solve()?;
//! assert!((sol.objective() - (-6.0)).abs() < 1e-6);
//! assert!((sol.value(x) - 2.0).abs() < 1e-6);
//! assert!((sol.value(y) - 2.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

pub mod milp;
pub mod problem;
pub mod simplex;

pub use milp::{MilpOptions, MilpStats};
pub use problem::{Cmp, LpError, Model, Solution, VarId, VarKind};
