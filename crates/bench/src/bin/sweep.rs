//! `bsor-sweep` — expand a declarative scenario grid (topology ×
//! workload × routing algorithm × VC count × injection rate), fan the
//! cases out across `std::thread::scope` workers, and write
//! deterministic, schema-stable JSON (`BENCH_sweep.json`) with
//! per-scenario latency/throughput/deadlock stats plus wall-clock
//! timings.
//!
//! Every axis is registry-backed: topologies, workloads and algorithms
//! are resolved by name through `TopologyRegistry`, `WorkloadRegistry`
//! and `AlgorithmRegistry`, and the `--list-*` flags print exactly what
//! those registries contain.
//!
//! ```text
//! cargo run -p bsor_bench --release --bin bsor-sweep -- [options]
//!
//!   --quick                 reduced CI smoke grid (2 workloads, 3 algos, 3 rates)
//!   --mesh WxH[,WxH...]     mesh sizes                     (default 8x8)
//!   --topo spec[,...]       topology axis entries: registry name plus grid
//!                           dims (mesh:8x8, torus:4x4, ring:8x1,
//!                           hypercube:4x2) or a family/file spec
//!                           (dragonfly:2,3,2 — commas inside an entry bind
//!                           to the family, fattree:4, fullmesh:8,
//!                           file:assets/topologies/wan5.topo)
//!   --workloads a,b|all     workload specs: registry names or parameterized
//!                           specs like hotspot:4 / rand-perm:42
//!                           (default: the paper's six; all = every exact name)
//!   --algos a,b|all         algorithm names                (default xy,yx,romm,valiant,bsor-dijkstra)
//!   --vcs 1,2,4             VC counts                      (default 2)
//!   --rates r1,r2,...       offered rates, packets/cycle   (default the figure grid)
//!   --warmup N              warmup cycles                  (default 2000)
//!   --measurement N         measured cycles                (default 10000)
//!   --packet-len N          flits per packet               (default 8)
//!   --seed N                injection RNG seed             (default 46347)
//!   --burst ON,OFF          on/off bursty injection with the given mean
//!                           dwell cycles (default: flat Bernoulli)
//!   --saturation            per-case saturation-point search (bisect the
//!                           rate to the latency knee)
//!   --sat-range LO,HI       saturation search rate bounds  (default 0.05,4;
//!                           both finite, 0 < LO < HI, or exit 1)
//!   --sat-iters N           bisection steps                (default 10)
//!   --compact-tables        compile router tables into the interval-
//!                           compressed representation (behaviorally
//!                           identical; per-case table_bytes shrinks)
//!   --max-links N           directed-link budget for ac-oblivious
//!                           (default: the selector's 16)
//!   --max-hops N            hop budget for bsor-dijkstra / bsor-milp /
//!                           random-walk; over-budget routes become typed
//!                           per-case errors
//!   --threads N             sweep worker threads           (default: available cores)
//!   --engine-threads N      engine threads per simulation run; 0 = one per
//!                           available core (default 1). Byte-identical output
//!                           at every value.
//!   --no-fast-forward       disable idle-cycle fast-forward (byte-identical
//!                           output; exists so CI can smoke both paths)
//!   --out PATH              output path                    (default BENCH_sweep.json)
//!   --no-timings            zero wall-clock fields (byte-identical reruns)
//!   --list                  print the expanded grid and exit
//!   --list-topologies       print topology names and family specs and exit
//!   --list-workloads        print workload names and family specs and exit
//!   --list-algorithms       print registered algorithm names and exit
//! ```
//!
//! Every case is planned once through the shared `Planner`/`PlanCache`
//! (route selection, Lemma-1 certificate, compiled node tables) and
//! every rate point and saturation probe evaluates that plan with the
//! `SimEvaluator`. Set `BSOR_PLAN_CACHE=off` to disable the cache and
//! re-solve per point — the cost of running the full pipeline once per
//! grid point; output is byte-identical either way. The
//! `route solves:` stderr line reports the solve / cache-hit counters.
//!
//! Exit codes: 0 on success, 1 on bad arguments or write failure, 2
//! when the sweep completed but one or more cases failed (the failures
//! are recorded in the JSON's per-case `error` fields).

use bsor::{AlgorithmRegistry, RegistryConfig};
use bsor_bench::sweep::{
    expand, plan_cache_enabled_from_env, run_grid_stats, sweep_json, GridSpec, SaturationSpec,
    SweepRegistries, TopoSpec,
};
use bsor_sim::BurstyOnOff;
use std::process::ExitCode;
use std::time::Instant;

fn parse_list<T, F: Fn(&str) -> Result<T, String>>(raw: &str, f: F) -> Result<Vec<T>, String> {
    raw.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| f(s.trim()))
        .collect()
}

fn parse_dims(s: &str) -> Result<(u16, u16), String> {
    let (w, h) = s
        .split_once('x')
        .ok_or_else(|| format!("dims '{s}' are not WxH"))?;
    let w = w.parse().map_err(|_| format!("bad width '{w}'"))?;
    let h = h.parse().map_err(|_| format!("bad height '{h}'"))?;
    if w == 0 || h == 0 {
        return Err(format!("dims '{s}' have a zero dimension"));
    }
    Ok((w, h))
}

fn parse_mesh(s: &str) -> Result<TopoSpec, String> {
    // Mesh-specific wording, with the precise constraint preserved
    // (zero dimension vs unparsable width vs missing 'x').
    let (w, h) = s
        .split_once('x')
        .ok_or_else(|| format!("mesh '{s}' is not WxH"))?;
    let w = w.parse().map_err(|_| format!("bad mesh width '{w}'"))?;
    let h = h.parse().map_err(|_| format!("bad mesh height '{h}'"))?;
    if w == 0 || h == 0 {
        return Err(format!("mesh '{s}' has a zero dimension"));
    }
    Ok(TopoSpec::mesh(w, h))
}

/// Splits a `--topo` list on commas, re-attaching purely numeric
/// segments to the previous entry so family arguments like
/// `dragonfly:2,3,2` survive the list syntax (a bare number is never a
/// valid entry on its own).
fn split_topo_list(raw: &str) -> Vec<String> {
    let mut entries: Vec<String> = Vec::new();
    for seg in raw.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match entries.last_mut() {
            Some(last) if !seg.is_empty() && seg.bytes().all(|b| b.is_ascii_digit()) => {
                last.push(',');
                last.push_str(seg);
            }
            _ => entries.push(seg.to_owned()),
        }
    }
    entries
}

/// One `--topo` entry: `name:WxH` (bare `WxH` means `mesh:WxH`), or a
/// registry family/file spec (`dragonfly:2,3,2`, `fattree:4`,
/// `fullmesh:8`, `file:<path>`). Family and file specs are resolved
/// eagerly so a malformed spec — unparsable parameters, a missing or
/// syntactically invalid topology file — fails argument parsing with
/// exit code 1 and the registry's typed message instead of surfacing
/// later as a per-case error.
fn parse_topo(s: &str, regs: &SweepRegistries) -> Result<TopoSpec, String> {
    match s.split_once(':') {
        None => parse_mesh(s),
        Some((name, rest)) => {
            if name.is_empty() {
                return Err(format!("topology '{s}' has an empty name"));
            }
            if let Ok((w, h)) = parse_dims(rest) {
                // Unknown grid names stay per-case errors (the sweep
                // records them in the JSON), preserving the historical
                // name:WxH behavior.
                return Ok(TopoSpec::new(name, w, h));
            }
            match regs.topologies.build_spec(s) {
                Ok(_) => Ok(TopoSpec::from_spec(s)),
                Err(e) => Err(e.to_string()),
            }
        }
    }
}

fn usage(regs: &SweepRegistries) {
    // The doc comment at the top of this file is the single source of
    // truth; print a compact version.
    println!("bsor-sweep: parallel scenario-grid runner writing BENCH_sweep.json");
    println!();
    println!("options: --quick --mesh WxH,.. --topo name:WxH,.. --workloads a,b|all");
    println!("         --algos a,b|all --vcs n,.. --rates r,.. --warmup N");
    println!("         --measurement N --packet-len N --seed N --burst ON,OFF");
    println!("         --saturation --sat-range LO,HI --sat-iters N --threads N");
    println!("         --engine-threads N --no-fast-forward --compact-tables");
    println!("         --max-links N --max-hops N");
    println!("         --out PATH --no-timings --list --list-topologies");
    println!("         --list-workloads --list-algorithms --help");
    println!(
        "topologies: {}",
        regs.topologies
            .names()
            .into_iter()
            .chain(regs.topologies.family_specs())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "workloads: {}",
        regs.workloads
            .names()
            .into_iter()
            .chain(regs.workloads.family_specs())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("algorithms: {}", regs.algorithms.names().join(", "));
}

/// Which enumeration (if any) a `--list*` flag asked for.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ListMode {
    None,
    Grid,
    Topologies,
    Workloads,
    Algorithms,
}

fn parse_args(
    args: &[String],
    regs: &SweepRegistries,
) -> Result<(GridSpec, Option<usize>, String, ListMode, RegistryConfig), String> {
    // `--quick` selects the base grid and is order-independent: flags
    // before or after it override the smoke defaults either way.
    let mut spec = if args.iter().any(|a| a == "--quick") {
        GridSpec::smoke()
    } else {
        GridSpec::standard()
    };
    let mut threads: Option<usize> = None;
    let mut out = "BENCH_sweep.json".to_string();
    let mut list = ListMode::None;
    let mut budgets = RegistryConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--quick" => {}
            "--mesh" => spec.topologies = parse_list(&value("--mesh")?, parse_mesh)?,
            "--topo" => {
                spec.topologies = split_topo_list(&value("--topo")?)
                    .iter()
                    .map(|s| parse_topo(s, regs))
                    .collect::<Result<_, _>>()?;
            }
            "--workloads" => {
                let raw = value("--workloads")?;
                spec.workloads = if raw == "all" {
                    regs.workloads
                        .names()
                        .iter()
                        .map(|s| s.to_string())
                        .collect()
                } else {
                    parse_list(&raw, |s| Ok(s.to_string()))?
                };
            }
            "--algos" => {
                let raw = value("--algos")?;
                spec.algorithms = if raw == "all" {
                    regs.algorithms
                        .names()
                        .iter()
                        .map(|s| s.to_string())
                        .collect()
                } else {
                    parse_list(&raw, |s| Ok(s.to_string()))?
                };
            }
            "--vcs" => {
                spec.vcs = parse_list(&value("--vcs")?, |s| {
                    let vcs: u8 = s.parse().map_err(|_| format!("bad vc count '{s}'"))?;
                    if !(1..=8).contains(&vcs) {
                        return Err(format!("vc count '{s}' must be 1..=8"));
                    }
                    Ok(vcs)
                })?;
            }
            "--rates" => {
                spec.rates = parse_list(&value("--rates")?, |s| {
                    let rate: f64 = s.parse().map_err(|_| format!("bad rate '{s}'"))?;
                    if !rate.is_finite() || rate < 0.0 {
                        return Err(format!("rate '{s}' must be finite and >= 0"));
                    }
                    Ok(rate)
                })?;
            }
            "--warmup" => {
                spec.warmup = value("--warmup")?
                    .parse()
                    .map_err(|_| "bad --warmup".to_string())?;
            }
            "--measurement" => {
                spec.measurement = value("--measurement")?
                    .parse()
                    .map_err(|_| "bad --measurement".to_string())?;
            }
            "--packet-len" => {
                spec.packet_len = value("--packet-len")?
                    .parse()
                    .map_err(|_| "bad --packet-len".to_string())?;
                if spec.packet_len == 0 {
                    return Err("--packet-len needs at least one flit".to_string());
                }
            }
            "--seed" => {
                spec.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_string())?;
            }
            "--burst" => {
                let raw = value("--burst")?;
                let (on, off) = raw
                    .split_once(',')
                    .ok_or_else(|| format!("--burst '{raw}' is not ON,OFF"))?;
                let on: f64 = on.parse().map_err(|_| format!("bad burst on '{on}'"))?;
                let off: f64 = off.parse().map_err(|_| format!("bad burst off '{off}'"))?;
                if !(on >= 1.0 && off >= 1.0) {
                    return Err(format!("--burst '{raw}' dwell means must be >= 1 cycle"));
                }
                spec.burst = Some(BurstyOnOff::new(on, off));
            }
            "--saturation" => {
                spec.saturation.get_or_insert_with(SaturationSpec::default);
            }
            "--sat-range" => {
                let raw = value("--sat-range")?;
                let (lo, hi) = raw
                    .split_once(',')
                    .ok_or_else(|| format!("--sat-range '{raw}' is not LO,HI"))?;
                let lo: f64 = lo.parse().map_err(|_| format!("bad sat lo '{lo}'"))?;
                let hi: f64 = hi.parse().map_err(|_| format!("bad sat hi '{hi}'"))?;
                // The sweep JSON echoes these bounds verbatim; validate
                // them here (finiteness included — "inf" parses as a
                // perfectly ordered f64) so a degenerate range exits 1
                // instead of contaminating the artifact.
                let sat = SaturationSpec {
                    lo,
                    hi,
                    ..spec.saturation.unwrap_or_default()
                };
                sat.validate()
                    .map_err(|e| format!("--sat-range '{raw}': {e}"))?;
                spec.saturation = Some(sat);
            }
            "--sat-iters" => {
                let iters = value("--sat-iters")?
                    .parse()
                    .map_err(|_| "bad --sat-iters".to_string())?;
                spec.saturation
                    .get_or_insert_with(SaturationSpec::default)
                    .iterations = iters;
            }
            "--threads" => {
                threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|_| "bad --threads".to_string())?,
                );
            }
            "--engine-threads" => {
                let n: usize = value("--engine-threads")?
                    .parse()
                    .map_err(|_| "bad --engine-threads".to_string())?;
                // 0 means one engine worker per available core.
                spec.engine_threads = if n == 0 {
                    std::thread::available_parallelism()
                        .map(|p| p.get())
                        .unwrap_or(1)
                } else {
                    n
                };
            }
            "--no-fast-forward" => spec.fast_forward = false,
            "--compact-tables" => spec.compact_tables = true,
            "--max-links" => {
                let n: usize = value("--max-links")?
                    .parse()
                    .map_err(|_| "bad --max-links".to_string())?;
                if n == 0 {
                    return Err("--max-links needs at least one link".to_string());
                }
                budgets = budgets.with_max_links(n);
            }
            "--max-hops" => {
                let n: usize = value("--max-hops")?
                    .parse()
                    .map_err(|_| "bad --max-hops".to_string())?;
                if n == 0 {
                    return Err("--max-hops needs at least one hop".to_string());
                }
                budgets = budgets.with_max_hops(n);
            }
            "--out" => out = value("--out")?,
            "--no-timings" => spec.record_timings = false,
            "--list" => list = ListMode::Grid,
            "--list-topologies" => list = ListMode::Topologies,
            "--list-workloads" => list = ListMode::Workloads,
            "--list-algorithms" => list = ListMode::Algorithms,
            "--help" | "-h" => {
                usage(regs);
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}' (try --help)")),
        }
    }
    Ok((spec, threads, out, list, budgets))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut regs = SweepRegistries::standard();
    let (spec, threads, out, list, budgets) = match parse_args(&args, &regs) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("bsor-sweep: {e}");
            return ExitCode::FAILURE;
        }
    };
    if budgets != RegistryConfig::default() {
        // Rebuild the algorithm axis with the CLI budgets; the budgets
        // fold into every cache key, so plans never alias across runs
        // with different limits.
        regs.algorithms = AlgorithmRegistry::standard_with(budgets);
    }
    match list {
        ListMode::Topologies => {
            for name in regs.topologies.names() {
                println!("{name}");
            }
            for spec in regs.topologies.family_specs() {
                println!("{spec}");
            }
            return ExitCode::SUCCESS;
        }
        ListMode::Workloads => {
            for name in regs.workloads.names() {
                println!("{name}");
            }
            for spec in regs.workloads.family_specs() {
                println!("{spec}");
            }
            return ExitCode::SUCCESS;
        }
        ListMode::Algorithms => {
            for name in regs.algorithms.names() {
                println!("{name}");
            }
            return ExitCode::SUCCESS;
        }
        ListMode::Grid => {
            for c in expand(&spec) {
                println!(
                    "{} {} {} vcs={} rates={:?}",
                    c.topo.label(),
                    c.workload,
                    c.algorithm,
                    c.vcs,
                    spec.rates
                );
            }
            return ExitCode::SUCCESS;
        }
        ListMode::None => {}
    }
    let threads = threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    let cache = plan_cache_enabled_from_env();
    eprintln!(
        "bsor-sweep: {} cases x {} rates = {} runs on {} threads (plan cache {})",
        spec.num_cases(),
        spec.rates.len(),
        spec.num_runs(),
        threads,
        if cache { "on" } else { "off" }
    );
    let started = Instant::now();
    let outcome = run_grid_stats(&spec, threads, &regs, cache);
    let results = outcome.results;
    let total_wall_ms = if spec.record_timings {
        started.elapsed().as_secs_f64() * 1e3
    } else {
        0.0
    };
    let doc = sweep_json(&spec, &results, threads, total_wall_ms);
    if let Err(e) = std::fs::write(&out, doc.pretty()) {
        eprintln!("bsor-sweep: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    let failed = results.iter().filter(|r| r.error.is_some()).count();
    // The solve counter is the cache's audit trail: with the cache on a
    // sweep performs exactly one route solve (MILP or heuristic) per
    // case; with BSOR_PLAN_CACHE=off every rate point and saturation
    // probe re-solves (the naive per-point pipeline), with
    // byte-identical JSON.
    eprintln!(
        "bsor-sweep: route solves: {} (cache hits: {})",
        outcome.plans.solves, outcome.plans.cache_hits
    );
    eprintln!(
        "bsor-sweep: wrote {out} ({} cases, {failed} failed) in {:.1}s",
        results.len(),
        started.elapsed().as_secs_f64()
    );
    // A failed case (unroutable combination, unknown name, a route set
    // rejected by the Lemma-1 deadlock check) is recorded in the JSON
    // *and* reflected in the exit code, so CI catches route-selection
    // regressions without parsing the output.
    if failed > 0 {
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}
