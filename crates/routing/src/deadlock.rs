//! Deadlock-freedom checking for computed route sets.
//!
//! Per the paper's Lemma 1 (Dally & Aoki), a routing is deadlock-free iff
//! the channel dependence graph restricted to the dependencies its routes
//! actually create is acyclic. This module rebuilds that restricted CDG
//! from a [`RouteSet`] — conservatively expanding each hop's VC mask — and
//! checks acyclicity.

use crate::route::RouteSet;
use bsor_netgraph::{algo, DiGraph};
use bsor_topology::Topology;

/// Result of a deadlock analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeadlockAnalysis {
    /// The induced channel dependence graph is acyclic.
    Free,
    /// A dependence cycle exists; the offending `(link, vc)` pairs are
    /// listed in cycle order.
    Cyclic {
        /// `(link index, vc)` pairs forming the cycle.
        cycle: Vec<(usize, u8)>,
    },
}

impl DeadlockAnalysis {
    /// True when no cycle was found.
    pub fn is_free(&self) -> bool {
        matches!(self, DeadlockAnalysis::Free)
    }
}

/// Builds the `(channel, VC)` dependence graph `routes` induce (the
/// restricted CDG of Lemma 1), deduplicating edges.
fn induced_graph(topo: &Topology, routes: &RouteSet, vcs: u8) -> DiGraph<(usize, u8), ()> {
    let nl = topo.num_links();
    let nv = vcs as usize;
    let mut g: DiGraph<(usize, u8), ()> = DiGraph::with_capacity(nl * nv, nl * nv);
    for l in 0..nl {
        for v in 0..vcs {
            g.add_node((l, v));
        }
    }
    let vid = |l: usize, v: u8| bsor_netgraph::NodeId((l * nv + v as usize) as u32);
    // Dedup edges with a seen set to keep the graph small.
    let mut seen = std::collections::HashSet::new();
    for r in routes.iter() {
        for pair in r.hops.windows(2) {
            for v1 in pair[0].vcs.iter() {
                for v2 in pair[1].vcs.iter() {
                    let key = (pair[0].link.index(), v1, pair[1].link.index(), v2);
                    if seen.insert(key) {
                        g.add_edge(vid(key.0, key.1), vid(key.2, key.3), ());
                    }
                }
            }
        }
    }
    g
}

/// Builds the `(channel, VC)` dependence graph induced by `routes` and
/// reports whether it is acyclic.
///
/// Every consecutive hop pair `(h1, h2)` of every route contributes the
/// dependence edges `{(h1.link, v1) -> (h2.link, v2) | v1 ∈ h1.vcs, v2 ∈
/// h2.vcs}`. This is conservative for dynamically allocated VCs: if the
/// expanded graph is acyclic, the routing is deadlock-free under any
/// run-time VC choice within the masks.
pub fn analyze(topo: &Topology, routes: &RouteSet, vcs: u8) -> DeadlockAnalysis {
    let g = induced_graph(topo, routes, vcs);
    match algo::find_cycle(&g) {
        None => DeadlockAnalysis::Free,
        Some(cycle_edges) => {
            let cycle = cycle_edges
                .iter()
                .map(|&e| {
                    let (s, _) = g.endpoints(e).expect("live edge");
                    *g.node(s)
                })
                .collect();
            DeadlockAnalysis::Cyclic { cycle }
        }
    }
}

/// A checkable witness of Lemma-1 deadlock freedom.
///
/// The certificate carries a topological rank for every `(channel, VC)`
/// vertex of the dependence graph the routes induce; acyclicity follows
/// from every dependence strictly increasing the rank, which
/// [`DeadlockCertificate::verify`] re-checks in one pass over the routes
/// without rebuilding or re-sorting the graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadlockCertificate {
    vcs: u8,
    /// `rank[link * vcs + vc]` — position in a topological order of the
    /// induced CDG.
    rank: Vec<u32>,
    dependencies: usize,
}

impl DeadlockCertificate {
    /// Virtual channels the certified routing runs on.
    pub fn vcs(&self) -> u8 {
        self.vcs
    }

    /// Number of distinct channel dependencies the routes induce.
    pub fn dependencies(&self) -> usize {
        self.dependencies
    }

    /// Re-checks the witness against `routes`: every dependence edge the
    /// routes create must strictly increase the stored topological rank
    /// (and every hop must stay inside the certified VC range).
    pub fn verify(&self, routes: &RouteSet) -> bool {
        let nv = self.vcs as usize;
        let rank = |l: usize, v: u8| self.rank.get(l * nv + v as usize);
        for r in routes.iter() {
            for hop in &r.hops {
                if hop.vcs.iter().any(|v| v >= self.vcs) {
                    return false;
                }
            }
            for pair in r.hops.windows(2) {
                for v1 in pair[0].vcs.iter() {
                    for v2 in pair[1].vcs.iter() {
                        match (
                            rank(pair[0].link.index(), v1),
                            rank(pair[1].link.index(), v2),
                        ) {
                            (Some(a), Some(b)) if a < b => {}
                            _ => return false,
                        }
                    }
                }
            }
        }
        true
    }
}

/// Proves `routes` deadlock-free (paper Lemma 1) by topologically
/// sorting the induced channel dependence graph, returning the order as
/// a reusable [`DeadlockCertificate`].
///
/// # Errors
///
/// The dependence cycle (as `(link index, vc)` pairs in cycle order)
/// when the routing is *not* deadlock-free — the same evidence
/// [`analyze`] reports.
pub fn certify(
    topo: &Topology,
    routes: &RouteSet,
    vcs: u8,
) -> Result<DeadlockCertificate, Vec<(usize, u8)>> {
    let g = induced_graph(topo, routes, vcs);
    match algo::toposort(&g) {
        Ok(order) => {
            let mut rank = vec![0u32; topo.num_links() * vcs as usize];
            for (pos, node) in order.iter().enumerate() {
                let (l, v) = *g.node(*node);
                rank[l * vcs as usize + v as usize] = pos as u32;
            }
            Ok(DeadlockCertificate {
                vcs,
                rank,
                dependencies: g.edge_count(),
            })
        }
        Err(_) => match analyze(topo, routes, vcs) {
            DeadlockAnalysis::Cyclic { cycle } => Err(cycle),
            DeadlockAnalysis::Free => unreachable!("toposort found a cycle analyze did not"),
        },
    }
}

/// Convenience wrapper over [`analyze`].
pub fn is_deadlock_free(topo: &Topology, routes: &RouteSet, vcs: u8) -> bool {
    analyze(topo, routes, vcs).is_free()
}

/// Whether a deadlock-free *all-pairs* routing exists on `topo` with a
/// single virtual channel — the arbitrary-network existence question,
/// answered by [`certify_arbitrary`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArbitraryCertification {
    /// A witness order exists: `rank[link index]` is a channel order
    /// under which every ordered node pair is routable along strictly
    /// rank-increasing channels (no 180° turns), so Lemma 1 certifies
    /// any routing that follows the order.
    Certified {
        /// One rank per directed channel, indexed by link index.
        rank: Vec<u32>,
    },
    /// Provably impossible: the listed channels (by link index, in
    /// cycle order) are *mandatory* for node pairs that chain head to
    /// tail, forcing a dependence cycle into every all-pairs routing.
    Refuted {
        /// Link indices forming the mandatory-dependence cycle.
        cycle: Vec<usize>,
    },
    /// Neither a refutation nor a witness was found (the up*/down*
    /// witness construction is incomplete on asymmetric graphs).
    Inconclusive,
    /// The graph is not strongly connected, so *all-pairs* routing does
    /// not exist at all and the deadlock question is vacuous. The
    /// listed node (by index) is the witness: it cannot reach node 0,
    /// or node 0 cannot reach it.
    NotStronglyConnected {
        /// A node disconnected from node 0 in one direction.
        node: usize,
    },
}

impl ArbitraryCertification {
    /// True when a witness order was found.
    pub fn is_certified(&self) -> bool {
        matches!(self, ArbitraryCertification::Certified { .. })
    }

    /// True when deadlock-free all-pairs routing is provably impossible.
    pub fn is_refuted(&self) -> bool {
        matches!(self, ArbitraryCertification::Refuted { .. })
    }
}

/// Decides (up to an honest `Inconclusive`) whether `topo` admits a
/// deadlock-free all-pairs routing on **one** virtual channel — the
/// existence condition for arbitrary networks, beside the per-route-set
/// Lemma-1 check of [`certify`].
///
/// Two halves:
///
/// 1. **Refutation** (a necessary condition): channel `c` is
///    *mandatory* for the pair `(u, v)` when every `u → v` path uses
///    `c`. If `c1` is mandatory for `(u, v)` and `c2` is mandatory for
///    `(head(c1), v)`, every routing's `u → v` route uses `c1` and
///    later `c2`, so any acyclic induced CDG must rank
///    `c1` before `c2`. A cycle among these forced precedences is a
///    proof that *no* deadlock-free all-pairs routing exists (e.g. a
///    unidirectional ring).
/// 2. **Witness** (a sufficient condition): an up*/down* channel order
///    from a BFS spanning tree rooted at node 0 — channels toward
///    smaller `(depth, id)` keys are "up", ranked before all "down"
///    channels; a monotone-reachability sweep then verifies every
///    ordered pair is routable along strictly rank-increasing channels
///    without 180° turns. On symmetric connected topologies the tree
///    paths themselves are such routes, so the check passes by
///    construction.
///
/// Strongly connected graphs that pass neither test report
/// [`ArbitraryCertification::Inconclusive`]; graphs that are not
/// strongly connected (no constructor in this workspace produces one,
/// but a hand-written `.topo` file can) report
/// [`ArbitraryCertification::NotStronglyConnected`] with a witness node
/// — all-pairs routing does not exist there, so neither certification
/// nor refutation applies.
pub fn certify_arbitrary(topo: &Topology) -> ArbitraryCertification {
    let n = topo.num_nodes();
    let nl = topo.num_links();

    // BFS over out-channels from `u`, skipping channel `skip`
    // (`usize::MAX` to skip nothing, or follow in-channels instead to
    // test reverse reachability).
    let reach = |u: usize, skip: usize, reversed: bool| -> Vec<bool> {
        let mut reached = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        reached[u] = true;
        queue.push_back(u);
        while let Some(x) = queue.pop_front() {
            let node = bsor_topology::NodeId(x as u32);
            let channels = if reversed {
                topo.in_links(node)
            } else {
                topo.out_links(node)
            };
            for &l in channels {
                if l.index() == skip {
                    continue;
                }
                let link = topo.link(l);
                let y = if reversed { link.src } else { link.dst }.index();
                if !reached[y] {
                    reached[y] = true;
                    queue.push_back(y);
                }
            }
        }
        reached
    };

    // The mandatory-channel analysis below reads "v unreachable" as
    // "channel c is unavoidable", which is only meaningful when every
    // pair is routable to begin with.
    let forward = reach(0, usize::MAX, false);
    let backward = reach(0, usize::MAX, true);
    if let Some(node) = (0..n).find(|&v| !forward[v] || !backward[v]) {
        return ArbitraryCertification::NotStronglyConnected { node };
    }

    // reach_without[c][u][v]: is v reachable from u avoiding channel c?
    // One BFS per (channel, source); sizes here are NoC- or WAN-scale,
    // so the cubic-ish sweep stays cheap.
    let reach_without: Vec<Vec<Vec<bool>>> = (0..nl)
        .map(|c| (0..n).map(|u| reach(u, c, false)).collect())
        .collect();

    // Forced precedences: c1 ≺ c2 when, for some destination v, c1 is
    // mandatory from tail(c1) (every tail(c1) → v path uses c1 — and
    // then c1 is mandatory from *any* source whose paths to v exist,
    // since a c1-free prefix would splice onto a c1-free tail) and c2
    // is mandatory from head(c1): the route that must use c1 must then
    // also use c2 afterwards, so an acyclic induced CDG has to rank c1
    // before c2.
    let mut constraints: DiGraph<usize, ()> = DiGraph::with_capacity(nl, nl);
    for c in 0..nl {
        constraints.add_node(c);
    }
    for c1 in 0..nl {
        let link1 = topo.link(bsor_topology::LinkId(c1 as u32));
        let (tail1, head1) = (link1.src.index(), link1.dst.index());
        for c2 in 0..nl {
            if c1 == c2 {
                continue;
            }
            let forced =
                (0..n).any(|v| !reach_without[c1][tail1][v] && !reach_without[c2][head1][v]);
            if forced {
                constraints.add_edge(
                    bsor_netgraph::NodeId(c1 as u32),
                    bsor_netgraph::NodeId(c2 as u32),
                    (),
                );
            }
        }
    }
    if let Some(cycle_edges) = algo::find_cycle(&constraints) {
        let cycle = cycle_edges
            .iter()
            .map(|&e| {
                let (s, _) = constraints.endpoints(e).expect("live edge");
                *constraints.node(s)
            })
            .collect();
        return ArbitraryCertification::Refuted { cycle };
    }

    // Witness: up*/down* order from a BFS tree rooted at node 0.
    let mut depth = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    depth[0] = 0;
    queue.push_back(0usize);
    while let Some(x) = queue.pop_front() {
        for &l in topo.out_links(bsor_topology::NodeId(x as u32)) {
            let y = topo.link(l).dst.index();
            if depth[y] == usize::MAX {
                depth[y] = depth[x] + 1;
                queue.push_back(y);
            }
        }
    }
    // Position of each node in the (depth, id) key order.
    let mut by_key: Vec<usize> = (0..n).collect();
    by_key.sort_by_key(|&i| (depth[i], i));
    let mut pos = vec![0u32; n];
    for (p, &i) in by_key.iter().enumerate() {
        pos[i] = p as u32;
    }
    let rank: Vec<u32> = (0..nl)
        .map(|c| {
            let link = topo.link(bsor_topology::LinkId(c as u32));
            let (a, b) = (pos[link.src.index()], pos[link.dst.index()]);
            if b < a {
                // Up channel: earlier the closer its head is to the root.
                (n as u32 - 1) - b
            } else {
                // Down channel: later the deeper its head.
                n as u32 + b
            }
        })
        .collect();

    // Monotone-reachability sweep: from every source, channels usable
    // in ascending rank order (no 180° turns) must reach every node.
    let mut order: Vec<usize> = (0..nl).collect();
    order.sort_by_key(|&c| rank[c]);
    for u in 0..n {
        let mut channel_ok = vec![false; nl];
        let mut node_ok = vec![false; n];
        node_ok[u] = true;
        for &c in &order {
            let link = topo.link(bsor_topology::LinkId(c as u32));
            let (s, d) = (link.src.index(), link.dst.index());
            let usable = s == u
                || topo
                    .in_links(bsor_topology::NodeId(s as u32))
                    .iter()
                    .any(|&p| {
                        channel_ok[p.index()]
                            && rank[p.index()] < rank[c]
                            && topo.link(p).src.index() != d
                    });
            if usable {
                channel_ok[c] = true;
                node_ok[d] = true;
            }
        }
        if node_ok.iter().any(|&ok| !ok) {
            return ArbitraryCertification::Inconclusive;
        }
    }
    ArbitraryCertification::Certified { rank }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{Route, RouteHop, RouteSet, VcMask};
    use bsor_flow::FlowId;
    use bsor_topology::NodeId;

    fn hop(topo: &Topology, a: NodeId, b: NodeId, vcs: VcMask) -> RouteHop {
        RouteHop {
            link: topo.find_link(a, b).expect("adjacent"),
            vcs,
        }
    }

    #[test]
    fn empty_routing_is_free() {
        let topo = Topology::mesh2d(3, 3);
        let routes = RouteSet::from_routes(vec![]);
        assert!(is_deadlock_free(&topo, &routes, 2));
    }

    #[test]
    fn four_route_ring_deadlocks_on_one_vc() {
        // The canonical wormhole deadlock: four routes turning around a
        // 2x2 square, each holding one channel and wanting the next.
        let topo = Topology::mesh2d(2, 2);
        let n = |x, y| topo.node_at(x, y).expect("in range");
        let m = VcMask::all(1);
        // Clockwise: (0,0)->(0,1)->(1,1), (0,1)->(1,1)->(1,0), etc.
        let routes = RouteSet::from_routes(vec![
            Route {
                flow: FlowId(0),
                hops: vec![
                    hop(&topo, n(0, 0), n(0, 1), m),
                    hop(&topo, n(0, 1), n(1, 1), m),
                ],
            },
            Route {
                flow: FlowId(1),
                hops: vec![
                    hop(&topo, n(0, 1), n(1, 1), m),
                    hop(&topo, n(1, 1), n(1, 0), m),
                ],
            },
            Route {
                flow: FlowId(2),
                hops: vec![
                    hop(&topo, n(1, 1), n(1, 0), m),
                    hop(&topo, n(1, 0), n(0, 0), m),
                ],
            },
            Route {
                flow: FlowId(3),
                hops: vec![
                    hop(&topo, n(1, 0), n(0, 0), m),
                    hop(&topo, n(0, 0), n(0, 1), m),
                ],
            },
        ]);
        let analysis = analyze(&topo, &routes, 1);
        match analysis {
            DeadlockAnalysis::Cyclic { ref cycle } => assert_eq!(cycle.len(), 4),
            DeadlockAnalysis::Free => panic!("expected a dependence cycle"),
        }
    }

    #[test]
    fn vc_split_breaks_the_ring() {
        // Same four turning routes, but two of them moved to VC 1:
        // the dependence cycle cannot close across disjoint VC layers
        // when the turn sequence differs... here we give each route a
        // dedicated VC assignment that breaks the cycle.
        let topo = Topology::mesh2d(2, 2);
        let n = |x, y| topo.node_at(x, y).expect("in range");
        let v0 = VcMask::single(0);
        let v1 = VcMask::single(1);
        let routes = RouteSet::from_routes(vec![
            Route {
                flow: FlowId(0),
                hops: vec![
                    hop(&topo, n(0, 0), n(0, 1), v0),
                    hop(&topo, n(0, 1), n(1, 1), v0),
                ],
            },
            Route {
                flow: FlowId(1),
                hops: vec![
                    hop(&topo, n(0, 1), n(1, 1), v1),
                    hop(&topo, n(1, 1), n(1, 0), v0),
                ],
            },
            Route {
                flow: FlowId(2),
                hops: vec![
                    hop(&topo, n(1, 1), n(1, 0), v1),
                    hop(&topo, n(1, 0), n(0, 0), v0),
                ],
            },
            Route {
                flow: FlowId(3),
                hops: vec![
                    hop(&topo, n(1, 0), n(0, 0), v1),
                    hop(&topo, n(0, 0), n(0, 1), v1),
                ],
            },
        ]);
        assert!(is_deadlock_free(&topo, &routes, 2));
    }

    #[test]
    fn straight_routes_are_free() {
        let topo = Topology::mesh2d(4, 1);
        let m = VcMask::all(2);
        let n = NodeId;
        let routes = RouteSet::from_routes(vec![Route {
            flow: FlowId(0),
            hops: vec![
                hop(&topo, n(0), n(1), m),
                hop(&topo, n(1), n(2), m),
                hop(&topo, n(2), n(3), m),
            ],
        }]);
        assert!(is_deadlock_free(&topo, &routes, 2));
    }

    #[test]
    fn full_mesh_and_grids_certify_for_all_pairs() {
        // Symmetric connected topologies always admit an up*/down*
        // witness order.
        for topo in [
            bsor_topology::full_mesh(4).expect("valid"),
            Topology::mesh2d(3, 3),
            Topology::torus2d(4, 4),
        ] {
            match certify_arbitrary(&topo) {
                ArbitraryCertification::Certified { rank } => {
                    assert_eq!(rank.len(), topo.num_links());
                }
                other => panic!("expected a witness order, got {other:?}"),
            }
        }
    }

    #[test]
    fn loaded_wan_file_certifies() {
        // A zoo-style symmetric WAN parsed from the file grammar.
        let text = "node a\nnode b\nnode c\nnode d\n\
                    link a b\nlink b c\nlink c d\nlink d a\nlink a c\n";
        let topo = bsor_topology::parse_topology_file("wan", text).expect("parses");
        assert!(certify_arbitrary(&topo).is_certified());
    }

    #[test]
    fn unidirectional_ring_is_provably_deadlocked() {
        // Every pair's only route winds around the ring, so the three
        // channels form a mandatory-dependence cycle: no deadlock-free
        // all-pairs routing exists on one VC, full stop.
        let text = "dlink a b\ndlink b c\ndlink c a\n";
        let topo = bsor_topology::parse_topology_file("ring3", text).expect("parses");
        match certify_arbitrary(&topo) {
            ArbitraryCertification::Refuted { cycle } => {
                assert_eq!(cycle.len(), 3);
                let mut sorted = cycle.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, vec![0, 1, 2]);
            }
            other => panic!("expected a refutation, got {other:?}"),
        }
    }

    #[test]
    fn disconnected_graph_reports_not_strongly_connected() {
        // 0 <-> 1 and 2 <-> 3 with a one-way bridge 1 -> 2: nodes 2 and
        // 3 can never reach node 0, so all-pairs routing does not exist
        // and the certifier says which node witnesses that instead of
        // shrugging Inconclusive.
        let topo = bsor_topology::directed_graph(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)])
            .expect("valid edges");
        match certify_arbitrary(&topo) {
            ArbitraryCertification::NotStronglyConnected { node } => {
                assert!(
                    node == 2 || node == 3,
                    "witness {node} is in the cut-off pair"
                );
            }
            other => panic!("expected NotStronglyConnected, got {other:?}"),
        }
    }

    #[test]
    fn certified_rank_supports_monotone_tree_routes() {
        // Spot-check the witness semantics on a mesh: walking up the
        // BFS tree to the root and back down is strictly
        // rank-increasing, which is what Lemma 1 needs.
        let topo = Topology::mesh2d(3, 3);
        let rank = match certify_arbitrary(&topo) {
            ArbitraryCertification::Certified { rank } => rank,
            other => panic!("expected a witness, got {other:?}"),
        };
        // (2,2) -> root (0,0) along the tree, then down to (1,1).
        let n = |x, y| topo.node_at(x, y).expect("in range");
        let path = [
            n(2, 2),
            n(2, 1),
            n(2, 0),
            n(1, 0),
            n(0, 0),
            n(1, 0),
            n(1, 1),
        ];
        let ranks: Vec<u32> = path
            .windows(2)
            .filter(|w| w[0] != w[1])
            .map(|w| rank[topo.find_link(w[0], w[1]).expect("adjacent").index()])
            .collect();
        assert!(
            ranks.windows(2).all(|w| w[0] < w[1]),
            "ranks not monotone: {ranks:?}"
        );
    }
}
