//! Simulator configuration.

use std::error::Error;
use std::fmt;

/// Simulation parameters (defaults follow the paper's §6.1 methodology).
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Virtual channels per physical channel (1, 2, 4 or 8 in the paper).
    pub vcs: u8,
    /// Flit buffer depth per VC (paper: 16).
    pub buffer_depth: usize,
    /// Flits per packet.
    pub packet_len: usize,
    /// Warmup cycles excluded from statistics (paper: 20 000).
    pub warmup: u64,
    /// Measured cycles (paper: 100 000).
    pub measurement: u64,
    /// Extra drain cycles after measurement (packets still in flight may
    /// complete and be counted if they were injected during measurement).
    pub drain: u64,
    /// Resource↔switch bandwidth in flits/cycle (paper: 4× the
    /// switch-to-switch links, which carry 1 flit/cycle).
    pub local_bandwidth: usize,
    /// RNG seed for injection processes.
    pub seed: u64,
    /// Cycles without any flit movement (while packets are in flight)
    /// after which the run aborts and reports deadlock.
    pub watchdog: u64,
    /// Per-hop router latency in cycles. 1 models the paper's §6.1
    /// single-cycle hop; 4 models the canonical RC/VA/SA/ST pipeline of
    /// Chapter 4 (a flit sent at cycle `t` becomes usable downstream at
    /// `t + pipeline_latency`).
    pub pipeline_latency: u8,
    /// Worker threads for the spatially partitioned engine. `1` (the
    /// default) runs the single-threaded reference schedule; higher
    /// values split grid topologies (mesh, torus) into column bands
    /// executed by scoped workers. Results are byte-identical for every
    /// value — non-grid topologies fall back to the serial schedule.
    pub engine_threads: usize,
    /// Skip the router phases on cycles where the network is provably
    /// empty (no flits buffered, queued, or in the hop pipeline). The
    /// injection-schedule RNG still steps every cycle, so reports are
    /// byte-identical with the skip on or off. Defaults to on.
    pub fast_forward: bool,
}

impl SimConfig {
    /// Configuration with the paper's defaults and the given VC count.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= vcs <= 8`.
    pub fn new(vcs: u8) -> SimConfig {
        assert!((1..=8).contains(&vcs), "vcs must be 1..=8");
        SimConfig {
            vcs,
            buffer_depth: 16,
            packet_len: 8,
            warmup: 20_000,
            measurement: 100_000,
            drain: 0,
            local_bandwidth: 4,
            seed: 0xB50B,
            watchdog: 50_000,
            pipeline_latency: 1,
            engine_threads: 1,
            fast_forward: true,
        }
    }

    /// Sets the warmup length.
    #[must_use]
    pub fn with_warmup(mut self, cycles: u64) -> Self {
        self.warmup = cycles;
        self
    }

    /// Sets the measurement length.
    #[must_use]
    pub fn with_measurement(mut self, cycles: u64) -> Self {
        self.measurement = cycles;
        self
    }

    /// Sets the packet length in flits.
    ///
    /// # Panics
    ///
    /// Panics if `flits == 0`.
    #[must_use]
    pub fn with_packet_len(mut self, flits: usize) -> Self {
        assert!(flits > 0, "packets need at least one flit");
        self.packet_len = flits;
        self
    }

    /// Sets the per-VC buffer depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    #[must_use]
    pub fn with_buffer_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "buffers need at least one slot");
        self.buffer_depth = depth;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the no-progress watchdog threshold (cycles).
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0`.
    #[must_use]
    pub fn with_watchdog(mut self, cycles: u64) -> Self {
        assert!(cycles > 0, "watchdog must be positive");
        self.watchdog = cycles;
        self
    }

    /// Sets the per-hop router pipeline latency (1 = single-cycle hop,
    /// 4 = the Chapter 4 RC/VA/SA/ST pipeline).
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0`.
    #[must_use]
    pub fn with_pipeline_latency(mut self, cycles: u8) -> Self {
        assert!(cycles > 0, "pipeline latency must be at least one cycle");
        self.pipeline_latency = cycles;
        self
    }

    /// Sets the engine worker-thread count (see
    /// [`SimConfig::engine_threads`]). The fixed-seed report is
    /// byte-identical at every value; only wall-clock time changes.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn with_engine_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "engine needs at least one thread");
        self.engine_threads = threads;
        self
    }

    /// Enables or disables idle-cycle fast-forward (see
    /// [`SimConfig::fast_forward`]). Reports are byte-identical either
    /// way; the switch exists so CI can exercise both paths.
    #[must_use]
    pub fn with_fast_forward(mut self, enabled: bool) -> Self {
        self.fast_forward = enabled;
        self
    }

    /// Total simulated cycles.
    pub fn total_cycles(&self) -> u64 {
        self.warmup + self.measurement + self.drain
    }
}

/// Errors constructing a [`crate::Simulator`].
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The route set does not cover every flow.
    RouteCountMismatch {
        /// Number of flows.
        flows: usize,
        /// Number of routes provided.
        routes: usize,
    },
    /// A route uses a VC index outside the configured VC count.
    VcOutOfRange {
        /// The configured VC count.
        vcs: u8,
    },
    /// The traffic specification does not cover every flow.
    TrafficCountMismatch {
        /// Number of flows.
        flows: usize,
        /// Number of per-flow rates provided.
        rates: usize,
    },
    /// A per-flow injection rate is negative or not finite.
    BadRate {
        /// Index of the offending flow.
        flow: usize,
        /// The rate supplied.
        rate: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RouteCountMismatch { flows, routes } => {
                write!(f, "route set covers {routes} flows but traffic has {flows}")
            }
            SimError::VcOutOfRange { vcs } => {
                write!(
                    f,
                    "a route references a VC outside the configured {vcs} VCs"
                )
            }
            SimError::TrafficCountMismatch { flows, rates } => {
                write!(
                    f,
                    "traffic spec covers {rates} flows but flow set has {flows}"
                )
            }
            SimError::BadRate { flow, rate } => {
                write!(f, "flow {flow} has invalid injection rate {rate}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SimConfig::new(2);
        assert_eq!(c.buffer_depth, 16);
        assert_eq!(c.warmup, 20_000);
        assert_eq!(c.measurement, 100_000);
        assert_eq!(c.local_bandwidth, 4);
        assert_eq!(c.total_cycles(), 120_000);
    }

    #[test]
    fn builder_chain() {
        let c = SimConfig::new(4)
            .with_warmup(10)
            .with_measurement(20)
            .with_packet_len(4)
            .with_buffer_depth(8)
            .with_seed(7);
        assert_eq!(c.vcs, 4);
        assert_eq!(c.total_cycles(), 30);
        assert_eq!(c.packet_len, 4);
        assert_eq!(c.buffer_depth, 8);
        assert_eq!(c.seed, 7);
    }

    #[test]
    #[should_panic(expected = "vcs must be")]
    fn rejects_zero_vcs() {
        SimConfig::new(0);
    }

    #[test]
    fn engine_knobs_default_to_serial_with_fast_forward() {
        let c = SimConfig::new(2);
        assert_eq!(c.engine_threads, 1);
        assert!(c.fast_forward);
        let c = c.with_engine_threads(4).with_fast_forward(false);
        assert_eq!(c.engine_threads, 4);
        assert!(!c.fast_forward);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn rejects_zero_engine_threads() {
        let _ = SimConfig::new(2).with_engine_threads(0);
    }

    #[test]
    fn error_display() {
        assert!(!SimError::RouteCountMismatch {
            flows: 1,
            routes: 0
        }
        .to_string()
        .is_empty());
        assert!(!SimError::VcOutOfRange { vcs: 2 }.to_string().is_empty());
        assert!(!SimError::TrafficCountMismatch { flows: 2, rates: 1 }
            .to_string()
            .is_empty());
        assert!(!SimError::BadRate {
            flow: 0,
            rate: f64::NAN
        }
        .to_string()
        .is_empty());
    }
}
