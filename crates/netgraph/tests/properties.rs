//! Property-based tests for the graph substrate.

use bsor_netgraph::{algo, DiGraph, NodeId};
use proptest::prelude::*;

/// Builds a random DAG: edges only go from lower to higher node index.
fn arbitrary_dag(nodes: usize) -> impl Strategy<Value = DiGraph<(), ()>> {
    prop::collection::vec((0..nodes as u32, 0..nodes as u32), 0..nodes * 3).prop_map(move |pairs| {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        for _ in 0..nodes {
            g.add_node(());
        }
        for (a, b) in pairs {
            let (lo, hi) = (a.min(b), a.max(b));
            if lo != hi {
                g.add_edge(NodeId(lo), NodeId(hi), ());
            }
        }
        g
    })
}

/// Builds a random digraph that may contain cycles.
fn arbitrary_digraph(nodes: usize) -> impl Strategy<Value = DiGraph<(), ()>> {
    prop::collection::vec((0..nodes as u32, 0..nodes as u32), 0..nodes * 3).prop_map(move |pairs| {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        for _ in 0..nodes {
            g.add_node(());
        }
        for (a, b) in pairs {
            if a != b {
                g.add_edge(NodeId(a), NodeId(b), ());
            }
        }
        g
    })
}

proptest! {
    #[test]
    fn toposort_respects_every_edge(g in arbitrary_dag(12)) {
        let order = algo::toposort(&g).expect("index-increasing graphs are acyclic");
        let mut rank = vec![0usize; g.node_count()];
        for (pos, v) in order.iter().enumerate() {
            rank[v.index()] = pos;
        }
        for (_, s, d, _) in g.edges() {
            prop_assert!(rank[s.index()] < rank[d.index()]);
        }
    }

    #[test]
    fn find_cycle_agrees_with_toposort(g in arbitrary_digraph(10)) {
        let cyc = algo::find_cycle(&g);
        prop_assert_eq!(cyc.is_none(), algo::toposort(&g).is_ok());
        if let Some(edges) = cyc {
            prop_assert!(!edges.is_empty());
            for i in 0..edges.len() {
                let (_, d) = g.endpoints(edges[i]).expect("live");
                let (s, _) = g.endpoints(edges[(i + 1) % edges.len()]).expect("live");
                prop_assert_eq!(d, s, "cycle edges chain");
            }
        }
    }

    #[test]
    fn removing_cycle_edges_terminates_acyclic(g in arbitrary_digraph(10)) {
        let mut g = g;
        let mut guard = 0;
        while let Some(cycle) = algo::find_cycle(&g) {
            g.remove_edge(cycle[0]);
            guard += 1;
            prop_assert!(guard <= 1000, "cycle breaking must terminate");
        }
        prop_assert!(algo::is_acyclic(&g));
    }

    #[test]
    fn scc_partition_covers_all_nodes(g in arbitrary_digraph(10)) {
        let comps = algo::tarjan_scc(&g);
        let mut seen = vec![false; g.node_count()];
        for comp in &comps {
            for v in comp {
                prop_assert!(!seen[v.index()], "node in two components");
                seen[v.index()] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|b| b), "every node in a component");
    }

    #[test]
    fn dijkstra_distances_satisfy_triangle_inequality(
        g in arbitrary_digraph(10),
        weights in prop::collection::vec(0.0..10.0f64, 0..300),
    ) {
        let w = |e: bsor_netgraph::EdgeId| {
            weights.get(e.index()).copied().unwrap_or(1.0)
        };
        let sp = algo::dijkstra(&g, &[(NodeId(0), 0.0)], w);
        for (e, s, d, _) in g.edges() {
            if sp.dist[s.index()].is_finite() {
                prop_assert!(
                    sp.dist[d.index()] <= sp.dist[s.index()] + w(e) + 1e-9,
                    "relaxed edge violates optimality"
                );
            }
        }
    }

    #[test]
    fn dijkstra_path_cost_matches_distance(
        g in arbitrary_dag(10),
        weights in prop::collection::vec(0.1..10.0f64, 0..300),
    ) {
        let w = |e: bsor_netgraph::EdgeId| {
            weights.get(e.index()).copied().unwrap_or(1.0)
        };
        let sp = algo::dijkstra(&g, &[(NodeId(0), 0.0)], w);
        for v in g.node_ids() {
            if let Some(path) = sp.path_to(&g, v) {
                let cost: f64 = path.iter().map(|&e| w(e)).sum();
                prop_assert!((cost - sp.dist[v.index()]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn enumeration_counts_match_bfs_reachability(g in arbitrary_dag(8)) {
        // If BFS says unreachable within k hops, enumeration with bound k
        // must produce nothing, and vice versa.
        let hops = algo::bfs_hops(&g, &[NodeId(0)]);
        for v in g.node_ids() {
            if v == NodeId(0) {
                continue;
            }
            let mut count = 0;
            algo::enumerate_paths(&g, &[NodeId(0)], |x| x == v, |_| 0, g.node_count(), 10_000, |_| {
                count += 1
            });
            prop_assert_eq!(
                count > 0,
                hops[v.index()] != usize::MAX,
                "enumeration and BFS disagree on reachability"
            );
        }
    }
}
