//! Flows and flow sets (paper Definition 1).

use bsor_topology::{NodeId, Topology};
use std::error::Error;
use std::fmt;

/// Identifier of a flow (data transfer) within a [`FlowSet`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

impl FlowId {
    /// Dense index of the flow.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// One data transfer: `Ki = (si, ti, di)` with an optional human-readable
/// label (the paper names application flows `f1`, `f2`, …).
#[derive(Clone, Debug, PartialEq)]
pub struct Flow {
    /// Identifier; must equal the flow's position in its [`FlowSet`].
    pub id: FlowId,
    /// Source node `si`.
    pub src: NodeId,
    /// Sink node `ti`.
    pub dst: NodeId,
    /// Estimated bandwidth demand `di` in MB/s.
    pub demand: f64,
    /// Optional label, e.g. `"f7"`.
    pub label: Option<String>,
}

impl Flow {
    /// Creates an unlabeled flow.
    pub fn new(id: FlowId, src: NodeId, dst: NodeId, demand: f64) -> Flow {
        Flow {
            id,
            src,
            dst,
            demand,
            label: None,
        }
    }

    /// Creates a labeled flow.
    pub fn labeled(
        id: FlowId,
        src: NodeId,
        dst: NodeId,
        demand: f64,
        label: impl Into<String>,
    ) -> Flow {
        Flow {
            id,
            src,
            dst,
            demand,
            label: Some(label.into()),
        }
    }
}

/// Why a [`FlowSet`] failed validation.
#[derive(Clone, Debug, PartialEq)]
pub enum FlowSetError {
    /// A flow's source equals its sink (`si ≠ ti` is assumed in the
    /// paper).
    SelfFlow(FlowId),
    /// A flow's demand is zero, negative, or non-finite.
    BadDemand(FlowId, f64),
    /// A flow references a node outside the topology.
    NodeOutOfRange(FlowId, NodeId),
    /// A flow's id does not match its position.
    MisnumberedFlow(FlowId, usize),
}

impl fmt::Display for FlowSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowSetError::SelfFlow(id) => write!(f, "flow {id} has identical source and sink"),
            FlowSetError::BadDemand(id, d) => write!(f, "flow {id} has invalid demand {d}"),
            FlowSetError::NodeOutOfRange(id, n) => {
                write!(f, "flow {id} references node {n} outside the topology")
            }
            FlowSetError::MisnumberedFlow(id, pos) => {
                write!(f, "flow {id} stored at position {pos}")
            }
        }
    }
}

impl Error for FlowSetError {}

/// An ordered collection of flows, `K = {K1, …, Kk}`.
///
/// Multiple flows may share a source/destination pair (paper: "We may have
/// multiple flows with the same source and destination").
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FlowSet {
    flows: Vec<Flow>,
}

impl FlowSet {
    /// Creates an empty flow set.
    pub fn new() -> FlowSet {
        FlowSet::default()
    }

    /// Builds a flow set from `(src, dst, demand)` triples, assigning ids
    /// in order.
    pub fn from_triples(triples: impl IntoIterator<Item = (NodeId, NodeId, f64)>) -> FlowSet {
        let mut fs = FlowSet::new();
        for (src, dst, demand) in triples {
            fs.push(src, dst, demand);
        }
        fs
    }

    /// Appends an unlabeled flow, returning its id.
    pub fn push(&mut self, src: NodeId, dst: NodeId, demand: f64) -> FlowId {
        let id = FlowId(self.flows.len() as u32);
        self.flows.push(Flow::new(id, src, dst, demand));
        id
    }

    /// Appends a labeled flow, returning its id.
    pub fn push_labeled(
        &mut self,
        src: NodeId,
        dst: NodeId,
        demand: f64,
        label: impl Into<String>,
    ) -> FlowId {
        let id = FlowId(self.flows.len() as u32);
        self.flows.push(Flow::labeled(id, src, dst, demand, label));
        id
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when there are no flows.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// The flow with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn flow(&self, id: FlowId) -> &Flow {
        &self.flows[id.index()]
    }

    /// Iterates over flows in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Flow> + '_ {
        self.flows.iter()
    }

    /// Sum of all demands.
    pub fn total_demand(&self) -> f64 {
        self.flows.iter().map(|f| f.demand).sum()
    }

    /// The largest single demand — a lower bound on the achievable MCL for
    /// unsplittable routing.
    pub fn max_demand(&self) -> f64 {
        self.flows.iter().map(|f| f.demand).fold(0.0, f64::max)
    }

    /// Returns a copy with every demand multiplied by `factor` (used by
    /// the bandwidth-variation experiments).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn scaled(&self, factor: f64) -> FlowSet {
        assert!(factor > 0.0, "scale factor must be positive");
        let mut fs = self.clone();
        for f in &mut fs.flows {
            f.demand *= factor;
        }
        fs
    }

    /// Validates the set against a topology.
    ///
    /// # Errors
    ///
    /// The first [`FlowSetError`] encountered, if any.
    pub fn validate(&self, topo: &Topology) -> Result<(), FlowSetError> {
        for (pos, f) in self.flows.iter().enumerate() {
            if f.id.index() != pos {
                return Err(FlowSetError::MisnumberedFlow(f.id, pos));
            }
            if f.src == f.dst {
                return Err(FlowSetError::SelfFlow(f.id));
            }
            if !(f.demand.is_finite() && f.demand > 0.0) {
                return Err(FlowSetError::BadDemand(f.id, f.demand));
            }
            for n in [f.src, f.dst] {
                if n.index() >= topo.num_nodes() {
                    return Err(FlowSetError::NodeOutOfRange(f.id, n));
                }
            }
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a FlowSet {
    type Item = &'a Flow;
    type IntoIter = std::slice::Iter<'a, Flow>;

    fn into_iter(self) -> Self::IntoIter {
        self.flows.iter()
    }
}

impl FromIterator<(NodeId, NodeId, f64)> for FlowSet {
    fn from_iter<T: IntoIterator<Item = (NodeId, NodeId, f64)>>(iter: T) -> Self {
        FlowSet::from_triples(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut fs = FlowSet::new();
        let a = fs.push(NodeId(0), NodeId(1), 25.0);
        let b = fs.push_labeled(NodeId(1), NodeId(2), 50.0, "f2");
        assert_eq!(fs.len(), 2);
        assert_eq!(fs.flow(a).demand, 25.0);
        assert_eq!(fs.flow(b).label.as_deref(), Some("f2"));
        assert_eq!(fs.total_demand(), 75.0);
        assert_eq!(fs.max_demand(), 50.0);
    }

    #[test]
    fn validate_catches_problems() {
        let topo = Topology::mesh2d(2, 2);
        let mut fs = FlowSet::new();
        let id = fs.push(NodeId(0), NodeId(0), 1.0);
        assert_eq!(fs.validate(&topo), Err(FlowSetError::SelfFlow(id)));

        let mut fs = FlowSet::new();
        let id = fs.push(NodeId(0), NodeId(1), -3.0);
        assert_eq!(fs.validate(&topo), Err(FlowSetError::BadDemand(id, -3.0)));

        let mut fs = FlowSet::new();
        let id = fs.push(NodeId(0), NodeId(99), 1.0);
        assert_eq!(
            fs.validate(&topo),
            Err(FlowSetError::NodeOutOfRange(id, NodeId(99)))
        );

        let mut fs = FlowSet::new();
        fs.push(NodeId(0), NodeId(1), 1.0);
        assert_eq!(fs.validate(&topo), Ok(()));
    }

    #[test]
    fn duplicate_pairs_allowed() {
        let topo = Topology::mesh2d(2, 2);
        let mut fs = FlowSet::new();
        fs.push(NodeId(0), NodeId(1), 1.0);
        fs.push(NodeId(0), NodeId(1), 2.0);
        assert_eq!(fs.validate(&topo), Ok(()));
    }

    #[test]
    fn scaling() {
        let mut fs = FlowSet::new();
        fs.push(NodeId(0), NodeId(1), 10.0);
        let scaled = fs.scaled(1.25);
        assert!((scaled.flow(FlowId(0)).demand - 12.5).abs() < 1e-12);
        // Original untouched.
        assert_eq!(fs.flow(FlowId(0)).demand, 10.0);
    }

    #[test]
    fn from_triples_and_iteration() {
        let fs: FlowSet = vec![(NodeId(0), NodeId(1), 1.0), (NodeId(2), NodeId(3), 2.0)]
            .into_iter()
            .collect();
        let ids: Vec<u32> = fs.iter().map(|f| f.id.0).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!((&fs).into_iter().count(), 2);
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            FlowSetError::SelfFlow(FlowId(1)),
            FlowSetError::BadDemand(FlowId(1), f64::NAN),
            FlowSetError::NodeOutOfRange(FlowId(1), NodeId(9)),
            FlowSetError::MisnumberedFlow(FlowId(1), 0),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
