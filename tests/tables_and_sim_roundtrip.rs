//! Cross-crate integration: router-table programming round-trips, and
//! the simulator's accounting stays conserved.

use bsor::BsorBuilder;
use bsor_repro::flow::FlowSet;
use bsor_repro::routing::tables::{NodeTables, SourceRouteTable};
use bsor_repro::routing::Baseline;
use bsor_repro::sim::{SimConfig, Simulator, TrafficSpec};
use bsor_repro::topology::Topology;
use bsor_repro::workloads::{h264_decoder, performance_modeling, transpose};

#[test]
fn node_tables_reproduce_bsor_routes() {
    let topo = Topology::mesh2d(8, 8);
    let w = transpose(&topo).expect("square");
    let result = BsorBuilder::new(&topo, &w.flows)
        .vcs(2)
        .run()
        .expect("routable");
    let tables = NodeTables::build(&topo, &result.routes);
    let source = SourceRouteTable::build(&result.routes);
    for f in w.flows.iter() {
        let walked = tables.walk(&topo, f.id, f.src);
        let expected: Vec<_> = result
            .routes
            .route(f.id)
            .hops
            .iter()
            .map(|h| h.link)
            .collect();
        assert_eq!(walked, expected, "node tables must reproduce flow {}", f.id);
        assert_eq!(source.route_flits(f.id), expected.as_slice());
    }
    // The paper's hardware argument: tables stay small (<= 256 entries).
    assert!(
        tables.max_entries() <= 256,
        "node tables exceed the paper's example budget: {}",
        tables.max_entries()
    );
}

#[test]
fn simulator_accounting_is_conserved() {
    let topo = Topology::mesh2d(8, 8);
    let w = performance_modeling(&topo).expect("fits");
    let routes = Baseline::XY.select(&topo, &w.flows, 2).expect("xy");
    let traffic = TrafficSpec::proportional(&w.flows, 0.5);
    let config = SimConfig::new(2)
        .with_warmup(1_000)
        .with_measurement(8_000)
        .with_packet_len(4);
    let report = Simulator::new(&topo, &w.flows, &routes, traffic, config)
        .expect("consistent")
        .run();
    assert!(!report.deadlocked);
    // Per-flow deliveries sum to the total.
    let per_flow_delivered: u64 = report.per_flow.iter().map(|f| f.delivered).sum();
    assert_eq!(per_flow_delivered, report.delivered_packets);
    let per_flow_generated: u64 = report.per_flow.iter().map(|f| f.generated).sum();
    assert_eq!(per_flow_generated, report.generated_packets);
    // Flit and packet counts agree up to window-boundary effects
    // (packets straddling the window start/end contribute partial
    // flit counts).
    assert!(
        report.delivered_flits as f64 >= report.delivered_packets as f64 * 4.0 * 0.95,
        "flits {} vs packets {}",
        report.delivered_flits,
        report.delivered_packets
    );
    // Latency tracking only covers measured packets.
    for f in &report.per_flow {
        assert!(f.latency_count <= f.generated);
        if let Some(mean) = f.mean_latency() {
            assert!(mean >= 1.0, "one hop takes at least a cycle");
            assert!(mean <= f.latency_max as f64 + 1e-9);
        }
    }
}

#[test]
fn h264_sim_latency_orders_algorithms_sanely() {
    // At light load everything delivers; latency stays within sane
    // bounds and BSOR is not pathologically worse than XY (paper §6.2.4:
    // comparable latency at light loads).
    let topo = Topology::mesh2d(8, 8);
    let w = h264_decoder(&topo).expect("fits");
    let xy = Baseline::XY.select(&topo, &w.flows, 2).expect("xy");
    let bsor = BsorBuilder::new(&topo, &w.flows)
        .vcs(2)
        .run()
        .expect("routable");
    let run = |routes| {
        let traffic = TrafficSpec::proportional(&w.flows, 0.2);
        let config = SimConfig::new(2).with_warmup(1_000).with_measurement(8_000);
        Simulator::new(&topo, &w.flows, routes, traffic, config)
            .expect("consistent")
            .run()
    };
    let r_xy = run(&xy);
    let r_bsor = run(&bsor.routes);
    let l_xy = r_xy.mean_latency().expect("delivered");
    let l_bsor = r_bsor.mean_latency().expect("delivered");
    assert!(
        l_bsor < l_xy * 2.0,
        "BSOR latency {l_bsor:.1} vs XY {l_xy:.1}"
    );
    assert!(l_xy < 200.0, "light-load latency should be modest");
}

#[test]
fn scaled_demands_scale_mcl_linearly() {
    // MCL is linear in demands: doubling every flow doubles the MCL of
    // the same route set (used by the bandwidth-variation experiments).
    let topo = Topology::mesh2d(8, 8);
    let w = transpose(&topo).expect("square");
    let routes = Baseline::XY.select(&topo, &w.flows, 2).expect("xy");
    let base = routes.mcl(&topo, &w.flows);
    let scaled: FlowSet = w.flows.scaled(2.0);
    assert!((routes.mcl(&topo, &scaled) - 2.0 * base).abs() < 1e-9);
}
