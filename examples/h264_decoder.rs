//! Routing the H.264 decoder's flow graph (paper §5.2.1, Figure 5-1):
//! fifteen flows between nine modules, dominated by the 120.4 MB/s
//! reference-pixel stream from the off-chip memory controller.
//!
//! Shows the full BSOR pipeline on a real application: CDG exploration
//! with both selectors, per-CDG MCL breakdown, baseline comparison
//! through the unified `RouteAlgorithm` trait, and a head-to-head
//! simulation of BSOR vs XY near saturation.
//!
//! ```text
//! cargo run --release --example h264_decoder
//! ```

use bsor::{
    BsorAlgorithm, BsorBuilder, EvalPoint, Evaluator, Planner, Scenario, SelectorKind, SimEvaluator,
};
use bsor_routing::selectors::{DijkstraSelector, MilpSelector};
use bsor_routing::Baseline;
use bsor_sim::SimConfig;
use bsor_topology::Topology;
use bsor_workloads::h264_decoder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mesh = Topology::mesh2d(8, 8);
    let workload = h264_decoder(&mesh)?;
    println!("H.264 decoder: {} flows", workload.flows.len());
    for f in workload.flows.iter() {
        println!(
            "  {:>4}  {} -> {}  {:7.3} MB/s",
            f.label.as_deref().unwrap_or("?"),
            f.src,
            f.dst,
            f.demand
        );
    }
    println!(
        "lower bound on MCL (largest flow): {:.1} MB/s",
        workload.flows.max_demand()
    );

    // Per-CDG exploration with the Dijkstra selector (the framework's
    // introspection API; the trait wraps its best-route result).
    let dijkstra = BsorBuilder::new(&mesh, &workload.flows)
        .vcs(2)
        .selector(SelectorKind::Dijkstra(DijkstraSelector::new()))
        .run()?;
    println!("\nper-CDG MCLs (Dijkstra selector):");
    for rec in &dijkstra.explored {
        match &rec.outcome {
            Ok(found) => println!("  {:30} {:8.2} MB/s", rec.cdg, found.mcl),
            Err(e) => println!("  {:30} skipped: {e}", rec.cdg),
        }
    }
    println!("best: {} at {:.2} MB/s", dijkstra.cdg, dijkstra.mcl);

    // One scenario serves every algorithm comparison below.
    let scenario = Scenario::builder(mesh, workload.flows)
        .named(workload.name)
        .vcs(2)
        .build()?;

    // The MILP selector through the planner: one plan carries the
    // validated routes, the Lemma-1 certificate, the compiled tables
    // and the predicted MCL.
    let planner = Planner::new();
    let milp_algo = BsorAlgorithm::milp("bsor-milp", MilpSelector::new().with_max_paths(80));
    let milp_plan = planner.plan(&scenario, &milp_algo)?;
    println!("BSOR-MILP best MCL: {:.2} MB/s", milp_plan.predicted_mcl());

    // Baselines through the same planner.
    println!("\nbaseline MCLs:");
    for baseline in [
        Baseline::XY,
        Baseline::YX,
        Baseline::Romm { seed: 3 },
        Baseline::Valiant { seed: 3 },
    ] {
        let plan = planner.plan(&scenario, &baseline)?;
        println!("  {:8} {:8.2} MB/s", baseline.name(), plan.predicted_mcl());
    }

    // Head-to-head evaluation near the XY saturation point: both plans
    // were computed once; only the evaluation point changes.
    let xy_plan = planner.plan(&scenario, &Baseline::XY)?;
    let evaluator = SimEvaluator::new();
    let config = SimConfig::new(2)
        .with_warmup(2_000)
        .with_measurement(10_000);
    println!("\nsimulated throughput (packets/cycle) at rising offered load:");
    println!("{:>8} {:>10} {:>10}", "offered", "XY", "BSOR");
    for rate in [0.5, 1.0, 2.0, 3.0] {
        let point = EvalPoint::new(rate, config.clone());
        let t_xy = evaluator.evaluate(&xy_plan, &point)?;
        let t_bsor = evaluator.evaluate(&milp_plan, &point)?;
        println!(
            "{rate:>8.2} {:>10.4} {:>10.4}",
            t_xy.throughput, t_bsor.throughput
        );
    }
    Ok(())
}
