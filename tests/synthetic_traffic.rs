//! The synthetic-traffic subsystem end to end: every new workload
//! generator × every registered algorithm composes through
//! `ScenarioBuilder` into a Lemma-1 deadlock-free route set (or a typed
//! error — never a panic, never a cyclic route set), the parameterized
//! spec strings resolve from the same registry the sweep CLI uses, and
//! the bursty/phase traffic knobs run through the `Experiment` pipeline.

use bsor::{AlgorithmRegistry, Scenario, WorkloadRegistry};
use bsor_repro::routing::deadlock;
use bsor_repro::sim::{
    BurstyOnOff, Evaluator, ExperimentError, PhaseSchedule, SimConfig, SimEvaluator,
};
use bsor_repro::topology::Topology;
use proptest::prelude::*;

/// The sweepable specs of every generator this PR introduces, sized for
/// a 4×4 mesh.
fn new_workload_specs() -> Vec<&'static str> {
    vec![
        "uniform-random",
        "tornado",
        "bit-reversal",
        "neighbor",
        "hotspot:1",
        "hotspot:4",
        "rand-perm:7",
        "rand-perm:4242",
    ]
}

/// Lemma 1 through the pipeline: `select_routes` already rejects cyclic
/// route sets, so a success here *is* a deadlock-freedom proof; the
/// explicit re-check keeps the property self-contained.
#[test]
fn every_new_workload_x_every_algorithm_is_deadlock_free_or_typed() {
    let workloads = WorkloadRegistry::standard();
    let algorithms = AlgorithmRegistry::standard();
    let vcs = 2u8;
    for spec in new_workload_specs() {
        let topo = Topology::mesh2d(4, 4);
        let workload = workloads
            .build(&topo, spec)
            .expect("4x4 supports the new specs");
        let scenario = Scenario::builder(topo, workload.flows)
            .named(spec)
            .vcs(vcs)
            .build()
            .expect("new workloads build scenarios");
        for algo_name in algorithms.names() {
            // The MILP framework's deterministic node budget is sized
            // for the paper's <= 64-flow workloads; the 240-flow
            // uniform-random matrix would take minutes without proving
            // anything new (the other six algorithms cover it, and MILP
            // covers every other spec).
            if algo_name == "bsor-milp" && spec == "uniform-random" {
                continue;
            }
            let algorithm = algorithms.get(algo_name).expect("listed name resolves");
            match scenario.select_routes(algorithm) {
                Ok(routes) => {
                    assert_eq!(routes.len(), scenario.flows().len());
                    assert!(
                        deadlock::is_deadlock_free(scenario.topology(), &routes, vcs),
                        "{algo_name} on {spec} returned a cyclic route set"
                    );
                }
                Err(
                    ExperimentError::Algorithm(_)
                    | ExperimentError::InvalidRoutes(_)
                    | ExperimentError::CyclicCdg { .. },
                ) => {
                    // Typed refusal is acceptable; a panic or a cyclic
                    // set slipping through to simulation is not.
                }
                Err(other) => panic!("{algo_name} on {spec}: unexpected error {other}"),
            }
        }
    }
}

#[test]
fn bursty_and_phased_traffic_run_through_the_experiment_pipeline() {
    let workloads = WorkloadRegistry::standard();
    let algorithms = AlgorithmRegistry::standard();
    let topo = Topology::mesh2d(4, 4);
    let workload = workloads.build(&topo, "hotspot:2").expect("2 < 16");
    let scenario = Scenario::builder(topo, workload.flows)
        .named("hotspot-burst")
        .vcs(2)
        .build()
        .expect("builds");
    let xy = algorithms.get("xy").expect("registered");
    let config = SimConfig::new(2).with_warmup(200).with_measurement(2_000);
    let experiment = scenario
        .experiment(xy)
        .config(config)
        .rate(0.2)
        .burst(BurstyOnOff::new(30.0, 90.0))
        .phases(PhaseSchedule::from_pairs([(400, 1.5), (400, 0.5)]));
    let plan = experiment.plan().expect("hotspot plans");
    let evaluation = SimEvaluator::new()
        .evaluate(&plan, &experiment.eval_point())
        .expect("bursty phased hotspot simulates");
    assert!(!evaluation.deadlocked);
    assert!(evaluation.delivered > 0);
    assert!(evaluation.p99_latency.expect("delivers") >= evaluation.p50_latency.expect("delivers"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized hotspot counts and permutation seeds keep the
    /// Lemma-1 property on the paper's own 8x8 substrate, through the
    /// scalable algorithms (the MILP framework is exercised on the
    /// fixed 4x4 matrix above; 8x8 adversarial patterns would blow its
    /// CI budget).
    #[test]
    fn randomized_specs_stay_deadlock_free_on_8x8(k in 1usize..=8, seed in 0u64..10_000) {
        let workloads = WorkloadRegistry::standard();
        let algorithms = AlgorithmRegistry::standard();
        for spec in [format!("hotspot:{k}"), format!("rand-perm:{seed}")] {
            let topo = Topology::mesh2d(8, 8);
            let workload = workloads.build(&topo, &spec).expect("8x8 supports the families");
            let scenario = Scenario::builder(topo, workload.flows)
                .named(&spec)
                .vcs(2)
                .build()
                .expect("builds");
            for algo_name in ["xy", "yx", "romm", "valiant", "o1turn", "bsor-dijkstra"] {
                let algorithm = algorithms.get(algo_name).expect("registered");
                let routes = scenario
                    .select_routes(algorithm)
                    .expect("meshes route every algorithm");
                prop_assert!(
                    deadlock::is_deadlock_free(scenario.topology(), &routes, 2),
                    "{} on {} returned a cyclic route set", algo_name, spec
                );
            }
        }
    }
}
