//! Fixed-seed regression goldens for the latency-distribution and
//! traffic-process additions: percentiles, channel-load counters, and
//! the bursty / phase-scheduled injection paths.
//!
//! `golden_engine.rs` pins the scalar digest of the default Bernoulli
//! path (unchanged since the seed engine); these tests pin the *new*
//! observables at the same fixed seeds so any change to histogram
//! bucketing, quantile extraction, channel-load accounting, or the
//! burst/phase RNG consumption shows up as an exact-value diff.

use bsor_routing::Baseline;
use bsor_sim::{BurstyOnOff, PhaseSchedule, SimConfig, SimReport, Simulator, TrafficSpec};
use bsor_topology::Topology;
use bsor_workloads::{transpose, workload_by_name};

fn config() -> SimConfig {
    SimConfig::new(2)
        .with_warmup(2_000)
        .with_measurement(10_000)
}

fn run(traffic_of: impl Fn(&bsor_flow::FlowSet) -> TrafficSpec) -> SimReport {
    let topo = Topology::mesh2d(8, 8);
    let w = transpose(&topo).expect("8x8 is square");
    let routes = Baseline::XY.select(&topo, &w.flows, 2).expect("xy");
    let traffic = traffic_of(&w.flows);
    let mut sim = Simulator::new(&topo, &w.flows, &routes, traffic, config()).expect("valid");
    sim.run()
}

/// The new observables, formatted so any drift is a visible diff.
fn digest(r: &SimReport) -> String {
    let hist = r.latency_histogram();
    // Channel loads are exact rationals (flits / measured cycles);
    // print the busiest eight links' flit counts to pin the counters
    // themselves, not just the maximum.
    let mut flits: Vec<u64> = r.link_flits.clone();
    flits.sort_unstable_by(|a, b| b.cmp(a));
    format!(
        "gen={} del={} tracked={} p50={:?} p95={:?} p99={:?} max={} max_load={:.6} top8={:?}",
        r.generated_packets,
        r.delivered_packets,
        hist.count(),
        hist.p50(),
        hist.p95(),
        hist.p99(),
        r.max_latency(),
        r.max_channel_load(),
        &flits[..8],
    )
}

#[test]
fn golden_percentiles_and_channel_loads_8x8_transpose_xy() {
    let r = run(|flows| TrafficSpec::proportional(flows, 0.8));
    assert_eq!(
        digest(&r),
        "gen=8099 del=8091 tracked=8077 p50=Some(19) p95=Some(43) p99=Some(78) max=382 \
         max_load=0.796200 top8=[7962, 7962, 7723, 7723, 7396, 7395, 7080, 7080]"
    );
}

#[test]
fn golden_bursty_injection_8x8_transpose_xy() {
    let r = run(|flows| {
        TrafficSpec::proportional(flows, 0.8).with_burst(BurstyOnOff::new(100.0, 300.0))
    });
    assert_eq!(
        digest(&r),
        "gen=8330 del=8304 tracked=8256 p50=Some(24) p95=Some(74) p99=Some(252) max=1764 \
         max_load=0.941900 top8=[9419, 9419, 8403, 8395, 8110, 8109, 7287, 7286]"
    );
}

#[test]
fn golden_phase_schedule_8x8_hotspot_xy() {
    let topo = Topology::mesh2d(8, 8);
    let w = workload_by_name(&topo, "hotspot:4").expect("spec resolves");
    let routes = Baseline::XY.select(&topo, &w.flows, 2).expect("xy");
    let traffic = TrafficSpec::proportional(&w.flows, 0.8)
        .with_phases(PhaseSchedule::from_pairs([(3_000, 1.5), (3_000, 0.5)]));
    let r = Simulator::new(&topo, &w.flows, &routes, traffic, config())
        .expect("valid")
        .run();
    assert_eq!(
        digest(&r),
        "gen=7334 del=6491 tracked=5909 p50=Some(30) p95=Some(296) p99=Some(1120) max=5471 \
         max_load=0.990100 top8=[9901, 9357, 8815, 8602, 8374, 8183, 7575, 7549]"
    );
}
