//! Minimal vendored stand-in for the `rand` crate (0.8-style API).
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships the tiny subset of `rand` the BSOR crates actually
//! use: a seedable [`rngs::StdRng`], [`Rng::gen_range`] /
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`]. The generator
//! is xoshiro256++ seeded through SplitMix64, so every seeded run is
//! deterministic — which is all the CDG exploration, baseline routing
//! and traffic injection need (they never ask for OS entropy).
//!
//! The numeric streams differ from the real `rand` crate; nothing in
//! this workspace depends on matching them, only on determinism per
//! seed.

pub mod rngs;
pub mod seq;

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 significant bits, the standard multiply-by-2^-53 construction.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = (rng.next_u64() as u128 % span) as $t;
                self.start.wrapping_add(offset)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let offset = (rng.next_u64() as u128 % span) as $t;
                start.wrapping_add(offset)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let x = self.start + (self.end - self.start) * u;
                // Narrow casts (f32) or rounding on tiny spans can land
                // exactly on the excluded upper bound; keep half-open.
                if x < self.end {
                    x
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                // Uniform on [0, 1]: rescale the 53-bit lattice endpoint.
                let u = ((rng.next_u64() >> 11) as f64
                    / ((1u64 << 53) - 1) as f64) as $t;
                start + (end - start) * u
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u16 = r.gen_range(5..=5);
            assert_eq!(y, 5);
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let g: f64 = r.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "p=0.5 gave {hits}/10000");
    }

    #[test]
    fn shuffle_permutes() {
        use crate::seq::SliceRandom;
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut StdRng::seed_from_u64(9));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "32 elements should not shuffle to identity");
    }
}
