//! Routing the IEEE 802.11a/g OFDM transmitter (paper §5.2.3,
//! Table 5.2): a 17-site DSP pipeline with an IFFT partitioned over four
//! modules. Demonstrates static virtual-channel allocation and the
//! flows-per-link alternative objective (paper §7.2).
//!
//! ```text
//! cargo run --release --example wifi_transmitter
//! ```

use bsor::{AlgorithmRegistry, BsorAlgorithm, CdgStrategy, Scenario};
use bsor_cdg::TurnModel;
use bsor_routing::selectors::{MilpObjective, MilpSelector};
use bsor_topology::Topology;
use bsor_workloads::workload_by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mesh = Topology::mesh2d(8, 8);
    let workload = workload_by_name(&mesh, "wifi")?;
    println!(
        "802.11a/g transmitter: {} flows, total {:.2} MB/s, largest {:.2} MB/s",
        workload.flows.len(),
        workload.flows.total_demand(),
        workload.flows.max_demand()
    );
    let scenario = Scenario::builder(mesh, workload.flows)
        .named("wifi")
        .vcs(2)
        .build()?;

    // Bandwidth-sensitive routing with static VC allocation.
    let routes = scenario.select_routes(&BsorAlgorithm::dijkstra())?;
    println!(
        "BSOR-Dijkstra: MCL {:.2} MB/s",
        routes.mcl(scenario.topology(), scenario.flows())
    );
    // Every hop pins exactly one VC: static allocation (paper §4.2.2).
    let static_hops = routes
        .iter()
        .flat_map(|r| r.hops.iter())
        .all(|h| h.vcs.count() == 1);
    println!("static VC allocation on every hop: {static_hops}");

    // The §7.2 alternative: minimize the number of flows sharing a link
    // (no bandwidth knowledge needed) — still just another algorithm.
    let shared_algo = BsorAlgorithm::milp(
        "min-shared-flows",
        MilpSelector::new()
            .with_max_paths(60)
            .with_objective(MilpObjective::MinimizeSharedFlows),
    )
    .with_strategies(vec![CdgStrategy::TurnModel(
        TurnModel::negative_first().mirrored_y(),
    )]);
    let shared = scenario.select_routes(&shared_algo)?;
    println!(
        "flows-per-link objective: max {} flows share a channel (MCL {:.2} MB/s)",
        shared.max_flows_per_link(scenario.topology()),
        shared.mcl(scenario.topology(), scenario.flows())
    );

    // Baselines for context (Table 6.3's transmitter row), enumerated
    // straight from the registry.
    let algorithms = AlgorithmRegistry::standard();
    println!("\nbaseline MCLs (MB/s):");
    for name in ["xy", "yx", "romm", "valiant", "o1turn"] {
        let algorithm = algorithms.get(name).expect("registered");
        let routes = scenario.select_routes(algorithm)?;
        println!(
            "  {:8} {:7.2}",
            algorithm.name(),
            routes.mcl(scenario.topology(), scenario.flows())
        );
    }
    Ok(())
}
