//! # bsor-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (Chapter 6). Each exhibit has a binary:
//!
//! | Exhibit | Binary | Output |
//! |---|---|---|
//! | Table 6.1 | `table_6_1` | min MCL per acyclic CDG, MILP selector |
//! | Table 6.2 | `table_6_2` | min MCL per acyclic CDG, Dijkstra selector |
//! | Table 6.3 | `table_6_3` | MCL of XY/YX/ROMM/Valiant/O1TURN/BSOR |
//! | Fig. 6-1…6-6 | `fig_6_1` … `fig_6_6` | throughput & latency vs injection rate |
//! | Fig. 6-7 | `fig_6_7` | VC-count sweep (transpose, H.264) |
//! | Fig. 6-8…6-10 | `fig_6_8` … `fig_6_10` | 10/25/50 % bandwidth variation |
//! | Fig. 5-4 | `fig_5_4` | bursty injection-rate trace |
//!
//! All binaries print whitespace-aligned tables (and CSV with `--csv`)
//! to stdout. Every route computation goes through the unified
//! [`Scenario`] + [`Planner`] pipeline — one [`RoutePlan`] per
//! algorithm, evaluated per load point with [`SimEvaluator`], the same
//! split the `bsor-sweep` CLI drives — so the figures, tables, sweep
//! and examples all see identical inputs and identical deadlock
//! validation. Criterion micro-benchmarks for the building blocks live
//! in `benches/`.
//!
//! A note on turn-model naming: the paper's figures draw the mesh with
//! the y-axis pointing down, so its "negative-first" corresponds to
//! [`TurnModel::negative_first`]`.mirrored_y()` in this workspace's
//! north-is-+y convention. The table binaries use the paper-oriented
//! variants so the columns line up with the thesis tables.

pub mod json;
pub mod serve;
pub mod sweep;

use bsor::{BsorAlgorithm, BsorBuilder, CdgStrategy, SelectorKind};
use bsor_cdg::TurnModel;
use bsor_flow::FlowSet;
use bsor_lp::MilpOptions;
use bsor_routing::selectors::{DijkstraSelector, MilpSelector};
use bsor_routing::{Baseline, RouteSet};
use bsor_sim::{
    EvalPoint, Evaluator, ExperimentError, MarkovVariation, Planner, RouteAlgorithm, RoutePlan,
    Scenario, SimConfig, SimEvaluator, Simulator, TrafficSpec,
};
use bsor_topology::Topology;
use bsor_workloads::{h264_decoder, transpose, Workload};
use std::sync::Arc;
use std::time::Duration;

/// The paper's evaluation substrate: an 8×8 mesh (§6.1).
pub fn standard_mesh() -> Topology {
    Topology::mesh2d(8, 8)
}

/// The five acyclic CDGs of Tables 6.1/6.2, paper-oriented: north-last,
/// west-first, negative-first, and two ad-hoc derivations.
pub fn table_cdgs() -> Vec<(String, CdgStrategy)> {
    vec![
        (
            "North-Last".into(),
            CdgStrategy::TurnModel(TurnModel::north_last().mirrored_y()),
        ),
        (
            "West-First".into(),
            CdgStrategy::TurnModel(TurnModel::west_first().mirrored_y()),
        ),
        (
            "Negative-First".into(),
            CdgStrategy::TurnModel(TurnModel::negative_first().mirrored_y()),
        ),
        ("Ad Hoc 1".into(), CdgStrategy::AdHoc { seed: 1 }),
        ("Ad Hoc 2".into(), CdgStrategy::AdHoc { seed: 2 }),
    ]
}

/// MILP selector configuration used by the table/figure binaries:
/// bounded so a full table regenerates in minutes, as the thesis's
/// "ILP as heuristic" mode suggests for larger problems. Under
/// [`RunMode::Quick`] the budget shrinks further so CI can exercise the
/// MILP tables in seconds.
pub fn table_milp(mode: RunMode) -> MilpSelector {
    let (max_paths, max_nodes, limit) = match mode {
        RunMode::Quick => (6, 2, Duration::from_millis(200)),
        _ => (40, 20, Duration::from_secs(5)),
    };
    MilpSelector::new()
        .with_hop_slack(2)
        .with_max_paths(max_paths)
        .with_options(MilpOptions {
            max_nodes,
            time_limit: Some(limit),
            ..MilpOptions::default()
        })
}

/// Dijkstra selector configuration for the tables: two rip-up/reroute
/// refinement passes on top of the paper's sequential heuristic (none
/// under [`RunMode::Quick`]).
pub fn table_dijkstra(mode: RunMode) -> DijkstraSelector {
    let refinement = match mode {
        RunMode::Quick => 0,
        _ => 2,
    };
    DijkstraSelector::new().with_refinement(refinement)
}

/// Runs one selector over one CDG strategy, returning the MCL (`Err`
/// text when the CDG or selection fails).
pub fn mcl_for(
    topo: &Topology,
    workload: &Workload,
    vcs: u8,
    strategy: &CdgStrategy,
    selector: SelectorKind,
) -> Result<f64, String> {
    let result = BsorBuilder::new(topo, &workload.flows)
        .vcs(vcs)
        .strategies(vec![strategy.clone()])
        .selector(selector)
        .run()
        .map_err(|e| e.to_string())?;
    Ok(result.mcl)
}

/// The six routing algorithms compared throughout Chapter 6, in table
/// order, as pluggable [`RouteAlgorithm`] instances.
pub fn standard_algorithms(mode: RunMode) -> Vec<(String, Box<dyn RouteAlgorithm + Send + Sync>)> {
    vec![
        ("XY".into(), Box::new(Baseline::XY)),
        ("YX".into(), Box::new(Baseline::YX)),
        ("ROMM".into(), Box::new(Baseline::Romm { seed: 9 })),
        ("Valiant".into(), Box::new(Baseline::Valiant { seed: 9 })),
        (
            "BSOR-MILP".into(),
            Box::new(BsorAlgorithm::milp("BSOR-MILP", table_milp(mode))),
        ),
        ("BSOR-Dijkstra".into(), Box::new(BsorAlgorithm::dijkstra())),
    ]
}

/// Builds the unified [`Scenario`] a figure/table runs on.
pub fn scenario_for(topo: &Topology, workload: &Workload, vcs: u8) -> Scenario {
    Scenario::builder(topo.clone(), workload.flows.clone())
        .named(workload.name.clone())
        .vcs(vcs)
        .build()
        .expect("bench workloads are valid on their topologies")
}

/// The six algorithms of [`standard_algorithms`], each planned on the
/// workload's scenario: validated routes, Lemma-1 certificate, compiled
/// tables and predicted MCL per algorithm (errors as text).
pub fn algorithm_plans(
    topo: &Topology,
    workload: &Workload,
    vcs: u8,
    mode: RunMode,
) -> Vec<(String, Result<Arc<RoutePlan>, String>)> {
    let scenario = scenario_for(topo, workload, vcs);
    let planner = Planner::new();
    standard_algorithms(mode)
        .into_iter()
        .map(|(name, algo)| {
            let plan = planner
                .plan(&scenario, algo.as_ref())
                .map_err(|e| ExperimentError::from(e).to_string());
            (name, plan)
        })
        .collect()
}

/// The six algorithms of [`standard_algorithms`], each yielding a
/// validated route set for the workload through the scenario pipeline
/// (errors as text).
///
/// **Superseded** by [`algorithm_plans`], which additionally carries
/// the compiled tables and MCL; this shim keeps route-level callers
/// working for one release.
#[deprecated(
    since = "0.1.0",
    note = "use `algorithm_plans` and read `RoutePlan::routes` — the plan also \
            carries the certificate, tables and predicted MCL"
)]
pub fn algorithm_routes(
    topo: &Topology,
    workload: &Workload,
    vcs: u8,
    mode: RunMode,
) -> Vec<(String, Result<RouteSet, String>)> {
    algorithm_plans(topo, workload, vcs, mode)
        .into_iter()
        .map(|(name, plan)| (name, plan.map(|p| p.routes().clone())))
        .collect()
}

/// One point of a load-sweep curve.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Offered aggregate injection rate, packets/cycle.
    pub offered: f64,
    /// Delivered throughput, packets/cycle.
    pub throughput: f64,
    /// Mean packet latency, cycles (`None` when nothing was delivered).
    pub latency: Option<f64>,
    /// Whether the run tripped the deadlock watchdog.
    pub deadlocked: bool,
}

/// Simulation lengths for the figure sweeps. The paper uses 20k + 100k
/// cycles; the default here is shorter so a figure regenerates in
/// seconds — pass `--paper` to the binaries for full-length runs.
#[derive(Clone, Copy, Debug)]
pub struct SweepConfig {
    /// Warmup cycles.
    pub warmup: u64,
    /// Measured cycles.
    pub measurement: u64,
    /// Virtual channels.
    pub vcs: u8,
    /// Optional Markov-modulated bandwidth variation.
    pub variation: Option<MarkovVariation>,
}

impl SweepConfig {
    /// Quick settings (2k + 10k cycles).
    pub fn quick(vcs: u8) -> SweepConfig {
        SweepConfig {
            warmup: 2_000,
            measurement: 10_000,
            vcs,
            variation: None,
        }
    }

    /// CI smoke settings (200 + 1k cycles): enough to exercise every
    /// code path of a figure without meaningful wall-clock cost.
    pub fn ci(vcs: u8) -> SweepConfig {
        SweepConfig {
            warmup: 200,
            measurement: 1_000,
            vcs,
            variation: None,
        }
    }

    /// The paper's full-length settings (20k + 100k cycles).
    pub fn paper(vcs: u8) -> SweepConfig {
        SweepConfig {
            warmup: 20_000,
            measurement: 100_000,
            vcs,
            variation: None,
        }
    }

    /// Adds bandwidth variation.
    pub fn with_variation(mut self, variation: MarkovVariation) -> SweepConfig {
        self.variation = Some(variation);
        self
    }
}

/// Simulation length a figure binary was asked for on its command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunMode {
    /// `--quick`: CI smoke lengths and a reduced rate grid.
    Quick,
    /// No flag: the fast-but-meaningful default.
    Default,
    /// `--paper`: the paper's full 20k + 100k windows.
    Paper,
}

/// Reads the run mode from the CLI (`--quick` wins over `--paper`).
pub fn run_mode() -> RunMode {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--quick") {
        RunMode::Quick
    } else if args.iter().any(|a| a == "--paper") {
        RunMode::Paper
    } else {
        RunMode::Default
    }
}

/// The sweep settings for `mode`.
pub fn sweep_for(mode: RunMode, vcs: u8) -> SweepConfig {
    match mode {
        RunMode::Quick => SweepConfig::ci(vcs),
        RunMode::Default => SweepConfig::quick(vcs),
        RunMode::Paper => SweepConfig::paper(vcs),
    }
}

/// The sweep settings for the current [`run_mode`].
pub fn figure_sweep(vcs: u8) -> SweepConfig {
    sweep_for(run_mode(), vcs)
}

/// The offered-rate grid for `mode`: the standard ten points, or three
/// spanning light load / knee / saturation in [`RunMode::Quick`].
pub fn rates_for(mode: RunMode) -> Vec<f64> {
    match mode {
        RunMode::Quick => vec![0.1, 0.8, 2.0],
        _ => standard_rates(),
    }
}

/// The offered-rate grid for the current [`run_mode`].
pub fn figure_rates() -> Vec<f64> {
    rates_for(run_mode())
}

/// Evaluates one [`RoutePlan`] across a range of offered loads with the
/// cycle-accurate [`SimEvaluator`] — plan once, evaluate N points on
/// the plan's precompiled tables.
pub fn plan_sweep(plan: &RoutePlan, offered_rates: &[f64], cfg: &SweepConfig) -> Vec<SweepPoint> {
    let evaluator = SimEvaluator::new();
    offered_rates
        .iter()
        .map(|&rate| {
            let sim_cfg = SimConfig::new(cfg.vcs)
                .with_warmup(cfg.warmup)
                .with_measurement(cfg.measurement);
            let mut point = EvalPoint::new(rate, sim_cfg);
            if let Some(v) = cfg.variation {
                point = point.with_variation(v);
            }
            let ev = evaluator
                .evaluate(plan, &point)
                .expect("consistent sweep inputs");
            SweepPoint {
                offered: rate,
                throughput: ev.throughput,
                latency: ev.mean_latency,
                deadlocked: ev.deadlocked,
            }
        })
        .collect()
}

/// Simulates one route set across a range of offered loads.
///
/// **Superseded** by [`plan_sweep`] (which reuses a plan's compiled
/// tables instead of rebuilding them per point); kept for route-level
/// callers for one release.
#[deprecated(
    since = "0.1.0",
    note = "plan once (`Planner::plan` or `algorithm_plans`) and use `plan_sweep`, \
            which reuses the plan's compiled node tables across points"
)]
pub fn load_sweep(
    topo: &Topology,
    flows: &FlowSet,
    routes: &RouteSet,
    offered_rates: &[f64],
    cfg: &SweepConfig,
) -> Vec<SweepPoint> {
    offered_rates
        .iter()
        .map(|&rate| {
            let mut traffic = TrafficSpec::proportional(flows, rate);
            if let Some(v) = cfg.variation {
                traffic = traffic.with_variation(v);
            }
            let sim_cfg = SimConfig::new(cfg.vcs)
                .with_warmup(cfg.warmup)
                .with_measurement(cfg.measurement);
            let report = Simulator::new(topo, flows, routes, traffic, sim_cfg)
                .expect("consistent sweep inputs")
                .run();
            SweepPoint {
                offered: rate,
                throughput: report.throughput(),
                latency: report.mean_latency(),
                deadlocked: report.deadlocked,
            }
        })
        .collect()
}

/// Standard offered-rate grid for the figure sweeps (packets/cycle,
/// aggregate across the whole mesh).
pub fn standard_rates() -> Vec<f64> {
    vec![0.05, 0.1, 0.2, 0.4, 0.8, 1.2, 1.6, 2.0, 2.6, 3.2]
}

/// Streams one of the paper's throughput/latency figures into `out`:
/// every algorithm of [`standard_algorithms`] routed through the
/// scenario pipeline and swept over `rates` on `workload`. Rows are
/// written as they are computed, so long `--paper` runs show progress
/// on a terminal sink (see [`StdoutSink`]).
///
/// # Errors
///
/// Only the sink's own [`std::fmt::Error`].
#[allow(clippy::too_many_arguments)]
pub fn write_figure(
    out: &mut dyn std::fmt::Write,
    title: &str,
    topo: &Topology,
    workload: &Workload,
    cfg: &SweepConfig,
    rates: &[f64],
    mode: RunMode,
    csv: bool,
) -> std::fmt::Result {
    writeln!(out, "{title}")?;
    if csv {
        writeln!(out, "algorithm,offered,throughput,latency,deadlocked")?;
    } else {
        writeln!(
            out,
            "{}",
            fmt_row(
                &[
                    "algorithm".into(),
                    "offered".into(),
                    "throughput".into(),
                    "latency".into(),
                ],
                &[14, 9, 11, 9]
            )
        )?;
    }
    for (name, plan) in algorithm_plans(topo, workload, cfg.vcs, mode) {
        match plan {
            Err(e) => writeln!(out, "{name}: skipped ({e})")?,
            Ok(plan) => {
                for p in plan_sweep(&plan, rates, cfg) {
                    let latency = p
                        .latency
                        .map(|l| format!("{l:.1}"))
                        .unwrap_or_else(|| "-".into());
                    if csv {
                        writeln!(
                            out,
                            "{name},{:.3},{:.4},{latency},{}",
                            p.offered, p.throughput, p.deadlocked
                        )?;
                    } else {
                        writeln!(
                            out,
                            "{}",
                            fmt_row(
                                &[
                                    name.clone(),
                                    format!("{:.3}", p.offered),
                                    format!("{:.4}", p.throughput),
                                    latency,
                                ],
                                &[14, 9, 11, 9]
                            )
                        )?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// [`write_figure`] into a fresh `String` (what the golden tests pin).
#[allow(clippy::too_many_arguments)]
pub fn render_figure(
    title: &str,
    topo: &Topology,
    workload: &Workload,
    cfg: &SweepConfig,
    rates: &[f64],
    mode: RunMode,
    csv: bool,
) -> String {
    let mut out = String::new();
    write_figure(&mut out, title, topo, workload, cfg, rates, mode, csv)
        .expect("string writes cannot fail");
    out
}

/// Streams Figure 6-7's VC sweep into `out`: transpose and the H.264
/// decoder with 1/2/4/8 virtual channels, XY vs BSOR-Dijkstra (ROMM
/// joins at 2+ VCs — with a single VC it would deadlock, exactly as in
/// §6.2.7). Rows are written as they are computed.
///
/// # Errors
///
/// Only the sink's own [`std::fmt::Error`].
pub fn write_vc_sweep(
    out: &mut dyn std::fmt::Write,
    topo: &Topology,
    mode: RunMode,
    csv: bool,
) -> std::fmt::Result {
    let rates = rates_for(mode);
    if csv {
        writeln!(out, "workload,vcs,algorithm,offered,throughput,latency")?;
    }
    for workload in [
        transpose(topo).expect("square"),
        h264_decoder(topo).expect("fits"),
    ] {
        for vcs in [1u8, 2, 4, 8] {
            let cfg = sweep_for(mode, vcs);
            if !csv {
                writeln!(out, "Figure 6-7: {} with {vcs} VC(s)", workload.name)?;
            }
            let scenario = scenario_for(topo, &workload, vcs);
            let planner = Planner::new();
            let mut algos: Vec<(String, Box<dyn RouteAlgorithm + Send + Sync>)> = vec![
                ("XY".into(), Box::new(Baseline::XY)),
                ("BSOR-Dijkstra".into(), Box::new(BsorAlgorithm::dijkstra())),
            ];
            if vcs >= 2 {
                algos.push(("ROMM".into(), Box::new(Baseline::Romm { seed: 9 })));
            }
            for (name, algo) in algos {
                match planner.plan(&scenario, algo.as_ref()) {
                    Err(e) => writeln!(out, "{name}: skipped ({})", ExperimentError::from(e))?,
                    Ok(plan) => {
                        for p in plan_sweep(&plan, &rates, &cfg) {
                            let lat = p
                                .latency
                                .map(|l| format!("{l:.1}"))
                                .unwrap_or_else(|| "-".into());
                            if csv {
                                writeln!(
                                    out,
                                    "{},{vcs},{name},{:.3},{:.4},{lat}",
                                    workload.name, p.offered, p.throughput
                                )?;
                            } else {
                                writeln!(
                                    out,
                                    "  {name:>14}  rate {:.3}  tput {:.4}  lat {lat}",
                                    p.offered, p.throughput
                                )?;
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// [`write_vc_sweep`] into a fresh `String` (what the golden test pins).
pub fn vc_sweep_report(topo: &Topology, mode: RunMode, csv: bool) -> String {
    let mut out = String::new();
    write_vc_sweep(&mut out, topo, mode, csv).expect("string writes cannot fail");
    out
}

/// A [`std::fmt::Write`] sink that streams straight to stdout, so the
/// figure binaries print each row as its simulations finish instead of
/// buffering whole figures (hours under `--paper`) in memory.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdoutSink;

impl std::fmt::Write for StdoutSink {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        print!("{s}");
        Ok(())
    }
}

/// Formats a table row with fixed-width columns.
pub fn fmt_row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}"))
        .collect::<Vec<_>>()
        .join("  ")
}

/// True when the CLI asked for full-length paper runs (a [`run_mode`]
/// shorthand kept for callers that only branch on `--paper`).
pub fn paper_mode() -> bool {
    run_mode() == RunMode::Paper
}

/// True when the CLI asked for CSV output.
pub fn csv_mode() -> bool {
    std::env::args().any(|a| a == "--csv")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsor_workloads::transpose;

    #[test]
    fn table_cdgs_are_five() {
        let cdgs = table_cdgs();
        assert_eq!(cdgs.len(), 5);
        assert_eq!(cdgs[2].0, "Negative-First");
    }

    #[test]
    fn mcl_for_dijkstra_on_paper_negative_first() {
        // The headline Table 6.1/6.2 cell: paper-oriented negative-first
        // reaches MCL 75 on 8x8 transpose.
        let topo = standard_mesh();
        let w = transpose(&topo).expect("square");
        let (_, strategy) = &table_cdgs()[2];
        let mcl = mcl_for(
            &topo,
            &w,
            2,
            strategy,
            SelectorKind::Dijkstra(DijkstraSelector::new()),
        )
        .expect("routable");
        assert_eq!(mcl, 75.0);
    }

    #[test]
    fn sweep_produces_monotone_offered_axis() {
        let topo = Topology::mesh2d(4, 4);
        let w = bsor_workloads::transpose(&topo).expect("square");
        let plan = Planner::new()
            .plan(&scenario_for(&topo, &w, 2), &Baseline::XY)
            .expect("xy");
        let cfg = SweepConfig {
            warmup: 200,
            measurement: 1_000,
            vcs: 2,
            variation: None,
        };
        let points = plan_sweep(&plan, &[0.05, 0.2], &cfg);
        assert_eq!(points.len(), 2);
        assert!(points[0].offered < points[1].offered);
        assert!(points.iter().all(|p| !p.deadlocked));
    }

    #[test]
    #[allow(deprecated)] // shim regression coverage until removal
    fn deprecated_route_shims_match_the_plan_path() {
        let topo = Topology::mesh2d(4, 4);
        let w = bsor_workloads::transpose(&topo).expect("square");
        let routes = scenario_for(&topo, &w, 2)
            .select_routes(&Baseline::XY)
            .expect("xy");
        let cfg = SweepConfig {
            warmup: 200,
            measurement: 1_000,
            vcs: 2,
            variation: None,
        };
        let via_routes = load_sweep(&topo, &w.flows, &routes, &[0.05], &cfg);
        let plan = Planner::new()
            .plan(&scenario_for(&topo, &w, 2), &Baseline::XY)
            .expect("xy");
        let via_plan = plan_sweep(&plan, &[0.05], &cfg);
        assert_eq!(via_routes[0].throughput, via_plan[0].throughput);
        assert_eq!(via_routes[0].latency, via_plan[0].latency);
    }

    #[test]
    fn standard_algorithms_are_table_ordered() {
        let names: Vec<String> = standard_algorithms(RunMode::Quick)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(
            names,
            vec!["XY", "YX", "ROMM", "Valiant", "BSOR-MILP", "BSOR-Dijkstra"]
        );
    }

    #[test]
    fn render_figure_has_csv_header_and_rows() {
        let topo = Topology::mesh2d(4, 4);
        let w = transpose(&topo).expect("square");
        let cfg = SweepConfig::ci(2);
        let out = render_figure("T", &topo, &w, &cfg, &[0.1], RunMode::Quick, true);
        let mut lines = out.lines();
        assert_eq!(lines.next(), Some("T"));
        assert_eq!(
            lines.next(),
            Some("algorithm,offered,throughput,latency,deadlocked")
        );
        assert!(out.lines().any(|l| l.starts_with("XY,0.100,")));
    }

    #[test]
    fn fmt_row_aligns() {
        let row = fmt_row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(row, "  a    bb");
    }
}
