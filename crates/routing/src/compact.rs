//! Compressed routing state: interval tables over the CSR arenas.
//!
//! The dense [`NodeTables`] arena stores one entry per (node, flow,
//! visit) — exact but linear in total route hops, which is the binding
//! memory cost at 64x64+ (a 64x64 uniform-random case compiles ~700M
//! entries). [`CompactTables`] stores the same routing function as
//! *intervals*: runs of cursors at a node that share an entry collapse
//! into one record, looked up by binary search. Two keyings are built,
//! picked automatically per route set:
//!
//! * **Destination-keyed** (`dst-interval`) — when the route set is
//!   *destination-consistent* (at every node, all routes toward the
//!   same destination leave on the same `(out_link, vcs)`, and no route
//!   passes through its own destination), the packet cursor is simply
//!   the destination node id. Dimension-order families compress
//!   extremely well here: XY on a `w x h` mesh needs about `3h`
//!   intervals per node regardless of the flow count — this is the
//!   "prefix" path for grid families (a run of row-major destination
//!   ids is exactly a coordinate prefix).
//! * **Flow-keyed** (`flow-interval`) — the general fallback: the
//!   cursor is `visit * num_flows + flow`, where `visit` counts how
//!   many times the route has already left this node (so non-simple
//!   routes — Valiant through a shared waypoint, detouring walks —
//!   stay representable). Runs of adjacent flow ids sharing
//!   `(out_link, vcs, next_visit, last)` collapse.
//!
//! Both realize [`RouteTables`], so the simulator executes them with
//! byte-identical results to the dense arena at a fixed seed; the
//! differential suite in `bsor-bench` proves hop-for-hop equality
//! across topology x algorithm x VC.

use crate::route::{RouteSet, VcMask};
use crate::tables::{NodeTables, RouteTables, TableEntry};
use bsor_flow::FlowId;
use bsor_topology::{LinkId, NodeId, Topology};

/// One destination-keyed interval: destination-id cursors in
/// `[lo, next.lo)` at this node share the entry. Runs may span
/// destination ids no route queries at this node — such cursors are
/// never looked up here, so folding them into the nearest run below is
/// sound and improves compression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct DstIval {
    lo: u32,
    out_link: LinkId,
    vcs: VcMask,
    /// Node `out_link` enters, cached so the ejection test
    /// (`link_dst == cursor`) needs no topology access per lookup.
    link_dst: u32,
}

/// One flow-keyed interval over `visit * num_flows + flow` cursors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct FlowIval {
    lo: u32,
    out_link: LinkId,
    vcs: VcMask,
    /// Visit ordinal the route has at the next node (0 for simple
    /// paths; >0 only when the route re-crosses a node).
    next_visit: u16,
    /// Last hop: the packet ejects at `out_link`'s destination.
    last: bool,
}

#[derive(Clone, Debug, PartialEq)]
enum Body {
    Dst(Vec<DstIval>),
    Flow {
        ivals: Vec<FlowIval>,
        num_flows: u32,
    },
}

/// Interval-compressed routing tables (see the module docs).
///
/// Like [`NodeTables`], storage is one flat arena in CSR layout — node
/// `n` owns `ivals[offsets[n] .. offsets[n + 1]]` — so a lookup is one
/// binary search over that node's (usually short) interval list.
#[derive(Clone, Debug, PartialEq)]
pub struct CompactTables {
    /// CSR offsets into the interval arena, one per node plus sentinel.
    offsets: Vec<u32>,
    body: Body,
    /// Per-flow initial cursor (destination ids; empty in flow keying,
    /// where the initial cursor is the flow id itself).
    initial: Vec<u32>,
}

/// Scratch record for the destination-keyed build.
#[derive(Clone, Copy)]
struct DstScratch {
    dst: u32,
    out_link: LinkId,
    vcs: VcMask,
    link_dst: u32,
}

/// Scratch record for the flow-keyed build.
#[derive(Clone, Copy)]
struct FlowScratch {
    key: u32,
    out_link: LinkId,
    vcs: VcMask,
    next_visit: u16,
    last: bool,
}

impl CompactTables {
    /// Compresses a route set, choosing destination keying when the set
    /// is destination-consistent and falling back to flow keying
    /// otherwise. Either way the resulting tables route every flow
    /// hop-for-hop identically to [`NodeTables::build`] on `routes`.
    pub fn build(topo: &Topology, routes: &RouteSet) -> CompactTables {
        CompactTables::try_build_dst(topo, routes)
            .unwrap_or_else(|| CompactTables::build_flow(topo, routes))
    }

    /// The representation actually chosen.
    pub fn mode(&self) -> &'static str {
        match self.body {
            Body::Dst(_) => "dst-interval",
            Body::Flow { .. } => "flow-interval",
        }
    }

    /// Total interval records across all nodes.
    pub fn num_intervals(&self) -> usize {
        match &self.body {
            Body::Dst(ivals) => ivals.len(),
            Body::Flow { ivals, .. } => ivals.len(),
        }
    }

    /// Destination-keyed build; `None` when the route set is not
    /// destination-consistent (conflicting exits for one destination at
    /// a node, or a route crossing its own destination mid-way).
    fn try_build_dst(topo: &Topology, routes: &RouteSet) -> Option<CompactTables> {
        let nn = topo.num_nodes();
        // Pass 1: size each node's scratch bucket.
        let mut counts = vec![0u32; nn];
        for route in routes.iter() {
            for hop in &route.hops {
                counts[topo.link(hop.link).src.index()] += 1;
            }
        }
        let mut starts = Vec::with_capacity(nn + 1);
        starts.push(0u32);
        for &c in &counts {
            starts.push(starts.last().expect("nonempty") + c);
        }
        let total = *starts.last().expect("nonempty") as usize;
        let mut scratch = vec![
            DstScratch {
                dst: 0,
                out_link: LinkId(0),
                vcs: VcMask(0),
                link_dst: 0,
            };
            total
        ];
        // Pass 2: fill, rejecting routes that cross their destination.
        let mut filled = vec![0u32; nn];
        let mut initial = Vec::with_capacity(routes.len());
        for route in routes.iter() {
            let last = route.hops.last().expect("routes are nonempty");
            let dst = topo.link(last.link).dst;
            initial.push(dst.0);
            for (i, hop) in route.hops.iter().enumerate() {
                let link = topo.link(hop.link);
                if link.dst == dst && i + 1 != route.hops.len() {
                    // Passing through the destination: the cursor would
                    // eject early. Not destination-consistent.
                    return None;
                }
                let node = link.src.index();
                scratch[(starts[node] + filled[node]) as usize] = DstScratch {
                    dst: dst.0,
                    out_link: hop.link,
                    vcs: hop.vcs,
                    link_dst: link.dst.0,
                };
                filled[node] += 1;
            }
        }
        // Per node: order by destination, detect conflicts, collapse
        // runs (gaps between queried destinations merge freely).
        let mut offsets = Vec::with_capacity(nn + 1);
        offsets.push(0u32);
        let mut ivals: Vec<DstIval> = Vec::new();
        for n in 0..nn {
            let bucket = &mut scratch[starts[n] as usize..starts[n + 1] as usize];
            bucket.sort_unstable_by_key(|s| s.dst);
            let mut prev: Option<DstScratch> = None;
            for s in bucket.iter() {
                match prev {
                    Some(p) if p.dst == s.dst => {
                        if p.out_link != s.out_link || p.vcs != s.vcs {
                            return None; // two exits for one destination
                        }
                    }
                    Some(p) if p.out_link == s.out_link && p.vcs == s.vcs => {
                        prev = Some(*s); // extend the run across the gap
                    }
                    _ => {
                        ivals.push(DstIval {
                            lo: s.dst,
                            out_link: s.out_link,
                            vcs: s.vcs,
                            link_dst: s.link_dst,
                        });
                        prev = Some(*s);
                    }
                }
            }
            offsets.push(ivals.len() as u32);
        }
        ivals.shrink_to_fit();
        Some(CompactTables {
            offsets,
            body: Body::Dst(ivals),
            initial,
        })
    }

    /// Flow-keyed build: always succeeds (cursor space `visit *
    /// num_flows + flow` distinguishes node re-crossings).
    ///
    /// # Panics
    ///
    /// Panics if the cursor space overflows `u32` (`(max_visits + 1) *
    /// num_flows` beyond 4 billion).
    fn build_flow(topo: &Topology, routes: &RouteSet) -> CompactTables {
        let nn = topo.num_nodes();
        let num_flows = u32::try_from(routes.len()).expect("flow count fits u32");
        let mut counts = vec![0u32; nn];
        for route in routes.iter() {
            for hop in &route.hops {
                counts[topo.link(hop.link).src.index()] += 1;
            }
        }
        let mut starts = Vec::with_capacity(nn + 1);
        starts.push(0u32);
        for &c in &counts {
            starts.push(starts.last().expect("nonempty") + c);
        }
        let total = *starts.last().expect("nonempty") as usize;
        let mut scratch = vec![
            FlowScratch {
                key: 0,
                out_link: LinkId(0),
                vcs: VcMask(0),
                next_visit: 0,
                last: false,
            };
            total
        ];
        let mut filled = vec![0u32; nn];
        // Per-node visit counters, touched only on a route's own nodes
        // and reset by re-walking it (keeps the build O(total hops)).
        let mut visit_ctr = vec![0u16; nn];
        let mut visits: Vec<u16> = Vec::new();
        for (fi, route) in routes.iter().enumerate() {
            visits.clear();
            for hop in &route.hops {
                let node = topo.link(hop.link).src.index();
                visits.push(visit_ctr[node]);
                visit_ctr[node] += 1;
            }
            for (i, hop) in route.hops.iter().enumerate() {
                let link = topo.link(hop.link);
                let node = link.src.index();
                let visit = visits[i];
                let key_wide = u64::from(visit) * u64::from(num_flows) + fi as u64;
                let key = u32::try_from(key_wide).expect("flow-interval cursor fits u32");
                scratch[(starts[node] + filled[node]) as usize] = FlowScratch {
                    key,
                    out_link: hop.link,
                    vcs: hop.vcs,
                    next_visit: if i + 1 < route.hops.len() {
                        visits[i + 1]
                    } else {
                        0
                    },
                    last: i + 1 == route.hops.len(),
                };
                filled[node] += 1;
            }
            for hop in &route.hops {
                visit_ctr[topo.link(hop.link).src.index()] = 0;
            }
        }
        let mut offsets = Vec::with_capacity(nn + 1);
        offsets.push(0u32);
        let mut ivals: Vec<FlowIval> = Vec::new();
        for n in 0..nn {
            let bucket = &mut scratch[starts[n] as usize..starts[n + 1] as usize];
            bucket.sort_unstable_by_key(|s| s.key);
            let mut prev: Option<FlowScratch> = None;
            for s in bucket.iter() {
                debug_assert!(
                    prev.is_none_or(|p| p.key != s.key),
                    "(node, flow, visit) keys are unique"
                );
                let mergeable = prev.is_some_and(|p| {
                    p.out_link == s.out_link
                        && p.vcs == s.vcs
                        && p.next_visit == s.next_visit
                        && p.last == s.last
                });
                if !mergeable {
                    ivals.push(FlowIval {
                        lo: s.key,
                        out_link: s.out_link,
                        vcs: s.vcs,
                        next_visit: s.next_visit,
                        last: s.last,
                    });
                }
                prev = Some(*s);
            }
            offsets.push(ivals.len() as u32);
        }
        ivals.shrink_to_fit();
        CompactTables {
            offsets,
            body: Body::Flow { ivals, num_flows },
            initial: Vec::new(),
        }
    }
}

impl RouteTables for CompactTables {
    fn initial_cursor(&self, flow: FlowId) -> u32 {
        match self.body {
            // Cursor = destination id.
            Body::Dst(_) => self.initial[flow.index()],
            // Cursor = visit * num_flows + flow; the first hop leaves
            // the source on visit 0.
            Body::Flow { .. } => flow.0,
        }
    }

    fn entry(&self, node: NodeId, cursor: u32) -> TableEntry {
        let n = node.index();
        let lo = self.offsets[n] as usize;
        let hi = self.offsets[n + 1] as usize;
        match &self.body {
            Body::Dst(ivals) => {
                let s = &ivals[lo..hi];
                let i = s.partition_point(|iv| iv.lo <= cursor);
                debug_assert!(i > 0, "cursor below node's first interval");
                let iv = s[i - 1];
                TableEntry {
                    out_link: iv.out_link,
                    vcs: iv.vcs,
                    next_index: (iv.link_dst != cursor).then_some(cursor),
                }
            }
            Body::Flow { ivals, num_flows } => {
                let s = &ivals[lo..hi];
                let i = s.partition_point(|iv| iv.lo <= cursor);
                debug_assert!(i > 0, "cursor below node's first interval");
                let iv = s[i - 1];
                let flow = cursor % num_flows;
                TableEntry {
                    out_link: iv.out_link,
                    vcs: iv.vcs,
                    next_index: (!iv.last).then_some(u32::from(iv.next_visit) * num_flows + flow),
                }
            }
        }
    }

    fn table_bytes(&self) -> usize {
        let body = match &self.body {
            Body::Dst(ivals) => ivals.len() * std::mem::size_of::<DstIval>(),
            Body::Flow { ivals, .. } => ivals.len() * std::mem::size_of::<FlowIval>(),
        };
        self.offsets.len() * std::mem::size_of::<u32>()
            + body
            + self.initial.len() * std::mem::size_of::<u32>()
    }
}

/// A routing table in either representation, chosen at plan-build time.
///
/// This is what [`bsor_sim`-level] plans store: the planner decides
/// dense vs compact once and everything downstream (simulator, cache
/// byte accounting, serve responses) goes through [`RouteTables`].
#[derive(Clone, Debug, PartialEq)]
pub enum AnyTables {
    /// The dense per-(node, flow) CSR arena.
    Dense(NodeTables),
    /// The interval-compressed representation.
    Compact(CompactTables),
}

impl AnyTables {
    /// Builds the requested representation from a route set.
    pub fn build(topo: &Topology, routes: &RouteSet, compact: bool) -> AnyTables {
        if compact {
            AnyTables::Compact(CompactTables::build(topo, routes))
        } else {
            AnyTables::Dense(NodeTables::build(topo, routes))
        }
    }

    /// True for the compressed representation.
    pub fn is_compact(&self) -> bool {
        matches!(self, AnyTables::Compact(_))
    }

    /// Representation name: `dense`, `dst-interval` or `flow-interval`.
    pub fn mode(&self) -> &'static str {
        match self {
            AnyTables::Dense(_) => "dense",
            AnyTables::Compact(t) => t.mode(),
        }
    }

    /// The dense tables, when that representation was built.
    pub fn as_dense(&self) -> Option<&NodeTables> {
        match self {
            AnyTables::Dense(t) => Some(t),
            AnyTables::Compact(_) => None,
        }
    }
}

impl RouteTables for AnyTables {
    #[inline]
    fn initial_cursor(&self, flow: FlowId) -> u32 {
        match self {
            AnyTables::Dense(t) => t.initial_cursor(flow),
            AnyTables::Compact(t) => t.initial_cursor(flow),
        }
    }

    #[inline]
    fn entry(&self, node: NodeId, cursor: u32) -> TableEntry {
        match self {
            AnyTables::Dense(t) => t.entry(node, cursor),
            AnyTables::Compact(t) => t.entry(node, cursor),
        }
    }

    fn table_bytes(&self) -> usize {
        match self {
            AnyTables::Dense(t) => t.table_bytes(),
            AnyTables::Compact(t) => t.table_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::Baseline;
    use crate::route::{Route, RouteHop};
    use bsor_flow::FlowSet;

    fn all_pairs_flows(topo: &Topology) -> FlowSet {
        let mut flows = FlowSet::new();
        for s in topo.node_ids() {
            for d in topo.node_ids() {
                if s != d {
                    flows.push(s, d, 10.0);
                }
            }
        }
        flows
    }

    /// Every flow's compact walk equals the dense walk.
    fn assert_walks_match(topo: &Topology, flows: &FlowSet, routes: &RouteSet) {
        let dense = NodeTables::build(topo, routes);
        let compact = CompactTables::build(topo, routes);
        for f in flows.iter() {
            assert_eq!(
                compact.walk_route(topo, f.id, f.src),
                dense.walk(topo, f.id, f.src),
                "walk mismatch for flow {} under {}",
                f.id,
                compact.mode()
            );
        }
    }

    #[test]
    fn xy_compresses_to_destination_intervals() {
        let topo = Topology::mesh2d(8, 8);
        let flows = all_pairs_flows(&topo);
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let compact = CompactTables::build(&topo, &routes);
        assert_eq!(compact.mode(), "dst-interval");
        assert_walks_match(&topo, &flows, &routes);
        let dense = NodeTables::build(&topo, &routes);
        assert!(
            compact.table_bytes() * 4 <= dense.table_bytes(),
            "XY all-pairs must compress at least 4x: {} vs {}",
            compact.table_bytes(),
            dense.table_bytes()
        );
        // XY at a node changes exit only at column boundaries: the
        // interval count stays around 3 per destination row.
        assert!(compact.num_intervals() < topo.num_nodes() * 4 * topo.height() as usize);
    }

    #[test]
    fn per_hop_entries_project_identically() {
        // Beyond walks: the (out_link, vcs) of every chained entry must
        // match between representations at every step.
        let topo = Topology::mesh2d(6, 6);
        let flows = all_pairs_flows(&topo);
        let routes = Baseline::YX.select(&topo, &flows, 2).expect("yx");
        let dense = NodeTables::build(&topo, &routes);
        let compact = CompactTables::build(&topo, &routes);
        for f in flows.iter() {
            let mut node = f.src;
            let mut dc = Some(dense.initial_cursor(f.id));
            let mut cc = Some(compact.initial_cursor(f.id));
            while let (Some(d), Some(c)) = (dc, cc) {
                let de = dense.entry(node, d);
                let ce = compact.entry(node, c);
                assert_eq!((de.out_link, de.vcs), (ce.out_link, ce.vcs));
                assert_eq!(de.next_index.is_none(), ce.next_index.is_none());
                node = topo.link(de.out_link).dst;
                dc = de.next_index;
                cc = ce.next_index;
            }
            assert_eq!(dc, None);
            assert_eq!(cc, None);
        }
    }

    #[test]
    fn randomized_baselines_fall_back_and_stay_exact() {
        // ROMM/Valiant route per flow (not per destination), so the
        // destination keying usually conflicts; whatever mode is chosen
        // must stay hop-exact.
        let topo = Topology::mesh2d(5, 5);
        let flows = all_pairs_flows(&topo);
        for routes in [
            Baseline::Romm { seed: 3 }
                .select(&topo, &flows, 4)
                .expect("romm"),
            Baseline::Valiant { seed: 3 }
                .select(&topo, &flows, 4)
                .expect("valiant"),
        ] {
            assert_walks_match(&topo, &flows, &routes);
        }
    }

    #[test]
    fn route_crossing_its_destination_uses_flow_keying() {
        // 0 -> 1 -> 2 -> 5 -> 4 -> 1 on a 3x3 mesh: enters its
        // destination (node 1) mid-route, which destination keying
        // cannot express.
        let topo = Topology::mesh2d(3, 3);
        let n = |i: u32| NodeId(i);
        let hop = |a: u32, b: u32| RouteHop {
            link: topo.find_link(n(a), n(b)).expect("adjacent"),
            vcs: VcMask::all(2),
        };
        let mut flows = FlowSet::new();
        flows.push(n(0), n(1), 1.0);
        let routes = RouteSet::from_routes(vec![Route {
            flow: FlowId(0),
            hops: vec![hop(0, 1), hop(1, 2), hop(2, 5), hop(5, 4), hop(4, 1)],
        }]);
        let compact = CompactTables::build(&topo, &routes);
        assert_eq!(compact.mode(), "flow-interval");
        assert_walks_match(&topo, &flows, &routes);
    }

    #[test]
    fn node_revisits_are_distinguished_by_visit_ordinal() {
        // 0 -> 1 -> 0 -> 2: node 0 issues two different hops for the
        // same flow, exercising the visit-keyed cursor.
        let topo = Topology::mesh2d(2, 2);
        let n = |i: u32| NodeId(i);
        let hop = |a: u32, b: u32| RouteHop {
            link: topo.find_link(n(a), n(b)).expect("adjacent"),
            vcs: VcMask::all(2),
        };
        let mut flows = FlowSet::new();
        flows.push(n(0), n(2), 1.0);
        let routes = RouteSet::from_routes(vec![Route {
            flow: FlowId(0),
            hops: vec![hop(0, 1), hop(1, 0), hop(0, 2)],
        }]);
        let compact = CompactTables::build(&topo, &routes);
        assert_eq!(compact.mode(), "flow-interval");
        assert_walks_match(&topo, &flows, &routes);
    }

    #[test]
    fn any_tables_dispatch_matches_either_representation() {
        let topo = Topology::mesh2d(4, 4);
        let flows = all_pairs_flows(&topo);
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let dense = AnyTables::build(&topo, &routes, false);
        let compact = AnyTables::build(&topo, &routes, true);
        assert!(!dense.is_compact());
        assert!(compact.is_compact());
        assert_eq!(dense.mode(), "dense");
        assert!(dense.as_dense().is_some());
        assert!(compact.as_dense().is_none());
        for f in flows.iter() {
            assert_eq!(
                dense.walk_route(&topo, f.id, f.src),
                compact.walk_route(&topo, f.id, f.src)
            );
        }
        assert!(compact.table_bytes() < dense.table_bytes());
    }
}
