//! Minimal vendored stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace ships
//! the subset of proptest its property tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], the [`proptest!`] test macro with an optional
//! `#![proptest_config(...)]` header, and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the case index and
//!   the assertion message; rerunning is deterministic (cases are
//!   seeded from the case index), so failures reproduce exactly.
//! * Uniform (not bias-weighted) sampling over ranges.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;

/// The glob-importable surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirrors `proptest::prelude::prop`, the module-path entry point
    /// (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u32..10, v in prop::collection::vec(0.0..1.0f64, 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::case_rng(
                        config.seed_offset,
                        stringify!($name),
                        case,
                    );
                    $(let $arg =
                        $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!(
                    "{} (left: {:?}, right: {:?})",
                    format!($($fmt)*),
                    l,
                    r
                )),
            );
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}
