//! Properties of the oblivious-routing selectors: the Applegate–Cohen
//! LP's competitive ratio is finite and at least 1 on every in-budget
//! registered topology whatever the commodity set, the rounding seed is
//! part of a selector's cache identity, and a fixed seed produces
//! byte-identical plans with and without the plan cache.

use bsor_repro::flow::FlowSet;
use bsor_repro::routing::selectors::{AcObliviousSelector, RandomWalkSelector};
use bsor_repro::sim::{PlanCache, Planner, RouteAlgorithm, Scenario};
use bsor_repro::topology::{NodeId, TopologyRegistry};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Registry specs whose directed-link count fits the selector's default
/// 16-link LP budget (the sweep below would get typed refusals, not
/// ratios, on anything larger).
const IN_BUDGET_SPECS: [&str; 6] = [
    "2x2",
    "3x2",
    "ring:4x1",
    "ring:6x1",
    "hypercube:4x1",
    "fullmesh:4",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn ratio_is_finite_and_at_least_one_within_budget(
        spec_idx in 0usize..IN_BUDGET_SPECS.len(),
        raw in prop::collection::vec((0u32..64, 0u32..64), 1..=3),
    ) {
        let topo = TopologyRegistry::standard()
            .build_spec(IN_BUDGET_SPECS[spec_idx])
            .expect("spec is registered");
        let n = topo.num_nodes() as u32;
        let commodities: Vec<(NodeId, NodeId)> = raw
            .iter()
            .map(|&(s, d)| (s % n, d % n))
            .filter(|&(s, d)| s != d)
            .collect::<BTreeSet<_>>()
            .into_iter()
            .map(|(s, d)| (NodeId(s), NodeId(d)))
            .collect();
        let sol = AcObliviousSelector::new()
            .solve(&topo, &commodities)
            .expect("within the link budget");
        prop_assert!(sol.ratio().is_finite(), "ratio {}", sol.ratio());
        // No routing beats the optimum: r >= 1 (1e-4 slack for the
        // solver's anti-degeneracy rhs perturbation).
        prop_assert!(sol.ratio() >= 1.0 - 1e-4, "ratio {}", sol.ratio());
    }
}

#[test]
fn rounding_seed_is_part_of_the_cache_key() {
    let a = AcObliviousSelector::new().with_seed(1);
    let b = AcObliviousSelector::new().with_seed(2);
    assert_eq!(a.name(), "ac-oblivious");
    assert_ne!(a.cache_key(), b.cache_key(), "seed must key the cache");
    assert_eq!(
        a.cache_key(),
        AcObliviousSelector::new().with_seed(1).cache_key(),
        "equal configs share a key"
    );
    let w = RandomWalkSelector::new().with_seed(1);
    assert_eq!(w.name(), "random-walk");
    assert_ne!(
        w.cache_key(),
        RandomWalkSelector::new().with_seed(2).cache_key()
    );
}

#[test]
fn fixed_seed_plans_identically_with_and_without_the_cache() {
    let topo = TopologyRegistry::standard()
        .build_spec("2x2")
        .expect("registered");
    let mut flows = FlowSet::new();
    for s in topo.node_ids() {
        for d in topo.node_ids() {
            if s != d {
                flows.push(s, d, 1.0);
            }
        }
    }
    let scenario = Scenario::builder(topo, flows)
        .named("oblivious-determinism")
        .vcs(2)
        .build()
        .expect("valid scenario");
    let algo = AcObliviousSelector::new().with_seed(9);
    let cached = Planner::new().with_cache(PlanCache::shared());
    let first = cached.plan(&scenario, &algo).expect("in budget");
    let hit = cached.plan(&scenario, &algo).expect("cache hit");
    let uncached = Planner::new().plan(&scenario, &algo).expect("in budget");
    // PlanId hashes the plan's serialized bytes, so equal ids mean
    // byte-identical plans — routes, certificate and tables.
    assert_eq!(first.id(), hit.id());
    assert_eq!(first.id(), uncached.id());
    assert_eq!(first.routes(), uncached.routes());
}
