//! The turn model (Glass & Ni) as a cycle-breaking strategy.
//!
//! On a 2-D grid the eight 90° turns form two abstract cycles:
//!
//! * clockwise: `N→E`, `E→S`, `S→W`, `W→N`
//! * counter-clockwise: `E→N`, `N→W`, `W→S`, `S→E`
//!
//! Prohibiting one turn from each cycle yields 16 candidate routing
//! restrictions; Glass & Ni showed exactly 12 of them are deadlock-free.
//! This crate re-derives that result computationally:
//! [`TurnModel::valid_models`] builds the CDG for each candidate and keeps
//! the ones whose restricted CDG is acyclic.

use crate::cdg::{Cdg, CdgError};
use bsor_netgraph::algo;
use bsor_topology::{Direction, Topology};
use std::fmt;

/// A 90° turn from one grid direction to another.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Turn {
    /// Direction of the incoming channel.
    pub from: Direction,
    /// Direction of the outgoing channel.
    pub to: Direction,
}

impl Turn {
    /// Creates a turn.
    ///
    /// # Panics
    ///
    /// Panics on straight "turns" (`from == to`) or 180° reversals.
    pub fn new(from: Direction, to: Direction) -> Turn {
        assert_ne!(from, to, "straight moves are not turns");
        assert_ne!(
            from.opposite(),
            to,
            "180 degree turns are never permitted anyway"
        );
        Turn { from, to }
    }

    /// The four clockwise turns.
    pub fn clockwise() -> [Turn; 4] {
        use Direction::*;
        [
            Turn::new(North, East),
            Turn::new(East, South),
            Turn::new(South, West),
            Turn::new(West, North),
        ]
    }

    /// The four counter-clockwise turns.
    pub fn counter_clockwise() -> [Turn; 4] {
        use Direction::*;
        [
            Turn::new(East, North),
            Turn::new(North, West),
            Turn::new(West, South),
            Turn::new(South, East),
        ]
    }
}

impl fmt::Display for Turn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.from, self.to)
    }
}

/// A set of prohibited turns defining a routing restriction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TurnModel {
    name: String,
    prohibited: Vec<Turn>,
}

impl TurnModel {
    /// Creates a named turn model from an arbitrary prohibition set.
    pub fn new(name: impl Into<String>, prohibited: Vec<Turn>) -> TurnModel {
        TurnModel {
            name: name.into(),
            prohibited,
        }
    }

    /// West-first: no turn into West (`S→W`, `N→W` prohibited).
    pub fn west_first() -> TurnModel {
        use Direction::*;
        TurnModel::new(
            "west-first",
            vec![Turn::new(South, West), Turn::new(North, West)],
        )
    }

    /// North-last: no turn out of North (`N→E`, `N→W` prohibited).
    pub fn north_last() -> TurnModel {
        use Direction::*;
        TurnModel::new(
            "north-last",
            vec![Turn::new(North, East), Turn::new(North, West)],
        )
    }

    /// Negative-first: no turn from a positive direction into a negative
    /// one (`E→S`, `N→W` prohibited).
    pub fn negative_first() -> TurnModel {
        use Direction::*;
        TurnModel::new(
            "negative-first",
            vec![Turn::new(East, South), Turn::new(North, West)],
        )
    }

    /// The same routing restriction expressed in a coordinate frame whose
    /// y-axis points the other way (North and South exchanged in every
    /// prohibited turn).
    ///
    /// The paper's figures draw meshes with the y-axis growing downward,
    /// so e.g. its "negative-first" model corresponds to
    /// `TurnModel::negative_first().mirrored_y()` in this crate's
    /// north-is-+y convention. The mirror of a deadlock-free model is
    /// deadlock-free.
    pub fn mirrored_y(&self) -> TurnModel {
        use Direction::*;
        let flip = |d: Direction| match d {
            North => South,
            South => North,
            other => other,
        };
        TurnModel::new(
            format!("{}-y-mirrored", self.name),
            self.prohibited
                .iter()
                .map(|t| Turn::new(flip(t.from), flip(t.to)))
                .collect(),
        )
    }

    /// The name of this model.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The prohibited turns.
    pub fn prohibited(&self) -> &[Turn] {
        &self.prohibited
    }

    /// Whether the `(from, to)` turn is permitted.
    pub fn allows(&self, from: Direction, to: Direction) -> bool {
        !self.prohibited.iter().any(|t| t.from == from && t.to == to)
    }

    /// All 16 candidate two-turn prohibitions: one clockwise turn × one
    /// counter-clockwise turn.
    pub fn enumerate_two_turn() -> Vec<TurnModel> {
        let mut models = Vec::with_capacity(16);
        for cw in Turn::clockwise() {
            for ccw in Turn::counter_clockwise() {
                models.push(TurnModel::new(format!("{cw}+{ccw}"), vec![cw, ccw]));
            }
        }
        models
    }

    /// The subset of the 16 two-turn candidates that actually produce an
    /// acyclic CDG on `topo` — on a 2-D mesh, exactly the 12 deadlock-free
    /// models of Glass & Ni.
    ///
    /// # Errors
    ///
    /// [`CdgError::NotAGrid`] if the topology's channels carry no grid
    /// directions.
    pub fn valid_models(topo: &Topology) -> Result<Vec<TurnModel>, CdgError> {
        if topo.link_ids().any(|l| topo.link(l).direction.is_none()) {
            return Err(CdgError::NotAGrid);
        }
        let mut valid = Vec::new();
        for model in TurnModel::enumerate_two_turn() {
            let mut cdg = Cdg::build(topo, 1);
            apply(&mut cdg, &model);
            if algo::is_acyclic(cdg.graph()) {
                valid.push(model);
            }
        }
        Ok(valid)
    }
}

impl fmt::Display for TurnModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Removes every CDG edge whose turn the model prohibits. Straight moves
/// and direction-less edges are kept.
pub(crate) fn apply(cdg: &mut Cdg, model: &TurnModel) {
    let doomed: Vec<_> = cdg
        .graph()
        .edges()
        .filter(|&(_, s, d, _)| match cdg.edge_turn(s, d) {
            Some((from, to)) => !model.allows(from, to),
            None => false,
        })
        .map(|(id, _, _, _)| id)
        .collect();
    for e in doomed {
        cdg.graph_mut().remove_edge(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_models_allow_expected_turns() {
        use Direction::*;
        let wf = TurnModel::west_first();
        assert!(!wf.allows(South, West));
        assert!(!wf.allows(North, West));
        assert!(wf.allows(West, North));
        assert!(wf.allows(East, South));

        let nl = TurnModel::north_last();
        assert!(!nl.allows(North, East));
        assert!(!nl.allows(North, West));
        assert!(nl.allows(East, North));
        assert!(nl.allows(West, North));

        let nf = TurnModel::negative_first();
        assert!(!nf.allows(East, South));
        assert!(!nf.allows(North, West));
        assert!(nf.allows(West, North));
        assert!(nf.allows(South, East));
    }

    #[test]
    fn sixteen_candidates() {
        let all = TurnModel::enumerate_two_turn();
        assert_eq!(all.len(), 16);
        // All distinct prohibition sets.
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i].prohibited(), all[j].prohibited());
            }
        }
    }

    #[test]
    fn exactly_twelve_valid_on_mesh() {
        // Glass & Ni's theorem, re-derived computationally; this is also
        // the count of turn-model CDGs the paper explores (§6.2: "12 of
        // these correspond to the DA's derived from D using the turn
        // model").
        let t = Topology::mesh2d(4, 4);
        let valid = TurnModel::valid_models(&t).expect("mesh is a grid");
        assert_eq!(valid.len(), 12);
    }

    #[test]
    fn canonical_models_are_among_the_valid() {
        let t = Topology::mesh2d(3, 3);
        let valid = TurnModel::valid_models(&t).expect("mesh is a grid");
        for m in [
            TurnModel::west_first(),
            TurnModel::north_last(),
            TurnModel::negative_first(),
        ] {
            assert!(
                valid.iter().any(|v| v.prohibited() == m.prohibited()),
                "{} should be valid",
                m.name()
            );
        }
    }

    #[test]
    fn mirrored_models_are_valid_too() {
        let t = Topology::mesh2d(4, 4);
        let valid = TurnModel::valid_models(&t).expect("mesh is a grid");
        for m in [
            TurnModel::west_first(),
            TurnModel::north_last(),
            TurnModel::negative_first(),
        ] {
            let mirror = m.mirrored_y();
            assert!(
                valid.iter().any(|v| {
                    let mut a = v.prohibited().to_vec();
                    let mut b = mirror.prohibited().to_vec();
                    let key = |t: &Turn| (t.from as u8, t.to as u8);
                    a.sort_by_key(key);
                    b.sort_by_key(key);
                    a == b
                }),
                "mirror of {} must be deadlock-free",
                m.name()
            );
        }
        // West-first is symmetric under the mirror.
        let wf = TurnModel::west_first();
        assert_eq!(wf.mirrored_y().prohibited().len(), 2);
    }

    #[test]
    fn ring_is_not_a_grid() {
        let t = Topology::ring(4);
        assert_eq!(TurnModel::valid_models(&t).unwrap_err(), CdgError::NotAGrid);
    }

    #[test]
    #[should_panic(expected = "180 degree")]
    fn uturn_rejected() {
        Turn::new(Direction::North, Direction::South);
    }

    #[test]
    fn turn_display() {
        let t = Turn::new(Direction::North, Direction::East);
        assert_eq!(t.to_string(), "N->E");
    }
}
