//! Routing the H.264 decoder's flow graph (paper §5.2.1, Figure 5-1):
//! fifteen flows between nine modules, dominated by the 120.4 MB/s
//! reference-pixel stream from the off-chip memory controller.
//!
//! Shows the full BSOR pipeline on a real application: CDG exploration
//! with both selectors, per-CDG MCL breakdown, baseline comparison, and
//! a head-to-head simulation of BSOR vs XY near saturation.
//!
//! ```text
//! cargo run --release --example h264_decoder
//! ```

use bsor::{BsorBuilder, SelectorKind};
use bsor_routing::selectors::{DijkstraSelector, MilpSelector};
use bsor_routing::Baseline;
use bsor_sim::{SimConfig, Simulator, TrafficSpec};
use bsor_topology::Topology;
use bsor_workloads::h264_decoder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mesh = Topology::mesh2d(8, 8);
    let workload = h264_decoder(&mesh)?;
    println!("H.264 decoder: {} flows", workload.flows.len());
    for f in workload.flows.iter() {
        println!(
            "  {:>4}  {} -> {}  {:7.3} MB/s",
            f.label.as_deref().unwrap_or("?"),
            f.src,
            f.dst,
            f.demand
        );
    }
    println!(
        "lower bound on MCL (largest flow): {:.1} MB/s",
        workload.flows.max_demand()
    );

    // Per-CDG exploration with the Dijkstra selector.
    let dijkstra = BsorBuilder::new(&mesh, &workload.flows)
        .vcs(2)
        .selector(SelectorKind::Dijkstra(DijkstraSelector::new()))
        .run()?;
    println!("\nper-CDG MCLs (Dijkstra selector):");
    for rec in &dijkstra.explored {
        match &rec.outcome {
            Ok(found) => println!("  {:30} {:8.2} MB/s", rec.cdg, found.mcl),
            Err(e) => println!("  {:30} skipped: {e}", rec.cdg),
        }
    }
    println!("best: {} at {:.2} MB/s", dijkstra.cdg, dijkstra.mcl);

    // The MILP selector on the best few CDGs.
    let milp = BsorBuilder::new(&mesh, &workload.flows)
        .vcs(2)
        .selector(SelectorKind::Milp(MilpSelector::new().with_max_paths(80)))
        .run()?;
    println!("BSOR-MILP best: {} at {:.2} MB/s", milp.cdg, milp.mcl);

    // Baselines.
    println!("\nbaseline MCLs:");
    for (name, baseline) in [
        ("XY", Baseline::XY),
        ("YX", Baseline::YX),
        ("ROMM", Baseline::Romm { seed: 3 }),
        ("Valiant", Baseline::Valiant { seed: 3 }),
    ] {
        let routes = baseline.select(&mesh, &workload.flows, 2)?;
        println!("  {name:8} {:8.2} MB/s", routes.mcl(&mesh, &workload.flows));
    }

    // Head-to-head simulation near the XY saturation point.
    let xy = Baseline::XY.select(&mesh, &workload.flows, 2)?;
    let config = || {
        SimConfig::new(2)
            .with_warmup(2_000)
            .with_measurement(10_000)
    };
    println!("\nsimulated throughput (packets/cycle) at rising offered load:");
    println!("{:>8} {:>10} {:>10}", "offered", "XY", "BSOR");
    for rate in [0.5, 1.0, 2.0, 3.0] {
        let t_xy = Simulator::new(
            &mesh,
            &workload.flows,
            &xy,
            TrafficSpec::proportional(&workload.flows, rate),
            config(),
        )?
        .run();
        let t_bsor = Simulator::new(
            &mesh,
            &workload.flows,
            &milp.routes,
            TrafficSpec::proportional(&workload.flows, rate),
            config(),
        )?
        .run();
        println!(
            "{rate:>8.2} {:>10.4} {:>10.4}",
            t_xy.throughput(),
            t_bsor.throughput()
        );
    }
    Ok(())
}
