//! Name-keyed workload construction — the single home of workload name
//! parsing.
//!
//! Historically each driver kept its own `match name { "transpose" => …,
//! … }` glue; this registry replaces them all. The six paper workloads
//! are pre-registered under the names the sweep grid has always used
//! (`transpose`, `bit-complement`, `shuffle`, `h264`, `perf-model`,
//! `wifi`), and applications can [`WorkloadRegistry::register`] their
//! own generators to make them addressable from every driver at once.

use crate::{
    bit_complement, h264_decoder, performance_modeling, shuffle, transpose, wifi_transmitter,
    Workload, WorkloadError,
};
use bsor_topology::Topology;

/// A workload generator: instantiate the named traffic pattern on a
/// topology.
pub type WorkloadFactory = Box<dyn Fn(&Topology) -> Result<Workload, WorkloadError> + Send + Sync>;

/// Name-keyed registry of workload generators.
///
/// ```
/// use bsor_topology::Topology;
/// use bsor_workloads::WorkloadRegistry;
///
/// let registry = WorkloadRegistry::standard();
/// assert_eq!(registry.names().len(), 6);
/// let mesh = Topology::mesh2d(8, 8);
/// let w = registry.build(&mesh, "transpose").expect("square mesh");
/// assert_eq!(w.flows.len(), 56);
/// assert!(registry.build(&mesh, "nope").is_err());
/// ```
#[derive(Default)]
pub struct WorkloadRegistry {
    entries: Vec<(String, WorkloadFactory)>,
}

impl WorkloadRegistry {
    /// An empty registry.
    pub fn new() -> WorkloadRegistry {
        WorkloadRegistry::default()
    }

    /// The six paper workloads under their sweep-grid names, in paper
    /// order.
    pub fn standard() -> WorkloadRegistry {
        let mut r = WorkloadRegistry::new();
        r.register("transpose", |t: &Topology| transpose(t));
        r.register("bit-complement", |t: &Topology| bit_complement(t));
        r.register("shuffle", |t: &Topology| shuffle(t));
        r.register("h264", |t: &Topology| h264_decoder(t));
        r.register("perf-model", |t: &Topology| performance_modeling(t));
        r.register("wifi", |t: &Topology| wifi_transmitter(t));
        r
    }

    /// Registers (or replaces) a generator under `name`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(&Topology) -> Result<Workload, WorkloadError> + Send + Sync + 'static,
    ) {
        let name = name.into();
        self.entries.retain(|(n, _)| *n != name);
        self.entries.push((name, Box::new(factory)));
    }

    /// The generator registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&WorkloadFactory> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, f)| f)
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Instantiates the workload `name` on `topo`.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::UnknownWorkload`] for unregistered names, or any
    /// error the generator raises (non-square mesh, too few nodes, …).
    pub fn build(&self, topo: &Topology, name: &str) -> Result<Workload, WorkloadError> {
        let factory = self
            .get(name)
            .ok_or_else(|| WorkloadError::UnknownWorkload {
                name: name.to_owned(),
            })?;
        factory(topo)
    }
}

/// Instantiates a workload by registry name (the standard six).
///
/// This is the one-call form of [`WorkloadRegistry::standard`] +
/// [`WorkloadRegistry::build`], kept as the single home of workload name
/// parsing (it used to live, privately, in the bench crate).
///
/// # Errors
///
/// Any [`WorkloadError`], including
/// [`WorkloadError::UnknownWorkload`] for unknown names.
pub fn workload_by_name(topo: &Topology, name: &str) -> Result<Workload, WorkloadError> {
    WorkloadRegistry::standard().build(topo, name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_names_in_paper_order() {
        let r = WorkloadRegistry::standard();
        assert_eq!(
            r.names(),
            vec![
                "transpose",
                "bit-complement",
                "shuffle",
                "h264",
                "perf-model",
                "wifi"
            ]
        );
    }

    #[test]
    fn round_trip_builds_every_standard_workload() {
        let topo = Topology::mesh2d(8, 8);
        let r = WorkloadRegistry::standard();
        for name in r.names() {
            let w = r.build(&topo, name).expect("8x8 supports all six");
            assert!(!w.flows.is_empty(), "{name} has flows");
            w.flows.validate(&topo).expect("valid flows");
        }
    }

    #[test]
    fn unknown_name_is_a_typed_error() {
        let topo = Topology::mesh2d(4, 4);
        let err = workload_by_name(&topo, "nope").unwrap_err();
        assert_eq!(
            err,
            WorkloadError::UnknownWorkload {
                name: "nope".into()
            }
        );
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn generator_errors_pass_through() {
        let topo = Topology::mesh2d(3, 4);
        assert_eq!(
            workload_by_name(&topo, "transpose").unwrap_err(),
            WorkloadError::NotSquare
        );
    }

    #[test]
    fn custom_registration() {
        let mut r = WorkloadRegistry::standard();
        r.register("uniform-pair", |t: &Topology| {
            let mut flows = bsor_flow::FlowSet::new();
            flows.push(
                bsor_topology::NodeId(0),
                bsor_topology::NodeId(t.num_nodes() as u32 - 1),
                10.0,
            );
            Ok(Workload::new("uniform-pair", flows))
        });
        let topo = Topology::mesh2d(4, 4);
        let w = r.build(&topo, "uniform-pair").expect("registered");
        assert_eq!(w.flows.len(), 1);
    }
}
