//! Topology independence (paper §1.1, §3): BSOR's framework only needs
//! an acyclic channel dependence graph, so it runs unchanged on rings
//! and tori where turn models do not apply — ad-hoc cycle breaking
//! handles those.
//!
//! ```text
//! cargo run --release --example custom_topology
//! ```

use bsor_cdg::AcyclicCdg;
use bsor_flow::{FlowNetwork, FlowSet};
use bsor_routing::deadlock;
use bsor_routing::selectors::DijkstraSelector;
use bsor_topology::{NodeId, Topology};

fn route_on(topo: &Topology, name: &str, flows: &FlowSet, vcs: u8) {
    // Turn models need grid directions; ad-hoc breaking works anywhere.
    // Some random derivations disconnect pairs — try a few seeds.
    for seed in 0..20u64 {
        let acyclic = AcyclicCdg::ad_hoc(topo, vcs, seed);
        let net = FlowNetwork::new(topo, &acyclic);
        match DijkstraSelector::new().select(&net, flows) {
            Ok(routes) => {
                assert!(deadlock::is_deadlock_free(topo, &routes, vcs));
                println!(
                    "{name}: seed {seed} -> MCL {:.1} MB/s, mean {:.2} hops, deadlock-free",
                    routes.mcl(topo, flows),
                    routes.mean_hops()
                );
                return;
            }
            Err(e) => {
                println!("{name}: seed {seed} unusable ({e}), retrying");
            }
        }
    }
    panic!("no usable ad-hoc CDG found for {name} in 20 seeds");
}

fn main() {
    // A ring of 8 DSP stages passing data around.
    let ring = Topology::ring(8);
    let mut ring_flows = FlowSet::new();
    for i in 0..8u32 {
        ring_flows.push(NodeId(i), NodeId((i + 3) % 8), 10.0);
    }
    route_on(&ring, "ring-8", &ring_flows, 2);

    // A 4x4 torus with wraparound links: turn models fail here (the
    // paper's Lemma 1 still applies, so we break cycles ad hoc).
    let torus = Topology::torus2d(4, 4);
    let mut torus_flows = FlowSet::new();
    for i in 0..16u32 {
        torus_flows.push(NodeId(i), NodeId((i + 7) % 16), 10.0);
    }
    route_on(&torus, "torus-4x4", &torus_flows, 2);

    // The same flows on a 4x4 mesh for comparison.
    let mesh = Topology::mesh2d(4, 4);
    route_on(&mesh, "mesh-4x4", &torus_flows, 2);
}
