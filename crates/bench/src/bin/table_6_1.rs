//! Regenerates **Table 6.1**: "Finding the routes with the minimum MCL
//! (in MB/second) by exploring different acyclic CDGs using BSOR_MILP."
//!
//! Rows are the six workloads, columns the five acyclic CDGs
//! (paper-oriented turn models plus two ad-hoc derivations).
//!
//! ```text
//! cargo run -p bsor-bench --release --bin table_6_1 [--quick] [--csv]
//! ```

use bsor::SelectorKind;
use bsor_bench::{csv_mode, fmt_row, mcl_for, run_mode, standard_mesh, table_cdgs, table_milp};
use bsor_workloads::all_six;

fn main() {
    let topo = standard_mesh();
    let workloads = all_six(&topo).expect("8x8 supports all workloads");
    let cdgs = table_cdgs();
    let csv = csv_mode();
    let mode = run_mode();

    println!("Table 6.1: minimum MCL (MB/s) per acyclic CDG, BSOR_MILP selector");
    let mut header: Vec<String> = vec!["Example".into()];
    header.extend(cdgs.iter().map(|(n, _)| n.clone()));
    let widths = [16usize, 12, 12, 14, 10, 10];
    if csv {
        println!("{}", header.join(","));
    } else {
        println!("{}", fmt_row(&header, &widths));
    }
    for w in &workloads {
        let mut cells: Vec<String> = vec![w.name.clone()];
        for (_, strategy) in &cdgs {
            let cell = match mcl_for(&topo, w, 2, strategy, SelectorKind::Milp(table_milp(mode))) {
                Ok(mcl) => format!("{mcl:.2}"),
                Err(e) => format!("({e})"),
            };
            cells.push(cell);
        }
        if csv {
            println!("{}", cells.join(","));
        } else {
            println!("{}", fmt_row(&cells, &widths));
        }
    }
}
