//! Crate-level smoke test: every cycle-breaking strategy yields a
//! genuinely acyclic CDG on a 4×4 mesh (the deadlock-freedom
//! foundation, paper Lemma 1).

use bsor_cdg::{AcyclicCdg, Cdg, TurnModel};
use bsor_netgraph::algo;
use bsor_topology::Topology;

#[test]
fn full_cdg_has_one_vertex_per_channel() {
    let mesh = Topology::mesh2d(4, 4);
    let cdg = Cdg::build(&mesh, 2);
    // 2 * (4*3 + 4*3) directed links, times 2 VCs.
    assert_eq!(cdg.graph().node_count(), 48 * 2);
}

#[test]
fn every_strategy_breaks_all_cycles_on_4x4() {
    let mesh = Topology::mesh2d(4, 4);
    let mut derived = vec![
        AcyclicCdg::turn_model(&mesh, 2, &TurnModel::west_first()).expect("west-first"),
        AcyclicCdg::turn_model(&mesh, 2, &TurnModel::north_last()).expect("north-last"),
        AcyclicCdg::turn_model(&mesh, 2, &TurnModel::negative_first()).expect("negative-first"),
        AcyclicCdg::ad_hoc(&mesh, 2, 11),
        AcyclicCdg::ad_hoc_routable(&mesh, 2, 11).expect("grid"),
        AcyclicCdg::random_order(&mesh, 2, 11),
        AcyclicCdg::escalating_vc(&mesh, 2, &TurnModel::west_first()).expect("escalating"),
    ];
    for model in TurnModel::valid_models(&mesh).expect("grid enumerates models") {
        derived.push(AcyclicCdg::turn_model(&mesh, 2, &model).expect("enumerated model"));
    }
    for acyclic in &derived {
        assert!(
            algo::is_acyclic(acyclic.graph()),
            "strategy {:?} left a cycle in the CDG",
            acyclic.name()
        );
    }
}
