//! Dense two-phase primal simplex.
//!
//! The solver accepts a [`Model`] in natural form, internally:
//!
//! 1. substitutes out fixed variables (`lo == hi`),
//! 2. shifts remaining variables to `x' = x - lo >= 0`,
//! 3. adds explicit upper-bound rows for finite upper bounds (unless the
//!    model marked them implied),
//! 4. runs phase 1 with artificial variables to find a basic feasible
//!    point, drives artificials out of the basis, and
//! 5. runs phase 2 on the original objective.
//!
//! Dantzig pricing is used with an automatic switch to Bland's rule when
//! the objective stalls, which guarantees termination on degenerate
//! problems.

use crate::problem::{Cmp, LpError, Model, Solution};

/// Pivot magnitude threshold.
const EPS_PIVOT: f64 = 1e-9;
/// Ratio-test inclusion threshold: rows whose coefficient is below the
/// stable-pivot magnitude are excluded from the step-length minimum
/// (their post-pivot drift is clamped away instead — see
/// [`Tableau::pivot`]).
const EPS_RATIO: f64 = EPS_PIVOT;
/// Reduced-cost optimality tolerance.
const EPS_COST: f64 = 1e-9;
/// Reduced-cost threshold under Bland's rule. Deliberately looser than
/// [`EPS_COST`]: Bland mode exists to break degenerate cycles, and
/// noise-level reduced costs (which Dantzig pricing would also chase)
/// can sustain a float-noise livelock forever. Stopping at a 1e-7
/// reduced cost concedes an objective error far below the solution
/// certification tolerance.
const EPS_COST_BLAND: f64 = 1e-7;
/// Phase-1 feasibility tolerance.
const EPS_FEAS: f64 = 1e-7;
/// Iterations of unchanged objective before switching to Bland's rule.
const STALL_LIMIT: usize = 64;
/// Scale of the deterministic right-hand-side perturbation.
///
/// Highly degenerate LPs (many identical zero right-hand sides — the
/// oblivious-routing duals have hundreds) can pin the simplex at a
/// degenerate vertex for an astronomical number of zero-step pivots;
/// Bland's rule only guarantees *finite* escape, not a practical one.
/// Perturbing each row by a tiny distinct amount breaks the ties so
/// every pivot makes real progress. The induced solution error
/// (~1e-9 per row) is far below the 1e-6-scale certification tolerance
/// applied to the extracted solution.
const PERTURB: f64 = 1e-9;

struct Tableau {
    /// Row-major coefficient matrix, `rows x (cols + 1)`, last column = rhs.
    a: Vec<f64>,
    rows: usize,
    cols: usize,
    /// Reduced-cost row, length `cols + 1`; last entry is `-objective`.
    cost: Vec<f64>,
    /// Basic column of each row.
    basis: Vec<usize>,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * (self.cols + 1) + c]
    }

    #[inline]
    fn rhs(&self, r: usize) -> f64 {
        self.at(r, self.cols)
    }

    /// Gauss-Jordan pivot on (row, col), updating the cost row too.
    fn pivot(&mut self, row: usize, col: usize) {
        let w = self.cols + 1;
        let piv = self.a[row * w + col];
        debug_assert!(piv.abs() > EPS_PIVOT, "pivot too small");
        let inv = 1.0 / piv;
        for j in 0..w {
            self.a[row * w + j] *= inv;
        }
        // Exact unit column for numerical hygiene.
        self.a[row * w + col] = 1.0;
        for r in 0..self.rows {
            if r == row {
                continue;
            }
            let f = self.a[r * w + col];
            if f != 0.0 {
                for j in 0..w {
                    self.a[r * w + j] -= f * self.a[row * w + j];
                }
                self.a[r * w + col] = 0.0;
            }
        }
        let f = self.cost[col];
        if f != 0.0 {
            for j in 0..w {
                self.cost[j] -= f * self.a[row * w + j];
            }
            self.cost[col] = 0.0;
        }
        // Snap ratio-test-slack-sized negative right-hand sides back to
        // zero: they are bounded noise from the Harris slack, and left
        // alone they make the ratio test treat the row as a zero-step
        // pivot magnet, compounding the error across later pivots.
        for r in 0..self.rows {
            let rhs = self.a[r * w + self.cols];
            if rhs < 0.0 && rhs > -1e-8 {
                self.a[r * w + self.cols] = 0.0;
            }
        }
        self.basis[row] = col;
    }

    /// One simplex iteration. `allowed` filters candidate entering columns.
    /// Returns `Ok(true)` if a pivot happened, `Ok(false)` at optimality.
    fn step(&mut self, allowed: &[bool], bland: bool) -> Result<bool, LpError> {
        // Entering column.
        let mut enter: Option<usize> = None;
        if bland {
            for (j, &ok) in allowed.iter().enumerate().take(self.cols) {
                if ok && self.cost[j] < -EPS_COST_BLAND {
                    enter = Some(j);
                    break;
                }
            }
        } else {
            let mut best = -EPS_COST;
            for (j, &ok) in allowed.iter().enumerate().take(self.cols) {
                if ok && self.cost[j] < best {
                    best = self.cost[j];
                    enter = Some(j);
                }
            }
        }
        let Some(col) = enter else {
            return Ok(false);
        };
        // Two-pass (Harris-style) ratio test. Pass 1 bounds the step
        // length over EVERY row with a meaningfully positive coefficient
        // (see [`EPS_RATIO`]) — excluding small coefficients from the
        // minimum lets a pivot drive their rows negative, an error that
        // compounds across pivots until the solver returns super-optimal
        // garbage. A small slack `delta` keeps degenerate noise from
        // dictating the bound. Pass 2 picks, among rows within the
        // bound, the largest coefficient for numerical stability —
        // except under Bland's rule, where the lowest basis index must
        // win for the anti-cycling guarantee.
        // Under Bland's rule the eligibility set must be EXACTLY the
        // min-ratio rows (the anti-cycling proof breaks on a slackened
        // set), so the slack applies only to Dantzig pricing.
        const DELTA: f64 = 1e-9;
        let delta = if bland { 0.0 } else { DELTA };
        let mut theta = f64::INFINITY;
        for r in 0..self.rows {
            let arc = self.at(r, col);
            if arc > EPS_RATIO {
                theta = theta.min((self.rhs(r).max(0.0) + delta) / arc);
            }
        }
        if theta.is_infinite() {
            return Err(LpError::Unbounded);
        }
        let mut leave: Option<usize> = None;
        for r in 0..self.rows {
            let arc = self.at(r, col);
            if arc > EPS_RATIO && self.rhs(r).max(0.0) / arc <= theta {
                let better = match leave {
                    None => true,
                    Some(lr) => {
                        if bland {
                            self.basis[r] < self.basis[lr]
                        } else {
                            arc > self.at(lr, col)
                        }
                    }
                };
                if better {
                    leave = Some(r);
                }
            }
        }
        let Some(row) = leave else {
            return Err(LpError::Unbounded);
        };
        self.pivot(row, col);
        Ok(true)
    }

    fn run(&mut self, allowed: &[bool], max_iters: usize) -> Result<(), LpError> {
        let mut guard = StallGuard::new();
        for _ in 0..max_iters {
            if !self.step(allowed, guard.bland())? {
                return Ok(());
            }
            guard.observe(-self.cost[self.cols]);
        }
        Err(LpError::IterationLimit)
    }
}

/// Anti-cycling policy for [`Tableau::run`]: tracks objective progress
/// and decides when to price with Bland's rule instead of Dantzig's.
///
/// Progress is judged with a tolerance *relative* to the objective
/// magnitude (`1e-12 * (1 + |obj|)`), so a 1e-13 wiggle on a 1e9-scale
/// objective still counts as a stall. Once engaged, Bland mode is
/// sticky: it stays on until a strict improvement beyond the tolerance,
/// rather than disengaging after one tiny numerical twitch (which could
/// re-enter the same degenerate cycle).
struct StallGuard {
    last_obj: f64,
    stall: usize,
    bland: bool,
}

impl StallGuard {
    fn new() -> StallGuard {
        StallGuard {
            last_obj: f64::INFINITY,
            stall: 0,
            bland: false,
        }
    }

    /// Whether the next pivot should use Bland's rule.
    fn bland(&self) -> bool {
        self.bland
    }

    /// Records the objective after a pivot (minimization sense).
    fn observe(&mut self, obj: f64) {
        let tol = 1e-12 * (1.0 + obj.abs());
        if self.last_obj - obj > tol {
            // Strict improvement: progress is real, Dantzig is safe again.
            self.stall = 0;
            self.bland = false;
        } else {
            self.stall += 1;
            if self.stall >= STALL_LIMIT {
                self.bland = true;
            }
        }
        self.last_obj = obj;
    }
}

/// A prepared constraint row: sparse coefficients over structural
/// columns, the comparison sense, and the shifted right-hand side.
type PreparedRow = (Vec<(usize, f64)>, Cmp, f64);

struct Prepared {
    /// Map model variable index -> structural column (None if fixed).
    col_of_var: Vec<Option<usize>>,
    /// Lower bound shift per model variable.
    shift: Vec<f64>,
    /// Objective constant accumulated from fixed/shifted variables.
    obj_const: f64,
    /// Structural column count.
    n_struct: usize,
    /// Rows as (coeffs over structural cols, cmp, rhs).
    rows: Vec<PreparedRow>,
    /// Objective over structural columns.
    c: Vec<f64>,
}

fn prepare(model: &Model) -> Result<Prepared, LpError> {
    let nv = model.vars.len();
    let mut col_of_var = vec![None; nv];
    let mut shift = vec![0.0; nv];
    let mut obj_const = 0.0;
    let mut n_struct = 0usize;
    for (i, v) in model.vars.iter().enumerate() {
        // The x' = x - lo shift below is sign-agnostic, so any finite
        // lower bound is fine; only NaN / infinite lo or inverted
        // bounds are malformed.
        if !(v.lo.is_finite() && v.hi >= v.lo) {
            return Err(LpError::InvalidModel(format!(
                "variable x{i} has invalid bounds [{}, {}]",
                v.lo, v.hi
            )));
        }
        shift[i] = v.lo;
        obj_const += v.obj * v.lo;
        if v.hi - v.lo > 0.0 {
            col_of_var[i] = Some(n_struct);
            n_struct += 1;
        }
    }
    let mut c = vec![0.0; n_struct];
    for (i, v) in model.vars.iter().enumerate() {
        if let Some(j) = col_of_var[i] {
            c[j] = v.obj;
        }
    }
    let mut rows: Vec<PreparedRow> = Vec::new();
    for con in &model.constraints {
        let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(con.terms.len());
        let mut rhs = con.rhs;
        for &(v, coef) in &con.terms {
            rhs -= coef * shift[v.index()];
            if let Some(j) = col_of_var[v.index()] {
                coeffs.push((j, coef));
            }
        }
        rows.push((coeffs, con.cmp, rhs));
    }
    // Upper-bound rows for finite, non-implied upper bounds.
    for (i, v) in model.vars.iter().enumerate() {
        if let Some(j) = col_of_var[i] {
            let span = v.hi - v.lo;
            if span.is_finite() && !v.ub_implied {
                rows.push((vec![(j, 1.0)], Cmp::Le, span));
            }
        }
    }
    Ok(Prepared {
        col_of_var,
        shift,
        obj_const,
        n_struct,
        rows,
        c,
    })
}

/// Solves the continuous relaxation of `model`.
///
/// # Errors
///
/// [`LpError::Infeasible`], [`LpError::Unbounded`],
/// [`LpError::IterationLimit`], or [`LpError::InvalidModel`].
pub fn solve(model: &Model) -> Result<Solution, LpError> {
    let prep = prepare(model)?;
    let m = prep.rows.len();
    let n = prep.n_struct;

    if m == 0 {
        // Unconstrained: each variable sits at whichever finite bound
        // minimizes the objective; positive-cost unbounded-above vars sit
        // at lo, negative-cost ones are unbounded.
        let mut values = vec![0.0; model.vars.len()];
        let mut objective = 0.0;
        for (i, v) in model.vars.iter().enumerate() {
            let x = if v.obj >= 0.0 {
                v.lo
            } else if v.hi.is_finite() {
                v.hi
            } else {
                return Err(LpError::Unbounded);
            };
            values[i] = x;
            objective += v.obj * x;
        }
        return Ok(Solution { values, objective });
    }

    // Count auxiliary columns.
    let mut n_slack = 0usize;
    let mut n_art = 0usize;
    for (_, cmp, rhs) in &prep.rows {
        let flipped = *rhs < 0.0;
        let eff = match (cmp, flipped) {
            (Cmp::Le, false) | (Cmp::Ge, true) => Cmp::Le,
            (Cmp::Le, true) | (Cmp::Ge, false) => Cmp::Ge,
            (Cmp::Eq, _) => Cmp::Eq,
        };
        match eff {
            Cmp::Le => n_slack += 1,
            Cmp::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            Cmp::Eq => n_art += 1,
        }
    }
    let cols = n + n_slack + n_art;
    let w = cols + 1;
    let mut a = vec![0.0; m * w];
    let mut basis = vec![0usize; m];
    let art_start = n + n_slack;
    let mut next_slack = n;
    let mut next_art = art_start;

    for (r, (coeffs, cmp, rhs)) in prep.rows.iter().enumerate() {
        let sign = if *rhs < 0.0 { -1.0 } else { 1.0 };
        for &(j, coef) in coeffs {
            a[r * w + j] += sign * coef;
        }
        // Distinct per-row offsets (golden-ratio spread, deterministic)
        // break degenerate ratio-test ties; see [`PERTURB`].
        let jitter = PERTURB * (1.0 + (r as f64 * 0.618_033_988_749_894_9).fract());
        a[r * w + cols] = sign * rhs + jitter;
        let eff = match (cmp, sign < 0.0) {
            (Cmp::Le, false) | (Cmp::Ge, true) => Cmp::Le,
            (Cmp::Le, true) | (Cmp::Ge, false) => Cmp::Ge,
            (Cmp::Eq, _) => Cmp::Eq,
        };
        match eff {
            Cmp::Le => {
                a[r * w + next_slack] = 1.0;
                basis[r] = next_slack;
                next_slack += 1;
            }
            Cmp::Ge => {
                a[r * w + next_slack] = -1.0;
                next_slack += 1;
                a[r * w + next_art] = 1.0;
                basis[r] = next_art;
                next_art += 1;
            }
            Cmp::Eq => {
                a[r * w + next_art] = 1.0;
                basis[r] = next_art;
                next_art += 1;
            }
        }
    }

    let mut t = Tableau {
        a,
        rows: m,
        cols,
        cost: vec![0.0; w],
        basis,
    };

    let max_iters = 200 * (m + cols) + 20_000;

    // Phase 1: minimize sum of artificials.
    if n_art > 0 {
        for j in art_start..cols {
            t.cost[j] = 1.0;
        }
        // Make the cost row consistent with the basic artificials.
        for r in 0..m {
            if t.basis[r] >= art_start {
                for j in 0..w {
                    t.cost[j] -= t.a[r * w + j];
                }
            }
        }
        let allowed: Vec<bool> = (0..cols).map(|_| true).collect();
        t.run(&allowed, max_iters)?;
        let phase1_obj = -t.cost[cols];
        if phase1_obj > EPS_FEAS {
            return Err(LpError::Infeasible);
        }
        // Drive any remaining basic artificials out of the basis.
        let mut r = 0;
        let mut live_rows: Vec<bool> = vec![true; m];
        while r < m {
            if live_rows[r] && t.basis[r] >= art_start {
                let mut pivoted = false;
                for j in 0..art_start {
                    if t.at(r, j).abs() > EPS_PIVOT {
                        t.pivot(r, j);
                        pivoted = true;
                        break;
                    }
                }
                if !pivoted {
                    // Redundant row: zero it so it never constrains again.
                    for j in 0..w {
                        t.a[r * w + j] = 0.0;
                    }
                    live_rows[r] = false;
                }
            }
            r += 1;
        }
    }

    // Phase 2: original objective; artificial columns banned.
    for j in 0..w {
        t.cost[j] = 0.0;
    }
    for (j, &cj) in prep.c.iter().enumerate() {
        t.cost[j] = cj;
    }
    for r in 0..m {
        let b = t.basis[r];
        let cb = if b < n { prep.c[b] } else { 0.0 };
        if cb != 0.0 {
            for j in 0..w {
                t.cost[j] -= cb * t.a[r * w + j];
            }
        }
    }
    let allowed: Vec<bool> = (0..cols).map(|j| j < art_start).collect();
    t.run(&allowed, max_iters)?;

    // Extract the solution.
    let mut xs = vec![0.0; n];
    for r in 0..m {
        let b = t.basis[r];
        if b < n {
            xs[b] = t.rhs(r).max(0.0);
        }
    }
    // Certify the claimed optimum actually satisfies the model. A long
    // degenerate pivot sequence can corrupt the tableau enough that
    // "optimality" is declared at an infeasible point; better to fail
    // loudly than hand back a bogus objective.
    for (coeffs, cmp, rhs) in &prep.rows {
        let lhs: f64 = coeffs.iter().map(|&(j, coef)| coef * xs[j]).sum();
        let scale = 1.0 + rhs.abs() + coeffs.iter().map(|&(_, c)| c.abs()).sum::<f64>();
        let tol = 1e-6 * scale;
        let violated = match cmp {
            Cmp::Le => lhs > rhs + tol,
            Cmp::Ge => lhs < rhs - tol,
            Cmp::Eq => (lhs - rhs).abs() > tol,
        };
        if violated {
            return Err(LpError::IterationLimit);
        }
    }
    let mut values = vec![0.0; model.vars.len()];
    let mut objective = prep.obj_const;
    for (i, v) in model.vars.iter().enumerate() {
        let mut x = match prep.col_of_var[i] {
            Some(j) => prep.shift[i] + xs[j],
            None => prep.shift[i],
        };
        // Snap values sitting within perturbation distance of a bound
        // exactly onto it, undoing the right-hand-side jitter for
        // callers that compare against bounds.
        const SNAP: f64 = 8.0 * PERTURB;
        if (x - v.lo).abs() <= SNAP {
            x = v.lo;
        } else if v.hi.is_finite() && (v.hi - x).abs() <= SNAP {
            x = v.hi;
        }
        values[i] = x;
        objective += v.obj * (x - prep.shift[i]);
    }
    Ok(Solution { values, objective })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Model, VarKind};

    fn cont(m: &mut Model, hi: f64, obj: f64) -> crate::problem::VarId {
        m.add_var(VarKind::Continuous, 0.0, hi, obj)
    }

    #[test]
    fn textbook_production_problem() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (opt 36 at (2,6))
        let mut m = Model::minimize();
        let x = cont(&mut m, f64::INFINITY, -3.0);
        let y = cont(&mut m, f64::INFINITY, -5.0);
        m.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.0);
        m.add_constraint(vec![(y, 2.0)], Cmp::Le, 12.0);
        m.add_constraint(vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let s = solve(&m).expect("feasible bounded LP");
        assert!((s.objective() + 36.0).abs() < 1e-7);
        assert!((s.value(x) - 2.0).abs() < 1e-7);
        assert!((s.value(y) - 6.0).abs() < 1e-7);
    }

    #[test]
    fn equality_constraints_need_phase1() {
        // min x + y s.t. x + y = 2, x - y = 0  => x = y = 1
        let mut m = Model::minimize();
        let x = cont(&mut m, f64::INFINITY, 1.0);
        let y = cont(&mut m, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0);
        m.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Eq, 0.0);
        let s = solve(&m).expect("feasible");
        assert!((s.value(x) - 1.0).abs() < 1e-7);
        assert!((s.value(y) - 1.0).abs() < 1e-7);
        assert!((s.objective() - 2.0).abs() < 1e-7);
    }

    #[test]
    fn ge_constraints() {
        // min 2x + 3y s.t. x + y >= 10, x >= 3  => (7,3)? cost 2*7+3*3=23 vs x=10,y=0 cost 20.
        let mut m = Model::minimize();
        let x = cont(&mut m, f64::INFINITY, 2.0);
        let y = cont(&mut m, f64::INFINITY, 3.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 10.0);
        m.add_constraint(vec![(x, 1.0)], Cmp::Ge, 3.0);
        let s = solve(&m).expect("feasible");
        assert!((s.objective() - 20.0).abs() < 1e-7);
        assert!((s.value(x) - 10.0).abs() < 1e-7);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::minimize();
        let x = cont(&mut m, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        m.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(solve(&m).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::minimize();
        let x = cont(&mut m, f64::INFINITY, -1.0);
        let y = cont(&mut m, f64::INFINITY, 0.0);
        m.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Le, 1.0);
        assert_eq!(solve(&m).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn respects_upper_bounds() {
        // min -x, x <= 2.5 via bound only.
        let mut m = Model::minimize();
        let x = m.add_var(VarKind::Continuous, 0.0, 2.5, -1.0);
        let s = solve(&m).expect("feasible");
        assert!((s.value(x) - 2.5).abs() < 1e-7);
    }

    #[test]
    fn respects_lower_bounds_via_shift() {
        // min x with x in [1.5, 4]
        let mut m = Model::minimize();
        let x = m.add_var(VarKind::Continuous, 1.5, 4.0, 1.0);
        m.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.0);
        let s = solve(&m).expect("feasible");
        assert!((s.value(x) - 1.5).abs() < 1e-7);
        assert!((s.objective() - 1.5).abs() < 1e-7);
    }

    #[test]
    fn fixed_variables_substituted() {
        // x fixed at 2; min y s.t. y >= 3x => y = 6.
        let mut m = Model::minimize();
        let x = m.add_var(VarKind::Continuous, 2.0, 2.0, 0.0);
        let y = cont(&mut m, f64::INFINITY, 1.0);
        m.add_constraint(vec![(y, 1.0), (x, -3.0)], Cmp::Ge, 0.0);
        let s = solve(&m).expect("feasible");
        assert!((s.value(x) - 2.0).abs() < 1e-9);
        assert!((s.value(y) - 6.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let mut m = Model::minimize();
        let x = cont(&mut m, f64::INFINITY, -0.75);
        let y = cont(&mut m, f64::INFINITY, 150.0);
        let z = cont(&mut m, f64::INFINITY, -0.02);
        let u = cont(&mut m, f64::INFINITY, 6.0);
        // Beale's cycling example.
        m.add_constraint(
            vec![(x, 0.25), (y, -60.0), (z, -0.04), (u, 9.0)],
            Cmp::Le,
            0.0,
        );
        m.add_constraint(
            vec![(x, 0.5), (y, -90.0), (z, -0.02), (u, 3.0)],
            Cmp::Le,
            0.0,
        );
        m.add_constraint(vec![(z, 1.0)], Cmp::Le, 1.0);
        let s = solve(&m).expect("Beale example has optimum -0.05");
        assert!((s.objective() + 0.05).abs() < 1e-6);
    }

    #[test]
    fn redundant_equalities_handled() {
        // Duplicate equality rows create basic artificials at zero.
        let mut m = Model::minimize();
        let x = cont(&mut m, f64::INFINITY, 1.0);
        let y = cont(&mut m, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0);
        let s = solve(&m).expect("feasible despite redundancy");
        assert!((s.value(x) + s.value(y) - 2.0).abs() < 1e-7);
    }

    #[test]
    fn negative_rhs_rows_normalized() {
        // -x <= -3  (i.e. x >= 3), min x.
        let mut m = Model::minimize();
        let x = cont(&mut m, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, -1.0)], Cmp::Le, -3.0);
        let s = solve(&m).expect("feasible");
        assert!((s.value(x) - 3.0).abs() < 1e-7);
    }

    #[test]
    fn no_constraints_uses_bounds() {
        let mut m = Model::minimize();
        let x = m.add_var(VarKind::Continuous, 0.5, 2.0, 3.0);
        let y = m.add_var(VarKind::Continuous, 0.0, 7.0, -1.0);
        let s = solve(&m).expect("bounded by variable bounds");
        assert!((s.value(x) - 0.5).abs() < 1e-9);
        assert!((s.value(y) - 7.0).abs() < 1e-9);
        assert!((s.objective() - (1.5 - 7.0)).abs() < 1e-9);
    }

    #[test]
    fn negative_lower_bounds_via_shift() {
        // min x with x in [-5, 3]: the shift x' = x + 5 handles the
        // negative bound; optimum sits at the lower bound.
        let mut m = Model::minimize();
        let x = m.add_var(VarKind::Continuous, -5.0, 3.0, 1.0);
        m.add_constraint(vec![(x, 1.0)], Cmp::Le, 3.0);
        let s = solve(&m).expect("feasible");
        assert!((s.value(x) + 5.0).abs() < 1e-7);
        assert!((s.objective() + 5.0).abs() < 1e-7);
    }

    #[test]
    fn negative_bounds_with_constraints() {
        // Unrestricted-in-sign auxiliaries, the AC-dual shape:
        // min p1 - p2 s.t. p1 - p2 >= -4, p in [-10, 10]^2 => -4.
        let mut m = Model::minimize();
        let p1 = m.add_var(VarKind::Continuous, -10.0, 10.0, 1.0);
        let p2 = m.add_var(VarKind::Continuous, -10.0, 10.0, -1.0);
        m.add_constraint(vec![(p1, 1.0), (p2, -1.0)], Cmp::Ge, -4.0);
        let s = solve(&m).expect("feasible");
        assert!((s.objective() + 4.0).abs() < 1e-7);
        assert!((s.value(p1) - s.value(p2) + 4.0).abs() < 1e-7);
    }

    #[test]
    fn negative_bounds_unconstrained_fast_path() {
        // m == 0 path: each variable at its objective-minimizing bound.
        let mut m = Model::minimize();
        let x = m.add_var(VarKind::Continuous, -2.0, 4.0, 3.0);
        let y = m.add_var(VarKind::Continuous, -7.0, -1.0, -1.0);
        let s = solve(&m).expect("bounded by variable bounds");
        assert!((s.value(x) + 2.0).abs() < 1e-9);
        assert!((s.value(y) + 1.0).abs() < 1e-9);
        assert!((s.objective() - (-6.0 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn nan_and_neg_infinite_bounds_still_rejected() {
        // Bypass add_var's assertions via direct construction to check
        // prepare()'s own validation.
        let mut m = Model::minimize();
        let x = m.add_var(VarKind::Continuous, 0.0, 1.0, 1.0);
        m.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        m.vars[0].lo = f64::NEG_INFINITY;
        assert!(matches!(
            solve(&m).unwrap_err(),
            LpError::InvalidModel(msg) if msg.contains("x0")
        ));
        m.vars[0].lo = f64::NAN;
        assert!(matches!(solve(&m).unwrap_err(), LpError::InvalidModel(_)));
    }

    #[test]
    fn stall_guard_relative_tolerance_on_large_objectives() {
        // A 1e-13-relative wiggle on a 1e9-scale objective is noise, not
        // progress: the guard must keep counting toward Bland's rule.
        // (The old absolute 1e-12 check classified any 1e-4 absolute
        // change on that scale as progress and never engaged Bland.)
        let mut g = StallGuard::new();
        let mut obj = 1e9;
        g.observe(obj);
        for _ in 0..STALL_LIMIT {
            obj -= 1e-4; // far below 1e-12 * (1 + 1e9)
            g.observe(obj);
        }
        assert!(g.bland(), "sub-tolerance wiggles must engage Bland");
    }

    #[test]
    fn stall_guard_is_sticky_until_strict_improvement() {
        let mut g = StallGuard::new();
        g.observe(100.0);
        for _ in 0..STALL_LIMIT {
            g.observe(100.0);
        }
        assert!(g.bland());
        // One more exactly-degenerate pivot: must stay in Bland mode
        // (the old logic needed only a 2e-12 absolute dip to flip back).
        g.observe(100.0 - 2e-12);
        assert!(g.bland(), "Bland must persist through degenerate pivots");
        // A strict improvement releases it.
        g.observe(99.0);
        assert!(!g.bland());
        // ... and the stall counter restarted from zero.
        g.observe(99.0);
        assert!(!g.bland());
    }

    #[test]
    fn degenerate_scaled_objective_terminates() {
        // Beale's cycling example with the objective scaled by 1e9 so
        // every float wiggle is large in absolute terms: the relative
        // stall tolerance must still spot degeneracy and engage Bland's
        // rule instead of cycling to IterationLimit.
        let k = 1e9;
        let mut m = Model::minimize();
        let x = cont(&mut m, f64::INFINITY, -0.75 * k);
        let y = cont(&mut m, f64::INFINITY, 150.0 * k);
        let z = cont(&mut m, f64::INFINITY, -0.02 * k);
        let u = cont(&mut m, f64::INFINITY, 6.0 * k);
        m.add_constraint(
            vec![(x, 0.25), (y, -60.0), (z, -0.04), (u, 9.0)],
            Cmp::Le,
            0.0,
        );
        m.add_constraint(
            vec![(x, 0.5), (y, -90.0), (z, -0.02), (u, 3.0)],
            Cmp::Le,
            0.0,
        );
        m.add_constraint(vec![(z, 1.0)], Cmp::Le, 1.0);
        let s = solve(&m).expect("scaled Beale example has optimum -0.05e9");
        assert!((s.objective() / k + 0.05).abs() < 1e-6);
    }

    #[test]
    fn minimax_linearization_pattern() {
        // The BSOR objective shape: min U s.t. loads <= U.
        // Loads: l1 = 3a, l2 = 3(1-a) for a in [0,1]: optimum U = 1.5.
        let mut m = Model::minimize();
        let u = cont(&mut m, f64::INFINITY, 1.0);
        let a = m.add_var(VarKind::Continuous, 0.0, 1.0, 0.0);
        m.add_constraint(vec![(a, 3.0), (u, -1.0)], Cmp::Le, 0.0);
        m.add_constraint(vec![(a, -3.0), (u, -1.0)], Cmp::Le, -3.0);
        let s = solve(&m).expect("feasible");
        assert!((s.objective() - 1.5).abs() < 1e-7);
        assert!((s.value(a) - 0.5).abs() < 1e-7);
    }
}
