//! Fixed-seed regression tests pinning the engine's observable behavior.
//!
//! The numbers below were captured from the seed engine (PR 1's
//! HashMap-based hot path) on the paper's 8×8 transpose scenario. The
//! flattened engine must reproduce them exactly: the arena refactor is a
//! data-layout change, not a behavioral one.

use bsor::{BsorBuilder, SelectorKind};
use bsor_routing::selectors::DijkstraSelector;
use bsor_routing::Baseline;
use bsor_sim::{SimConfig, SimReport, Simulator, TrafficSpec};
use bsor_topology::Topology;
use bsor_workloads::transpose;

fn transpose_report(algo: &str, rate: f64) -> SimReport {
    let topo = Topology::mesh2d(8, 8);
    let w = transpose(&topo).expect("8x8 is square");
    let routes = match algo {
        "xy" => Baseline::XY.select(&topo, &w.flows, 2).expect("xy"),
        "bsor" => {
            BsorBuilder::new(&topo, &w.flows)
                .vcs(2)
                .selector(SelectorKind::Dijkstra(DijkstraSelector::new()))
                .run()
                .expect("routable")
                .routes
        }
        _ => unreachable!(),
    };
    let traffic = TrafficSpec::proportional(&w.flows, rate);
    let config = SimConfig::new(2)
        .with_warmup(2_000)
        .with_measurement(10_000);
    let mut sim = Simulator::new(&topo, &w.flows, &routes, traffic, config).expect("valid");
    sim.run()
}

#[derive(Debug, PartialEq)]
struct Digest {
    generated: u64,
    delivered: u64,
    delivered_flits: u64,
    latency_sum: u64,
    latency_count: u64,
    latency_max: u64,
    link_flits_sum: u64,
    link_flits_max: u64,
    deadlocked: bool,
}

fn digest(r: &SimReport) -> Digest {
    Digest {
        generated: r.generated_packets,
        delivered: r.delivered_packets,
        delivered_flits: r.delivered_flits,
        latency_sum: r.per_flow.iter().map(|f| f.latency_sum).sum(),
        latency_count: r.per_flow.iter().map(|f| f.latency_count).sum(),
        latency_max: r.max_latency(),
        link_flits_sum: r.link_flits.iter().sum(),
        link_flits_max: r.max_link_flits(),
        deadlocked: r.deadlocked,
    }
}

#[test]
fn golden_8x8_transpose_xy() {
    let d = digest(&transpose_report("xy", 0.8));
    assert_eq!(
        d,
        Digest {
            generated: 8099,
            delivered: 8091,
            delivered_flits: 64736,
            latency_sum: 180026,
            latency_count: 8077,
            latency_max: 382,
            link_flits_sum: 388806,
            link_flits_max: 7962,
            deadlocked: false,
        }
    );
}

#[test]
fn golden_8x8_transpose_bsor_dijkstra() {
    let d = digest(&transpose_report("bsor", 0.8));
    assert_eq!(
        d,
        Digest {
            generated: 8099,
            delivered: 8096,
            delivered_flits: 64761,
            latency_sum: 138166,
            latency_count: 8088,
            latency_max: 113,
            link_flits_sum: 388790,
            link_flits_max: 3672,
            deadlocked: false,
        }
    );
}
