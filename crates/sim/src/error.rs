//! The unified error surface: one [`Error`] enum every pipeline
//! failure converts into, with a stable machine-readable
//! [`Error::code`] for protocol boundaries.
//!
//! The workspace's typed errors stay fine-grained where they arise —
//! [`PlanError`] from planning, [`EvalError`] from evaluation,
//! [`ExperimentError`] from scenario building, [`WorkloadError`] from
//! workload instantiation, [`SimError`] from the engine — but a caller
//! that spans the whole pipeline (a sweep driver, a plan server) wants
//! one type to bubble and one code vocabulary to expose. `From` impls
//! exist for every constituent, so `?` converts anywhere:
//!
//! ```
//! use bsor_sim::{Error, Scenario};
//! use bsor_flow::FlowSet;
//! use bsor_topology::Topology;
//!
//! fn build(width: u16) -> Result<Scenario, Error> {
//!     let topo = Topology::mesh2d(width, width);
//!     let flows = bsor_workloads::transpose(&topo)?.flows; // WorkloadError
//!     Ok(Scenario::builder(topo, flows).vcs(2).build()?) // ExperimentError
//! }
//!
//! let err = build(3).unwrap_err(); // transpose needs a power-of-two
//! assert_eq!(err.code(), "bad-workload");
//! ```
//!
//! # Code stability
//!
//! [`Error::code`] values are part of the serve protocol: existing
//! codes never change meaning or spelling; new variants may introduce
//! new codes. The full vocabulary is documented on [`Error::code`].

use crate::config::SimError;
use crate::plan::{EvalError, PlanError};
use crate::scenario::{AlgorithmError, ExperimentError};
use bsor_workloads::WorkloadError;
use std::fmt;

/// Any failure the scenario → plan → evaluate pipeline can produce,
/// tagged with the stage that produced it.
///
/// Display defers to the wrapped error; [`Error::code`] gives the
/// stable machine-readable classification (stage-independent: the same
/// root cause maps to the same code whichever stage surfaced it).
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Planning failed (route selection, validation, certification).
    Plan(PlanError),
    /// Evaluating a plan failed.
    Eval(EvalError),
    /// Building or running a scenario failed.
    Experiment(ExperimentError),
    /// Instantiating a workload on a topology failed.
    Workload(WorkloadError),
}

impl Error {
    /// The stable machine-readable code, for JSON protocol boundaries.
    ///
    /// The vocabulary (existing entries never change):
    ///
    /// | code | meaning |
    /// |------|---------|
    /// | `select-failed` | a route selector failed (unroutable flow, missing VCs, MILP) |
    /// | `budget-exceeded` | an LP-based selector refused the topology as over its size budget |
    /// | `unsupported-topology` | the algorithm does not apply to the topology family |
    /// | `algorithm-failed` | a framework-level algorithm failure |
    /// | `invalid-routes` | malformed routes (endpoints, adjacency, VCs) |
    /// | `deadlock` | the routes' induced channel dependence graph is cyclic |
    /// | `invalid-flows` | the flow set failed validation against the topology |
    /// | `cdg-underivable` | no acyclic CDG could be derived |
    /// | `sim-rejected` | the simulator rejected the configuration or traffic |
    /// | `unknown-workload` | no workload registered under the name |
    /// | `bad-workload-spec` | a known family with a malformed argument |
    /// | `bad-workload` | the workload cannot instantiate on the topology |
    pub fn code(&self) -> &'static str {
        fn algorithm(e: &AlgorithmError) -> &'static str {
            use bsor_routing::SelectError;
            match e {
                AlgorithmError::Select(SelectError::BudgetExceeded { .. }) => "budget-exceeded",
                AlgorithmError::Select(_) => "select-failed",
                AlgorithmError::UnsupportedTopology { .. } => "unsupported-topology",
                _ => "algorithm-failed",
            }
        }
        match self {
            Error::Plan(PlanError::Algorithm(e)) => algorithm(e),
            Error::Plan(PlanError::InvalidRoutes(_)) => "invalid-routes",
            Error::Plan(PlanError::Deadlock { .. }) => "deadlock",
            Error::Eval(EvalError::Sim(_)) => "sim-rejected",
            Error::Experiment(ExperimentError::Algorithm(e)) => algorithm(e),
            Error::Experiment(ExperimentError::InvalidRoutes(_)) => "invalid-routes",
            Error::Experiment(ExperimentError::CyclicCdg { .. }) => "deadlock",
            Error::Experiment(ExperimentError::InvalidFlows(_)) => "invalid-flows",
            Error::Experiment(ExperimentError::Cdg(_)) => "cdg-underivable",
            Error::Experiment(ExperimentError::Sim(_)) => "sim-rejected",
            Error::Workload(WorkloadError::UnknownWorkload { .. }) => "unknown-workload",
            Error::Workload(WorkloadError::BadSpec { .. }) => "bad-workload-spec",
            Error::Workload(_) => "bad-workload",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Plan(e) => write!(f, "{e}"),
            Error::Eval(e) => write!(f, "{e}"),
            Error::Experiment(e) => write!(f, "{e}"),
            Error::Workload(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Plan(e) => Some(e),
            Error::Eval(e) => Some(e),
            Error::Experiment(e) => Some(e),
            Error::Workload(e) => Some(e),
        }
    }
}

impl From<PlanError> for Error {
    fn from(e: PlanError) -> Self {
        Error::Plan(e)
    }
}

impl From<EvalError> for Error {
    fn from(e: EvalError) -> Self {
        Error::Eval(e)
    }
}

impl From<ExperimentError> for Error {
    fn from(e: ExperimentError) -> Self {
        Error::Experiment(e)
    }
}

impl From<WorkloadError> for Error {
    fn from(e: WorkloadError) -> Self {
        Error::Workload(e)
    }
}

impl From<AlgorithmError> for Error {
    /// Algorithm failures classify identically whichever stage surfaced
    /// them; planning is the canonical one.
    fn from(e: AlgorithmError) -> Self {
        Error::Plan(PlanError::Algorithm(e))
    }
}

impl From<SimError> for Error {
    /// A bare engine rejection is an evaluation failure.
    fn from(e: SimError) -> Self {
        Error::Eval(EvalError::Sim(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsor_routing::RouteError;

    #[test]
    fn codes_are_stage_independent_and_stable() {
        let plan: Error = PlanError::Deadlock {
            algorithm: "x".into(),
            cycle_len: 3,
        }
        .into();
        let experiment: Error = ExperimentError::CyclicCdg {
            algorithm: "x".into(),
            cycle_len: 3,
        }
        .into();
        assert_eq!(plan.code(), "deadlock");
        assert_eq!(plan.code(), experiment.code());

        let invalid: Error =
            PlanError::InvalidRoutes(RouteError::MissingRoute(bsor_flow::FlowId(0))).into();
        assert_eq!(invalid.code(), "invalid-routes");
        assert_eq!(
            Error::from(ExperimentError::InvalidRoutes(RouteError::MissingRoute(
                bsor_flow::FlowId(0)
            )))
            .code(),
            "invalid-routes"
        );
    }

    #[test]
    fn budget_refusals_classify_separately_from_selector_failures() {
        use bsor_routing::SelectError;
        let budget: Error = AlgorithmError::Select(SelectError::BudgetExceeded {
            links: 224,
            max_links: 16,
        })
        .into();
        let unroutable: Error = AlgorithmError::Select(SelectError::Unroutable {
            flow: bsor_flow::FlowId(0),
        })
        .into();
        assert_eq!(budget.code(), "budget-exceeded");
        assert_eq!(unroutable.code(), "select-failed");
    }

    #[test]
    fn workload_codes_separate_spec_name_and_shape_failures() {
        let unknown: Error = WorkloadError::UnknownWorkload { name: "x".into() }.into();
        let bad_spec: Error = WorkloadError::BadSpec {
            spec: "hotspot:lots".into(),
            reason: "not a number".into(),
        }
        .into();
        let shape: Error = WorkloadError::NotSquare.into();
        assert_eq!(unknown.code(), "unknown-workload");
        assert_eq!(bad_spec.code(), "bad-workload-spec");
        assert_eq!(shape.code(), "bad-workload");
    }

    #[test]
    fn display_and_source_defer_to_the_wrapped_error() {
        let e: Error = WorkloadError::NotSquare.into();
        assert_eq!(e.to_string(), WorkloadError::NotSquare.to_string());
        assert!(std::error::Error::source(&e).is_some());
    }
}
