//! Configuration and per-case plumbing for the [`crate::proptest!`] macro.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// How many cases each property runs, and the seed base.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Added to the per-case seed; change to explore another stream.
    pub seed_offset: u64,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 128,
            seed_offset: 0,
        }
    }
}

/// A failed property case (carried by `prop_assert!` and friends).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps an assertion message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-case generator: seeded from the test name and the
/// case index, so a reported failing case replays exactly.
pub fn case_rng(seed_offset: u64, test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf29ce484222325 ^ seed_offset;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h.wrapping_add(case as u64).wrapping_mul(0x9E3779B97F4A7C15))
}
