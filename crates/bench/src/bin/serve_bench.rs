//! `bsor-serve-bench` — multi-client load driver for the `bsor-serve`
//! plan service, writing `BENCH_serve.json`.
//!
//! Three phases over a Zipf-distributed key universe (every key is a
//! distinct `(topology, workload, algorithm, vcs)` scenario):
//!
//! 1. **Cached replay** — N client threads hammer one shared
//!    [`PlanService`] with seeded Zipf draws; reports throughput and
//!    the cache hit rate (the single-flight sharded cache should make
//!    all but one request per unique key a lookup).
//! 2. **Uncached replay** — the *identical* clients and draw sequences
//!    run the full per-request pipeline (topology, workload, scenario,
//!    route solve) through a cache-less `Planner`, the cost the
//!    service exists to amortize; the throughput ratio is the headline
//!    speedup.
//! 3. **Invalidate selectivity** — fill a fresh service with every key,
//!    fail one physical link, and replay the universe: the re-solve
//!    count must equal the eviction count (survivors were re-certified,
//!    not re-planned).
//!
//! The driver exits non-zero if the run misses the service's headline
//! targets (hit rate > 90%, cached throughput >= 5x uncached,
//! selective invalidation), so CI can run it as an assertion.
//!
//! ```text
//! cargo run -p bsor_bench --release --bin bsor-serve-bench -- [options]
//!
//!   --clients N     client threads                  (default 4)
//!   --requests N    requests per client per phase   (default 600)
//!   --seed N        Zipf draw seed                  (default 46347)
//!   --quick         CI smoke sizing (2 clients, 1000 requests)
//!   --out PATH      output path                     (default BENCH_serve.json)
//! ```

use bsor_bench::json::Json;
use bsor_bench::serve::{PlanService, ServeConfig};
use bsor_bench::sweep::SweepRegistries;
use bsor_sim::{Planner, Scenario};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::process::ExitCode;
use std::time::Instant;

/// One entry of the key universe: a distinct plannable scenario.
#[derive(Clone)]
struct Key {
    workload: String,
    algorithm: &'static str,
    width: u16,
    height: u16,
    vcs: u8,
}

impl Key {
    fn request(&self) -> String {
        format!(
            r#"{{"op":"plan","topology":"mesh","width":{},"height":{},"workload":"{}","algorithm":"{}","vcs":{}}}"#,
            self.width, self.height, self.workload, self.algorithm, self.vcs
        )
    }
}

/// The benchmark's 27-key universe: nine workload specs by three
/// scalable algorithms on the paper's 8x8 substrate (uniform-random is
/// left out — its 240-flow matrix makes `bsor-dijkstra` a seconds-long
/// outlier that would swamp every other key's cost).
fn key_universe() -> Vec<Key> {
    let workloads = [
        "transpose",
        "bit-complement",
        "shuffle",
        "tornado",
        "bit-reversal",
        "neighbor",
        "hotspot:4",
        "rand-perm:7",
        "rand-perm:4242",
    ];
    let algorithms = ["xy", "yx", "bsor-dijkstra"];
    let mut keys = Vec::new();
    for workload in workloads {
        for algorithm in algorithms {
            keys.push(Key {
                workload: workload.to_string(),
                algorithm,
                width: 8,
                height: 8,
                vcs: 2,
            });
        }
    }
    keys
}

/// Zipf(s = 1.1) sampler over `n` ranks: precomputed cumulative weights
/// walked with one uniform draw.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize) -> Zipf {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(1.1);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty universe");
        let draw = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= draw)
    }
}

struct Options {
    clients: usize,
    requests: usize,
    seed: u64,
    out: String,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        clients: 4,
        requests: 600,
        seed: 46347,
        out: "BENCH_serve.json".to_string(),
    };
    if args.iter().any(|a| a == "--quick") {
        options.clients = 2;
        options.requests = 1000;
    }
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let parse = |name: &str, raw: String| -> Result<usize, String> {
            raw.parse().map_err(|_| format!("bad {name} '{raw}'"))
        };
        match arg.as_str() {
            "--quick" => {}
            "--clients" => {
                options.clients = parse("--clients", value("--clients")?)?;
                if options.clients == 0 {
                    return Err("--clients needs at least one client".to_string());
                }
            }
            "--requests" => options.requests = parse("--requests", value("--requests")?)?,
            "--seed" => {
                options.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_string())?;
            }
            "--out" => options.out = value("--out")?,
            "--help" | "-h" => {
                println!("bsor-serve-bench: load driver writing BENCH_serve.json");
                println!();
                println!("options: --clients N --requests N --seed N --quick");
                println!("         --out PATH --help");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}' (try --help)")),
        }
    }
    Ok(options)
}

/// Phase 1: N clients replay Zipf draws against one shared service.
fn cached_replay(options: &Options, keys: &[Key], zipf: &Zipf) -> (Json, f64, f64) {
    let service = PlanService::new(ServeConfig::default());
    let requests: Vec<String> = keys.iter().map(Key::request).collect();
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..options.clients {
            let (service, requests) = (&service, &requests);
            let mut rng = StdRng::seed_from_u64(options.seed.wrapping_add(client as u64));
            scope.spawn(move || {
                for _ in 0..options.requests {
                    let response = service.handle_line(&requests[zipf.sample(&mut rng)]);
                    assert!(response.contains(r#""ok":true"#), "plan failed: {response}");
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    let stats = service.cache().stats();
    let total = (options.clients * options.requests) as f64;
    let hit_rate = stats.hits as f64 / (stats.hits + stats.misses) as f64;
    let rps = total / elapsed;
    let json = Json::object(vec![
        ("clients", Json::from(options.clients)),
        ("requests", Json::from(total)),
        ("elapsed_s", Json::from(elapsed)),
        ("requests_per_s", Json::from(rps)),
        ("hit_rate", Json::from(hit_rate)),
        ("hits", Json::from(stats.hits)),
        ("misses", Json::from(stats.misses)),
        ("solves", Json::from(stats.solves)),
        ("dedup_waits", Json::from(stats.dedup_waits)),
        ("plans", Json::from(stats.plans)),
        ("bytes", Json::from(stats.bytes)),
    ]);
    (json, rps, hit_rate)
}

/// Phase 2: the identical Zipf draws pay the full pipeline per request.
fn uncached_replay(options: &Options, keys: &[Key], zipf: &Zipf) -> (Json, f64) {
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..options.clients {
            let mut rng = StdRng::seed_from_u64(options.seed.wrapping_add(client as u64));
            scope.spawn(move || {
                let regs = SweepRegistries::standard();
                let planner = Planner::new();
                for _ in 0..options.requests {
                    let key = &keys[zipf.sample(&mut rng)];
                    let topo = regs
                        .topologies
                        .build("mesh", key.width, key.height)
                        .expect("mesh builds");
                    let workload = regs
                        .workloads
                        .build(&topo, &key.workload)
                        .expect("universe workloads build");
                    let scenario = Scenario::builder(topo, workload.flows)
                        .named(&key.workload)
                        .vcs(key.vcs)
                        .build()
                        .expect("universe scenarios build");
                    let algorithm = regs
                        .algorithms
                        .get(key.algorithm)
                        .expect("universe algorithms resolve");
                    planner
                        .plan(&scenario, algorithm)
                        .expect("universe keys plan");
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    let total = (options.clients * options.requests) as f64;
    let rps = total / elapsed;
    let json = Json::object(vec![
        ("clients", Json::from(options.clients)),
        ("requests", Json::from(total)),
        ("elapsed_s", Json::from(elapsed)),
        ("requests_per_s", Json::from(rps)),
    ]);
    (json, rps)
}

/// Phase 3: fill a fresh service, fail one link, replay every key, and
/// count re-solves against evictions.
fn invalidate_selectivity(keys: &[Key]) -> (Json, bool) {
    let service = PlanService::new(ServeConfig::default());
    for key in keys {
        let response = service.handle_line(&key.request());
        assert!(response.contains(r#""ok":true"#), "fill failed: {response}");
    }
    let before = service.cache().stats();
    // Node 0 -> node 1: the first horizontal hop of the mesh, demanded
    // by most x-first routes but not all (YX plans survive via
    // re-certification).
    let response = service.handle_line(r#"{"op":"invalidate","links":[[0,1]]}"#);
    let outcome = Json::parse(&response).expect("valid invalidate response");
    let result = outcome.get("result").expect("invalidate succeeds").clone();
    let evicted = result.get("evicted").and_then(Json::as_u64).unwrap_or(0);
    for key in keys {
        service.handle_line(&key.request());
    }
    let after = service.cache().stats();
    let resolves = after.solves - before.solves;
    let selective = resolves == evicted && evicted > 0 && evicted < keys.len() as u64;
    let json = Json::object(vec![
        ("plans", Json::from(keys.len())),
        (
            "examined",
            result.get("examined").cloned().unwrap_or(Json::Null),
        ),
        ("evicted", Json::from(evicted)),
        (
            "recertified",
            result.get("recertified").cloned().unwrap_or(Json::Null),
        ),
        ("resolves_after_invalidate", Json::from(resolves)),
        ("selective", Json::Bool(selective)),
    ]);
    (json, selective)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("bsor-serve-bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let keys = key_universe();
    let zipf = Zipf::new(keys.len());
    eprintln!(
        "bsor-serve-bench: {} keys, {} clients x {} requests per phase",
        keys.len(),
        options.clients,
        options.requests
    );
    let (cached, cached_rps, hit_rate) = cached_replay(&options, &keys, &zipf);
    eprintln!(
        "bsor-serve-bench: cached {cached_rps:.0} req/s, hit rate {:.1}%",
        hit_rate * 100.0
    );
    let (uncached, uncached_rps) = uncached_replay(&options, &keys, &zipf);
    let speedup = cached_rps / uncached_rps;
    eprintln!("bsor-serve-bench: uncached {uncached_rps:.0} req/s ({speedup:.1}x speedup)");
    let (invalidate, selective) = invalidate_selectivity(&keys);
    let doc = Json::object(vec![
        ("name", Json::from("bsor-serve-bench")),
        ("keys", Json::from(keys.len())),
        ("zipf_s", Json::from(1.1)),
        ("seed", Json::from(options.seed)),
        ("cached", cached),
        ("uncached", uncached),
        ("speedup", Json::from(speedup)),
        ("invalidate", invalidate),
    ]);
    if let Err(e) = std::fs::write(&options.out, doc.pretty()) {
        eprintln!("bsor-serve-bench: cannot write {}: {e}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!("bsor-serve-bench: wrote {}", options.out);
    // The headline targets double as CI assertions.
    let mut failed = false;
    if hit_rate <= 0.90 {
        eprintln!("bsor-serve-bench: FAIL hit rate {hit_rate:.3} <= 0.90");
        failed = true;
    }
    if speedup < 5.0 {
        eprintln!("bsor-serve-bench: FAIL speedup {speedup:.1}x < 5x");
        failed = true;
    }
    if !selective {
        eprintln!("bsor-serve-bench: FAIL invalidation was not selective");
        failed = true;
    }
    if failed {
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}
