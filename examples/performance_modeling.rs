//! Routing the processor performance-modeling application (paper
//! §5.2.2, Figure 5-2): a three-stage pipeline whose register-file
//! stream (62.73 MB/s) dominates, with a large worst-case/average-case
//! latency gap — the paper's motivating case for bandwidth-aware
//! routing on FPGA-hosted performance models (HAsim/FAST).
//!
//! Also demonstrates the load-balance statistics: BSOR spreads load so
//! the peak-to-mean ratio drops versus dimension-order routing.
//!
//! ```text
//! cargo run --release --example performance_modeling
//! ```

use bsor::{BsorAlgorithm, Scenario};
use bsor_lp::MilpOptions;
use bsor_routing::selectors::MilpSelector;
use bsor_routing::Baseline;
use bsor_topology::Topology;
use bsor_workloads::workload_by_name;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mesh = Topology::mesh2d(8, 8);
    let workload = workload_by_name(&mesh, "perf-model")?;
    println!(
        "performance modeling: {} flows, largest {:.2} MB/s (register traffic)",
        workload.flows.len(),
        workload.flows.max_demand()
    );
    let scenario = Scenario::builder(mesh, workload.flows)
        .named("perf-model")
        .vcs(2)
        .build()?;

    let milp = MilpSelector::new()
        .with_hop_slack(4)
        .with_max_paths(60)
        .with_options(MilpOptions {
            max_nodes: 40,
            time_limit: Some(Duration::from_secs(10)),
            ..MilpOptions::default()
        });
    let bsor_routes = scenario.select_routes(&BsorAlgorithm::milp("BSOR-MILP", milp))?;
    let xy_routes = scenario.select_routes(&Baseline::XY)?;

    println!(
        "\n{:>14} {:>9} {:>10} {:>10} {:>12}",
        "algorithm", "MCL", "mean load", "links", "peak/mean"
    );
    for (name, routes) in [("XY", &xy_routes), ("BSOR-MILP", &bsor_routes)] {
        let b = routes.balance(scenario.topology(), scenario.flows());
        println!(
            "{name:>14} {:>9.2} {:>10.2} {:>10} {:>12.2}",
            routes.mcl(scenario.topology(), scenario.flows()),
            b.mean_load,
            b.used_links,
            b.peak_to_mean()
        );
    }
    println!(
        "\nBSOR found MCL {:.2} MB/s (paper's Table 6.3 row: \
         XY 95.04, BSOR-MILP 62.73 — same ordering)",
        bsor_routes.mcl(scenario.topology(), scenario.flows())
    );
    Ok(())
}
