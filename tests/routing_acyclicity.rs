//! The paper's headline invariant (Lemma 1, Dally & Aoki): every route
//! set this workspace returns — the BSOR framework or the XY/YX
//! dimension-order baselines — induces an **acyclic** channel dependence
//! graph, i.e. is deadlock-free, on every mesh from 2×2 to 8×8.

use bsor::{BsorBuilder, CdgStrategy, SelectorKind};
use bsor_repro::cdg::TurnModel;
use bsor_repro::flow::FlowSet;
use bsor_repro::routing::selectors::DijkstraSelector;
use bsor_repro::routing::{deadlock, Baseline};
use bsor_repro::topology::{NodeId, Topology};
use proptest::prelude::*;

/// A deterministic workload with traffic in both dimensions: node `i`
/// sends to the mirror node `n - 1 - i`.
fn reversal_flows(topo: &Topology) -> FlowSet {
    let n = topo.num_nodes() as u32;
    let mut flows = FlowSet::new();
    for i in 0..n {
        let j = n - 1 - i;
        if i != j {
            flows.push(NodeId(i), NodeId(j), 25.0);
        }
    }
    flows
}

/// XY and YX on every mesh 2×2…8×8: exhaustive, since dimension-order
/// selection is cheap.
#[test]
fn xy_and_yx_induce_acyclic_cdg_on_all_meshes() {
    for w in 2..=8u16 {
        for h in 2..=8u16 {
            let topo = Topology::mesh2d(w, h);
            let flows = reversal_flows(&topo);
            for vcs in [1u8, 2] {
                for baseline in [Baseline::XY, Baseline::YX] {
                    let routes = baseline
                        .select(&topo, &flows, vcs)
                        .unwrap_or_else(|e| panic!("{baseline:?} on {w}x{h}: {e}"));
                    routes.validate(&topo, &flows, vcs).expect("valid routes");
                    let analysis = deadlock::analyze(&topo, &routes, vcs);
                    assert!(
                        analysis.is_free(),
                        "{baseline:?} routes on {w}x{h} mesh ({vcs} VC) induce a CDG cycle: \
                         {analysis:?}"
                    );
                }
            }
        }
    }
}

fn arbitrary_flows(nodes: usize, max_flows: usize) -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    prop::collection::vec(
        (0..nodes as u32, 0..nodes as u32, 1.0..100.0f64),
        1..max_flows,
    )
    .prop_map(|v| v.into_iter().filter(|(s, d, _)| s != d).collect::<Vec<_>>())
    .prop_filter("at least one flow", |v| !v.is_empty())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// BSOR (and the baselines, on the same random flows) across random
    /// mesh dimensions 2..=8 × 2..=8. The exploration set is trimmed to
    /// two turn models plus one ad-hoc CDG so the property stays fast in
    /// debug builds; the invariant must hold for *whatever* CDG wins.
    #[test]
    fn bsor_routes_induce_acyclic_cdg(
        w in 2u16..=8,
        h in 2u16..=8,
        triples in arbitrary_flows(64, 24),
        seed in 0u64..1_000,
    ) {
        let topo = Topology::mesh2d(w, h);
        let n = topo.num_nodes() as u32;
        let mut flows = FlowSet::new();
        for (s, d, demand) in triples {
            let (s, d) = (s % n, d % n);
            if s != d {
                flows.push(NodeId(s), NodeId(d), demand);
            }
        }
        if flows.is_empty() {
            flows.push(NodeId(0), NodeId(n - 1), 25.0);
        }

        let result = BsorBuilder::new(&topo, &flows)
            .vcs(2)
            .strategies(vec![
                CdgStrategy::TurnModel(TurnModel::west_first()),
                CdgStrategy::TurnModel(TurnModel::north_last()),
                CdgStrategy::AdHoc { seed },
            ])
            .selector(SelectorKind::Dijkstra(DijkstraSelector::new()))
            .run()
            .expect("grids with turn-model CDGs are always routable");
        result.routes.validate(&topo, &flows, 2).expect("valid routes");
        let analysis = deadlock::analyze(&topo, &result.routes, 2);
        prop_assert!(
            analysis.is_free(),
            "BSOR routes (cdg {}) on {w}x{h} induce a CDG cycle: {analysis:?}",
            result.cdg
        );

        for baseline in [Baseline::XY, Baseline::YX] {
            let routes = baseline.select(&topo, &flows, 2).expect("dimension order");
            prop_assert!(
                deadlock::analyze(&topo, &routes, 2).is_free(),
                "{baseline:?} routes on {w}x{h} induce a CDG cycle"
            );
        }
    }
}
