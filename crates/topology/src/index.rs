//! Dense index arenas over a [`Topology`].
//!
//! The simulator's per-cycle loop wants adjacency as flat, contiguous
//! arrays rather than `Vec<Vec<_>>` + `HashMap` lookups: one cache miss
//! per access instead of two, and no hashing anywhere. [`TopoIndex`]
//! snapshots a topology into CSR (compressed sparse row) link arenas
//! plus flat endpoint arrays, all keyed by the dense `NodeId`/`LinkId`
//! indices the topology already guarantees.
//!
//! The arenas preserve the topology's link ordering exactly:
//! `TopoIndex::out_links(n)` yields the same ids in the same order as
//! `Topology::out_links(n)`, which keeps round-robin arbitration in the
//! simulator byte-identical to the nested-Vec representation.

use crate::net::{LinkId, NodeId, Topology};

/// Flat CSR adjacency + endpoint arenas for a topology snapshot.
///
/// ```
/// use bsor_topology::{Topology, TopoIndex};
///
/// let mesh = Topology::mesh2d(3, 3);
/// let index = TopoIndex::new(&mesh);
/// for n in mesh.node_ids() {
///     assert_eq!(index.out_links(n), mesh.out_links(n));
///     assert_eq!(index.in_links(n), mesh.in_links(n));
/// }
/// for l in mesh.link_ids() {
///     assert_eq!(index.link_dst(l), mesh.link(l).dst);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct TopoIndex {
    /// CSR offsets into `out_links`: node `n` owns
    /// `out_links[out_off[n] .. out_off[n + 1]]`.
    out_off: Vec<u32>,
    out_links: Vec<LinkId>,
    /// CSR offsets into `in_links`, same layout.
    in_off: Vec<u32>,
    in_links: Vec<LinkId>,
    /// Flat endpoint arrays indexed by `LinkId`.
    link_src: Vec<NodeId>,
    link_dst: Vec<NodeId>,
}

impl TopoIndex {
    /// Snapshots `topo` into flat arenas.
    pub fn new(topo: &Topology) -> TopoIndex {
        let nn = topo.num_nodes();
        let nl = topo.num_links();
        let mut out_off = Vec::with_capacity(nn + 1);
        let mut out_links = Vec::with_capacity(nl);
        let mut in_off = Vec::with_capacity(nn + 1);
        let mut in_links = Vec::with_capacity(nl);
        out_off.push(0);
        in_off.push(0);
        for n in topo.node_ids() {
            out_links.extend_from_slice(topo.out_links(n));
            out_off.push(out_links.len() as u32);
            in_links.extend_from_slice(topo.in_links(n));
            in_off.push(in_links.len() as u32);
        }
        let link_src = topo.link_ids().map(|l| topo.link(l).src).collect();
        let link_dst = topo.link_ids().map(|l| topo.link(l).dst).collect();
        TopoIndex {
            out_off,
            out_links,
            in_off,
            in_links,
            link_src,
            link_dst,
        }
    }

    /// Number of nodes in the snapshot.
    pub fn num_nodes(&self) -> usize {
        self.out_off.len() - 1
    }

    /// Number of links in the snapshot.
    pub fn num_links(&self) -> usize {
        self.link_src.len()
    }

    /// Links leaving `node`, in the topology's insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn out_links(&self, node: NodeId) -> &[LinkId] {
        let n = node.index();
        &self.out_links[self.out_off[n] as usize..self.out_off[n + 1] as usize]
    }

    /// Links entering `node`, in the topology's insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn in_links(&self, node: NodeId) -> &[LinkId] {
        let n = node.index();
        &self.in_links[self.in_off[n] as usize..self.in_off[n + 1] as usize]
    }

    /// Upstream endpoint of `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn link_src(&self, link: LinkId) -> NodeId {
        self.link_src[link.index()]
    }

    /// Downstream endpoint of `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn link_dst(&self, link: LinkId) -> NodeId {
        self.link_dst[link.index()]
    }

    /// Largest in-degree (including none) across nodes — the simulator
    /// sizes per-node scratch buffers with this.
    pub fn max_in_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|n| (self.in_off[n + 1] - self.in_off[n]) as usize)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_matches(topo: &Topology) {
        let index = TopoIndex::new(topo);
        assert_eq!(index.num_nodes(), topo.num_nodes());
        assert_eq!(index.num_links(), topo.num_links());
        for n in topo.node_ids() {
            assert_eq!(index.out_links(n), topo.out_links(n), "out links of {n}");
            assert_eq!(index.in_links(n), topo.in_links(n), "in links of {n}");
        }
        for l in topo.link_ids() {
            assert_eq!(index.link_src(l), topo.link(l).src, "src of {l}");
            assert_eq!(index.link_dst(l), topo.link(l).dst, "dst of {l}");
        }
    }

    #[test]
    fn mesh_arena_matches_adjacency() {
        check_matches(&Topology::mesh2d(4, 4));
        check_matches(&Topology::mesh2d(8, 8));
        check_matches(&Topology::mesh2d(1, 2));
    }

    #[test]
    fn torus_ring_hypercube_arenas_match() {
        check_matches(&Topology::torus2d(4, 4));
        check_matches(&Topology::ring(5));
        check_matches(&Topology::hypercube(4));
    }

    #[test]
    fn arena_slices_are_contiguous_partitions() {
        let topo = Topology::mesh2d(4, 4);
        let index = TopoIndex::new(&topo);
        let total_out: usize = topo.node_ids().map(|n| index.out_links(n).len()).sum();
        let total_in: usize = topo.node_ids().map(|n| index.in_links(n).len()).sum();
        assert_eq!(total_out, topo.num_links());
        assert_eq!(total_in, topo.num_links());
        // Every link appears exactly once in each arena.
        let mut seen = vec![0u8; topo.num_links()];
        for n in topo.node_ids() {
            for &l in index.out_links(n) {
                seen[l.index()] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn max_in_degree_on_mesh() {
        let index = TopoIndex::new(&Topology::mesh2d(3, 3));
        // The center node of a 3x3 mesh has 4 incoming channels.
        assert_eq!(index.max_in_degree(), 4);
        let corner = TopoIndex::new(&Topology::mesh2d(1, 2));
        assert_eq!(corner.max_in_degree(), 1);
    }
}
