//! Plan-once vs. legacy per-point planning on a 4×4 saturation
//! bisection — the microbench behind `BENCH_plan.json`.
//!
//! `legacy_per_point` is the pre-plan pipeline: every probe of the
//! bisection re-runs route selection and recompiles the node tables
//! before simulating (what `Experiment::run` per grid point used to
//! cost). `plan_once_evaluate_n` plans once through a cached `Planner`
//! and evaluates every probe on the plan's precompiled tables — the
//! shape `bsor-sweep --saturation` now has. Same probes, same seeds,
//! same knee; only the redundant solves disappear.
//!
//! ```text
//! BSOR_BENCH_JSON=BENCH_plan.json cargo bench -p bsor_bench --bench plan_once
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bsor::BsorAlgorithm;
use bsor_sim::{EvalPoint, Evaluator, PlanCache, Planner, Scenario, SimConfig, SimEvaluator};
use bsor_topology::Topology;
use bsor_workloads::transpose;

fn config() -> SimConfig {
    SimConfig::new(2).with_warmup(200).with_measurement(1_000)
}

/// The sweep harness's saturation search, parameterized over how each
/// probe obtains its mean latency: baseline at 0.05, knee at 4× the
/// baseline, upper probe at 4.0, then six bisection steps.
fn bisect(mut latency_at: impl FnMut(f64) -> Option<f64>) -> f64 {
    let base = latency_at(0.05).expect("4x4 transpose delivers at 0.05");
    let threshold = 4.0 * base;
    let mut saturated = |rate: f64| latency_at(rate).is_none_or(|l| l > threshold);
    let (mut lo, mut hi) = (0.05, 4.0);
    if !saturated(hi) {
        return hi;
    }
    for _ in 0..6 {
        let mid = 0.5 * (lo + hi);
        if saturated(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    lo
}

fn bench_plan_vs_legacy(c: &mut Criterion) {
    let mesh = Topology::mesh2d(4, 4);
    let w = transpose(&mesh).expect("square");
    let evaluator = SimEvaluator::new();
    // Both framework selectors: the Dijkstra exploration is cheap (the
    // win is mostly skipped table recompilation), while the MILP is the
    // paper's expensive solve the bisection used to repeat ~8×.
    let algorithms: Vec<(&str, BsorAlgorithm)> = vec![
        ("dijkstra", BsorAlgorithm::dijkstra()),
        (
            "milp",
            BsorAlgorithm::milp("bsor-milp", bsor::registry::sweep_milp()),
        ),
    ];
    let mut g = c.benchmark_group("saturation_bisection_4x4");
    g.sample_size(10);

    for (name, algo) in &algorithms {
        g.bench_function(format!("legacy_per_point_{name}"), |b| {
            b.iter(|| {
                let scenario = Scenario::builder(mesh.clone(), w.flows.clone())
                    .vcs(2)
                    .build()
                    .expect("valid");
                black_box(bisect(|rate| {
                    // Uncached: every probe re-solves routes and
                    // recompiles tables, as the pre-plan per-point
                    // pipeline did.
                    let plan = Planner::new().plan(&scenario, algo).expect("routable");
                    evaluator
                        .evaluate(&plan, &EvalPoint::new(rate, config()))
                        .expect("simulates")
                        .mean_latency
                }))
            })
        });

        g.bench_function(format!("plan_once_evaluate_n_{name}"), |b| {
            b.iter(|| {
                let scenario = Scenario::builder(mesh.clone(), w.flows.clone())
                    .vcs(2)
                    .build()
                    .expect("valid");
                let planner = Planner::new().with_cache(PlanCache::shared());
                black_box(bisect(|rate| {
                    // One solve, then cache hits on precompiled tables:
                    // the shape bsor-sweep --saturation now has.
                    let plan = planner.plan(&scenario, algo).expect("routable");
                    evaluator
                        .evaluate(&plan, &EvalPoint::new(rate, config()))
                        .expect("simulates")
                        .mean_latency
                }))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_plan_vs_legacy);
criterion_main!(benches);
