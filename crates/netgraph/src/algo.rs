//! Graph algorithms: topological sort, cycle detection, strongly connected
//! components, Dijkstra, BFS hop counts, and bounded simple-path enumeration.

use crate::graph::{DiGraph, EdgeId, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

/// Error returned by [`toposort`] when the graph contains a cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphCycleError {
    /// A node that participates in some cycle.
    pub node: NodeId,
}

impl fmt::Display for GraphCycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph contains a cycle through {}", self.node)
    }
}

impl Error for GraphCycleError {}

/// Kahn's algorithm. Returns a topological order of all nodes.
///
/// # Errors
///
/// Returns [`GraphCycleError`] naming a node on a cycle if the graph is
/// cyclic.
pub fn toposort<N, E>(g: &DiGraph<N, E>) -> Result<Vec<NodeId>, GraphCycleError> {
    let n = g.node_count();
    let mut indeg: Vec<usize> = (0..n).map(|i| g.in_degree(NodeId(i as u32))).collect();
    let mut queue: Vec<NodeId> = g.node_ids().filter(|&v| indeg[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(v);
        for s in g.successors(v) {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                queue.push(s);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        let node = g
            .node_ids()
            .find(|&v| indeg[v.index()] > 0)
            .expect("a node with remaining in-degree exists when order is incomplete");
        Err(GraphCycleError { node })
    }
}

/// Returns `true` if the graph has no directed cycle.
pub fn is_acyclic<N, E>(g: &DiGraph<N, E>) -> bool {
    toposort(g).is_ok()
}

/// Finds one directed cycle, returned as the list of edge ids along it, or
/// `None` if the graph is acyclic.
///
/// The edges form a closed walk: the destination of each edge is the source
/// of the next, and the destination of the last is the source of the first.
pub fn find_cycle<N, E>(g: &DiGraph<N, E>) -> Option<Vec<EdgeId>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let n = g.node_count();
    let mut color = vec![Color::White; n];
    // Iterative DFS; stack holds (node, next out-edge index).
    let mut path_edges: Vec<EdgeId> = Vec::new();
    for start in g.node_ids() {
        if color[start.index()] != Color::White {
            continue;
        }
        let mut stack: Vec<(NodeId, usize)> = vec![(start, 0)];
        color[start.index()] = Color::Gray;
        while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
            let out = g.out_edges(v);
            if *idx < out.len() {
                let e = out[*idx];
                *idx += 1;
                let (_, w) = g.endpoints(e).expect("live edge in adjacency");
                match color[w.index()] {
                    Color::Gray => {
                        // Found a back edge; reconstruct the cycle from the
                        // current DFS path.
                        path_edges.push(e);
                        let first = path_edges
                            .iter()
                            .position(|&pe| g.endpoints(pe).expect("live edge").0 == w)
                            .expect("gray node is on the current DFS path");
                        return Some(path_edges[first..].to_vec());
                    }
                    Color::White => {
                        color[w.index()] = Color::Gray;
                        path_edges.push(e);
                        stack.push((w, 0));
                    }
                    Color::Black => {}
                }
            } else {
                color[v.index()] = Color::Black;
                stack.pop();
                path_edges.pop();
            }
        }
    }
    None
}

/// Tarjan's strongly connected components. Components are returned in
/// reverse topological order of the condensation.
pub fn tarjan_scc<N, E>(g: &DiGraph<N, E>) -> Vec<Vec<NodeId>> {
    struct State {
        index: Vec<Option<u32>>,
        lowlink: Vec<u32>,
        on_stack: Vec<bool>,
        stack: Vec<NodeId>,
        next_index: u32,
        components: Vec<Vec<NodeId>>,
    }
    let n = g.node_count();
    let mut st = State {
        index: vec![None; n],
        lowlink: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next_index: 0,
        components: Vec::new(),
    };
    // Iterative Tarjan: frames of (v, next successor index).
    for root in g.node_ids() {
        if st.index[root.index()].is_some() {
            continue;
        }
        let mut frames: Vec<(NodeId, usize)> = vec![(root, 0)];
        st.index[root.index()] = Some(st.next_index);
        st.lowlink[root.index()] = st.next_index;
        st.next_index += 1;
        st.stack.push(root);
        st.on_stack[root.index()] = true;
        while let Some(&mut (v, ref mut i)) = frames.last_mut() {
            let out = g.out_edges(v);
            if *i < out.len() {
                let e = out[*i];
                *i += 1;
                let (_, w) = g.endpoints(e).expect("live edge");
                if st.index[w.index()].is_none() {
                    st.index[w.index()] = Some(st.next_index);
                    st.lowlink[w.index()] = st.next_index;
                    st.next_index += 1;
                    st.stack.push(w);
                    st.on_stack[w.index()] = true;
                    frames.push((w, 0));
                } else if st.on_stack[w.index()] {
                    let wi = st.index[w.index()].expect("visited");
                    if wi < st.lowlink[v.index()] {
                        st.lowlink[v.index()] = wi;
                    }
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    if st.lowlink[v.index()] < st.lowlink[parent.index()] {
                        st.lowlink[parent.index()] = st.lowlink[v.index()];
                    }
                }
                if st.lowlink[v.index()] == st.index[v.index()].expect("visited") {
                    let mut comp = Vec::new();
                    loop {
                        let w = st.stack.pop().expect("stack nonempty");
                        st.on_stack[w.index()] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    st.components.push(comp);
                }
            }
        }
    }
    st.components
}

#[derive(Clone, Copy, PartialEq)]
struct HeapItem {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on dist via reversed comparison; ties broken on node id
        // for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of a [`dijkstra`] run: distances and predecessor edges.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    /// `dist[v]` is the best known distance to `v` (`f64::INFINITY` if
    /// unreachable).
    pub dist: Vec<f64>,
    /// `pred[v]` is the edge by which `v` was reached on a best path.
    pub pred: Vec<Option<EdgeId>>,
}

impl ShortestPaths {
    /// Reconstructs the edge path from some source to `target`, or `None` if
    /// unreachable.
    pub fn path_to<N, E>(&self, g: &DiGraph<N, E>, target: NodeId) -> Option<Vec<EdgeId>> {
        if !self.dist[target.index()].is_finite() {
            return None;
        }
        let mut path = Vec::new();
        let mut v = target;
        while let Some(e) = self.pred[v.index()] {
            path.push(e);
            v = g.endpoints(e).expect("live edge").0;
        }
        path.reverse();
        Some(path)
    }
}

/// Multi-source Dijkstra with a caller-supplied non-negative edge weight
/// function.
///
/// `sources` supplies initial distances (typically 0.0). Edge weights are
/// evaluated lazily via `weight`, which must be non-negative.
///
/// # Panics
///
/// Debug-asserts that weights are non-negative.
pub fn dijkstra<N, E>(
    g: &DiGraph<N, E>,
    sources: &[(NodeId, f64)],
    mut weight: impl FnMut(EdgeId) -> f64,
) -> ShortestPaths {
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<EdgeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    for &(s, d0) in sources {
        if d0 < dist[s.index()] {
            dist[s.index()] = d0;
            heap.push(HeapItem { dist: d0, node: s });
        }
    }
    while let Some(HeapItem { dist: d, node: v }) = heap.pop() {
        if d > dist[v.index()] {
            continue;
        }
        for &e in g.out_edges(v) {
            let (_, w) = g.endpoints(e).expect("live edge");
            let we = weight(e);
            debug_assert!(we >= 0.0, "negative edge weight in dijkstra");
            let nd = d + we;
            if nd < dist[w.index()] {
                dist[w.index()] = nd;
                pred[w.index()] = Some(e);
                heap.push(HeapItem { dist: nd, node: w });
            }
        }
    }
    ShortestPaths { dist, pred }
}

/// Multi-source BFS hop distances (each edge counts 1).
///
/// Returns `usize::MAX` for unreachable nodes.
pub fn bfs_hops<N, E>(g: &DiGraph<N, E>, sources: &[NodeId]) -> Vec<usize> {
    let n = g.node_count();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for &s in sources {
        if dist[s.index()] != 0 {
            dist[s.index()] = 0;
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for w in g.successors(v) {
            if dist[w.index()] == usize::MAX {
                dist[w.index()] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Multi-source BFS over *reversed* edges: `dist[v]` is the hop count
/// from `v` forward to the nearest of `targets` (`usize::MAX` when no
/// target is reachable). Used as an admissible lower bound to prune
/// bounded path enumeration.
pub fn bfs_hops_to<N, E>(g: &DiGraph<N, E>, targets: &[NodeId]) -> Vec<usize> {
    let n = g.node_count();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for &t in targets {
        if dist[t.index()] != 0 {
            dist[t.index()] = 0;
            queue.push_back(t);
        }
    }
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for w in g.predecessors(v) {
            if dist[w.index()] == usize::MAX {
                dist[w.index()] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Outcome of [`enumerate_paths`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnumerationOutcome {
    /// All simple paths within the bound were produced.
    Complete,
    /// Enumeration stopped early because `max_paths` was reached.
    Truncated,
}

/// Enumerates all simple paths (as edge sequences) from any node in
/// `sources` to any node satisfying `is_target`, with at most `max_edges`
/// edges per path and at most `max_paths` paths in total.
///
/// `to_target` supplies an admissible lower bound on the remaining hops
/// from a node to any target (e.g. from [`bfs_hops_to`]); subtrees that
/// cannot reach a target within the budget are pruned, which keeps the
/// enumeration polynomial-per-path instead of wandering into dead ends.
/// Pass `|_| 0` to disable pruning.
///
/// Paths are emitted through `emit`. Returns whether the enumeration was
/// exhaustive or truncated by `max_paths`.
///
/// A source node that is itself a target yields the empty path.
pub fn enumerate_paths<N, E>(
    g: &DiGraph<N, E>,
    sources: &[NodeId],
    mut is_target: impl FnMut(NodeId) -> bool,
    mut to_target: impl FnMut(NodeId) -> usize,
    max_edges: usize,
    max_paths: usize,
    mut emit: impl FnMut(&[EdgeId]),
) -> EnumerationOutcome {
    let n = g.node_count();
    let mut on_path = vec![false; n];
    let mut path: Vec<EdgeId> = Vec::new();
    let mut produced = 0usize;

    // Explicit DFS stack: (node, next out-edge index).
    for &s in sources {
        if produced >= max_paths {
            return EnumerationOutcome::Truncated;
        }
        if on_path[s.index()] {
            continue;
        }
        if is_target(s) {
            emit(&[]);
            produced += 1;
            if produced >= max_paths {
                return EnumerationOutcome::Truncated;
            }
        }
        if to_target(s) > max_edges {
            continue;
        }
        let mut stack: Vec<(NodeId, usize)> = vec![(s, 0)];
        on_path[s.index()] = true;
        while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
            let out = g.out_edges(v);
            if path.len() < max_edges && *idx < out.len() {
                let e = out[*idx];
                *idx += 1;
                let (_, w) = g.endpoints(e).expect("live edge");
                if on_path[w.index()] {
                    continue;
                }
                path.push(e);
                if is_target(w) {
                    emit(&path);
                    produced += 1;
                    if produced >= max_paths {
                        // Unwind bookkeeping before returning.
                        for &(u, _) in &stack {
                            on_path[u.index()] = false;
                        }
                        return EnumerationOutcome::Truncated;
                    }
                }
                // Prune subtrees that cannot reach any target in budget.
                let remaining = max_edges - path.len();
                if to_target(w) > remaining {
                    path.pop();
                    continue;
                }
                on_path[w.index()] = true;
                stack.push((w, 0));
            } else {
                on_path[v.index()] = false;
                stack.pop();
                path.pop();
            }
        }
        debug_assert!(path.is_empty());
    }
    EnumerationOutcome::Complete
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cyclic_triangle() -> DiGraph<(), ()> {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        g.add_edge(c, a, ());
        g
    }

    #[test]
    fn toposort_linear_chain() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let ids: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        let order = toposort(&g).expect("chain is acyclic");
        assert_eq!(order, ids);
    }

    #[test]
    fn toposort_detects_cycle() {
        let g = cyclic_triangle();
        let err = toposort(&g).expect_err("triangle is cyclic");
        assert!(err.node.index() < 3);
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn find_cycle_returns_closed_walk() {
        let g = cyclic_triangle();
        let cyc = find_cycle(&g).expect("triangle has a cycle");
        assert_eq!(cyc.len(), 3);
        for i in 0..cyc.len() {
            let (_, d) = g.endpoints(cyc[i]).expect("edge");
            let (s, _) = g.endpoints(cyc[(i + 1) % cyc.len()]).expect("edge");
            assert_eq!(d, s, "cycle edges must chain");
        }
    }

    #[test]
    fn find_cycle_none_on_dag() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, c, ());
        g.add_edge(b, c, ());
        assert!(find_cycle(&g).is_none());
        assert!(is_acyclic(&g));
    }

    #[test]
    fn scc_groups_cycle_nodes() {
        let mut g = cyclic_triangle();
        let d = g.add_node(());
        g.add_edge(NodeId(0), d, ());
        let comps = tarjan_scc(&g);
        assert_eq!(comps.len(), 2);
        let big = comps.iter().find(|c| c.len() == 3).expect("triangle scc");
        let mut big = big.clone();
        big.sort();
        assert_eq!(big, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn dijkstra_prefers_cheaper_path() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, c, 10.0);
        let e1 = g.add_edge(a, b, 1.0);
        let e2 = g.add_edge(b, c, 2.0);
        let sp = dijkstra(&g, &[(a, 0.0)], |e| *g.edge_data(e).expect("live"));
        assert_eq!(sp.dist[c.index()], 3.0);
        assert_eq!(sp.path_to(&g, c), Some(vec![e1, e2]));
    }

    #[test]
    fn dijkstra_multi_source() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        g.add_edge(a, t, 5.0);
        g.add_edge(b, t, 1.0);
        let sp = dijkstra(&g, &[(a, 0.0), (b, 0.0)], |e| {
            *g.edge_data(e).expect("live")
        });
        assert_eq!(sp.dist[t.index()], 1.0);
    }

    #[test]
    fn dijkstra_unreachable_is_infinite() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let sp = dijkstra(&g, &[(a, 0.0)], |_| 1.0);
        assert!(sp.dist[b.index()].is_infinite());
        assert_eq!(sp.path_to(&g, b), None);
    }

    #[test]
    fn bfs_hops_counts_edges() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let ids: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(ids[0], ids[1], ());
        g.add_edge(ids[1], ids[2], ());
        g.add_edge(ids[0], ids[2], ());
        let d = bfs_hops(&g, &[ids[0]]);
        assert_eq!(d[ids[0].index()], 0);
        assert_eq!(d[ids[2].index()], 1);
        assert_eq!(d[ids[3].index()], usize::MAX);
    }

    #[test]
    fn enumerate_paths_finds_all_simple_paths() {
        // a -> b -> d, a -> c -> d, a -> d
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, d, ());
        g.add_edge(a, c, ());
        g.add_edge(c, d, ());
        g.add_edge(a, d, ());
        let mut paths = Vec::new();
        let outcome = enumerate_paths(
            &g,
            &[a],
            |v| v == d,
            |_| 0,
            4,
            100,
            |p| paths.push(p.to_vec()),
        );
        assert_eq!(outcome, EnumerationOutcome::Complete);
        assert_eq!(paths.len(), 3);
        let mut lens: Vec<usize> = paths.iter().map(|p| p.len()).collect();
        lens.sort();
        assert_eq!(lens, vec![1, 2, 2]);
    }

    #[test]
    fn bfs_hops_to_measures_forward_distance() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        g.add_edge(d, c, ());
        let dist = bfs_hops_to(&g, &[c]);
        assert_eq!(dist[a.index()], 2);
        assert_eq!(dist[b.index()], 1);
        assert_eq!(dist[c.index()], 0);
        assert_eq!(dist[d.index()], 1);
    }

    #[test]
    fn pruned_enumeration_matches_unpruned() {
        // A long chain with a costly detour: pruning must not change the
        // emitted path set, only skip hopeless subtrees.
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..6).map(|_| g.add_node(())).collect();
        for w in n.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        // Detour from n1 to a dead-end spur.
        let spur = g.add_node(());
        g.add_edge(n[1], spur, ());
        let target = n[5];
        let mut plain = Vec::new();
        enumerate_paths(
            &g,
            &[n[0]],
            |v| v == target,
            |_| 0,
            5,
            100,
            |p| plain.push(p.to_vec()),
        );
        let dist = bfs_hops_to(&g, &[target]);
        let mut pruned = Vec::new();
        enumerate_paths(
            &g,
            &[n[0]],
            |v| v == target,
            |v| dist[v.index()],
            5,
            100,
            |p| pruned.push(p.to_vec()),
        );
        assert_eq!(plain, pruned);
        assert_eq!(pruned.len(), 1);
    }

    #[test]
    fn enumerate_paths_respects_hop_bound() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, d, ());
        g.add_edge(a, d, ());
        let mut count = 0;
        enumerate_paths(&g, &[a], |v| v == d, |_| 0, 1, 100, |_| count += 1);
        assert_eq!(count, 1, "only the direct edge fits in 1 hop");
    }

    #[test]
    fn enumerate_paths_truncates_at_cap() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let d = g.add_node(());
        for _ in 0..10 {
            g.add_edge(a, d, ());
        }
        let mut count = 0;
        let outcome = enumerate_paths(&g, &[a], |v| v == d, |_| 0, 3, 4, |_| count += 1);
        assert_eq!(outcome, EnumerationOutcome::Truncated);
        assert_eq!(count, 4);
    }

    #[test]
    fn enumerate_paths_avoids_revisiting_nodes() {
        // Cycle a->b->a plus exit b->t: simple paths a..t must not loop.
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        g.add_edge(b, t, ());
        let mut paths = Vec::new();
        let outcome = enumerate_paths(
            &g,
            &[a],
            |v| v == t,
            |_| 0,
            10,
            100,
            |p| paths.push(p.to_vec()),
        );
        assert_eq!(outcome, EnumerationOutcome::Complete);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 2);
    }

    #[test]
    fn source_equal_target_yields_empty_path() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let mut count = 0;
        enumerate_paths(
            &g,
            &[a],
            |v| v == a,
            |_| 0,
            3,
            10,
            |p| {
                assert!(p.is_empty());
                count += 1;
            },
        );
        assert_eq!(count, 1);
    }
}
