//! Regenerates **Figure 6-3**: network throughput and average latency
//! versus offered injection rate for the Shuffle workload
//! under XY, YX, ROMM, Valiant and the two BSOR selectors (8×8 mesh,
//! 2 VCs).
//!
//! ```text
//! cargo run -p bsor-bench --release --bin fig_6_3 [--quick] [--paper] [--csv]
//! ```

use bsor_bench::{figure_rates, figure_sweep, print_figure, standard_mesh};
use bsor_workloads::shuffle;

fn main() {
    let topo = standard_mesh();
    let workload = shuffle(&topo).expect("8x8 supports the workload");
    let cfg = figure_sweep(2);
    print_figure(
        "Figure 6-3: Shuffle — throughput & latency vs offered rate",
        &topo,
        &workload,
        &cfg,
        &figure_rates(),
    );
}
