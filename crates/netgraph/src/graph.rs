//! A directed multigraph with stable node ids and removable edges.
//!
//! Nodes are never removed (CDG vertices are fixed by the topology); edges
//! can be removed, which is the core operation when deriving acyclic CDGs.

use std::fmt;

/// Identifier of a node in a [`DiGraph`].
///
/// Node ids are dense indices assigned in insertion order and remain valid
/// for the lifetime of the graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of an edge in a [`DiGraph`].
///
/// Edge ids are assigned in insertion order. A removed edge's id is never
/// reused, and accessing it after removal yields `None` from
/// [`DiGraph::edge`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// Returns the id as a dense `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Returns the id as a dense `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct EdgeRecord<E> {
    src: NodeId,
    dst: NodeId,
    data: E,
}

/// A directed multigraph with node payloads `N` and edge payloads `E`.
///
/// Storage is adjacency-list based with both out- and in-neighbour lists so
/// that CDG predecessor queries are O(degree).
#[derive(Clone, Debug, Default)]
pub struct DiGraph<N, E> {
    nodes: Vec<N>,
    edges: Vec<Option<EdgeRecord<E>>>,
    out_adj: Vec<Vec<EdgeId>>,
    in_adj: Vec<Vec<EdgeId>>,
    live_edges: usize,
}

impl<N, E> DiGraph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            out_adj: Vec::new(),
            in_adj: Vec::new(),
            live_edges: 0,
        }
    }

    /// Creates an empty graph with preallocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        DiGraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            out_adj: Vec::with_capacity(nodes),
            in_adj: Vec::with_capacity(nodes),
            live_edges: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live (non-removed) edges.
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, data: N) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(data);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Adds a directed edge `src -> dst` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not a node of this graph.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, data: E) -> EdgeId {
        assert!(src.index() < self.nodes.len(), "src out of bounds");
        assert!(dst.index() < self.nodes.len(), "dst out of bounds");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Some(EdgeRecord { src, dst, data }));
        self.out_adj[src.index()].push(id);
        self.in_adj[dst.index()].push(id);
        self.live_edges += 1;
        id
    }

    /// Removes an edge; returns its payload if it was live.
    pub fn remove_edge(&mut self, edge: EdgeId) -> Option<E> {
        let rec = self.edges.get_mut(edge.index())?.take()?;
        let out = &mut self.out_adj[rec.src.index()];
        if let Some(pos) = out.iter().position(|&e| e == edge) {
            out.swap_remove(pos);
        }
        let inc = &mut self.in_adj[rec.dst.index()];
        if let Some(pos) = inc.iter().position(|&e| e == edge) {
            inc.swap_remove(pos);
        }
        self.live_edges -= 1;
        Some(rec.data)
    }

    /// Returns `(src, dst, &data)` for a live edge.
    pub fn edge(&self, edge: EdgeId) -> Option<(NodeId, NodeId, &E)> {
        self.edges
            .get(edge.index())
            .and_then(|r| r.as_ref())
            .map(|r| (r.src, r.dst, &r.data))
    }

    /// Returns the endpoints of a live edge.
    pub fn endpoints(&self, edge: EdgeId) -> Option<(NodeId, NodeId)> {
        self.edge(edge).map(|(s, d, _)| (s, d))
    }

    /// Returns a reference to the node payload.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn node(&self, node: NodeId) -> &N {
        &self.nodes[node.index()]
    }

    /// Returns a mutable reference to the node payload.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn node_mut(&mut self, node: NodeId) -> &mut N {
        &mut self.nodes[node.index()]
    }

    /// Returns a reference to a live edge's payload.
    pub fn edge_data(&self, edge: EdgeId) -> Option<&E> {
        self.edge(edge).map(|(_, _, d)| d)
    }

    /// Iterates over node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates over `(id, &payload)` pairs for all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &N)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Iterates over ids of live edges.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|_| EdgeId(i as u32)))
    }

    /// Iterates over `(id, src, dst, &payload)` for live edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId, &E)> + '_ {
        self.edges.iter().enumerate().filter_map(|(i, r)| {
            r.as_ref()
                .map(|rec| (EdgeId(i as u32), rec.src, rec.dst, &rec.data))
        })
    }

    /// Out-edges of `node` (live only).
    pub fn out_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.out_adj[node.index()]
    }

    /// In-edges of `node` (live only).
    pub fn in_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.in_adj[node.index()]
    }

    /// Successor node ids of `node` (with multiplicity for multi-edges).
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_adj[node.index()]
            .iter()
            .filter_map(move |&e| self.endpoints(e).map(|(_, d)| d))
    }

    /// Predecessor node ids of `node` (with multiplicity for multi-edges).
    pub fn predecessors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_adj[node.index()]
            .iter()
            .filter_map(move |&e| self.endpoints(e).map(|(s, _)| s))
    }

    /// Returns the first live edge `src -> dst` if any.
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.out_adj[src.index()]
            .iter()
            .copied()
            .find(|&e| self.endpoints(e).map(|(_, d)| d) == Some(dst))
    }

    /// Out-degree of `node`.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_adj[node.index()].len()
    }

    /// In-degree of `node`.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_adj[node.index()].len()
    }

    /// Removes all edges for which `pred` returns `false`.
    pub fn retain_edges(&mut self, mut pred: impl FnMut(EdgeId, NodeId, NodeId, &E) -> bool) {
        let doomed: Vec<EdgeId> = self
            .edges()
            .filter(|&(id, s, d, data)| !pred(id, s, d, data))
            .map(|(id, _, _, _)| id)
            .collect();
        for e in doomed {
            self.remove_edge(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph<u32, &'static str>, [NodeId; 4]) {
        let mut g = DiGraph::new();
        let a = g.add_node(0);
        let b = g.add_node(1);
        let c = g.add_node(2);
        let d = g.add_node(3);
        g.add_edge(a, b, "ab");
        g.add_edge(a, c, "ac");
        g.add_edge(b, d, "bd");
        g.add_edge(c, d, "cd");
        (g, [a, b, c, d])
    }

    #[test]
    fn add_and_query_nodes_edges() {
        let (g, [a, b, _c, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(*g.node(a), 0);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        let e = g.find_edge(a, b).expect("edge ab");
        assert_eq!(g.edge(e).map(|(_, _, d)| *d), Some("ab"));
    }

    #[test]
    fn remove_edge_updates_adjacency() {
        let (mut g, [a, b, _c, d]) = diamond();
        let e = g.find_edge(a, b).expect("edge ab");
        assert_eq!(g.remove_edge(e), Some("ab"));
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(b), 0);
        assert!(g.find_edge(a, b).is_none());
        // id is not reused and now resolves to nothing
        assert!(g.edge(e).is_none());
        assert_eq!(g.remove_edge(e), None);
        assert_eq!(g.in_degree(d), 2);
    }

    #[test]
    fn successors_and_predecessors() {
        let (g, [a, b, c, d]) = diamond();
        let mut succ: Vec<_> = g.successors(a).collect();
        succ.sort();
        assert_eq!(succ, vec![b, c]);
        let mut pred: Vec<_> = g.predecessors(d).collect();
        pred.sort();
        assert_eq!(pred, vec![b, c]);
    }

    #[test]
    fn retain_edges_filters() {
        let (mut g, [a, _b, _c, _d]) = diamond();
        g.retain_edges(|_, s, _, _| s == a);
        assert_eq!(g.edge_count(), 2);
        assert!(g.edges().all(|(_, s, _, _)| s == a));
    }

    #[test]
    fn multigraph_edges_supported() {
        let mut g: DiGraph<(), u8> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(a, b, 2);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.successors(a).count(), 2);
    }

    #[test]
    fn debug_formats_are_nonempty() {
        assert_eq!(format!("{:?}", NodeId(3)), "n3");
        assert_eq!(format!("{:?}", EdgeId(7)), "e7");
        assert_eq!(format!("{}", NodeId(3)), "n3");
    }
}
