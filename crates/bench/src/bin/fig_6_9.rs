//! Regenerates **Figure 6-9**: algorithm performance under **25%**
//! run-time bandwidth variation for transpose and the H.264 decoder.
//! Routes stay fixed (computed from the original estimates, §5.3) while
//! injection rates wander via the two-stage Markov-modulated process.
//!
//! ```text
//! cargo run -p bsor-bench --release --bin fig_6_9 [--quick] [--paper] [--csv]
//! ```

use bsor_bench::{
    csv_mode, rates_for, run_mode, standard_mesh, sweep_for, write_figure, StdoutSink,
};
use bsor_sim::MarkovVariation;
use bsor_workloads::{h264_decoder, transpose};

fn main() {
    let topo = standard_mesh();
    let mode = run_mode();
    let variation = MarkovVariation::new(0.25, 200.0);
    for workload in [
        transpose(&topo).expect("square"),
        h264_decoder(&topo).expect("fits"),
    ] {
        let cfg = sweep_for(mode, 2).with_variation(variation);
        write_figure(
            &mut StdoutSink,
            &format!("Figure 6-9: {} with 25% bandwidth variation", workload.name),
            &topo,
            &workload,
            &cfg,
            &rates_for(mode),
            mode,
            csv_mode(),
        )
        .expect("stdout writes cannot fail");
    }
}
