//! Synthetic bit-permutation traffic patterns (paper §5.1).

use crate::{Workload, WorkloadError};
use bsor_flow::FlowSet;
use bsor_topology::{NodeId, Topology};

/// Per-flow demand of the synthetic benchmarks in MB/s (see the crate
/// docs for the calibration against the paper's Table 6.3).
pub const SYNTHETIC_DEMAND: f64 = 25.0;

fn address_bits(topo: &Topology) -> Result<u32, WorkloadError> {
    if topo.width() != topo.height() {
        return Err(WorkloadError::NotSquare);
    }
    let n = topo.num_nodes();
    if !n.is_power_of_two() {
        return Err(WorkloadError::NotPowerOfTwo);
    }
    Ok(n.trailing_zeros())
}

fn permutation_workload(
    topo: &Topology,
    name: &str,
    dest: impl Fn(u32, u32) -> u32,
) -> Result<Workload, WorkloadError> {
    let b = address_bits(topo)?;
    let mut flows = FlowSet::new();
    for s in 0..topo.num_nodes() as u32 {
        let d = dest(s, b);
        if d != s {
            flows.push(NodeId(s), NodeId(d), SYNTHETIC_DEMAND);
        }
    }
    Ok(Workload::new(name, flows))
}

/// Transpose (paper §5.1.2): destination address rotates the source by
/// half its bits, `dᵢ = s_{(i+b/2) mod b}` — on a row-major square mesh
/// this is the matrix transpose `(x, y) → (y, x)`. Diagonal nodes have no
/// flow.
///
/// # Errors
///
/// [`WorkloadError`] if the topology is not a square power-of-two mesh.
pub fn transpose(topo: &Topology) -> Result<Workload, WorkloadError> {
    permutation_workload(topo, "transpose", |s, b| {
        let half = b / 2;
        ((s >> half) | (s << half)) & ((1 << b) - 1)
    })
}

/// Bit-complement (paper §5.1.1): `dᵢ = ¬sᵢ`. Every node has a flow.
///
/// # Errors
///
/// [`WorkloadError`] if the topology is not a square power-of-two mesh.
pub fn bit_complement(topo: &Topology) -> Result<Workload, WorkloadError> {
    permutation_workload(topo, "bit-complement", |s, b| !s & ((1 << b) - 1))
}

/// Shuffle (paper §5.1.3): `dᵢ = s_{(i−1) mod b}`, i.e. the destination
/// is the source rotated left by one bit. Nodes 0 and 2ᵇ−1 map to
/// themselves and have no flow.
///
/// # Errors
///
/// [`WorkloadError`] if the topology is not a square power-of-two mesh.
pub fn shuffle(topo: &Topology) -> Result<Workload, WorkloadError> {
    permutation_workload(topo, "shuffle", |s, b| {
        ((s << 1) | (s >> (b - 1))) & ((1 << b) - 1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsor_routing::Baseline;

    #[test]
    fn transpose_is_matrix_transpose() {
        let topo = Topology::mesh2d(8, 8);
        let w = transpose(&topo).expect("square mesh");
        assert_eq!(w.flows.len(), 56, "64 nodes minus 8 diagonal");
        for f in w.flows.iter() {
            let s = topo.coord(f.src);
            let d = topo.coord(f.dst);
            assert_eq!((s.x, s.y), (d.y, d.x), "flow must transpose coordinates");
        }
    }

    #[test]
    fn transpose_is_an_involution() {
        let topo = Topology::mesh2d(8, 8);
        let w = transpose(&topo).expect("square mesh");
        for f in w.flows.iter() {
            assert!(
                w.flows.iter().any(|g| g.src == f.dst && g.dst == f.src),
                "transpose pairs are symmetric"
            );
        }
    }

    #[test]
    fn bit_complement_covers_all_nodes() {
        let topo = Topology::mesh2d(8, 8);
        let w = bit_complement(&topo).expect("square mesh");
        assert_eq!(w.flows.len(), 64);
        for f in w.flows.iter() {
            let s = topo.coord(f.src);
            let d = topo.coord(f.dst);
            assert_eq!(
                (d.x, d.y),
                (7 - s.x, 7 - s.y),
                "complement mirrors both axes"
            );
        }
    }

    #[test]
    fn shuffle_rotates_left() {
        let topo = Topology::mesh2d(8, 8);
        let w = shuffle(&topo).expect("square mesh");
        // 0b000000 and 0b111111 are fixed points.
        assert_eq!(w.flows.len(), 62);
        for f in w.flows.iter() {
            let s = f.src.0;
            let expect = ((s << 1) | (s >> 5)) & 0x3f;
            assert_eq!(f.dst.0, expect);
        }
    }

    #[test]
    fn works_on_4x4_too() {
        let topo = Topology::mesh2d(4, 4);
        assert_eq!(transpose(&topo).expect("square").flows.len(), 12);
        assert_eq!(bit_complement(&topo).expect("square").flows.len(), 16);
        assert_eq!(shuffle(&topo).expect("square").flows.len(), 14);
    }

    #[test]
    fn rejects_non_square() {
        let topo = Topology::mesh2d(8, 4);
        assert_eq!(transpose(&topo).unwrap_err(), WorkloadError::NotSquare);
    }

    #[test]
    fn paper_table_6_3_dor_mcls() {
        // Table 6.3's synthetic rows under dimension-order routing:
        // transpose 175, bit-complement 100, shuffle 100 MB/s.
        let topo = Topology::mesh2d(8, 8);
        let t = transpose(&topo).expect("square");
        let bc = bit_complement(&topo).expect("square");
        let sh = shuffle(&topo).expect("square");
        let mcl = |w: &Workload| {
            Baseline::XY
                .select(&topo, &w.flows, 2)
                .expect("xy")
                .mcl(&topo, &w.flows)
        };
        assert_eq!(mcl(&t), 175.0);
        assert_eq!(mcl(&bc), 100.0);
        assert_eq!(mcl(&sh), 100.0);
    }
}
