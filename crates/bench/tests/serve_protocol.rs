//! Protocol round-trips against the real `bsor-serve` transports: the
//! compiled binary over stdin/stdout (good, bad and malformed requests
//! on one stream; byte-identical replays under `--no-timings`) and the
//! TCP listener with concurrent clients sharing one plan cache.

use bsor_bench::json::Json;
use bsor_bench::serve::{serve_tcp, PlanService, ServeConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Command, Stdio};
use std::sync::Arc;

/// The scripted session CI replays: every op, plus every failure mode.
const SCRIPT: &str = concat!(
    r#"{"id":1,"op":"plan","workload":"transpose","algorithm":"xy","width":4,"height":4}"#,
    "\n",
    r#"{"id":1,"op":"plan","workload":"transpose","algorithm":"xy","width":4,"height":4}"#,
    "\n",
    r#"{"id":3,"op":"evaluate","workload":"transpose","algorithm":"xy","width":4,"height":4,"rate":0.1}"#,
    "\n",
    r#"{"id":4,"op":"evaluate","workload":"transpose","algorithm":"xy","width":4,"height":4,"rate":0.2,"backend":"sim","warmup":100,"measurement":400}"#,
    "\n",
    r#"{"id":5,"op":"invalidate","links":[[0,1]]}"#,
    "\n",
    r#"{"id":6,"op":"plan","workload":"nope","algorithm":"xy"}"#,
    "\n",
    r#"{"id":7,"op":"warp"}"#,
    "\n",
    "this is not json\n",
    r#"{"id":9,"op":"stats"}"#,
    "\n",
);

fn run_binary(input: &str) -> Vec<String> {
    let output = Command::new(env!("CARGO_BIN_EXE_bsor-serve"))
        .arg("--no-timings")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .and_then(|mut child| {
            child
                .stdin
                .take()
                .expect("piped stdin")
                .write_all(input.as_bytes())?;
            child.wait_with_output()
        })
        .expect("bsor-serve runs");
    assert!(output.status.success(), "clean EOF exits 0");
    String::from_utf8(output.stdout)
        .expect("utf8 responses")
        .lines()
        .map(str::to_owned)
        .collect()
}

#[test]
fn binary_answers_good_bad_and_malformed_requests_deterministically() {
    let first = run_binary(SCRIPT);
    assert_eq!(first.len(), 9, "one response line per request line");
    let parsed: Vec<Json> = first
        .iter()
        .map(|line| Json::parse(line).expect("every response is valid JSON"))
        .collect();
    let ok = |i: usize| parsed[i].get("ok") == Some(&Json::Bool(true));
    let code = |i: usize| {
        parsed[i]
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .expect("failed responses carry a code")
    };
    assert!(ok(0) && ok(1) && ok(2) && ok(3) && ok(4) && ok(8));
    assert_eq!(first[0], first[1], "the cache hit answers byte-identically");
    assert_eq!(code(5), "unknown-workload");
    assert_eq!(code(6), "unknown-op");
    assert_eq!(code(7), "bad-json");
    let stats = parsed[8].get("result").expect("stats result");
    assert_eq!(
        stats.get("solves").and_then(Json::as_u64),
        Some(1),
        "one unique key planned, later requests hit or were invalidated"
    );
    // The determinism contract: same request stream, byte-identical
    // response stream.
    assert_eq!(first, run_binary(SCRIPT));
}

#[test]
fn file_loaded_topology_plans_evaluates_and_invalidates() {
    let spec = concat!(
        "file:",
        env!("CARGO_MANIFEST_DIR"),
        "/../../assets/topologies/wan5.topo"
    );
    let plan = format!(
        r#"{{"id":1,"op":"plan","topology":"{spec}","workload":"uniform-random","algorithm":"bsor-dijkstra","vcs":1}}"#
    );
    let script = format!(
        concat!(
            "{plan}\n",
            "{plan}\n",
            r#"{{"id":3,"op":"evaluate","topology":"{spec}","workload":"uniform-random","algorithm":"bsor-dijkstra","vcs":1,"rate":0.1}}"#,
            "\n",
            r#"{{"id":4,"op":"invalidate","links":[[0,1]]}}"#,
            "\n",
            "{plan}\n",
            r#"{{"id":6,"op":"plan","topology":"file:assets/topologies/missing.topo","workload":"uniform-random","algorithm":"bsor-dijkstra"}}"#,
            "\n",
            r#"{{"id":7,"op":"stats"}}"#,
            "\n",
        ),
        plan = plan,
        spec = spec,
    );
    let first = run_binary(&script);
    assert_eq!(first.len(), 7, "one response line per request line");
    let parsed: Vec<Json> = first
        .iter()
        .map(|line| Json::parse(line).expect("every response is valid JSON"))
        .collect();
    let ok = |i: usize| parsed[i].get("ok") == Some(&Json::Bool(true));
    assert!(ok(0) && ok(1) && ok(2) && ok(3) && ok(4) && ok(6));
    assert_eq!(first[0], first[1], "the cache hit answers byte-identically");
    assert!(
        !ok(5),
        "a missing topology file is a typed per-request error"
    );
    assert_eq!(
        parsed[5]
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("bad-request")
    );
    let stats = parsed[6].get("result").expect("stats result");
    assert_eq!(
        stats.get("solves").and_then(Json::as_u64),
        Some(2),
        "the invalidate forced exactly one re-solve of the file topology"
    );
    // Same stream, byte-identical responses — file-loaded topologies keep
    // the determinism contract.
    assert_eq!(first, run_binary(&script));
}

#[test]
fn invalidate_rejects_out_of_range_node_ids() {
    const SCRIPT: &str = concat!(
        // Over u32 — rejected even before anything is cached.
        r#"{"id":1,"op":"invalidate","links":[[0,4294967296]]}"#,
        "\n",
        // Cache a 4x4 plan (16 nodes, ids 0..=15)...
        r#"{"id":2,"op":"plan","workload":"transpose","algorithm":"xy","width":4,"height":4}"#,
        "\n",
        // ...so id 16 can't name a real link: typed error, not a no-op.
        r#"{"id":3,"op":"invalidate","links":[[0,16]]}"#,
        "\n",
        r#"{"id":4,"op":"invalidate","links":[[0,15]]}"#,
        "\n",
    );
    let lines = run_binary(SCRIPT);
    assert_eq!(lines.len(), 4, "one response line per request line");
    let parsed: Vec<Json> = lines
        .iter()
        .map(|line| Json::parse(line).expect("every response is valid JSON"))
        .collect();
    let error = |i: usize| {
        assert_eq!(
            parsed[i].get("ok"),
            Some(&Json::Bool(false)),
            "{}",
            lines[i]
        );
        let error = parsed[i]
            .get("error")
            .expect("failed responses carry an error");
        (
            error.get("code").and_then(Json::as_str).expect("code"),
            error
                .get("message")
                .and_then(Json::as_str)
                .expect("message"),
        )
    };
    let (code, message) = error(0);
    assert_eq!(code, "bad-request");
    assert!(
        message.contains("[0, 4294967296]"),
        "the error names the offending pair: {message}"
    );
    assert_eq!(parsed[1].get("ok"), Some(&Json::Bool(true)));
    let (code, message) = error(2);
    assert_eq!(code, "bad-request");
    assert!(
        message.contains("[0, 16]"),
        "the error names the offending pair: {message}"
    );
    assert!(
        message.contains("16 nodes"),
        "the error states the bound: {message}"
    );
    assert_eq!(
        parsed[3].get("ok"),
        Some(&Json::Bool(true)),
        "in-range ids still invalidate"
    );
}

#[test]
fn tcp_clients_share_one_plan_cache() {
    let service = Arc::new(PlanService::new(ServeConfig {
        timings: false,
        ..ServeConfig::default()
    }));
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
    let addr = listener.local_addr().expect("bound");
    {
        let service = service.clone();
        std::thread::spawn(move || {
            let _ = serve_tcp(service, listener);
        });
    }
    let request =
        r#"{"id":"c","op":"plan","workload":"neighbor","algorithm":"yx","width":4,"height":4}"#;
    let mut replies = Vec::new();
    for _ in 0..2 {
        let mut stream = TcpStream::connect(addr).expect("connects");
        writeln!(stream, "{request}").expect("writes");
        let mut line = String::new();
        BufReader::new(&stream)
            .read_line(&mut line)
            .expect("one response line");
        replies.push(line.trim().to_owned());
    }
    assert_eq!(replies[0], replies[1], "both clients get the cached plan");
    let parsed = Json::parse(&replies[0]).expect("valid response");
    assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(
        service.cache().stats().solves,
        1,
        "the second connection was a cache hit"
    );
    assert_eq!(service.requests(), 2);
}
