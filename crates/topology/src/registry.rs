//! Name-keyed topology construction.
//!
//! The paper stresses that BSOR is topology independent; this registry
//! makes that independence operational: drivers (the sweep CLI, tests,
//! examples) enumerate and build topologies by name instead of
//! hard-wiring constructor calls, so adding a topology family is a
//! one-file plug-in rather than an edit to every binary.
//!
//! All factories take `(width, height)` grid dimensions; families that
//! are not grids reinterpret them (`ring` uses `width × height` nodes,
//! `hypercube` needs `width × height` to be a power of two and uses its
//! log2 as the dimension), so one CLI syntax — `name:WxH` — covers every
//! family.
//!
//! # Spec strings
//!
//! Parameterized families that do not fit the `WxH` shape are addressed
//! through [`TopologyRegistry::build_spec`] with a `prefix:<arg>` spec
//! string, mirroring the workload registry's grammar:
//!
//! ```text
//! spec      := "WxH"                     (bare dims: a mesh)
//!            | name ":" "WxH"            (grid-dimension families)
//!            | family ":" arg            (parameterized families)
//! family    := "dragonfly" (arg = "a,g,h")
//!            | "fattree"   (arg = k)
//!            | "fullmesh"  (arg = n)
//!            | "file"      (arg = path to an edge-list topology file)
//! ```
//!
//! Family prefixes win over `name:WxH` parsing (none of the standard
//! families take `WxH` arguments, so there is no ambiguity in
//! practice). Unknown names return
//! [`TopologyError::UnknownTopology`]; a known family with a malformed
//! argument returns [`TopologyError::BadSpec`]. The parser never
//! panics, whatever the spec text.

use crate::graph;
use crate::net::Topology;
use std::error::Error;
use std::fmt;

/// Why a registry lookup or build failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// No factory is registered under the requested name.
    UnknownTopology {
        /// The name that failed to resolve.
        name: String,
    },
    /// The dimensions are invalid for the requested family.
    BadDimensions {
        /// Topology family name.
        name: String,
        /// Requested width.
        width: u16,
        /// Requested height.
        height: u16,
        /// Human-readable constraint that was violated.
        reason: String,
    },
    /// A known family was addressed with a malformed or rejected
    /// argument (e.g. `dragonfly:nope`, or an unreadable `file:` path).
    BadSpec {
        /// The full offending spec string.
        spec: String,
        /// Human-readable constraint that was violated.
        reason: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownTopology { name } => write!(f, "unknown topology '{name}'"),
            TopologyError::BadDimensions {
                name,
                width,
                height,
                reason,
            } => write!(f, "topology '{name}' rejects {width}x{height}: {reason}"),
            TopologyError::BadSpec { spec, reason } => {
                write!(f, "bad topology spec '{spec}': {reason}")
            }
        }
    }
}

impl Error for TopologyError {}

/// A topology constructor: `(width, height)` in, topology out.
pub type TopologyFactory = Box<dyn Fn(u16, u16) -> Result<Topology, TopologyError> + Send + Sync>;

/// A parameterized topology family: build from the argument text after
/// the `prefix:` of a spec string.
pub type TopologyFamilyFactory = Box<dyn Fn(&str) -> Result<Topology, TopologyError> + Send + Sync>;

struct Family {
    prefix: String,
    /// Display form shown in listings, e.g. `dragonfly:<a,g,h>`.
    placeholder: String,
    factory: TopologyFamilyFactory,
}

/// Name-keyed registry of topology factories.
///
/// ```
/// use bsor_topology::{TopologyKind, TopologyRegistry};
///
/// let registry = TopologyRegistry::standard();
/// assert_eq!(registry.names(), vec!["mesh", "torus", "ring", "hypercube"]);
/// assert_eq!(
///     registry.family_specs(),
///     vec!["dragonfly:<a,g,h>", "fattree:<k>", "fullmesh:<n>", "file:<path>"],
/// );
/// let torus = registry.build("torus", 4, 4).expect("valid dims");
/// assert_eq!(torus.kind(), TopologyKind::Torus2D);
/// // 8 nodes in a 4x2 footprint fold into a dimension-3 hypercube.
/// let cube = registry.build("hypercube", 4, 2).expect("power of two");
/// assert_eq!(cube.num_nodes(), 8);
/// // Parameterized families resolve through spec strings.
/// let df = registry.build_spec("dragonfly:2,3,2").expect("valid spec");
/// assert_eq!(df.kind(), TopologyKind::Dragonfly);
/// assert_eq!(df.num_nodes(), 6);
/// ```
#[derive(Default)]
pub struct TopologyRegistry {
    entries: Vec<(String, TopologyFactory)>,
    families: Vec<Family>,
}

impl TopologyRegistry {
    /// An empty registry.
    pub fn new() -> TopologyRegistry {
        TopologyRegistry::default()
    }

    /// The four built-in grid families (`mesh`, `torus`, `ring`,
    /// `hypercube`) plus the parameterized spec families
    /// (`dragonfly:<a,g,h>`, `fattree:<k>`, `fullmesh:<n>`,
    /// `file:<path>`).
    pub fn standard() -> TopologyRegistry {
        let mut r = TopologyRegistry::new();
        r.register("mesh", |w, h| {
            if w == 0 || h == 0 || (w as usize * h as usize) < 2 {
                return Err(bad("mesh", w, h, "needs positive dims and >= 2 nodes"));
            }
            Ok(Topology::mesh2d(w, h))
        });
        r.register("torus", |w, h| {
            if w < 3 || h < 3 {
                return Err(bad("torus", w, h, "both dimensions must be >= 3"));
            }
            Ok(Topology::torus2d(w, h))
        });
        r.register("ring", |w, h| {
            let n = w as usize * h as usize;
            if n < 3 || n > u16::MAX as usize {
                return Err(bad("ring", w, h, "needs 3..=65535 nodes (width x height)"));
            }
            Ok(Topology::ring(n as u16))
        });
        r.register("hypercube", |w, h| {
            let n = w as usize * h as usize;
            if n < 2 || !n.is_power_of_two() || n > 1 << 10 {
                return Err(bad(
                    "hypercube",
                    w,
                    h,
                    "width x height must be a power of two in 2..=1024",
                ));
            }
            Ok(Topology::hypercube(n.trailing_zeros() as u8))
        });
        r.register_family("dragonfly", "dragonfly:<a,g,h>", |arg: &str| {
            let spec = || format!("dragonfly:{arg}");
            let parts: Vec<&str> = arg.split(',').collect();
            if parts.len() != 3 {
                return Err(TopologyError::BadSpec {
                    spec: spec(),
                    reason: "expected three comma-separated integers a,g,h".to_owned(),
                });
            }
            let mut nums = [0u16; 3];
            for (slot, raw) in nums.iter_mut().zip(&parts) {
                *slot = raw.trim().parse().map_err(|_| TopologyError::BadSpec {
                    spec: spec(),
                    reason: format!("'{raw}' is not an unsigned 16-bit integer"),
                })?;
            }
            graph::dragonfly(nums[0], nums[1], nums[2])
        });
        r.register_family("fattree", "fattree:<k>", |arg: &str| {
            let k = arg.trim().parse().map_err(|_| TopologyError::BadSpec {
                spec: format!("fattree:{arg}"),
                reason: "k must be an unsigned 16-bit integer".to_owned(),
            })?;
            graph::fat_tree(k)
        });
        r.register_family("fullmesh", "fullmesh:<n>", |arg: &str| {
            let n = arg.trim().parse().map_err(|_| TopologyError::BadSpec {
                spec: format!("fullmesh:{arg}"),
                reason: "n must be an unsigned 16-bit integer".to_owned(),
            })?;
            graph::full_mesh(n)
        });
        r.register_family("file", "file:<path>", |arg: &str| {
            graph::load_topology_file(arg).map_err(|e| TopologyError::BadSpec {
                spec: format!("file:{arg}"),
                reason: e.to_string(),
            })
        });
        r
    }

    /// Registers (or replaces) a factory under `name`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(u16, u16) -> Result<Topology, TopologyError> + Send + Sync + 'static,
    ) {
        let name = name.into();
        self.entries.retain(|(n, _)| *n != name);
        self.entries.push((name, Box::new(factory)));
    }

    /// The factory registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&TopologyFactory> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, f)| f)
    }

    /// Registered names, in registration order (family placeholders are
    /// listed by [`TopologyRegistry::family_specs`]).
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Registers (or replaces) a parameterized family addressed as
    /// `prefix:<arg>` spec strings. `placeholder` is the display form
    /// listings show (e.g. `dragonfly:<a,g,h>`).
    pub fn register_family(
        &mut self,
        prefix: impl Into<String>,
        placeholder: impl Into<String>,
        factory: impl Fn(&str) -> Result<Topology, TopologyError> + Send + Sync + 'static,
    ) {
        let prefix = prefix.into();
        self.families.retain(|f| f.prefix != prefix);
        self.families.push(Family {
            prefix,
            placeholder: placeholder.into(),
            factory: Box::new(factory),
        });
    }

    /// Display specs of the registered parameterized families, in
    /// registration order (e.g. `["dragonfly:<a,g,h>", …]`).
    pub fn family_specs(&self) -> Vec<&str> {
        self.families
            .iter()
            .map(|f| f.placeholder.as_str())
            .collect()
    }

    /// Builds the topology `name` with the given grid dimensions.
    ///
    /// # Errors
    ///
    /// [`TopologyError::UnknownTopology`] for unregistered names,
    /// [`TopologyError::BadDimensions`] when the family rejects the
    /// dimensions.
    pub fn build(&self, name: &str, width: u16, height: u16) -> Result<Topology, TopologyError> {
        let factory = self
            .get(name)
            .ok_or_else(|| TopologyError::UnknownTopology {
                name: name.to_owned(),
            })?;
        factory(width, height)
    }

    /// Builds a topology from a spec string: bare `WxH` dims (a mesh),
    /// `name:WxH` for the grid-dimension families, or `family:<arg>`
    /// for the parameterized families (see the [module docs](self) for
    /// the grammar).
    ///
    /// # Errors
    ///
    /// [`TopologyError::UnknownTopology`] for unregistered names and
    /// families (carrying the full offending spec),
    /// [`TopologyError::BadSpec`] for malformed family arguments or
    /// specs that fit no grammar production, and
    /// [`TopologyError::BadDimensions`] when a grid family rejects its
    /// dimensions. Never panics, whatever the spec text.
    pub fn build_spec(&self, spec: &str) -> Result<Topology, TopologyError> {
        if let Some((w, h)) = parse_dims(spec) {
            return self.build("mesh", w, h);
        }
        if let Some((prefix, arg)) = spec.split_once(':') {
            if let Some(family) = self.families.iter().find(|f| f.prefix == prefix) {
                return (family.factory)(arg);
            }
            if let Some((w, h)) = parse_dims(arg) {
                return self.build(prefix, w, h);
            }
            return Err(TopologyError::BadSpec {
                spec: spec.to_owned(),
                reason: "expected WxH dimensions or a registered family argument".to_owned(),
            });
        }
        if let Some(family) = self.families.iter().find(|f| f.prefix == spec) {
            return Err(TopologyError::BadSpec {
                spec: spec.to_owned(),
                reason: format!("family needs a parameter: {}", family.placeholder),
            });
        }
        Err(TopologyError::UnknownTopology {
            name: spec.to_owned(),
        })
    }
}

/// `WxH` with both dimensions nonzero, or `None`.
fn parse_dims(s: &str) -> Option<(u16, u16)> {
    let (w, h) = s.split_once('x')?;
    let (w, h) = (w.parse().ok()?, h.parse().ok()?);
    if w == 0 || h == 0 {
        return None;
    }
    Some((w, h))
}

fn bad(name: &str, width: u16, height: u16, reason: &str) -> TopologyError {
    TopologyError::BadDimensions {
        name: name.to_owned(),
        width,
        height,
        reason: reason.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::TopologyKind;

    #[test]
    fn standard_names_round_trip() {
        let r = TopologyRegistry::standard();
        for name in r.names() {
            assert!(r.get(name).is_some());
        }
        assert!(r.get("klein-bottle").is_none());
    }

    #[test]
    fn builds_every_family() {
        let r = TopologyRegistry::standard();
        assert_eq!(r.build("mesh", 4, 4).unwrap().kind(), TopologyKind::Mesh2D);
        assert_eq!(
            r.build("torus", 4, 4).unwrap().kind(),
            TopologyKind::Torus2D
        );
        let ring = r.build("ring", 6, 1).unwrap();
        assert_eq!(ring.kind(), TopologyKind::Ring);
        assert_eq!(ring.num_nodes(), 6);
        let cube = r.build("hypercube", 8, 2).unwrap();
        assert_eq!(cube.kind(), TopologyKind::Hypercube);
        assert_eq!(cube.num_nodes(), 16);
    }

    #[test]
    fn bad_dimensions_are_typed_errors_not_panics() {
        let r = TopologyRegistry::standard();
        assert!(matches!(
            r.build("torus", 2, 4),
            Err(TopologyError::BadDimensions { .. })
        ));
        assert!(matches!(
            r.build("hypercube", 3, 1),
            Err(TopologyError::BadDimensions { .. })
        ));
        assert!(matches!(
            r.build("ring", 2, 1),
            Err(TopologyError::BadDimensions { .. })
        ));
        assert!(matches!(
            r.build("mesh", 0, 5),
            Err(TopologyError::BadDimensions { .. })
        ));
        let err = r.build("nope", 4, 4).unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn build_spec_covers_every_grammar_production() {
        let r = TopologyRegistry::standard();
        // Bare dims are a mesh.
        assert_eq!(r.build_spec("4x4").unwrap().kind(), TopologyKind::Mesh2D);
        // name:WxH routes through the grid factories.
        assert_eq!(
            r.build_spec("torus:4x4").unwrap().kind(),
            TopologyKind::Torus2D
        );
        assert_eq!(r.build_spec("ring:6x1").unwrap().num_nodes(), 6);
        // family:<arg> routes through the family factories.
        assert_eq!(
            r.build_spec("fattree:4").unwrap().kind(),
            TopologyKind::FatTree
        );
        assert_eq!(r.build_spec("fullmesh:8").unwrap().num_links(), 56);
    }

    #[test]
    fn build_spec_is_typed_on_every_failure_mode() {
        let r = TopologyRegistry::standard();
        // Unknown name / unknown family.
        assert!(matches!(
            r.build_spec("klein-bottle"),
            Err(TopologyError::UnknownTopology { .. })
        ));
        assert!(matches!(
            r.build_spec("nowhere:4x4"),
            Err(TopologyError::UnknownTopology { .. })
        ));
        // Known family, malformed argument.
        for spec in [
            "dragonfly:",
            "dragonfly:2,3",
            "dragonfly:a,b,c",
            "fattree:nope",
            "fattree:3",
            "fullmesh:1",
            "file:/nonexistent/nowhere.topo",
        ] {
            assert!(
                matches!(r.build_spec(spec), Err(TopologyError::BadSpec { .. })),
                "spec {spec:?}"
            );
        }
        // Bare family prefix points at the placeholder.
        let err = r.build_spec("dragonfly").unwrap_err();
        assert!(err.to_string().contains("dragonfly:<a,g,h>"), "{err}");
        // Unknown prefix with a non-WxH argument.
        assert!(matches!(
            r.build_spec("nope:not-dims"),
            Err(TopologyError::BadSpec { .. })
        ));
        // Grid family rejecting its dims still surfaces BadDimensions.
        assert!(matches!(
            r.build_spec("torus:2x2"),
            Err(TopologyError::BadDimensions { .. })
        ));
    }

    #[test]
    fn custom_registration_replaces() {
        let mut r = TopologyRegistry::new();
        r.register("line", |w, _| Ok(Topology::mesh2d(w, 1)));
        assert_eq!(r.names(), vec!["line"]);
        r.register("line", |w, _| Ok(Topology::mesh2d(w.max(2), 1)));
        assert_eq!(r.names().len(), 1);
        assert_eq!(r.build("line", 1, 1).unwrap().num_nodes(), 2);
    }
}
