//! Crate-level smoke test: Dijkstra shortest paths on a graph with a
//! hand-checkable optimum.

use bsor_netgraph::{algo, DiGraph};

#[test]
fn dijkstra_picks_the_cheap_detour() {
    // a --1--> b --1--> d, a --10--> d: the two-hop route wins.
    let mut g: DiGraph<&str, f64> = DiGraph::new();
    let a = g.add_node("a");
    let b = g.add_node("b");
    let c = g.add_node("c");
    let d = g.add_node("d");
    g.add_edge(a, b, 1.0);
    g.add_edge(b, d, 1.0);
    let direct = g.add_edge(a, d, 10.0);
    g.add_edge(c, d, 1.0); // c is unreachable from a

    let w = |e: bsor_netgraph::EdgeId| *g.edge(e).expect("live edge").2;
    let sp = algo::dijkstra(&g, &[(a, 0.0)], w);
    assert_eq!(sp.dist[a.index()], 0.0);
    assert_eq!(sp.dist[b.index()], 1.0);
    assert_eq!(sp.dist[d.index()], 2.0);
    assert!(sp.dist[c.index()].is_infinite());

    let path = sp.path_to(&g, d).expect("reachable");
    assert_eq!(path.len(), 2);
    assert!(!path.contains(&direct), "must avoid the weight-10 edge");

    assert_eq!(algo::bfs_hops(&g, &[a])[d.index()], 1, "hop-wise direct");
}
