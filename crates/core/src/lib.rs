//! # bsor — Bandwidth-Sensitive Oblivious Routing
//!
//! A library reproduction of *Application-Aware Deadlock-Free Oblivious
//! Routing* (Kinsy et al., ISCA 2009 / MIT 2009): given an application's
//! flows with estimated bandwidth demands, compute deadlock-free routes
//! that minimize the **maximum channel load** (MCL) of a network-on-chip.
//!
//! The paper's offline framework (§3.2) is implemented verbatim by
//! [`BsorBuilder`]:
//!
//! 1. derive an acyclic channel dependence graph (CDG) from the network,
//! 2. lift it to a flow network `GA`,
//! 3. choose one route per flow with a selector function (MILP or
//!    weighted-Dijkstra),
//! 4. repeat with other acyclic CDGs,
//! 5. keep the best (lowest-MCL) route set.
//!
//! ```
//! use bsor::{BsorBuilder, SelectorKind};
//! use bsor_topology::Topology;
//! use bsor_workloads::transpose;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mesh = Topology::mesh2d(4, 4);
//! let workload = transpose(&mesh)?;
//! let result = BsorBuilder::new(&mesh, &workload.flows).vcs(2).run()?;
//! // Dimension-order routing needs 75 MB/s on its worst channel here;
//! // BSOR spreads the transpose to 50.
//! assert!(result.mcl <= 50.0);
//! # Ok(())
//! # }
//! ```
//!
//! The sub-crates are re-exported under module aliases
//! ([`topology`], [`cdg`], [`flow`], [`routing`], [`sim`], [`workloads`],
//! [`lp`], [`netgraph`]) so applications can depend on `bsor` alone.

pub use bsor_cdg as cdg;
pub use bsor_flow as flow;
pub use bsor_lp as lp;
pub use bsor_netgraph as netgraph;
pub use bsor_routing as routing;
pub use bsor_sim as sim;
pub use bsor_topology as topology;
pub use bsor_workloads as workloads;

pub mod registry;

pub use bsor_sim::{
    AlgorithmError, EvalError, EvalPoint, Evaluation, Evaluator, Experiment, ExperimentError,
    PlanCache, PlanError, PlanId, PlanKey, PlanStats, Planner, RouteAlgorithm, RoutePlan, Scenario,
    ScenarioBuilder, ScenarioCtx, SimEvaluator, StaticMclEvaluator,
};
pub use bsor_topology::{TopologyError, TopologyRegistry};
pub use bsor_workloads::{workload_by_name, WorkloadRegistry};
pub use registry::{AlgorithmRegistry, BsorAlgorithm, RegistryConfig};

use bsor_cdg::{AcyclicCdg, CdgError, LayerRecipe, TurnModel};
use bsor_flow::{FlowNetwork, FlowSet, FlowSetError};
use bsor_routing::selectors::{DijkstraSelector, MilpSelector};
use bsor_routing::{deadlock, RouteSet, SelectError};
use bsor_topology::Topology;
use std::error::Error;
use std::fmt;

/// A recipe for deriving one (or a family of) acyclic CDGs to explore.
#[derive(Clone, Debug)]
pub enum CdgStrategy {
    /// One specific turn model.
    TurnModel(TurnModel),
    /// All deadlock-free two-turn models of the topology (12 on a 2-D
    /// mesh) — the paper's main exploration set.
    AllTurnModels,
    /// Randomized cycle breaking that preserves all-pairs routability
    /// (grids only — a turn-model skeleton is protected).
    AdHoc {
        /// RNG seed.
        seed: u64,
    },
    /// Unprotected randomized cycle breaking: works on any topology
    /// (rings, tori, hypercubes) but may leave some node pairs
    /// unroutable, in which case the CDG is recorded as skipped.
    AdHocAny {
        /// RNG seed.
        seed: u64,
    },
    /// Up*/down* spanning-tree escape ordering: works on any topology
    /// and keeps every pair routable on symmetric graphs even at one
    /// VC (the VC-free escape path for arbitrary graphs).
    UpDown,
    /// Turn model plus "any turn when climbing to a higher VC".
    EscalatingVc(TurnModel),
    /// Independent per-VC virtual networks.
    VirtualNetworks(Vec<LayerRecipe>),
}

impl CdgStrategy {
    /// Expands the strategy into concrete acyclic CDGs with `vcs` virtual
    /// channels. Failures (e.g. a turn model on a torus) surface as
    /// per-CDG errors.
    fn expand(&self, topo: &Topology, vcs: u8) -> Vec<Result<AcyclicCdg, CdgError>> {
        match self {
            CdgStrategy::TurnModel(m) => vec![AcyclicCdg::turn_model(topo, vcs, m)],
            CdgStrategy::AllTurnModels => match TurnModel::valid_models(topo) {
                Err(e) => vec![Err(e)],
                Ok(models) => models
                    .into_iter()
                    .map(|m| AcyclicCdg::turn_model(topo, vcs, &m))
                    .collect(),
            },
            CdgStrategy::AdHoc { seed } => vec![AcyclicCdg::ad_hoc_routable(topo, vcs, *seed)],
            CdgStrategy::AdHocAny { seed } => vec![Ok(AcyclicCdg::ad_hoc(topo, vcs, *seed))],
            CdgStrategy::UpDown => vec![AcyclicCdg::up_down(topo, vcs)],
            CdgStrategy::EscalatingVc(m) => vec![AcyclicCdg::escalating_vc(topo, vcs, m)],
            CdgStrategy::VirtualNetworks(layers) => {
                vec![AcyclicCdg::virtual_networks(topo, layers)]
            }
        }
    }
}

/// Which selector function `SF` drives route selection.
#[derive(Clone, Debug)]
pub enum SelectorKind {
    /// The scalable weighted-shortest-path heuristic (paper §3.6).
    Dijkstra(DijkstraSelector),
    /// The mixed integer-linear program (paper §3.5).
    Milp(MilpSelector),
}

impl Default for SelectorKind {
    fn default() -> Self {
        SelectorKind::Dijkstra(DijkstraSelector::new())
    }
}

/// Routes found on one explored CDG.
#[derive(Clone, Debug)]
pub struct ExploredRoutes {
    /// The selected routes.
    pub routes: RouteSet,
    /// Their maximum channel load in MB/s.
    pub mcl: f64,
    /// Mean route length in hops.
    pub mean_hops: f64,
}

/// Outcome of exploring one acyclic CDG.
#[derive(Clone, Debug)]
pub struct ExplorationRecord {
    /// Name of the CDG derivation (e.g. `"west-first"`, `"ad-hoc-7"`).
    pub cdg: String,
    /// Routes and MCL, or why this CDG was skipped.
    pub outcome: Result<ExploredRoutes, String>,
}

/// The best route set found by the framework.
#[derive(Clone, Debug)]
pub struct BsorResult {
    /// The winning routes (deadlock-free, validated).
    pub routes: RouteSet,
    /// Their maximum channel load in MB/s.
    pub mcl: f64,
    /// Name of the CDG that produced them.
    pub cdg: String,
    /// Every CDG explored, in order.
    pub explored: Vec<ExplorationRecord>,
}

/// Errors from the BSOR framework.
#[derive(Clone, Debug)]
pub enum BsorError {
    /// The flow set failed validation.
    InvalidFlows(FlowSetError),
    /// No explored CDG produced a usable route set; the records hold the
    /// per-CDG reasons.
    NoUsableCdg(Vec<ExplorationRecord>),
}

impl fmt::Display for BsorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BsorError::InvalidFlows(e) => write!(f, "invalid flow set: {e}"),
            BsorError::NoUsableCdg(records) => {
                write!(
                    f,
                    "no usable acyclic CDG among the {} explored",
                    records.len()
                )?;
                // Surface one concrete reason so blanket failures (every
                // CDG refused by e.g. a hop budget) stay diagnosable from
                // the one-line error.
                if let Some(reason) = records.iter().find_map(|r| r.outcome.as_ref().err()) {
                    write!(f, " (first failure: {reason})")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for BsorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BsorError::InvalidFlows(e) => Some(e),
            BsorError::NoUsableCdg(_) => None,
        }
    }
}

impl From<FlowSetError> for BsorError {
    fn from(e: FlowSetError) -> Self {
        BsorError::InvalidFlows(e)
    }
}

/// Builder for a BSOR route computation (the paper's framework, §3.2).
#[derive(Clone, Debug)]
pub struct BsorBuilder<'a> {
    topo: &'a Topology,
    flows: &'a FlowSet,
    vcs: u8,
    strategies: Vec<CdgStrategy>,
    selector: SelectorKind,
}

impl<'a> BsorBuilder<'a> {
    /// Starts a computation over `topo` for `flows`, with 2 VCs, the
    /// Dijkstra selector, and the paper's exploration set (all valid
    /// turn models plus three ad-hoc CDGs).
    pub fn new(topo: &'a Topology, flows: &'a FlowSet) -> Self {
        BsorBuilder {
            topo,
            flows,
            vcs: 2,
            strategies: vec![
                CdgStrategy::AllTurnModels,
                CdgStrategy::AdHoc { seed: 1 },
                CdgStrategy::AdHoc { seed: 2 },
                CdgStrategy::AdHoc { seed: 3 },
            ],
            selector: SelectorKind::default(),
        }
    }

    /// Sets the number of virtual channels per link.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= vcs <= 8`.
    #[must_use]
    pub fn vcs(mut self, vcs: u8) -> Self {
        assert!((1..=8).contains(&vcs), "vcs must be 1..=8");
        self.vcs = vcs;
        self
    }

    /// Replaces the exploration strategies.
    #[must_use]
    pub fn strategies(mut self, strategies: Vec<CdgStrategy>) -> Self {
        self.strategies = strategies;
        self
    }

    /// Appends one strategy.
    #[must_use]
    pub fn add_strategy(mut self, strategy: CdgStrategy) -> Self {
        self.strategies.push(strategy);
        self
    }

    /// Sets the selector function.
    #[must_use]
    pub fn selector(mut self, selector: SelectorKind) -> Self {
        self.selector = selector;
        self
    }

    fn select_on(&self, acyclic: &AcyclicCdg) -> Result<RouteSet, SelectError> {
        let net = FlowNetwork::new(self.topo, acyclic);
        match &self.selector {
            SelectorKind::Dijkstra(s) => s.select(&net, self.flows),
            SelectorKind::Milp(s) => s.select(&net, self.flows).map(|(r, _)| r),
        }
    }

    /// Explores every CDG and returns a record per CDG (the raw material
    /// of the paper's Tables 6.1/6.2).
    ///
    /// # Errors
    ///
    /// [`BsorError::InvalidFlows`] if the flow set fails validation.
    pub fn explore(&self) -> Result<Vec<ExplorationRecord>, BsorError> {
        self.flows.validate(self.topo)?;
        let mut records = Vec::new();
        for strategy in &self.strategies {
            for derived in strategy.expand(self.topo, self.vcs) {
                let record = match derived {
                    Err(e) => ExplorationRecord {
                        cdg: format!("{strategy:?}"),
                        outcome: Err(e.to_string()),
                    },
                    Ok(acyclic) => {
                        let cdg = acyclic.name().to_owned();
                        let outcome = match self.select_on(&acyclic) {
                            Err(e) => Err(e.to_string()),
                            Ok(routes) => {
                                debug_assert!(routes
                                    .validate(self.topo, self.flows, self.vcs)
                                    .is_ok());
                                debug_assert!(deadlock::is_deadlock_free(
                                    self.topo, &routes, self.vcs
                                ));
                                let mcl = routes.mcl(self.topo, self.flows);
                                let mean_hops = routes.mean_hops();
                                Ok(ExploredRoutes {
                                    routes,
                                    mcl,
                                    mean_hops,
                                })
                            }
                        };
                        ExplorationRecord { cdg, outcome }
                    }
                };
                records.push(record);
            }
        }
        Ok(records)
    }

    /// Runs the full framework: explore every CDG, keep the best routes.
    ///
    /// # Errors
    ///
    /// * [`BsorError::InvalidFlows`] for malformed flow sets.
    /// * [`BsorError::NoUsableCdg`] when every exploration failed.
    pub fn run(&self) -> Result<BsorResult, BsorError> {
        let explored = self.explore()?;
        let mut best: Option<(usize, f64)> = None;
        for (i, rec) in explored.iter().enumerate() {
            if let Ok(found) = &rec.outcome {
                let better = match best {
                    None => true,
                    Some((_, mcl)) => found.mcl < mcl,
                };
                if better {
                    best = Some((i, found.mcl));
                }
            }
        }
        match best {
            None => Err(BsorError::NoUsableCdg(explored)),
            Some((i, mcl)) => {
                let routes = match &explored[i].outcome {
                    Ok(found) => found.routes.clone(),
                    Err(_) => unreachable!("best index points at a success"),
                };
                let cdg = explored[i].cdg.clone();
                Ok(BsorResult {
                    routes,
                    mcl,
                    cdg,
                    explored,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsor_lp::MilpOptions;
    use bsor_routing::Baseline;
    use bsor_workloads::{bit_complement, transpose};

    #[test]
    fn framework_beats_xy_on_4x4_transpose() {
        let topo = Topology::mesh2d(4, 4);
        let w = transpose(&topo).expect("square");
        let result = BsorBuilder::new(&topo, &w.flows).run().expect("routable");
        let xy = Baseline::XY
            .select(&topo, &w.flows, 2)
            .expect("xy")
            .mcl(&topo, &w.flows);
        assert!(result.mcl < xy, "BSOR {} vs XY {xy}", result.mcl);
        assert!(deadlock::is_deadlock_free(&topo, &result.routes, 2));
        result.routes.validate(&topo, &w.flows, 2).expect("valid");
        assert!(result.explored.len() >= 12 + 3);
    }

    #[test]
    fn framework_matches_xy_on_bit_complement() {
        // Paper §6.2.2: XY, YX and BSOR all reach MCL 100 on
        // bit-complement (scaled to the 4x4 mesh: 50).
        let topo = Topology::mesh2d(4, 4);
        let w = bit_complement(&topo).expect("square");
        let result = BsorBuilder::new(&topo, &w.flows).run().expect("routable");
        let xy = Baseline::XY
            .select(&topo, &w.flows, 2)
            .expect("xy")
            .mcl(&topo, &w.flows);
        assert!(result.mcl <= xy + 1e-9);
    }

    #[test]
    fn milp_selector_through_framework() {
        let topo = Topology::mesh2d(3, 3);
        let w = transpose(&topo).unwrap_or_else(|_| {
            // 3x3 is not a power of two; build a small custom pattern.
            let mut flows = FlowSet::new();
            for (s, d) in [(0u32, 8u32), (8, 0), (2, 6), (6, 2)] {
                flows.push(bsor_topology::NodeId(s), bsor_topology::NodeId(d), 25.0);
            }
            bsor_workloads::Workload::new("mini", flows)
        });
        let selector = MilpSelector::new()
            .with_hop_slack(2)
            .with_options(MilpOptions {
                max_nodes: 2_000,
                ..MilpOptions::default()
            });
        let result = BsorBuilder::new(&topo, &w.flows)
            .vcs(1)
            .strategies(vec![
                CdgStrategy::TurnModel(TurnModel::west_first()),
                CdgStrategy::TurnModel(TurnModel::north_last()),
            ])
            .selector(SelectorKind::Milp(selector))
            .run()
            .expect("solvable");
        assert!(result.mcl > 0.0);
        assert_eq!(result.explored.len(), 2);
    }

    #[test]
    fn per_cdg_failures_are_recorded_not_fatal() {
        // A torus rejects turn models but ad-hoc breaking still works...
        // on grids. Use a mesh where one strategy is the invalid turn
        // combo.
        use bsor_cdg::Turn;
        use bsor_topology::Direction::*;
        let topo = Topology::mesh2d(4, 4);
        let w = transpose(&topo).expect("square");
        let bad = TurnModel::new("bad", vec![Turn::new(North, East), Turn::new(East, North)]);
        let result = BsorBuilder::new(&topo, &w.flows)
            .strategies(vec![
                CdgStrategy::TurnModel(bad),
                CdgStrategy::TurnModel(TurnModel::west_first()),
            ])
            .run();
        match result {
            Ok(r) => {
                assert_eq!(r.explored.len(), 2);
                assert!(
                    r.explored[0].outcome.is_err(),
                    "bad model recorded as error"
                );
                assert_eq!(r.cdg, "west-first");
            }
            Err(e) => panic!("one good CDG should suffice: {e}"),
        }
    }

    #[test]
    fn all_failures_yield_no_usable_cdg() {
        use bsor_cdg::Turn;
        use bsor_topology::Direction::*;
        let topo = Topology::mesh2d(4, 4);
        let w = transpose(&topo).expect("square");
        let bad = TurnModel::new("bad", vec![Turn::new(North, East), Turn::new(East, North)]);
        let err = BsorBuilder::new(&topo, &w.flows)
            .strategies(vec![CdgStrategy::TurnModel(bad)])
            .run()
            .unwrap_err();
        assert!(matches!(err, BsorError::NoUsableCdg(records) if records.len() == 1));
    }

    #[test]
    fn invalid_flows_rejected_up_front() {
        let topo = Topology::mesh2d(4, 4);
        let mut flows = FlowSet::new();
        flows.push(bsor_topology::NodeId(0), bsor_topology::NodeId(0), 1.0);
        let err = BsorBuilder::new(&topo, &flows).run().unwrap_err();
        assert!(matches!(err, BsorError::InvalidFlows(_)));
    }

    #[test]
    fn escalating_and_virtual_network_strategies_work() {
        let topo = Topology::mesh2d(4, 4);
        let w = transpose(&topo).expect("square");
        let result = BsorBuilder::new(&topo, &w.flows)
            .strategies(vec![
                CdgStrategy::EscalatingVc(TurnModel::west_first()),
                CdgStrategy::VirtualNetworks(vec![
                    LayerRecipe::TurnModel(TurnModel::west_first()),
                    LayerRecipe::TurnModel(TurnModel::negative_first()),
                ]),
            ])
            .run()
            .expect("routable");
        assert!(result.mcl > 0.0);
        assert!(deadlock::is_deadlock_free(&topo, &result.routes, 2));
    }

    #[test]
    fn framework_routes_hypercube_and_ring() {
        // Topology independence end-to-end: non-grid topologies route
        // through the framework with unprotected ad-hoc CDGs (some seeds
        // disconnect pairs; exploring several finds usable ones).
        for topo in [Topology::hypercube(3), Topology::ring(6)] {
            let mut flows = FlowSet::new();
            let n = topo.num_nodes() as u32;
            for i in 0..n {
                flows.push(
                    bsor_topology::NodeId(i),
                    bsor_topology::NodeId((i + n / 2) % n),
                    10.0,
                );
            }
            let strategies: Vec<CdgStrategy> =
                (0..10).map(|seed| CdgStrategy::AdHocAny { seed }).collect();
            let result = BsorBuilder::new(&topo, &flows)
                .vcs(2)
                .strategies(strategies)
                .run()
                .expect("some ad-hoc CDG routes everything");
            assert!(deadlock::is_deadlock_free(&topo, &result.routes, 2));
            result.routes.validate(&topo, &flows, 2).expect("valid");
        }
    }

    #[test]
    fn error_display() {
        let e = BsorError::NoUsableCdg(vec![]);
        assert!(!e.to_string().is_empty());
        let e: BsorError = FlowSetError::SelfFlow(bsor_flow::FlowId(0)).into();
        assert!(e.to_string().contains("invalid"));
        assert!(Error::source(&e).is_some());
    }
}
