//! The BSOR mixed integer-linear programming selector (paper §3.5).
//!
//! The paper formulates route selection over the flow network `GA` as an
//! arc-based MILP with Boolean per-arc variables. This implementation
//! solves the equivalent *path-based* MILP: candidate paths for each flow
//! are enumerated exhaustively in `GA` under the hop-count bound
//! `hopᵢ = minhopsᵢ + slack`, and a binary variable selects one path per
//! flow. Minimizing `U = max_e Σᵢ dᵢ·[e ∈ pᵢ]` is expressed with one load
//! row per physical channel.
//!
//! The two formulations have identical optima whenever the candidate set
//! is exhaustive; a per-flow cap guards against pathological blowup and is
//! reported in [`MilpReport::truncated_flows`] when hit (making the solve
//! a documented heuristic, exactly like running CPLEX with iteration
//! limits in the thesis).

use crate::route::{Route, RouteHop, RouteSet, VcMask};
use crate::selector::SelectError;
use crate::selectors::dijkstra::DijkstraSelector;
use bsor_flow::{FlowId, FlowNetwork, FlowSet};
use bsor_lp::{Cmp, MilpOptions, MilpStats, Model, VarId};
use bsor_netgraph::{algo, NodeId as GraphNode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Objective of the MILP selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MilpObjective {
    /// Minimize the maximum channel load in MB/s (paper Equation 3.2).
    MinimizeMcl,
    /// Minimize the maximum number of flows sharing a channel — the
    /// bandwidth-free alternative objective of paper §7.2.
    MinimizeSharedFlows,
}

/// Configuration of the MILP route selector.
#[derive(Clone, Debug)]
pub struct MilpSelector {
    /// Extra channels allowed beyond each flow's minimum (`hopᵢ` in the
    /// paper is `min + slack`; the paper suggests incrementing by 2 or
    /// more for non-minimal routing).
    pub hop_slack: usize,
    /// Cap on enumerated candidate paths per flow.
    pub max_paths_per_flow: usize,
    /// Enforce hard channel-capacity rows (`Σ ≤ c(e)`); the paper's MCL
    /// objective usually makes these redundant.
    pub enforce_capacity: bool,
    /// Objective to optimize.
    pub objective: MilpObjective,
    /// Branch-and-bound budget.
    pub options: MilpOptions,
    /// Randomized-Dijkstra rounds that diversify the candidate pool (in
    /// addition to exhaustive bounded enumeration and the Dijkstra
    /// selector's warm-start paths).
    pub randomized_rounds: usize,
    /// Seed for the randomized candidate rounds.
    pub seed: u64,
    /// Hop budget: selections containing a route longer than this are
    /// rejected with [`SelectError::HopBudgetExceeded`]. `None` (the
    /// default) leaves route length to the `hop_slack` bound alone.
    pub max_hops: Option<usize>,
}

impl Default for MilpSelector {
    fn default() -> Self {
        MilpSelector {
            hop_slack: 4,
            max_paths_per_flow: 200,
            enforce_capacity: false,
            objective: MilpObjective::MinimizeMcl,
            options: MilpOptions::default(),
            randomized_rounds: 24,
            seed: 0x51_AC,
            max_hops: None,
        }
    }
}

/// Candidate routes per flow: an outer entry per flow, holding that
/// flow's candidate paths, each a sequence of CDG vertices.
pub type CandidatePaths = Vec<Vec<Vec<GraphNode>>>;

/// The per-flow candidate paths assembled for the MILP (first entry of
/// each flow is its Dijkstra warm-start path).
struct CandidatePool {
    per_flow: CandidatePaths,
    truncated: Vec<FlowId>,
}

/// Diagnostics from a MILP selection.
#[derive(Clone, Debug, Default)]
pub struct MilpReport {
    /// Flows whose candidate-path enumeration hit the cap (the solve is
    /// then a heuristic over the retained candidates).
    pub truncated_flows: Vec<FlowId>,
    /// Total candidate paths across all flows.
    pub candidate_paths: usize,
    /// Branch-and-bound statistics.
    pub stats: MilpStats,
    /// Objective value reported by the solver.
    pub objective: f64,
}

impl MilpSelector {
    /// Selector with default parameters.
    pub fn new() -> Self {
        MilpSelector::default()
    }

    /// Sets the hop slack.
    #[must_use]
    pub fn with_hop_slack(mut self, slack: usize) -> Self {
        self.hop_slack = slack;
        self
    }

    /// Sets the candidate-path cap.
    #[must_use]
    pub fn with_max_paths(mut self, cap: usize) -> Self {
        self.max_paths_per_flow = cap;
        self
    }

    /// Sets the objective.
    #[must_use]
    pub fn with_objective(mut self, objective: MilpObjective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets branch-and-bound options.
    #[must_use]
    pub fn with_options(mut self, options: MilpOptions) -> Self {
        self.options = options;
        self
    }

    /// Caps route length: any selection containing a route longer than
    /// `max_hops` is refused with [`SelectError::HopBudgetExceeded`].
    #[must_use]
    pub fn with_max_hops(mut self, max_hops: usize) -> Self {
        self.max_hops = Some(max_hops);
        self
    }

    /// Enumerates the candidate-path pool for every flow: the Dijkstra
    /// selector's warm-start path, exhaustive bounded DFS enumeration,
    /// and randomized-Dijkstra diversification rounds.
    ///
    /// Exposed for diagnostics; [`MilpSelector::select`] calls it
    /// internally.
    ///
    /// # Errors
    ///
    /// [`SelectError::Unroutable`] if some flow has no conforming path
    /// within the hop bound.
    pub fn enumerate_candidates(
        &self,
        net: &FlowNetwork<'_>,
        flows: &FlowSet,
    ) -> Result<(CandidatePaths, Vec<FlowId>), SelectError> {
        self.build_pool(net, flows)
            .map(|pool| (pool.per_flow, pool.truncated))
    }

    fn build_pool(
        &self,
        net: &FlowNetwork<'_>,
        flows: &FlowSet,
    ) -> Result<CandidatePool, SelectError> {
        let graph = net.acyclic().graph();
        // Warm-start paths: the sequential heuristic with one refinement
        // pass gives the MILP a feasible incumbent it can only improve.
        let warm_paths = DijkstraSelector::new()
            .with_refinement(1)
            .select_paths(net, flows)?;
        let mut per_flow: CandidatePaths = Vec::with_capacity(flows.len());
        let mut seen: Vec<HashSet<Vec<GraphNode>>> = Vec::with_capacity(flows.len());
        let mut truncated = Vec::new();
        let mut bounds = Vec::with_capacity(flows.len());
        for flow in flows.iter() {
            let min_links = net
                .min_route_links(flow)
                .ok_or(SelectError::Unroutable { flow: flow.id })?;
            bounds.push(min_links + self.hop_slack);
            let warm = warm_paths[flow.id.index()].clone();
            let mut dedup = HashSet::new();
            dedup.insert(warm.clone());
            per_flow.push(vec![warm]);
            seen.push(dedup);
        }
        // Exhaustive bounded enumeration, capped per flow. A reverse-BFS
        // distance-to-sink bound prunes subtrees that cannot reach the
        // sink within the hop budget.
        for (i, flow) in flows.iter().enumerate() {
            let sink_mask = net.sink_mask(flow);
            let to_sink = algo::bfs_hops_to(graph, &net.sinks(flow));
            let max_edges = bounds[i] - 1;
            let mut hit_cap = false;
            for start in net.sources(flow) {
                if per_flow[i].len() >= self.max_paths_per_flow {
                    hit_cap = true;
                    break;
                }
                let budget = self.max_paths_per_flow - per_flow[i].len();
                let cands = &mut per_flow[i];
                let dedup = &mut seen[i];
                let outcome = algo::enumerate_paths(
                    graph,
                    &[start],
                    |v| sink_mask[v.index()],
                    |v| to_sink[v.index()],
                    max_edges,
                    budget,
                    |edges| {
                        let mut verts = Vec::with_capacity(edges.len() + 1);
                        verts.push(start);
                        for &e in edges {
                            let (_, d) = graph.endpoints(e).expect("live edge");
                            verts.push(d);
                        }
                        if dedup.insert(verts.clone()) {
                            cands.push(verts);
                        }
                    },
                );
                if outcome == algo::EnumerationOutcome::Truncated {
                    hit_cap = true;
                }
            }
            if hit_cap {
                truncated.push(flow.id);
            }
        }
        // Randomized-Dijkstra diversification: each round draws one
        // random weight per CDG vertex and takes every flow's shortest
        // path under it, so the pool contains globally diverse,
        // hop-bounded alternatives even when DFS enumeration truncates.
        let mut rng = StdRng::seed_from_u64(self.seed);
        for _ in 0..self.randomized_rounds {
            let weights: Vec<f64> = (0..graph.node_count())
                .map(|_| rng.gen_range(0.5..2.0))
                .collect();
            for (i, flow) in flows.iter().enumerate() {
                if per_flow[i].len() >= self.max_paths_per_flow {
                    continue;
                }
                let sources: Vec<(GraphNode, f64)> = net
                    .sources(flow)
                    .into_iter()
                    .map(|v| (v, weights[v.index()]))
                    .collect();
                let sp = algo::dijkstra(graph, &sources, |e| {
                    let (_, head) = graph.endpoints(e).expect("live edge");
                    weights[head.index()]
                });
                let Some(best_sink) = net
                    .sinks(flow)
                    .into_iter()
                    .filter(|v| sp.dist[v.index()].is_finite())
                    .min_by(|a, b| {
                        sp.dist[a.index()]
                            .partial_cmp(&sp.dist[b.index()])
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                else {
                    continue;
                };
                let edge_path = sp.path_to(graph, best_sink).expect("finite distance");
                let mut verts = Vec::with_capacity(edge_path.len() + 1);
                match edge_path.first() {
                    Some(&e) => verts.push(graph.endpoints(e).expect("live edge").0),
                    None => verts.push(best_sink),
                }
                for &e in &edge_path {
                    verts.push(graph.endpoints(e).expect("live edge").1);
                }
                if verts.len() <= bounds[i] && seen[i].insert(verts.clone()) {
                    per_flow[i].push(verts);
                }
            }
        }
        Ok(CandidatePool {
            per_flow,
            truncated,
        })
    }

    /// Chooses one deadlock-free route per flow by MILP.
    ///
    /// **Deprecation note:** this flow-network signature is the legacy
    /// entry point. New code should run the selector through the unified
    /// `RouteAlgorithm` trait (`bsor_sim::RouteAlgorithm`, which
    /// `MilpSelector` implements against a scenario's CDG) or the
    /// exploring `bsor::BsorAlgorithm`; this method remains as the
    /// selection kernel those impls delegate to.
    ///
    /// # Errors
    ///
    /// * [`SelectError::Unroutable`] when a flow has no conforming path.
    /// * [`SelectError::Milp`] when the solver exhausts its budget without
    ///   an incumbent or the model is infeasible (only possible with
    ///   `enforce_capacity`).
    pub fn select(
        &self,
        net: &FlowNetwork<'_>,
        flows: &FlowSet,
    ) -> Result<(RouteSet, MilpReport), SelectError> {
        let pool = self.build_pool(net, flows)?;
        let candidates = &pool.per_flow;
        let truncated_flows = pool.truncated.clone();
        let candidate_paths: usize = candidates.iter().map(|c| c.len()).sum();

        let mut model = Model::minimize();
        let u = model.add_var(bsor_lp::VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
        // Per-link accumulated terms: (path var, load coefficient).
        let num_links = net.topology().num_links();
        let mut link_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); num_links];
        let mut path_vars: Vec<Vec<VarId>> = Vec::with_capacity(flows.len());
        // Warm-start accounting: the first candidate of every flow is the
        // Dijkstra path; their joint objective seeds the incumbent.
        let mut warm_link_metric = vec![0.0f64; num_links];
        for (flow, cands) in flows.iter().zip(candidates) {
            let coeff = match self.objective {
                MilpObjective::MinimizeMcl => flow.demand,
                MilpObjective::MinimizeSharedFlows => 1.0,
            };
            let mut vars = Vec::with_capacity(cands.len());
            for (pi, path) in cands.iter().enumerate() {
                let x = model.add_binary(0.0);
                model.set_ub_implied(x); // covered by the choice row
                for &v in path {
                    let link = net.acyclic().cdg().vertex(v).link;
                    link_terms[link.index()].push((x, coeff));
                    if pi == 0 {
                        warm_link_metric[link.index()] += coeff;
                    }
                }
                vars.push(x);
            }
            model.add_constraint(vars.iter().map(|&x| (x, 1.0)).collect(), Cmp::Eq, 1.0);
            path_vars.push(vars);
        }
        for (li, terms) in link_terms.into_iter().enumerate() {
            if terms.is_empty() {
                continue;
            }
            let mut row = terms.clone();
            row.push((u, -1.0));
            model.add_constraint(row, Cmp::Le, 0.0);
            if self.enforce_capacity {
                let cap = net
                    .topology()
                    .link(bsor_topology::LinkId(li as u32))
                    .capacity;
                if cap.is_finite() {
                    // Capacity rows only make sense for the MCL objective
                    // where coefficients are demands.
                    if self.objective == MilpObjective::MinimizeMcl {
                        model.add_constraint(terms, Cmp::Le, cap);
                    }
                }
            }
        }

        // Assemble the warm-start assignment: x = 1 on each flow's first
        // candidate, U = the induced bottleneck value.
        let warm_u = warm_link_metric.iter().copied().fold(0.0, f64::max);
        let mut initial = vec![0.0; model.num_vars()];
        initial[u.index()] = warm_u;
        for vars in &path_vars {
            initial[vars[0].index()] = 1.0;
        }
        let mut options = self.options.clone();
        options.initial = Some(initial);

        let (solution, stats) = model.solve_with(&options)?;

        let mut routes = Vec::with_capacity(flows.len());
        for (flow, (cands, vars)) in flows.iter().zip(candidates.iter().zip(&path_vars)) {
            debug_assert_eq!(cands.len(), vars.len());
            let chosen = vars
                .iter()
                .position(|&x| solution.value(x) > 0.5)
                .expect("choice row forces exactly one selected path");
            let hops = cands[chosen]
                .iter()
                .map(|&v| {
                    let cv = net.acyclic().cdg().vertex(v);
                    RouteHop {
                        link: cv.link,
                        vcs: VcMask::single(cv.vc.0),
                    }
                })
                .collect();
            routes.push(Route {
                flow: flow.id,
                hops,
            });
        }
        let report = MilpReport {
            truncated_flows,
            candidate_paths,
            stats,
            objective: solution.objective(),
        };
        let routes = RouteSet::from_routes(routes);
        crate::selector::check_hop_budget(&routes, self.max_hops)?;
        Ok((routes, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadlock;
    use crate::selectors::dijkstra::DijkstraSelector;
    use bsor_cdg::{AcyclicCdg, TurnModel};
    use bsor_topology::Topology;

    fn transpose_flows(topo: &Topology, demand: f64) -> FlowSet {
        let n = topo.width();
        let mut fs = FlowSet::new();
        for y in 0..n {
            for x in 0..n {
                if x != y {
                    fs.push(
                        topo.node_at(x, y).expect("in range"),
                        topo.node_at(y, x).expect("in range"),
                        demand,
                    );
                }
            }
        }
        fs
    }

    #[test]
    fn milp_routes_valid_and_deadlock_free() {
        let topo = Topology::mesh2d(3, 3);
        let acyclic = AcyclicCdg::turn_model(&topo, 1, &TurnModel::west_first()).expect("valid");
        let net = FlowNetwork::new(&topo, &acyclic);
        let flows = transpose_flows(&topo, 25.0);
        let (routes, report) = MilpSelector::new()
            .with_hop_slack(2)
            .select(&net, &flows)
            .expect("solvable");
        routes.validate(&topo, &flows, 1).expect("valid");
        assert!(deadlock::is_deadlock_free(&topo, &routes, 1));
        assert!(report.candidate_paths > 0);
        assert!(report.objective > 0.0);
    }

    #[test]
    fn milp_at_least_as_good_as_dijkstra() {
        // The thesis observes MILP MCLs are always <= Dijkstra's for the
        // same CDG (§6.2).
        let topo = Topology::mesh2d(4, 4);
        let acyclic =
            AcyclicCdg::turn_model(&topo, 1, &TurnModel::negative_first()).expect("valid");
        let net = FlowNetwork::new(&topo, &acyclic);
        let flows = transpose_flows(&topo, 25.0);
        let (milp_routes, _) = MilpSelector::new()
            .with_hop_slack(2)
            .select(&net, &flows)
            .expect("solvable");
        let dijkstra_routes = DijkstraSelector::new()
            .select(&net, &flows)
            .expect("routable");
        let milp_mcl = milp_routes.mcl(&topo, &flows);
        let dijkstra_mcl = dijkstra_routes.mcl(&topo, &flows);
        assert!(
            milp_mcl <= dijkstra_mcl + 1e-9,
            "MILP ({milp_mcl}) must not lose to Dijkstra ({dijkstra_mcl})"
        );
    }

    #[test]
    fn milp_objective_matches_recomputed_mcl() {
        let topo = Topology::mesh2d(3, 3);
        let acyclic = AcyclicCdg::turn_model(&topo, 1, &TurnModel::north_last()).expect("valid");
        let net = FlowNetwork::new(&topo, &acyclic);
        let flows = transpose_flows(&topo, 10.0);
        let (routes, report) = MilpSelector::new()
            .with_hop_slack(2)
            .select(&net, &flows)
            .expect("solvable");
        assert!((routes.mcl(&topo, &flows) - report.objective).abs() < 1e-6);
    }

    #[test]
    fn hop_slack_zero_gives_minimal_routes() {
        let topo = Topology::mesh2d(3, 3);
        let acyclic = AcyclicCdg::turn_model(&topo, 1, &TurnModel::west_first()).expect("valid");
        let net = FlowNetwork::new(&topo, &acyclic);
        let flows = transpose_flows(&topo, 25.0);
        let (routes, _) = MilpSelector::new()
            .with_hop_slack(0)
            .select(&net, &flows)
            .expect("solvable");
        for r in routes.iter() {
            let f = flows.flow(r.flow);
            assert_eq!(
                r.len(),
                topo.min_hops(f.src, f.dst),
                "slack 0 forces minimal"
            );
        }
    }

    #[test]
    fn shared_flows_objective_counts_flows() {
        let topo = Topology::mesh2d(3, 3);
        let acyclic = AcyclicCdg::turn_model(&topo, 1, &TurnModel::west_first()).expect("valid");
        let net = FlowNetwork::new(&topo, &acyclic);
        let flows = transpose_flows(&topo, 25.0);
        let (routes, report) = MilpSelector::new()
            .with_hop_slack(2)
            .with_objective(MilpObjective::MinimizeSharedFlows)
            .select(&net, &flows)
            .expect("solvable");
        let max_flows = routes.max_flows_per_link(&topo);
        assert!((report.objective - max_flows as f64).abs() < 1e-6);
    }

    #[test]
    fn truncation_is_reported() {
        let topo = Topology::mesh2d(3, 3);
        let acyclic = AcyclicCdg::turn_model(&topo, 1, &TurnModel::west_first()).expect("valid");
        let net = FlowNetwork::new(&topo, &acyclic);
        let flows = transpose_flows(&topo, 25.0);
        let (_, report) = MilpSelector::new()
            .with_hop_slack(2)
            .with_max_paths(1)
            .select(&net, &flows)
            .expect("solvable with tiny candidate sets");
        assert!(!report.truncated_flows.is_empty());
    }

    #[test]
    fn unroutable_flow_reported() {
        // An edgeless CDG only supports adjacent pairs.
        let topo = Topology::mesh2d(3, 3);
        let mut cdg = bsor_cdg::Cdg::build(&topo, 1);
        let all: Vec<_> = cdg.graph().edge_ids().collect();
        for e in all {
            cdg.graph_mut().remove_edge(e);
        }
        let acyclic = AcyclicCdg::try_new(cdg, "empty", 0).expect("acyclic");
        let net = FlowNetwork::new(&topo, &acyclic);
        let mut flows = FlowSet::new();
        let id = flows.push(
            topo.node_at(0, 0).unwrap(),
            topo.node_at(2, 2).unwrap(),
            1.0,
        );
        let err = MilpSelector::new().select(&net, &flows).unwrap_err();
        assert_eq!(err, SelectError::Unroutable { flow: id });
    }
}
