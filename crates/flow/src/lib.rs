//! # bsor-flow
//!
//! Flows (the application's data transfers) and the flow network `GA`
//! derived from an acyclic channel dependence graph, following paper
//! §3.1 (Definitions) and §3.4 (Deriving a Flow Graph from an Acyclic
//! CDG).
//!
//! A [`Flow`] is a `(source, sink, demand)` triple. The [`FlowNetwork`]
//! view pairs a topology with an acyclic CDG and answers the queries the
//! route selectors need: which CDG vertices can begin or end a flow's
//! route, minimum route lengths, capacities. [`LoadState`] accumulates
//! per-channel bandwidth loads as routes are chosen and computes the
//! **maximum channel load (MCL)**, the quantity BSOR minimizes; and
//! [`WeightParams`] implements the Dijkstra selector's reciprocal
//! residual-capacity metric `w(e) = 1 / (a(e) − dᵢ + M)` (paper §3.6).
//!
//! ```
//! use bsor_topology::Topology;
//! use bsor_cdg::{AcyclicCdg, TurnModel};
//! use bsor_flow::{Flow, FlowId, FlowNetwork};
//!
//! let mesh = Topology::mesh2d(3, 3);
//! let acyclic = AcyclicCdg::turn_model(&mesh, 1, &TurnModel::west_first())
//!     .expect("valid turn model");
//! let ga = FlowNetwork::new(&mesh, &acyclic);
//! let flow = Flow::new(
//!     FlowId(0),
//!     mesh.node_at(0, 0).unwrap(),
//!     mesh.node_at(2, 2).unwrap(),
//!     25.0,
//! );
//! // Minimal route length in channels equals the Manhattan distance.
//! assert_eq!(ga.min_route_links(&flow), Some(4));
//! ```

pub mod flow;
pub mod network;

pub use flow::{Flow, FlowId, FlowSet, FlowSetError};
pub use network::{FlowNetwork, LoadState, WeightParams};
