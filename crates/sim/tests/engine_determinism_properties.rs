//! Property tests for the engine's determinism contract: at any
//! `engine_threads` value, with fast-forward on or off, a fixed-seed
//! simulation produces a byte-identical `SimReport`. The parallel
//! driver merges boundary handoffs in fixed node order and the
//! fast-forward path consumes the generation RNG stream every cycle,
//! so neither knob may perturb a single counter.

use bsor_routing::Baseline;
use bsor_sim::{BurstyOnOff, PhaseSchedule, SimConfig, SimReport, Simulator, TrafficSpec};
use bsor_topology::Topology;
use bsor_workloads::{neighbor, transpose, uniform_random, Workload};
use proptest::prelude::*;

/// Runs one fixed scenario at the given engine knobs.
fn run_with(
    topo: &Topology,
    w: &Workload,
    algo: Baseline,
    traffic: TrafficSpec,
    seed: u64,
    threads: usize,
    fast_forward: bool,
) -> SimReport {
    let routes = algo.select(topo, &w.flows, 2).expect("baseline routes");
    let config = SimConfig::new(2)
        .with_warmup(200)
        .with_measurement(800)
        .with_packet_len(4)
        .with_seed(seed)
        .with_engine_threads(threads)
        .with_fast_forward(fast_forward);
    let mut sim = Simulator::new(topo, &w.flows, &routes, traffic, config).expect("valid");
    sim.run()
}

fn build_workload(topo: &Topology, which: u8) -> Workload {
    match which {
        // Transpose needs a power-of-two square side; odd grids fall
        // back to uniform-random so the generator space stays dense.
        0 => transpose(topo).unwrap_or_else(|_| uniform_random(topo).expect("n >= 2")),
        1 => neighbor(topo).expect("side >= 2"),
        _ => uniform_random(topo).expect("n >= 2"),
    }
}

fn build_traffic(flows: &bsor_flow::FlowSet, rate: f64, shape: u8) -> TrafficSpec {
    let base = TrafficSpec::proportional(flows, rate);
    match shape {
        0 => base,
        1 => base.with_burst(BurstyOnOff::new(40.0, 120.0)),
        _ => base.with_phases(PhaseSchedule::from_pairs([(100, 1.5), (150, 0.5)])),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// topology x workload x traffic-shape x rate x seed: the report at
    /// 2 and 4 worker threads, and with fast-forward disabled, must be
    /// byte-identical to the single-threaded fast-forwarding reference.
    #[test]
    fn report_is_identical_across_threads_and_fast_forward(
        side in 3u16..=5,
        torus_sel in 0u8..2,
        which_workload in 0u8..3,
        shape in 0u8..3,
        rate_step in 1u32..=6,
        seed in 0u64..1_000,
    ) {
        let torus = torus_sel == 1;
        let topo = if torus {
            Topology::torus2d(side, side)
        } else {
            Topology::mesh2d(side, side)
        };
        let w = build_workload(&topo, which_workload);
        let rate = f64::from(rate_step) * 0.05; // 0.05 .. 0.30
        let algo = if torus { Baseline::XY } else { Baseline::YX };

        let reference = run_with(
            &topo,
            &w,
            algo,
            build_traffic(&w.flows, rate, shape),
            seed,
            1,
            true,
        );
        for threads in [2usize, 4] {
            for ff in [true, false] {
                let got = run_with(
                    &topo,
                    &w,
                    algo,
                    build_traffic(&w.flows, rate, shape),
                    seed,
                    threads,
                    ff,
                );
                prop_assert_eq!(
                    &got,
                    &reference,
                    "threads={} ff={} diverged (side={}, torus={}, workload={}, shape={}, rate={}, seed={})",
                    threads,
                    ff,
                    side,
                    torus,
                    which_workload,
                    shape,
                    rate,
                    seed
                );
            }
        }
    }

    /// Ring topologies band differently (width-1 bands, wrap links);
    /// give them their own generator so shrinking stays local.
    #[test]
    fn ring_reports_are_identical_across_threads(
        n in 4u16..=9,
        rate_step in 1u32..=4,
        seed in 0u64..500,
    ) {
        let topo = Topology::ring(n);
        let w = neighbor(&topo).expect("ring of >= 2");
        let rate = f64::from(rate_step) * 0.05;
        let reference = run_with(
            &topo,
            &w,
            Baseline::XY,
            TrafficSpec::proportional(&w.flows, rate),
            seed,
            1,
            true,
        );
        for threads in [2usize, 4] {
            let got = run_with(
                &topo,
                &w,
                Baseline::XY,
                TrafficSpec::proportional(&w.flows, rate),
                seed,
                threads,
                true,
            );
            prop_assert_eq!(&got, &reference, "ring n={} threads={} seed={}", n, threads, seed);
        }
    }
}
