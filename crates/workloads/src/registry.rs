//! Name-keyed workload construction — the single home of workload name
//! parsing.
//!
//! Historically each driver kept its own `match name { "transpose" => …,
//! … }` glue; this registry replaces them all. The six paper workloads
//! are pre-registered under the names the sweep grid has always used
//! (`transpose`, `bit-complement`, `shuffle`, `h264`, `perf-model`,
//! `wifi`), the adversarial patterns of [`crate::patterns`] under
//! `uniform-random`, `tornado`, `bit-reversal` and `neighbor`, and
//! applications can [`WorkloadRegistry::register`] their own generators
//! to make them addressable from every driver at once.
//!
//! # Spec strings
//!
//! Parameterized *families* are addressed with a `prefix:<arg>` spec
//! string — the part before the first `:` names the family, the rest is
//! its argument:
//!
//! ```text
//! spec      := name | family ":" arg
//! name      := "transpose" | "uniform-random" | …   (exact registry names)
//! family    := "hotspot" (arg = k, 1 <= k < nodes)
//!            | "rand-perm" (arg = u64 seed)
//! ```
//!
//! Resolution order: exact names win (a registered name may itself
//! contain `:`), then the family prefix is tried. Unknown names and
//! unknown families return [`WorkloadError::UnknownWorkload`] carrying
//! the offending spec; a malformed argument for a *known* family (e.g.
//! `hotspot:lots`) returns [`WorkloadError::BadSpec`]. The parser never
//! panics.

use crate::patterns::{hotspot, rand_perm};
use crate::{
    bit_complement, bit_reversal, h264_decoder, neighbor, performance_modeling, shuffle, tornado,
    transpose, uniform_random, wifi_transmitter, Workload, WorkloadError,
};
use bsor_topology::Topology;

/// A workload generator: instantiate the named traffic pattern on a
/// topology.
pub type WorkloadFactory = Box<dyn Fn(&Topology) -> Result<Workload, WorkloadError> + Send + Sync>;

/// A parameterized workload family: instantiate the pattern on a
/// topology from the argument text after the `prefix:` of a spec string.
pub type WorkloadFamilyFactory =
    Box<dyn Fn(&Topology, &str) -> Result<Workload, WorkloadError> + Send + Sync>;

struct Family {
    prefix: String,
    /// Display form shown in listings, e.g. `hotspot:<k>`.
    placeholder: String,
    factory: WorkloadFamilyFactory,
}

/// Name-keyed registry of workload generators.
///
/// ```
/// use bsor_topology::Topology;
/// use bsor_workloads::WorkloadRegistry;
///
/// let registry = WorkloadRegistry::standard();
/// assert_eq!(registry.names().len(), 10);
/// assert_eq!(registry.family_specs(), vec!["hotspot:<k>", "rand-perm:<seed>"]);
/// let mesh = Topology::mesh2d(8, 8);
/// let w = registry.build(&mesh, "transpose").expect("square mesh");
/// assert_eq!(w.flows.len(), 56);
/// let h = registry.build(&mesh, "hotspot:4").expect("parameterized spec");
/// assert_eq!(h.name, "hotspot:4");
/// assert!(registry.build(&mesh, "nope").is_err());
/// ```
#[derive(Default)]
pub struct WorkloadRegistry {
    entries: Vec<(String, WorkloadFactory)>,
    families: Vec<Family>,
}

impl WorkloadRegistry {
    /// An empty registry.
    pub fn new() -> WorkloadRegistry {
        WorkloadRegistry::default()
    }

    /// The six paper workloads under their sweep-grid names in paper
    /// order, the four adversarial patterns, and the `hotspot` /
    /// `rand-perm` parameterized families.
    pub fn standard() -> WorkloadRegistry {
        let mut r = WorkloadRegistry::new();
        r.register("transpose", |t: &Topology| transpose(t));
        r.register("bit-complement", |t: &Topology| bit_complement(t));
        r.register("shuffle", |t: &Topology| shuffle(t));
        r.register("h264", |t: &Topology| h264_decoder(t));
        r.register("perf-model", |t: &Topology| performance_modeling(t));
        r.register("wifi", |t: &Topology| wifi_transmitter(t));
        r.register("uniform-random", |t: &Topology| uniform_random(t));
        r.register("tornado", |t: &Topology| tornado(t));
        r.register("bit-reversal", |t: &Topology| bit_reversal(t));
        r.register("neighbor", |t: &Topology| neighbor(t));
        r.register_family("hotspot", "hotspot:<k>", |t: &Topology, arg: &str| {
            let k = arg.parse::<usize>().map_err(|_| WorkloadError::BadSpec {
                spec: format!("hotspot:{arg}"),
                reason: "k must be a positive integer".to_owned(),
            })?;
            hotspot(t, k)
        });
        r.register_family(
            "rand-perm",
            "rand-perm:<seed>",
            |t: &Topology, arg: &str| {
                let seed = arg.parse::<u64>().map_err(|_| WorkloadError::BadSpec {
                    spec: format!("rand-perm:{arg}"),
                    reason: "seed must be an unsigned 64-bit integer".to_owned(),
                })?;
                rand_perm(t, seed)
            },
        );
        r
    }

    /// Registers (or replaces) a generator under `name`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(&Topology) -> Result<Workload, WorkloadError> + Send + Sync + 'static,
    ) {
        let name = name.into();
        self.entries.retain(|(n, _)| *n != name);
        self.entries.push((name, Box::new(factory)));
    }

    /// Registers (or replaces) a parameterized family addressed as
    /// `prefix:<arg>` spec strings. `placeholder` is the display form
    /// listings show (e.g. `hotspot:<k>`).
    pub fn register_family(
        &mut self,
        prefix: impl Into<String>,
        placeholder: impl Into<String>,
        factory: impl Fn(&Topology, &str) -> Result<Workload, WorkloadError> + Send + Sync + 'static,
    ) {
        let prefix = prefix.into();
        self.families.retain(|f| f.prefix != prefix);
        self.families.push(Family {
            prefix,
            placeholder: placeholder.into(),
            factory: Box::new(factory),
        });
    }

    /// The generator registered under `name`, if any (exact names only;
    /// parameterized specs resolve through [`WorkloadRegistry::build`]).
    pub fn get(&self, name: &str) -> Option<&WorkloadFactory> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, f)| f)
    }

    /// Registered exact names, in registration order (family
    /// placeholders are listed by [`WorkloadRegistry::family_specs`]).
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Display specs of the registered parameterized families, in
    /// registration order (e.g. `["hotspot:<k>", "rand-perm:<seed>"]`).
    pub fn family_specs(&self) -> Vec<&str> {
        self.families
            .iter()
            .map(|f| f.placeholder.as_str())
            .collect()
    }

    /// Instantiates the workload spec `spec` on `topo` (an exact name or
    /// a `family:<arg>` spec string; see the [module docs](self) for the
    /// grammar).
    ///
    /// # Errors
    ///
    /// [`WorkloadError::UnknownWorkload`] for unregistered names and
    /// families (carrying the full offending spec),
    /// [`WorkloadError::BadSpec`] for malformed family arguments, or any
    /// error the generator raises (non-square mesh, too few nodes, …).
    /// Never panics, whatever the spec text.
    pub fn build(&self, topo: &Topology, spec: &str) -> Result<Workload, WorkloadError> {
        if let Some(factory) = self.get(spec) {
            return factory(topo);
        }
        if let Some((prefix, arg)) = spec.split_once(':') {
            if let Some(family) = self.families.iter().find(|f| f.prefix == prefix) {
                return (family.factory)(topo, arg);
            }
            return Err(WorkloadError::UnknownWorkload {
                name: spec.to_owned(),
            });
        }
        if let Some(family) = self.families.iter().find(|f| f.prefix == spec) {
            return Err(WorkloadError::BadSpec {
                spec: spec.to_owned(),
                reason: format!("family needs a parameter: {}", family.placeholder),
            });
        }
        Err(WorkloadError::UnknownWorkload {
            name: spec.to_owned(),
        })
    }
}

/// Instantiates a workload by registry spec (the standard names and the
/// `hotspot:<k>` / `rand-perm:<seed>` families).
///
/// This is the one-call form of [`WorkloadRegistry::standard`] +
/// [`WorkloadRegistry::build`], kept as the single home of workload name
/// parsing (it used to live, privately, in the bench crate).
///
/// # Errors
///
/// Any [`WorkloadError`], including
/// [`WorkloadError::UnknownWorkload`] for unknown names.
pub fn workload_by_name(topo: &Topology, name: &str) -> Result<Workload, WorkloadError> {
    WorkloadRegistry::standard().build(topo, name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_names_in_paper_then_pattern_order() {
        let r = WorkloadRegistry::standard();
        assert_eq!(
            r.names(),
            vec![
                "transpose",
                "bit-complement",
                "shuffle",
                "h264",
                "perf-model",
                "wifi",
                "uniform-random",
                "tornado",
                "bit-reversal",
                "neighbor",
            ]
        );
        assert_eq!(r.family_specs(), vec!["hotspot:<k>", "rand-perm:<seed>"]);
    }

    #[test]
    fn round_trip_builds_every_standard_workload() {
        let topo = Topology::mesh2d(8, 8);
        let r = WorkloadRegistry::standard();
        for name in r.names() {
            let w = r.build(&topo, name).expect("8x8 supports every name");
            assert!(!w.flows.is_empty(), "{name} has flows");
            w.flows.validate(&topo).expect("valid flows");
        }
        for spec in ["hotspot:1", "hotspot:4", "rand-perm:0", "rand-perm:42"] {
            let w = r.build(&topo, spec).expect("8x8 supports the families");
            assert_eq!(w.name, spec);
            w.flows.validate(&topo).expect("valid flows");
        }
    }

    #[test]
    fn parameterized_specs_never_panic() {
        let topo = Topology::mesh2d(4, 4);
        let r = WorkloadRegistry::standard();
        // Unknown family: typed UnknownWorkload carrying the full spec.
        for spec in ["nope:3", "hot-spot:4", ":", "a:b:c", ""] {
            assert_eq!(
                r.build(&topo, spec).unwrap_err(),
                WorkloadError::UnknownWorkload { name: spec.into() },
                "spec {spec:?}"
            );
        }
        // Known family, malformed argument: typed BadSpec.
        for spec in [
            "hotspot:",
            "hotspot:four",
            "hotspot:-1",
            "hotspot:9999999999999999999999",
            "rand-perm:",
            "rand-perm:x",
        ] {
            assert!(
                matches!(
                    r.build(&topo, spec).unwrap_err(),
                    WorkloadError::BadSpec { .. }
                ),
                "spec {spec:?}"
            );
        }
        // Known family, out-of-range argument: typed BadSpec too.
        assert!(matches!(
            r.build(&topo, "hotspot:0").unwrap_err(),
            WorkloadError::BadSpec { .. }
        ));
        // Bare family prefix: BadSpec pointing at the placeholder.
        let err = r.build(&topo, "hotspot").unwrap_err();
        assert!(err.to_string().contains("hotspot:<k>"), "{err}");
    }

    #[test]
    fn exact_names_shadow_family_prefixes() {
        let topo = Topology::mesh2d(4, 4);
        let mut r = WorkloadRegistry::standard();
        r.register("hotspot:4", |t: &Topology| {
            let mut flows = bsor_flow::FlowSet::new();
            flows.push(
                bsor_topology::NodeId(0),
                bsor_topology::NodeId(t.num_nodes() as u32 - 1),
                1.0,
            );
            Ok(Workload::new("shadowed", flows))
        });
        let w = r.build(&topo, "hotspot:4").expect("exact name wins");
        assert_eq!(w.name, "shadowed");
        // Other arguments still resolve through the family.
        assert_eq!(
            r.build(&topo, "hotspot:2").expect("family").name,
            "hotspot:2"
        );
    }

    #[test]
    fn unknown_name_is_a_typed_error() {
        let topo = Topology::mesh2d(4, 4);
        let err = workload_by_name(&topo, "nope").unwrap_err();
        assert_eq!(
            err,
            WorkloadError::UnknownWorkload {
                name: "nope".into()
            }
        );
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn generator_errors_pass_through() {
        let topo = Topology::mesh2d(3, 4);
        assert_eq!(
            workload_by_name(&topo, "transpose").unwrap_err(),
            WorkloadError::NotSquare
        );
    }

    #[test]
    fn custom_registration() {
        let mut r = WorkloadRegistry::standard();
        r.register("uniform-pair", |t: &Topology| {
            let mut flows = bsor_flow::FlowSet::new();
            flows.push(
                bsor_topology::NodeId(0),
                bsor_topology::NodeId(t.num_nodes() as u32 - 1),
                10.0,
            );
            Ok(Workload::new("uniform-pair", flows))
        });
        let topo = Topology::mesh2d(4, 4);
        let w = r.build(&topo, "uniform-pair").expect("registered");
        assert_eq!(w.flows.len(), 1);
    }
}
