//! Model-building API: variables, linear constraints, objective.

use crate::milp;
use crate::simplex;
use std::error::Error;
use std::fmt;

/// Handle to a decision variable of a [`Model`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Dense index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Continuity class of a variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// Real-valued variable.
    Continuous,
    /// Variable restricted to {0, 1}.
    Binary,
    /// Variable restricted to non-negative integers within its bounds.
    Integer,
}

/// Comparison sense of a linear constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

#[derive(Clone, Debug)]
pub(crate) struct Variable {
    pub kind: VarKind,
    pub lo: f64,
    pub hi: f64,
    pub obj: f64,
    /// When `true`, the solver skips emitting an explicit `x <= hi` row
    /// because the model's own constraints already imply it (e.g. path
    /// variables covered by a `sum = 1` row). This is a performance hint
    /// only; correctness of the hint is the caller's responsibility.
    pub ub_implied: bool,
}

#[derive(Clone, Debug)]
pub(crate) struct Constraint {
    pub terms: Vec<(VarId, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// Error returned by the LP / MILP solvers.
#[derive(Clone, Debug, PartialEq)]
pub enum LpError {
    /// The constraint set admits no feasible point.
    Infeasible,
    /// The objective is unbounded below over the feasible region.
    Unbounded,
    /// The simplex iteration limit was exceeded (numerical trouble).
    IterationLimit,
    /// Branch-and-bound exhausted its node or time budget with no incumbent.
    BudgetExhausted,
    /// The model is malformed (e.g. inverted or negative-infinite bounds).
    InvalidModel(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "problem is infeasible"),
            LpError::Unbounded => write!(f, "objective is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            LpError::BudgetExhausted => {
                write!(f, "branch-and-bound budget exhausted without incumbent")
            }
            LpError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
        }
    }
}

impl Error for LpError {}

/// A linear or mixed-integer linear model, always in minimization sense.
///
/// Variables have bounds `lo <= x <= hi` with `lo` finite (negative is
/// fine — the solver shifts `x' = x - lo`) and `hi` finite or
/// `f64::INFINITY`. Use negative objective coefficients to maximize.
#[derive(Clone, Debug, Default)]
pub struct Model {
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Model {
    /// Creates an empty minimization model.
    pub fn minimize() -> Self {
        Model::default()
    }

    /// Adds a variable with bounds `[lo, hi]` and objective coefficient
    /// `obj`; returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `lo` is not finite (NaN or infinite), or `hi < lo`.
    pub fn add_var(&mut self, kind: VarKind, lo: f64, hi: f64, obj: f64) -> VarId {
        assert!(lo.is_finite(), "lower bound must be finite");
        assert!(hi >= lo, "upper bound below lower bound");
        let id = VarId(self.vars.len() as u32);
        self.vars.push(Variable {
            kind,
            lo,
            hi,
            obj,
            ub_implied: false,
        });
        id
    }

    /// Adds a binary variable with objective coefficient `obj`.
    pub fn add_binary(&mut self, obj: f64) -> VarId {
        self.add_var(VarKind::Binary, 0.0, 1.0, obj)
    }

    /// Marks a variable's upper bound as implied by other constraints, so
    /// no explicit bound row is generated for it.
    ///
    /// This is a performance hint for large models (e.g. path-choice
    /// variables already covered by a `sum = 1` constraint). Solutions are
    /// only guaranteed to respect the bound if the hint is truthful.
    pub fn set_ub_implied(&mut self, var: VarId) {
        self.vars[var.index()].ub_implied = true;
    }

    /// Adds the linear constraint `sum(terms) cmp rhs`. Terms may repeat a
    /// variable; coefficients are summed.
    pub fn add_constraint(&mut self, terms: Vec<(VarId, f64)>, cmp: Cmp, rhs: f64) {
        for &(v, _) in &terms {
            assert!(
                v.index() < self.vars.len(),
                "constraint references unknown variable"
            );
        }
        self.constraints.push(Constraint { terms, cmp, rhs });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// True if any variable is binary or integer.
    pub fn has_integers(&self) -> bool {
        self.vars.iter().any(|v| v.kind != VarKind::Continuous)
    }

    /// Overrides a variable's bounds (used by branch-and-bound; also
    /// useful for warm-editing a model between solves).
    ///
    /// # Panics
    ///
    /// Panics if the bounds are inverted or `lo` is not finite.
    pub fn set_bounds(&mut self, var: VarId, lo: f64, hi: f64) {
        assert!(lo.is_finite() && hi >= lo, "invalid bounds");
        let v = &mut self.vars[var.index()];
        v.lo = lo;
        v.hi = hi;
    }

    /// Returns a variable's bounds.
    pub fn bounds(&self, var: VarId) -> (f64, f64) {
        let v = &self.vars[var.index()];
        (v.lo, v.hi)
    }

    /// Solves the continuous relaxation with the two-phase simplex method.
    ///
    /// # Errors
    ///
    /// [`LpError::Infeasible`], [`LpError::Unbounded`] or
    /// [`LpError::IterationLimit`].
    pub fn solve_relaxation(&self) -> Result<Solution, LpError> {
        simplex::solve(self)
    }

    /// Solves the model: plain simplex if all variables are continuous,
    /// branch-and-bound otherwise (with default [`milp::MilpOptions`]).
    ///
    /// # Errors
    ///
    /// See [`LpError`].
    pub fn solve(&self) -> Result<Solution, LpError> {
        if self.has_integers() {
            milp::solve(self, &milp::MilpOptions::default()).map(|(s, _)| s)
        } else {
            self.solve_relaxation()
        }
    }

    /// Solves with explicit branch-and-bound options, returning solver
    /// statistics alongside the solution.
    ///
    /// # Errors
    ///
    /// See [`LpError`].
    pub fn solve_with(
        &self,
        opts: &milp::MilpOptions,
    ) -> Result<(Solution, milp::MilpStats), LpError> {
        if self.has_integers() {
            milp::solve(self, opts)
        } else {
            self.solve_relaxation()
                .map(|s| (s, milp::MilpStats::default()))
        }
    }
}

/// A feasible assignment of all model variables, with its objective value.
#[derive(Clone, Debug)]
pub struct Solution {
    pub(crate) values: Vec<f64>,
    pub(crate) objective: f64,
}

impl Solution {
    /// Value of `var` in this solution.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// Objective value (minimization sense).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// All variable values, indexed by [`VarId::index`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_counts() {
        let mut m = Model::minimize();
        let x = m.add_var(VarKind::Continuous, 0.0, 1.0, 1.0);
        m.add_constraint(vec![(x, 1.0)], Cmp::Le, 0.5);
        assert_eq!(m.num_vars(), 1);
        assert_eq!(m.num_constraints(), 1);
        assert!(!m.has_integers());
        let _b = m.add_binary(0.0);
        assert!(m.has_integers());
    }

    #[test]
    fn negative_lower_bound_accepted() {
        // The simplex shift x' = x - lo is sign-agnostic, so finite
        // negative bounds are valid (the AC oblivious dual needs them).
        let mut m = Model::minimize();
        let x = m.add_var(VarKind::Continuous, -1.0, 1.0, 0.0);
        assert_eq!(m.bounds(x), (-1.0, 1.0));
        m.set_bounds(x, -2.5, -0.5);
        assert_eq!(m.bounds(x), (-2.5, -0.5));
    }

    #[test]
    #[should_panic(expected = "lower bound must be finite")]
    fn nan_lower_bound_rejected() {
        let mut m = Model::minimize();
        m.add_var(VarKind::Continuous, f64::NAN, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "lower bound must be finite")]
    fn negative_infinite_lower_bound_rejected() {
        let mut m = Model::minimize();
        m.add_var(VarKind::Continuous, f64::NEG_INFINITY, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "upper bound below")]
    fn inverted_bounds_rejected() {
        let mut m = Model::minimize();
        m.add_var(VarKind::Continuous, 2.0, 1.0, 0.0);
    }

    #[test]
    fn bounds_roundtrip() {
        let mut m = Model::minimize();
        let x = m.add_var(VarKind::Continuous, 0.0, 5.0, 0.0);
        m.set_bounds(x, 1.0, 2.0);
        assert_eq!(m.bounds(x), (1.0, 2.0));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            LpError::Infeasible,
            LpError::Unbounded,
            LpError::IterationLimit,
            LpError::BudgetExhausted,
            LpError::InvalidModel("x".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
