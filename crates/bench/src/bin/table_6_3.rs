//! Regenerates **Table 6.3**: "Comparison of Maximum Channel Load (MCL)
//! in MB/second presented by various routing algorithms" — XY, YX, ROMM,
//! Valiant, BSOR_MILP and BSOR_Dijkstra (each BSOR taking the best CDG of
//! its exploration, as in the paper). An O1TURN column is added as an
//! extension. Every column is one `RouteAlgorithm` planned through the
//! same `Planner`; the MCL printed is the plan's `predicted_mcl` — the
//! static metric the table reports needs no simulation at all.
//!
//! ```text
//! cargo run -p bsor-bench --release --bin table_6_3 [--quick] [--csv]
//! ```

use bsor_bench::{csv_mode, fmt_row, run_mode, scenario_for, standard_algorithms, standard_mesh};
use bsor_routing::Baseline;
use bsor_sim::{ExperimentError, Planner, RouteAlgorithm};
use bsor_workloads::all_six;

fn main() {
    let topo = standard_mesh();
    let workloads = all_six(&topo).expect("8x8 supports all workloads");
    let csv = csv_mode();
    let mode = run_mode();

    println!("Table 6.3: MCL (MB/s) by routing algorithm (+O1TURN extension)");
    let header: Vec<String> = vec![
        "Traffic".into(),
        "XY".into(),
        "YX".into(),
        "ROMM".into(),
        "Valiant".into(),
        "BSOR-MILP".into(),
        "BSOR-Dijkstra".into(),
        "O1TURN".into(),
    ];
    let widths = [16usize, 8, 8, 8, 8, 10, 14, 8];
    if csv {
        println!("{}", header.join(","));
    } else {
        println!("{}", fmt_row(&header, &widths));
    }
    // The six standard columns plus the O1TURN extension, all through
    // the one RouteAlgorithm trait.
    let mut algorithms: Vec<(String, Box<dyn RouteAlgorithm + Send + Sync>)> =
        standard_algorithms(mode);
    algorithms.push(("O1TURN".into(), Box::new(Baseline::O1Turn { seed: 9 })));
    let planner = Planner::new();
    for w in &workloads {
        let scenario = scenario_for(&topo, w, 2);
        let mut cells: Vec<String> = vec![w.name.clone()];
        for (_, algo) in &algorithms {
            cells.push(match planner.plan(&scenario, algo.as_ref()) {
                Ok(plan) => format!("{:.2}", plan.predicted_mcl()),
                Err(e) => format!("({})", ExperimentError::from(e)),
            });
        }
        if csv {
            println!("{}", cells.join(","));
        } else {
            println!("{}", fmt_row(&cells, &widths));
        }
    }
}
