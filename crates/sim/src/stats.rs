//! Simulation statistics.
//!
//! Everything in [`SimReport`] is fully deterministic for a fixed seed —
//! flat per-flow and per-link accumulators with no ordering sensitivity —
//! so reports can be compared structurally in regression tests and
//! diffed byte-for-byte once serialized. Wall-clock measurements travel
//! separately in [`RunTiming`].

use std::time::Duration;

/// Exact buckets below this latency; log-linear buckets above.
const LINEAR_CUTOFF: u64 = 64;
/// Sub-buckets per power-of-two octave above the linear range.
const SUBBUCKETS: u64 = 16;
/// First octave of the log-linear range (`log2(LINEAR_CUTOFF)`).
const FIRST_OCTAVE: u64 = LINEAR_CUTOFF.trailing_zeros() as u64;

/// A deterministic log-linear latency histogram (HdrHistogram-style).
///
/// Latencies below 64 cycles land in exact unit-width buckets; above,
/// each power-of-two octave is split into 16 equal sub-buckets.
/// Quantiles report the bucket *midpoint* (clamped to the recorded
/// maximum), bounding the relative quantization error at 1/32 ≈ 3%
/// with no systematic low bias. Recording and quantile extraction are
/// pure integer arithmetic with no ordering sensitivity, so histograms
/// can be compared structurally in regression tests and merged across
/// flows without changing any result.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Bucket counts, grown on demand to the highest touched bucket.
    counts: Vec<u64>,
    total: u64,
    /// Largest sample recorded (caps midpoint interpolation).
    max: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    fn bucket(value: u64) -> usize {
        if value < LINEAR_CUTOFF {
            value as usize
        } else {
            let octave = 63 - u64::from(value.leading_zeros());
            let sub = (value >> (octave - 4)) & (SUBBUCKETS - 1);
            (LINEAR_CUTOFF + (octave - FIRST_OCTAVE) * SUBBUCKETS + sub) as usize
        }
    }

    /// Lower bound of bucket `index`.
    fn bucket_low(index: usize) -> u64 {
        let index = index as u64;
        if index < LINEAR_CUTOFF {
            index
        } else {
            let rel = index - LINEAR_CUTOFF;
            let octave = rel / SUBBUCKETS + FIRST_OCTAVE;
            let sub = rel % SUBBUCKETS;
            (1 << octave) + (sub << (octave - 4))
        }
    }

    /// Midpoint of bucket `index` (the value quantiles report). Unit
    /// buckets in the linear range have zero width, so the midpoint
    /// degenerates to the exact value there.
    fn bucket_mid(index: usize) -> u64 {
        let low = LatencyHistogram::bucket_low(index);
        let width = LatencyHistogram::bucket_low(index + 1) - low;
        low + width / 2
    }

    /// Records one latency sample.
    pub fn record(&mut self, value: u64) {
        let b = LatencyHistogram::bucket(value);
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
    }

    /// The latency at quantile `q` (0 < q ≤ 1): the midpoint of the
    /// bucket holding the `⌈q·total⌉`-th smallest sample, clamped to
    /// the recorded maximum so a quantile never exceeds any observed
    /// value. Exact below 64 cycles, within ~3% relative error above.
    /// `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < q <= 1.0`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(LatencyHistogram::bucket_mid(i).min(self.max));
            }
        }
        unreachable!("rank {rank} exceeds recorded total {}", self.total)
    }

    /// Median latency (see [`LatencyHistogram::quantile`]).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }
}

/// Per-flow measurement results.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Packets generated during the measurement window.
    pub generated: u64,
    /// Packets ejected during the measurement window (throughput
    /// numerator).
    pub delivered: u64,
    /// Sum of packet latencies (network entry of head → ejection of
    /// tail), cycles, over latency-tracked packets.
    pub latency_sum: u64,
    /// Packets contributing to `latency_sum` (generated during
    /// measurement and fully delivered).
    pub latency_count: u64,
    /// Worst packet latency observed, cycles.
    pub latency_max: u64,
    /// Distribution of the tracked latencies.
    pub histogram: LatencyHistogram,
}

impl FlowStats {
    /// Mean packet latency in cycles, `None` when nothing was tracked.
    pub fn mean_latency(&self) -> Option<f64> {
        if self.latency_count == 0 {
            None
        } else {
            Some(self.latency_sum as f64 / self.latency_count as f64)
        }
    }
}

/// Wall-clock measurement of a [`crate::Simulator`] execution, kept out
/// of [`SimReport`] so deterministic results and machine-dependent
/// timings never mix (the sweep harness records both side by side).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunTiming {
    /// Cycles actually simulated.
    pub cycles: u64,
    /// Wall-clock duration of the run loop.
    pub elapsed: Duration,
}

impl RunTiming {
    /// Bundles a cycle count with its wall-clock duration.
    pub fn new(cycles: u64, elapsed: Duration) -> RunTiming {
        RunTiming { cycles, elapsed }
    }

    /// Simulation speed in cycles per wall-clock second (0 for an empty
    /// or unmeasurably fast run).
    pub fn cycles_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.cycles as f64 / secs
        } else {
            0.0
        }
    }
}

/// Whole-run results of a [`crate::Simulator`] execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Cycles actually simulated (shorter than configured if the watchdog
    /// fired).
    pub cycles: u64,
    /// Measurement-window length used for rates.
    pub measured_cycles: u64,
    /// Packets generated during measurement, across all flows.
    pub generated_packets: u64,
    /// Packets delivered (counted against measurement injections).
    pub delivered_packets: u64,
    /// Flits delivered in the measurement window.
    pub delivered_flits: u64,
    /// Per-flow breakdown.
    pub per_flow: Vec<FlowStats>,
    /// Flits carried per physical channel over the whole run (a proxy for
    /// observed channel load).
    pub link_flits: Vec<u64>,
    /// True if the progress watchdog aborted the run (routing deadlock or
    /// total starvation).
    pub deadlocked: bool,
}

impl SimReport {
    /// Delivered throughput in packets/cycle over the measurement window.
    pub fn throughput(&self) -> f64 {
        if self.measured_cycles == 0 {
            0.0
        } else {
            self.delivered_packets as f64 / self.measured_cycles as f64
        }
    }

    /// Offered load actually generated, packets/cycle.
    pub fn offered(&self) -> f64 {
        if self.measured_cycles == 0 {
            0.0
        } else {
            self.generated_packets as f64 / self.measured_cycles as f64
        }
    }

    /// Mean packet latency in cycles over all latency-tracked packets.
    pub fn mean_latency(&self) -> Option<f64> {
        let tracked: u64 = self.per_flow.iter().map(|f| f.latency_count).sum();
        if tracked == 0 {
            return None;
        }
        let sum: u64 = self.per_flow.iter().map(|f| f.latency_sum).sum();
        Some(sum as f64 / tracked as f64)
    }

    /// Worst packet latency across flows.
    pub fn max_latency(&self) -> u64 {
        self.per_flow
            .iter()
            .map(|f| f.latency_max)
            .max()
            .unwrap_or(0)
    }

    /// The network-wide latency distribution (all per-flow histograms
    /// merged).
    pub fn latency_histogram(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for f in &self.per_flow {
            merged.merge(&f.histogram);
        }
        merged
    }

    /// Network-wide latency at quantile `q` (see
    /// [`LatencyHistogram::quantile`]).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < q <= 1.0`.
    pub fn latency_quantile(&self, q: f64) -> Option<u64> {
        self.latency_histogram().quantile(q)
    }

    /// Median packet latency in cycles.
    pub fn p50_latency(&self) -> Option<u64> {
        self.latency_quantile(0.50)
    }

    /// 95th-percentile packet latency in cycles.
    pub fn p95_latency(&self) -> Option<u64> {
        self.latency_quantile(0.95)
    }

    /// 99th-percentile packet latency in cycles.
    pub fn p99_latency(&self) -> Option<u64> {
        self.latency_quantile(0.99)
    }

    /// Per-link observed channel load in accepted flits/cycle over the
    /// measurement window (the run-time counterpart of the paper's
    /// offline MCL metric).
    pub fn channel_loads(&self) -> Vec<f64> {
        if self.measured_cycles == 0 {
            return vec![0.0; self.link_flits.len()];
        }
        self.link_flits
            .iter()
            .map(|&f| f as f64 / self.measured_cycles as f64)
            .collect()
    }

    /// The busiest channel's observed load in flits/cycle.
    pub fn max_channel_load(&self) -> f64 {
        if self.measured_cycles == 0 {
            0.0
        } else {
            self.max_link_flits() as f64 / self.measured_cycles as f64
        }
    }

    /// The busiest channel's flit count.
    pub fn max_link_flits(&self) -> u64 {
        self.link_flits.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_latency() {
        let report = SimReport {
            cycles: 1_000,
            measured_cycles: 500,
            generated_packets: 100,
            delivered_packets: 80,
            delivered_flits: 640,
            per_flow: vec![
                FlowStats {
                    generated: 60,
                    delivered: 50,
                    latency_sum: 500,
                    latency_count: 50,
                    latency_max: 30,
                    histogram: LatencyHistogram::new(),
                },
                FlowStats {
                    generated: 40,
                    delivered: 30,
                    latency_sum: 600,
                    latency_count: 30,
                    latency_max: 45,
                    histogram: LatencyHistogram::new(),
                },
            ],
            link_flits: vec![3, 9, 1],
            deadlocked: false,
        };
        assert!((report.throughput() - 0.16).abs() < 1e-12);
        assert!((report.offered() - 0.2).abs() < 1e-12);
        assert!((report.mean_latency().unwrap() - 1100.0 / 80.0).abs() < 1e-12);
        assert_eq!(report.max_latency(), 45);
        assert_eq!(report.max_link_flits(), 9);
        assert!((report.max_channel_load() - 9.0 / 500.0).abs() < 1e-12);
        assert_eq!(report.channel_loads().len(), 3);
        assert!((report.channel_loads()[1] - 0.018).abs() < 1e-12);
        assert_eq!(report.per_flow[0].mean_latency(), Some(10.0));
    }

    #[test]
    fn empty_report_is_safe() {
        let report = SimReport::default();
        assert_eq!(report.throughput(), 0.0);
        assert_eq!(report.mean_latency(), None);
        assert_eq!(report.max_latency(), 0);
        assert_eq!(report.max_link_flits(), 0);
        assert_eq!(report.max_channel_load(), 0.0);
        assert_eq!(report.p50_latency(), None);
        assert_eq!(report.p99_latency(), None);
    }

    #[test]
    fn histogram_is_exact_in_the_linear_range() {
        let mut h = LatencyHistogram::new();
        for v in 1..=63 {
            h.record(v);
        }
        assert_eq!(h.count(), 63);
        assert_eq!(h.quantile(0.5), Some(32));
        assert_eq!(h.quantile(1.0), Some(63));
        assert_eq!(h.quantile(1.0 / 63.0), Some(1));
        assert_eq!(h.p95(), Some(60));
    }

    #[test]
    fn histogram_buckets_are_contiguous_and_monotone() {
        // Every value maps to a bucket whose lower bound is <= the value
        // and within 1/16 relative error, and bucket indices never
        // decrease with the value.
        let mut prev_bucket = 0usize;
        for v in 0u64..100_000 {
            let b = LatencyHistogram::bucket(v);
            assert!(b >= prev_bucket, "bucket regressed at {v}");
            prev_bucket = b;
            let low = LatencyHistogram::bucket_low(b);
            assert!(low <= v, "lower bound {low} above sample {v}");
            assert!(
                (v - low) as f64 <= (v as f64 / 16.0).max(0.0) + 1e-9,
                "bucket too wide at {v}: low {low}"
            );
        }
    }

    #[test]
    fn histogram_quantiles_track_heavy_tails() {
        let mut h = LatencyHistogram::new();
        for _ in 0..95 {
            h.record(10);
        }
        for _ in 0..5 {
            h.record(10_000);
        }
        assert_eq!(h.p50(), Some(10));
        assert_eq!(h.p95(), Some(10));
        let p99 = h.p99().expect("nonempty");
        assert!(
            (9_375..=10_000).contains(&p99),
            "p99 {p99} outside the 10k bucket"
        );
    }

    #[test]
    fn histogram_merge_matches_recording_everything_in_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for v in [3u64, 17, 200, 9_001, 3, 64, 65] {
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        assert_eq!(a.count(), 7);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn histogram_rejects_zero_quantile() {
        LatencyHistogram::new().quantile(0.0);
    }

    #[test]
    fn quantile_midpoints_bound_worst_case_relative_error() {
        // A single sample makes quantile(1.0) report that sample's
        // bucket midpoint (clamped to the sample itself): the reported
        // value must sit within half a sub-bucket of the truth, i.e.
        // within 1/32 relative error, everywhere — including bucket
        // boundaries and octave edges. The old lower-bound reporting
        // failed this with errors up to ~1/16, always biased low.
        for v in (1u64..=4096)
            .chain((1u64..=20).map(|o| (1 << o.min(40)) - 1))
            .chain([65_535, 1_000_000, 123_456_789])
        {
            let mut h = LatencyHistogram::new();
            h.record(v);
            let q = h.quantile(1.0).expect("nonempty");
            let err = v.abs_diff(q) as f64 / v as f64;
            assert!(
                err <= 1.0 / 32.0 + 1e-12,
                "value {v} reported as {q}: relative error {err:.4} above 1/32"
            );
        }
    }

    #[test]
    fn quantiles_never_exceed_the_recorded_max() {
        // 97 lands in bucket [96, 100) whose midpoint 98 exceeds it:
        // the clamp keeps every quantile <= the observed maximum.
        let mut h = LatencyHistogram::new();
        h.record(97);
        assert_eq!(h.quantile(1.0), Some(97));
        h.record(33);
        assert!(h.quantile(0.5).expect("nonempty") <= 97);
    }
}
