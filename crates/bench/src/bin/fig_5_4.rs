//! Regenerates **Figure 5-4**: "Transpose Node 52 Injection Rates when
//! modeling burstiness" — the rate-multiplier trace of one flow's
//! two-stage Markov-modulated process during a 25% bandwidth-variation
//! run, rendered as an ASCII strip chart (or CSV).
//!
//! ```text
//! cargo run -p bsor-bench --release --bin fig_5_4 [--csv]
//! ```

use bsor_bench::csv_mode;
use bsor_sim::MarkovVariation;

fn main() {
    let variation = MarkovVariation::new(0.25, 200.0);
    // Node 52's flow on the 8x8 transpose; the seed picks its process.
    let trace = variation.sample_trace(52, 4_000);
    if csv_mode() {
        println!("cycle,multiplier");
        for (c, m) in trace.iter().enumerate() {
            println!("{c},{m:.4}");
        }
        return;
    }
    println!("Figure 5-4: injection-rate multiplier, node 52, 25% variation");
    println!("(each row = 100 cycles; columns min/mean/max of the window)");
    for (i, window) in trace.chunks(100).enumerate() {
        let min = window.iter().copied().fold(f64::INFINITY, f64::min);
        let max = window.iter().copied().fold(0.0, f64::max);
        let mean = window.iter().sum::<f64>() / window.len() as f64;
        let bar_len = ((mean - 0.7) / 0.6 * 40.0).clamp(0.0, 40.0) as usize;
        println!(
            "{:>5}  {:.3} {:.3} {:.3}  |{}{}|",
            i * 100,
            min,
            mean,
            max,
            "#".repeat(bar_len),
            " ".repeat(40 - bar_len)
        );
    }
}
