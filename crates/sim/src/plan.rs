//! Planning vs. evaluating: the cached [`RoutePlan`] API.
//!
//! BSOR's cost is front-loaded. Building the CDG and solving for
//! minimum maximum channel load (the MILP of paper §3.5, or the
//! Dijkstra heuristic of §3.6) is expensive, while replaying the
//! resulting routes under different rates, bursts or phases is cheap.
//! This module makes that split first-class:
//!
//! * a [`Planner`] turns `(topology, workload, algorithm, vcs)` — i.e. a
//!   [`Scenario`] plus a [`RouteAlgorithm`] — into an immutable,
//!   content-addressed [`RoutePlan`] artifact: the scenario's CDG,
//!   validated routes, a checkable Lemma-1
//!   [`DeadlockCertificate`], compiled [`NodeTables`], the static
//!   per-channel loads and the predicted MCL;
//! * an [`Evaluator`] judges a plan at an [`EvalPoint`] and returns a
//!   common typed [`Evaluation`] report. Two backends ship:
//!   [`StaticMclEvaluator`] (analytical channel-load/MCL estimate
//!   straight from the plan, no simulation) and [`SimEvaluator`] (the
//!   cycle-accurate arena engine);
//! * a [`PlanCache`] keyed by a canonical hash of the plan inputs lets
//!   every rate/burst/saturation axis reuse one plan per case instead of
//!   re-solving the same selection per grid point.
//!
//! ```
//! use bsor_routing::Baseline;
//! use bsor_sim::{EvalPoint, Evaluator, Planner, Scenario, SimConfig, SimEvaluator,
//!                StaticMclEvaluator};
//! use bsor_flow::FlowSet;
//! use bsor_topology::Topology;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mesh = Topology::mesh2d(4, 4);
//! let mut flows = FlowSet::new();
//! flows.push(mesh.node_at(0, 0).unwrap(), mesh.node_at(3, 3).unwrap(), 25.0);
//! let scenario = Scenario::builder(mesh, flows).vcs(2).build()?;
//!
//! // Plan once: routes + Lemma-1 certificate + compiled tables + MCL.
//! let planner = Planner::new();
//! let plan = planner.plan(&scenario, &Baseline::XY)?;
//! assert!(plan.certificate().verify(plan.routes()));
//! assert_eq!(plan.predicted_mcl(), 25.0);
//!
//! // Evaluate many times: analytically, or in the cycle-accurate engine.
//! let config = SimConfig::new(2).with_warmup(100).with_measurement(1_000);
//! let analytical = StaticMclEvaluator::new()
//!     .evaluate(&plan, &EvalPoint::new(0.05, config.clone()))?;
//! let simulated = SimEvaluator::new()
//!     .evaluate(&plan, &EvalPoint::new(0.05, config))?;
//! assert_eq!(analytical.predicted_mcl, simulated.predicted_mcl);
//! assert!(simulated.delivered > 0);
//! # Ok(())
//! # }
//! ```

use crate::config::{SimConfig, SimError};
use crate::scenario::{AlgorithmError, RouteAlgorithm, Scenario};
use crate::stats::{RunTiming, SimReport};
use crate::traffic::{BurstyOnOff, MarkovVariation, PhaseSchedule, TrafficSpec};
use crate::Simulator;
use bsor_cdg::AcyclicCdg;
use bsor_flow::FlowSet;
use bsor_routing::deadlock::{self, DeadlockCertificate};
use bsor_routing::tables::NodeTables;
use bsor_routing::{RouteError, RouteSet};
use bsor_topology::Topology;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The canonical encoding of everything a plan's content depends on:
/// topology family, dimensions, links (endpoints and capacities), the
/// local-bandwidth factor, the flow set (endpoints and demands), the VC
/// count, the CDG's name *and dependence-edge structure*, and the
/// algorithm's [`RouteAlgorithm::cache_key`] (which folds in seeds,
/// selector budgets and exploration strategies — not just the display
/// name).
///
/// Two scenarios with equal keys produce identical plans (every
/// algorithm in the workspace is deterministic over these inputs), so
/// the key doubles as the [`PlanCache`] lookup key — exact, not
/// hash-truncated — while its 64-bit FNV-1a digest is the displayed
/// [`PlanId`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    bytes: Vec<u8>,
}

impl PlanKey {
    /// Encodes the plan inputs of `scenario` under `algorithm` (an
    /// algorithm *cache key*, from [`RouteAlgorithm::cache_key`] — the
    /// bare display name under-identifies configured algorithms).
    pub fn new(scenario: &Scenario, algorithm: &str) -> PlanKey {
        let mut bytes = Vec::new();
        let push_u64 = |bytes: &mut Vec<u8>, v: u64| bytes.extend_from_slice(&v.to_le_bytes());
        let push_f64 =
            |bytes: &mut Vec<u8>, v: f64| bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        let push_str = |bytes: &mut Vec<u8>, s: &str| {
            push_u64(bytes, s.len() as u64);
            bytes.extend_from_slice(s.as_bytes());
        };
        let topo = scenario.topology();
        bytes.push(topo.kind() as u8);
        bytes.extend_from_slice(&topo.width().to_le_bytes());
        bytes.extend_from_slice(&topo.height().to_le_bytes());
        push_u64(&mut bytes, topo.num_nodes() as u64);
        push_u64(&mut bytes, topo.num_links() as u64);
        for l in topo.link_ids() {
            let link = topo.link(l);
            push_u64(&mut bytes, u64::from(link.src.0));
            push_u64(&mut bytes, u64::from(link.dst.0));
            push_f64(&mut bytes, link.capacity);
        }
        push_f64(&mut bytes, topo.local_bandwidth_factor());
        push_u64(&mut bytes, scenario.flows().len() as u64);
        for f in scenario.flows().iter() {
            push_u64(&mut bytes, u64::from(f.src.0));
            push_u64(&mut bytes, u64::from(f.dst.0));
            push_f64(&mut bytes, f.demand);
        }
        bytes.push(scenario.vcs());
        // The CDG by *content*, not just name: CDG-conforming selectors
        // route inside its dependence edges, and `ScenarioBuilder::cdg`
        // accepts arbitrary same-named derivations. Vertices are laid
        // out canonically per (topology, vcs) — both encoded above — so
        // the edge list pins the structure.
        let cdg = scenario.cdg();
        push_str(&mut bytes, cdg.name());
        let graph = cdg.graph();
        push_u64(&mut bytes, graph.node_count() as u64);
        push_u64(&mut bytes, graph.edge_count() as u64);
        for (_, src, dst, _) in graph.edges() {
            push_u64(&mut bytes, src.index() as u64);
            push_u64(&mut bytes, dst.index() as u64);
        }
        push_str(&mut bytes, algorithm);
        PlanKey { bytes }
    }

    /// The key's 64-bit FNV-1a digest.
    pub fn id(&self) -> PlanId {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &self.bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        PlanId(h)
    }
}

/// Content address of a [`RoutePlan`] (FNV-1a digest of its
/// [`PlanKey`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanId(pub u64);

impl fmt::Display for PlanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// An immutable, content-addressed routing plan: everything the
/// expensive planning phase produces, ready to be evaluated any number
/// of times.
///
/// A plan bundles the scenario it was planned on (topology, flows, VCs,
/// CDG) with the validated [`RouteSet`], a checkable Lemma-1
/// [`DeadlockCertificate`], the compiled [`NodeTables`] the router
/// hardware would be programmed with, the static per-channel bandwidth
/// loads and their maximum (the paper's MCL metric, what the MILP
/// objective minimizes).
///
/// Plans compare structurally ([`PartialEq`]): a cache hit is required
/// to be indistinguishable from a fresh plan of the same inputs.
///
/// ```
/// use bsor_routing::Baseline;
/// use bsor_sim::{Planner, Scenario};
/// use bsor_flow::FlowSet;
/// use bsor_topology::Topology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mesh = Topology::mesh2d(4, 4);
/// let mut flows = FlowSet::new();
/// flows.push(mesh.node_at(0, 0).unwrap(), mesh.node_at(3, 0).unwrap(), 50.0);
/// let scenario = Scenario::builder(mesh, flows).vcs(2).build()?;
/// let plan = Planner::new().plan(&scenario, &Baseline::XY)?;
/// assert_eq!(plan.algorithm(), "XY");
/// assert_eq!(plan.predicted_mcl(), 50.0);
/// assert_eq!(plan.link_demands().len(), plan.topology().num_links());
/// assert!(plan.certificate().verify(plan.routes()));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct RoutePlan {
    id: PlanId,
    algorithm: String,
    scenario: Scenario,
    routes: RouteSet,
    certificate: DeadlockCertificate,
    tables: NodeTables,
    link_demands: Vec<f64>,
    predicted_mcl: f64,
}

impl RoutePlan {
    /// The content address: the FNV-1a digest of the full [`PlanKey`]
    /// encoding — topology (links and capacities), flows, VCs, the
    /// CDG's name *and* dependence-edge structure, and the algorithm's
    /// [`RouteAlgorithm::cache_key`] (seeds and budgets included, not
    /// just the display name).
    pub fn id(&self) -> PlanId {
        self.id
    }

    /// Display name of the algorithm that produced the routes.
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// The scenario the plan was computed for.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The interconnect.
    pub fn topology(&self) -> &Topology {
        self.scenario.topology()
    }

    /// The application's flows.
    pub fn flows(&self) -> &FlowSet {
        self.scenario.flows()
    }

    /// Virtual channels per physical channel.
    pub fn vcs(&self) -> u8 {
        self.scenario.vcs()
    }

    /// The acyclic CDG the scenario carried into planning.
    pub fn cdg(&self) -> &AcyclicCdg {
        self.scenario.cdg()
    }

    /// The validated, deadlock-free routes (one per flow).
    pub fn routes(&self) -> &RouteSet {
        &self.routes
    }

    /// The Lemma-1 witness: a topological order of the induced channel
    /// dependence graph, re-checkable against the routes.
    pub fn certificate(&self) -> &DeadlockCertificate {
        &self.certificate
    }

    /// The compiled node tables (paper §4.2.1) the routes program.
    pub fn tables(&self) -> &NodeTables {
        &self.tables
    }

    /// Static bandwidth load per channel in MB/s: each flow's demand
    /// summed over the channels its route crosses.
    pub fn link_demands(&self) -> &[f64] {
        &self.link_demands
    }

    /// The maximum of [`RoutePlan::link_demands`] — the paper's MCL
    /// metric in MB/s, equal to the LP objective when the MILP selector
    /// produced the routes.
    pub fn predicted_mcl(&self) -> f64 {
        self.predicted_mcl
    }
}

impl PartialEq for RoutePlan {
    /// Structural equality over everything planning computed (the
    /// embedded scenario is covered by the content address, which
    /// encodes its topology with link capacities, flows, VCs, the
    /// CDG's name and dependence-edge structure, and the algorithm's
    /// full cache key).
    fn eq(&self, other: &RoutePlan) -> bool {
        self.id == other.id
            && self.algorithm == other.algorithm
            && self.routes == other.routes
            && self.certificate == other.certificate
            && self.tables == other.tables
            && self.link_demands == other.link_demands
            && self.predicted_mcl == other.predicted_mcl
    }
}

/// Why a [`Planner`] could not produce a [`RoutePlan`].
#[derive(Clone, Debug, PartialEq)]
pub enum PlanError {
    /// The routing algorithm failed.
    Algorithm(AlgorithmError),
    /// The algorithm produced malformed routes (wrong endpoints,
    /// non-adjacent hops, …).
    InvalidRoutes(RouteError),
    /// The routes' induced channel dependence graph is cyclic — running
    /// them could deadlock (paper Lemma 1), so no plan is produced.
    Deadlock {
        /// The offending algorithm's display name.
        algorithm: String,
        /// Length of the dependence cycle found.
        cycle_len: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Algorithm(e) => write!(f, "{e}"),
            PlanError::InvalidRoutes(e) => write!(f, "invalid routes: {e}"),
            PlanError::Deadlock {
                algorithm,
                cycle_len,
            } => write!(
                f,
                "{algorithm} produced routes with a {cycle_len}-long channel dependence \
                 cycle (not deadlock-free, refusing to plan)"
            ),
        }
    }
}

impl Error for PlanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlanError::Algorithm(e) => Some(e),
            PlanError::InvalidRoutes(e) => Some(e),
            PlanError::Deadlock { .. } => None,
        }
    }
}

impl From<AlgorithmError> for PlanError {
    fn from(e: AlgorithmError) -> Self {
        PlanError::Algorithm(e)
    }
}

impl From<RouteError> for PlanError {
    fn from(e: RouteError) -> Self {
        PlanError::InvalidRoutes(e)
    }
}

impl From<PlanError> for crate::scenario::ExperimentError {
    /// Maps planning failures onto the legacy experiment errors (the
    /// shimmed [`crate::Experiment`] pipeline reports identically to the
    /// pre-plan one).
    fn from(e: PlanError) -> Self {
        use crate::scenario::ExperimentError;
        match e {
            PlanError::Algorithm(e) => ExperimentError::Algorithm(e),
            PlanError::InvalidRoutes(e) => ExperimentError::InvalidRoutes(e),
            PlanError::Deadlock {
                algorithm,
                cycle_len,
            } => ExperimentError::CyclicCdg {
                algorithm,
                cycle_len,
            },
        }
    }
}

/// A thread-safe plan store keyed by the canonical [`PlanKey`].
///
/// Share one cache (wrapped in an [`Arc`]) across every axis of a sweep
/// — rates, bursts, the saturation bisection — and each `(topology,
/// workload, algorithm, vcs)` case is solved once and reused by every
/// point that asks for it. There is no in-flight deduplication:
/// *concurrent* first requests for the same key (which the sweep never
/// issues — a case's points run serially on one worker) each solve,
/// benignly — results are deterministic and identical, the last insert
/// wins, and [`PlanStats::solves`] counts every solve that ran.
#[derive(Debug, Default)]
pub struct PlanCache {
    map: Mutex<HashMap<PlanKey, Arc<RoutePlan>>>,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// An empty cache ready to share across threads.
    pub fn shared() -> Arc<PlanCache> {
        Arc::new(PlanCache::new())
    }

    /// The cached plan for `key`, if any.
    pub fn get(&self, key: &PlanKey) -> Option<Arc<RoutePlan>> {
        self.map
            .lock()
            .expect("plan cache poisoned")
            .get(key)
            .cloned()
    }

    /// Stores `plan` under `key` (replacing any previous entry).
    pub fn insert(&self, key: PlanKey, plan: Arc<RoutePlan>) {
        self.map
            .lock()
            .expect("plan cache poisoned")
            .insert(key, plan);
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.map.lock().expect("plan cache poisoned").len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan.
    pub fn clear(&self) {
        self.map.lock().expect("plan cache poisoned").clear();
    }
}

/// Counters a [`Planner`] accumulates across [`Planner::plan`] calls.
///
/// `solves` counts actual route selections (the expensive MILP /
/// Dijkstra work, successful or failed); `cache_hits` counts requests
/// served from the [`PlanCache`] without solving.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Route selections actually performed.
    pub solves: u64,
    /// Plan requests served from the cache.
    pub cache_hits: u64,
}

/// Turns scenarios + algorithms into cached, validated [`RoutePlan`]s.
///
/// Planning runs the algorithm, validates the routes (one per flow,
/// correct endpoints and VCs), **certifies** deadlock freedom (paper
/// Lemma 1, as a re-checkable [`DeadlockCertificate`]), compiles the
/// node tables and precomputes the static channel loads. With a
/// [`PlanCache`] attached, repeated requests for the same canonical
/// inputs return the same [`Arc`]ed artifact and count as
/// [`PlanStats::cache_hits`] instead of re-solving.
#[derive(Debug, Default)]
pub struct Planner {
    cache: Option<Arc<PlanCache>>,
    solves: AtomicU64,
    cache_hits: AtomicU64,
}

impl Planner {
    /// A planner with no cache: every call solves.
    pub fn new() -> Planner {
        Planner::default()
    }

    /// Attaches a (shareable) plan cache.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<PlanCache>) -> Planner {
        self.cache = Some(cache);
        self
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&Arc<PlanCache>> {
        self.cache.as_ref()
    }

    /// Solve / cache-hit counters so far.
    pub fn stats(&self) -> PlanStats {
        PlanStats {
            solves: self.solves.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
        }
    }

    /// Plans `algorithm` on `scenario`: cache lookup first, then the
    /// full select → validate → certify (Lemma 1) → compile pipeline.
    ///
    /// # Errors
    ///
    /// Any [`PlanError`]: selection failure, malformed routes, or a
    /// cyclic induced CDG.
    pub fn plan(
        &self,
        scenario: &Scenario,
        algorithm: &dyn RouteAlgorithm,
    ) -> Result<Arc<RoutePlan>, PlanError> {
        let key = PlanKey::new(scenario, &algorithm.cache_key());
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.get(&key) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(hit);
            }
        }
        self.solves.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(build_plan(scenario, algorithm, key.id())?);
        if let Some(cache) = &self.cache {
            cache.insert(key, plan.clone());
        }
        Ok(plan)
    }
}

/// The uncached planning pipeline.
fn build_plan(
    scenario: &Scenario,
    algorithm: &dyn RouteAlgorithm,
    id: PlanId,
) -> Result<RoutePlan, PlanError> {
    let routes = algorithm.routes(&scenario.ctx())?;
    routes.validate(scenario.topology(), scenario.flows(), scenario.vcs())?;
    let certificate =
        deadlock::certify(scenario.topology(), &routes, scenario.vcs()).map_err(|cycle| {
            PlanError::Deadlock {
                algorithm: algorithm.name().to_owned(),
                cycle_len: cycle.len(),
            }
        })?;
    let tables = NodeTables::build(scenario.topology(), &routes);
    let link_demands = routes.link_loads(scenario.topology(), scenario.flows());
    let predicted_mcl = link_demands.iter().copied().fold(0.0, f64::max);
    Ok(RoutePlan {
        id,
        algorithm: algorithm.name().to_owned(),
        scenario: scenario.clone(),
        routes,
        certificate,
        tables,
        link_demands,
        predicted_mcl,
    })
}

/// One load point to evaluate a plan at: the offered aggregate rate
/// plus the simulation knobs ([`SimEvaluator`] uses all of them;
/// [`StaticMclEvaluator`] reads only the rate and the packet length).
#[derive(Clone, Debug)]
pub struct EvalPoint {
    /// Offered aggregate injection rate, packets/cycle (split across
    /// flows proportionally to their demands).
    pub rate: f64,
    /// Simulator configuration (`vcs` is overridden with the plan's).
    pub config: SimConfig,
    /// Optional on/off bursty injection.
    pub burst: Option<BurstyOnOff>,
    /// Optional multi-phase rate schedule.
    pub phases: Option<PhaseSchedule>,
    /// Optional Markov-modulated bandwidth variation (paper §5.3).
    pub variation: Option<MarkovVariation>,
}

impl EvalPoint {
    /// A flat-Bernoulli point at `rate` under `config`.
    pub fn new(rate: f64, config: SimConfig) -> EvalPoint {
        EvalPoint {
            rate,
            config,
            burst: None,
            phases: None,
            variation: None,
        }
    }

    /// Switches injection to the on/off bursty arrival process.
    #[must_use]
    pub fn with_burst(mut self, burst: BurstyOnOff) -> EvalPoint {
        self.burst = Some(burst);
        self
    }

    /// Adds a multi-phase rate schedule.
    #[must_use]
    pub fn with_phases(mut self, phases: PhaseSchedule) -> EvalPoint {
        self.phases = Some(phases);
        self
    }

    /// Adds run-time bandwidth variation.
    #[must_use]
    pub fn with_variation(mut self, variation: MarkovVariation) -> EvalPoint {
        self.variation = Some(variation);
        self
    }
}

/// The common typed report every [`Evaluator`] backend returns.
///
/// Fields an analytical backend cannot measure are `None`/zero and
/// documented on the backend; everything both backends produce
/// (throughput, channel load, the plan's predicted MCL) is directly
/// comparable across them.
#[derive(Clone, Debug, PartialEq)]
pub struct Evaluation {
    /// Which backend produced the report (`"sim"`, `"static-mcl"`, …).
    pub backend: &'static str,
    /// The requested rate, packets/cycle.
    pub rate: f64,
    /// Offered load actually generated (simulated backends) or assumed
    /// (analytical), packets/cycle.
    pub offered: f64,
    /// Delivered (or predicted deliverable) throughput, packets/cycle.
    pub throughput: f64,
    /// Mean packet latency, cycles (analytical backends report a
    /// zero-load bound).
    pub mean_latency: Option<f64>,
    /// Median packet latency, cycles (`None` without a distribution).
    pub p50_latency: Option<u64>,
    /// 95th-percentile packet latency, cycles.
    pub p95_latency: Option<u64>,
    /// 99th-percentile packet latency, cycles.
    pub p99_latency: Option<u64>,
    /// Worst packet latency observed, cycles (0 without a simulation).
    pub max_latency: u64,
    /// Busiest channel's load in flits/cycle (observed or predicted).
    pub max_channel_load: f64,
    /// The plan's static MCL in MB/s (identical across backends).
    pub predicted_mcl: f64,
    /// Packets generated in the measurement window (0 analytical).
    pub generated: u64,
    /// Packets delivered in the measurement window (0 analytical).
    pub delivered: u64,
    /// Whether a deadlock was observed (always `false` analytical — the
    /// plan carries a deadlock-freedom certificate).
    pub deadlocked: bool,
    /// Cycles actually simulated (0 analytical).
    pub cycles: u64,
    /// Wall-clock timing, when the backend measured one.
    pub timing: Option<RunTiming>,
}

/// Why an [`Evaluator`] could not produce an [`Evaluation`].
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// The simulator rejected the evaluation point (bad rate,
    /// inconsistent traffic, …).
    Sim(SimError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl Error for EvalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EvalError::Sim(e) => Some(e),
        }
    }
}

impl From<SimError> for EvalError {
    fn from(e: SimError) -> Self {
        EvalError::Sim(e)
    }
}

/// Judges a [`RoutePlan`] at an [`EvalPoint`].
///
/// Backends are interchangeable: both ship [`Evaluation`] with the same
/// schema, so a driver can answer "is the analytical estimate good
/// enough here, or do I need the engine?" by swapping one value.
pub trait Evaluator {
    /// Display name (`"sim"`, `"static-mcl"`).
    fn name(&self) -> &str;

    /// Evaluates `plan` at `point`.
    ///
    /// # Errors
    ///
    /// Any [`EvalError`].
    fn evaluate(&self, plan: &RoutePlan, point: &EvalPoint) -> Result<Evaluation, EvalError>;
}

/// The analytical backend: channel-load / MCL arithmetic straight from
/// the plan's static per-channel loads — no simulation, microseconds
/// per point.
///
/// With proportional injection, flow *i* offers `rate ·
/// demandᵢ/Σdemand` packets/cycle, so a channel's load in flits/cycle is
/// `rate · packet_len · load_MB/s / Σdemand`. The reported throughput
/// caps the offered rate once the busiest channel would exceed 1
/// flit/cycle (uniform-scaling assumption), and the latency is the
/// zero-load bound `demand-weighted mean hops · pipeline_latency +
/// packet_len − 1` — hops are weighted by each flow's injection share
/// (a high-demand short flow dominates the packet mix exactly as it
/// does in the engine), at the configured per-hop pipeline cost, plus
/// tail serialization. Burst/phase/variation knobs are ignored: they
/// preserve the mean load this backend reasons about.
#[derive(Clone, Copy, Debug, Default)]
pub struct StaticMclEvaluator;

impl StaticMclEvaluator {
    /// The analytical evaluator.
    pub fn new() -> StaticMclEvaluator {
        StaticMclEvaluator
    }
}

impl Evaluator for StaticMclEvaluator {
    fn name(&self) -> &str {
        "static-mcl"
    }

    fn evaluate(&self, plan: &RoutePlan, point: &EvalPoint) -> Result<Evaluation, EvalError> {
        let total_demand = plan.flows().total_demand();
        let packet_len = point.config.packet_len as f64;
        // MB/s → flits/cycle at this offered rate.
        let scale = if total_demand > 0.0 {
            point.rate * packet_len / total_demand
        } else {
            0.0
        };
        let max_channel_load = plan.predicted_mcl * scale;
        let throughput = if max_channel_load > 1.0 {
            point.rate / max_channel_load
        } else {
            point.rate
        };
        // Zero-load packet mix: injection is demand-proportional, so a
        // flow's hop count is weighted by its demand share.
        let weighted_hops = if total_demand > 0.0 {
            plan.flows()
                .iter()
                .zip(plan.routes.iter())
                .map(|(f, r)| f.demand * r.len() as f64)
                .sum::<f64>()
                / total_demand
        } else {
            0.0
        };
        let per_hop = f64::from(point.config.pipeline_latency);
        Ok(Evaluation {
            backend: "static-mcl",
            rate: point.rate,
            offered: point.rate,
            throughput,
            mean_latency: Some(weighted_hops * per_hop + packet_len - 1.0),
            p50_latency: None,
            p95_latency: None,
            p99_latency: None,
            max_latency: 0,
            max_channel_load,
            predicted_mcl: plan.predicted_mcl,
            generated: 0,
            delivered: 0,
            deadlocked: false,
            cycles: 0,
            timing: None,
        })
    }
}

/// The cycle-accurate backend: the arena engine of [`crate::engine`],
/// fed the plan's precompiled node tables (no per-point recompilation).
#[derive(Clone, Copy, Debug, Default)]
pub struct SimEvaluator;

impl SimEvaluator {
    /// The simulating evaluator.
    pub fn new() -> SimEvaluator {
        SimEvaluator
    }

    /// Runs the engine on `plan` at `point` and returns the raw
    /// [`SimReport`] plus wall-clock timing (what [`Evaluator::evaluate`]
    /// summarizes into an [`Evaluation`]).
    ///
    /// `point.config.vcs` is overridden with the plan's VC count so the
    /// two can never diverge.
    ///
    /// # Errors
    ///
    /// [`EvalError::Sim`] when the simulator rejects the inputs.
    pub fn simulate(
        &self,
        plan: &RoutePlan,
        point: &EvalPoint,
    ) -> Result<(SimReport, RunTiming), EvalError> {
        let mut config = point.config.clone();
        config.vcs = plan.vcs();
        let mut traffic = TrafficSpec::proportional(plan.flows(), point.rate);
        if let Some(v) = point.variation {
            traffic = traffic.with_variation(v);
        }
        if let Some(b) = point.burst {
            traffic = traffic.with_burst(b);
        }
        if let Some(p) = &point.phases {
            traffic = traffic.with_phases(p.clone());
        }
        let mut sim = Simulator::with_tables(
            plan.topology(),
            plan.flows(),
            &plan.routes,
            &plan.tables,
            traffic,
            config,
        )?;
        Ok(sim.run_timed())
    }
}

impl Evaluator for SimEvaluator {
    fn name(&self) -> &str {
        "sim"
    }

    fn evaluate(&self, plan: &RoutePlan, point: &EvalPoint) -> Result<Evaluation, EvalError> {
        let (report, timing) = self.simulate(plan, point)?;
        // One per-flow histogram merge serves all three percentiles.
        let hist = report.latency_histogram();
        Ok(Evaluation {
            backend: "sim",
            rate: point.rate,
            offered: report.offered(),
            throughput: report.throughput(),
            mean_latency: report.mean_latency(),
            p50_latency: hist.p50(),
            p95_latency: hist.p95(),
            p99_latency: hist.p99(),
            max_latency: report.max_latency(),
            max_channel_load: report.max_channel_load(),
            predicted_mcl: plan.predicted_mcl,
            generated: report.generated_packets,
            delivered: report.delivered_packets,
            deadlocked: report.deadlocked,
            cycles: report.cycles,
            timing: Some(timing),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsor_routing::Baseline;
    use bsor_topology::NodeId;

    fn scenario(vcs: u8) -> Scenario {
        let topo = Topology::mesh2d(4, 4);
        let mut flows = FlowSet::new();
        let n = topo.num_nodes() as u32;
        for i in 0..n {
            let j = (i + n / 2) % n;
            if i != j {
                flows.push(NodeId(i), NodeId(j), 10.0);
            }
        }
        Scenario::builder(topo, flows).vcs(vcs).build().expect("ok")
    }

    #[test]
    fn plan_matches_direct_selection_and_certifies() {
        let s = scenario(2);
        let plan = Planner::new().plan(&s, &Baseline::XY).expect("plans");
        let direct = s.select_routes(&Baseline::XY).expect("selects");
        assert_eq!(plan.routes(), &direct);
        assert_eq!(plan.predicted_mcl(), direct.mcl(s.topology(), s.flows()));
        assert!(plan.certificate().verify(plan.routes()));
        assert!(plan.certificate().dependencies() > 0);
        assert_eq!(plan.link_demands().len(), s.topology().num_links());
        // The tables are the ones the simulator would have compiled.
        assert_eq!(
            plan.tables(),
            &NodeTables::build(s.topology(), plan.routes())
        );
    }

    #[test]
    fn cache_hit_returns_the_same_artifact_and_counts() {
        let s = scenario(2);
        let planner = Planner::new().with_cache(PlanCache::shared());
        let a = planner.plan(&s, &Baseline::XY).expect("plans");
        let b = planner.plan(&s, &Baseline::XY).expect("cached");
        assert!(Arc::ptr_eq(&a, &b), "hit must return the cached Arc");
        assert_eq!(
            planner.stats(),
            PlanStats {
                solves: 1,
                cache_hits: 1
            }
        );
        // A different algorithm is a different key.
        let c = planner.plan(&s, &Baseline::YX).expect("plans");
        assert_ne!(a.id(), c.id());
        assert_eq!(planner.stats().solves, 2);
        assert_eq!(planner.cache().unwrap().len(), 2);
    }

    #[test]
    fn static_latency_is_demand_weighted_and_pipeline_scaled() {
        // One dominant 1-hop flow and one rare 3-hop flow: the packet
        // mix is demand-proportional, so the zero-load estimate must
        // sit near the short flow, not the unweighted hop mean.
        let topo = Topology::mesh2d(4, 1);
        let mut flows = FlowSet::new();
        flows.push(NodeId(0), NodeId(1), 900.0); // 1 hop
        flows.push(NodeId(0), NodeId(3), 100.0); // 3 hops
        let s = Scenario::builder(topo, flows).vcs(1).build().expect("ok");
        let plan = Planner::new().plan(&s, &Baseline::XY).expect("plans");
        let weighted = (900.0 * 1.0 + 100.0 * 3.0) / 1000.0; // 1.2 hops
        let config = SimConfig::new(1).with_packet_len(8);
        let ev = StaticMclEvaluator::new()
            .evaluate(&plan, &EvalPoint::new(0.1, config.clone()))
            .expect("static");
        assert!((ev.mean_latency.unwrap() - (weighted + 7.0)).abs() < 1e-12);
        // Doubling the per-hop pipeline cost doubles the hop term only.
        let ev2 = StaticMclEvaluator::new()
            .evaluate(&plan, &EvalPoint::new(0.1, config.with_pipeline_latency(2)))
            .expect("static");
        assert!((ev2.mean_latency.unwrap() - (2.0 * weighted + 7.0)).abs() < 1e-12);
    }

    #[test]
    fn cache_hit_is_structurally_identical_to_fresh_plan() {
        let s = scenario(2);
        let cached = Planner::new().with_cache(PlanCache::shared());
        cached.plan(&s, &Baseline::XY).expect("warm");
        let hit = cached.plan(&s, &Baseline::XY).expect("hit");
        let fresh = Planner::new().plan(&s, &Baseline::XY).expect("fresh");
        assert_eq!(*hit, *fresh);
    }

    #[test]
    fn same_name_different_config_algorithms_do_not_collide() {
        use bsor_cdg::{AcyclicCdg, TurnModel};
        let s = scenario(2);
        let planner = Planner::new().with_cache(PlanCache::shared());
        // ROMM's display name hides its seed; the cache key must not.
        let a = planner
            .plan(&s, &bsor_routing::Baseline::Romm { seed: 3 })
            .expect("plans");
        let b = planner
            .plan(&s, &bsor_routing::Baseline::Romm { seed: 9 })
            .expect("plans");
        assert_eq!(
            planner.stats().solves,
            2,
            "different seeds, different plans"
        );
        assert_eq!(planner.stats().cache_hits, 0);
        assert_ne!(a.id(), b.id());
        // Same-named CDGs with different dependence edges are different
        // plan inputs too: the key encodes the edge structure.
        let topo = Topology::mesh2d(4, 4);
        let wf = AcyclicCdg::turn_model(&topo, 2, &TurnModel::west_first()).expect("valid");
        let nl = AcyclicCdg::turn_model(&topo, 2, &TurnModel::north_last()).expect("valid");
        let sc = |cdg: AcyclicCdg| {
            Scenario::builder(topo.clone(), scenario(2).flows().clone())
                .cdg(cdg)
                .vcs(2)
                .build()
                .expect("ok")
        };
        let k1 = PlanKey::new(&sc(wf), "dijkstra");
        let k2 = PlanKey::new(&sc(nl), "dijkstra");
        assert_ne!(
            k1, k2,
            "CDG content must separate keys even if names differed"
        );
    }

    #[test]
    fn keys_separate_every_input_axis() {
        let s2 = scenario(2);
        let s4 = scenario(4);
        let xy2 = PlanKey::new(&s2, "xy");
        assert_eq!(xy2, PlanKey::new(&scenario(2), "xy"));
        assert_ne!(xy2, PlanKey::new(&s2, "yx"));
        assert_ne!(xy2, PlanKey::new(&s4, "xy"));
        let torus = Scenario::builder(Topology::torus2d(4, 4), s2.flows().clone())
            .vcs(2)
            .build()
            .expect("ok");
        assert_ne!(xy2, PlanKey::new(&torus, "xy"));
        assert_eq!(xy2.id(), PlanKey::new(&s2, "xy").id());
    }

    #[test]
    fn static_evaluator_is_consistent_with_the_plan() {
        let s = scenario(2);
        let plan = Planner::new().plan(&s, &Baseline::XY).expect("plans");
        let config = SimConfig::new(2).with_warmup(100).with_measurement(500);
        let low = StaticMclEvaluator::new()
            .evaluate(&plan, &EvalPoint::new(0.1, config.clone()))
            .expect("static");
        assert_eq!(low.backend, "static-mcl");
        assert_eq!(low.predicted_mcl, plan.predicted_mcl());
        assert_eq!(low.throughput, 0.1, "below saturation the rate passes");
        assert!(low.max_channel_load > 0.0);
        // Load scales linearly with rate; throughput caps at saturation.
        let high = StaticMclEvaluator::new()
            .evaluate(&plan, &EvalPoint::new(10.0, config))
            .expect("static");
        assert!((high.max_channel_load - 100.0 * low.max_channel_load).abs() < 1e-9);
        assert!(high.throughput < high.rate);
        assert!(!high.deadlocked);
    }

    #[test]
    fn sim_evaluator_matches_scenario_simulation() {
        let s = scenario(2);
        let plan = Planner::new().plan(&s, &Baseline::XY).expect("plans");
        let config = SimConfig::new(2).with_warmup(100).with_measurement(1_000);
        let point = EvalPoint::new(0.2, config.clone());
        let ev = SimEvaluator::new().evaluate(&plan, &point).expect("sims");
        assert_eq!(ev.backend, "sim");
        assert!(ev.delivered > 0);
        // Byte-identical to the legacy path that recompiles tables.
        let report = s
            .simulate(
                plan.routes(),
                TrafficSpec::proportional(s.flows(), 0.2),
                config,
            )
            .expect("legacy path");
        assert_eq!(ev.generated, report.generated_packets);
        assert_eq!(ev.delivered, report.delivered_packets);
        assert_eq!(ev.mean_latency, report.mean_latency());
        assert_eq!(ev.max_channel_load, report.max_channel_load());
    }

    #[test]
    fn plan_error_display_and_sources() {
        let e = PlanError::Deadlock {
            algorithm: "x".into(),
            cycle_len: 4,
        };
        assert!(e.to_string().contains("refusing to plan"));
        assert!(Error::source(&e).is_none());
        let e: PlanError = AlgorithmError::Failed("boom".into()).into();
        assert_eq!(e.to_string(), "boom");
        assert!(Error::source(&e).is_some());
    }
}
