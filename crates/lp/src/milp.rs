//! Branch-and-bound for mixed integer-linear models.
//!
//! Depth-first search branching on the most fractional integer variable,
//! exploring the "round up" child first (a diving strategy that finds
//! incumbents quickly for path-choice models). Node- and time-limits let
//! callers use the solver as a bounded heuristic, mirroring the thesis's
//! note that "the ILP solver can be used as a heuristic approach by
//! limiting the number of iterations for large examples".

use crate::problem::{LpError, Model, Solution, VarKind};
use std::time::{Duration, Instant};

/// Budget and tolerance knobs for [`solve`].
#[derive(Clone, Debug)]
pub struct MilpOptions {
    /// Maximum branch-and-bound nodes to explore.
    pub max_nodes: usize,
    /// Wall-clock limit for the whole search.
    pub time_limit: Option<Duration>,
    /// Tolerance within which a value counts as integral.
    pub int_tol: f64,
    /// Absolute objective gap below which a node is pruned against the
    /// incumbent.
    pub gap_tol: f64,
    /// Optional warm-start assignment (one value per variable). When
    /// feasible, it seeds the incumbent so the search starts with an
    /// upper bound and can only improve on it.
    pub initial: Option<Vec<f64>>,
}

impl Default for MilpOptions {
    fn default() -> Self {
        MilpOptions {
            max_nodes: 50_000,
            time_limit: Some(Duration::from_secs(60)),
            int_tol: 1e-6,
            gap_tol: 1e-9,
            initial: None,
        }
    }
}

/// Checks a candidate assignment against all bounds, integrality and
/// constraints; returns its objective when feasible.
fn check_initial(model: &Model, values: &[f64], int_tol: f64) -> Option<f64> {
    if values.len() != model.vars.len() {
        return None;
    }
    const FEAS: f64 = 1e-6;
    let mut objective = 0.0;
    for (v, &x) in model.vars.iter().zip(values) {
        if x < v.lo - FEAS || x > v.hi + FEAS {
            return None;
        }
        if v.kind != VarKind::Continuous && (x - x.round()).abs() > int_tol {
            return None;
        }
        objective += v.obj * x;
    }
    for con in &model.constraints {
        let lhs: f64 = con.terms.iter().map(|&(v, c)| c * values[v.index()]).sum();
        let ok = match con.cmp {
            crate::problem::Cmp::Le => lhs <= con.rhs + FEAS,
            crate::problem::Cmp::Ge => lhs >= con.rhs - FEAS,
            crate::problem::Cmp::Eq => (lhs - con.rhs).abs() <= FEAS,
        };
        if !ok {
            return None;
        }
    }
    Some(objective)
}

/// Search statistics reported alongside a MILP solution.
#[derive(Clone, Debug, Default)]
pub struct MilpStats {
    /// Nodes whose relaxation was solved.
    pub nodes_explored: usize,
    /// Whether the search completed within budget (so the incumbent is
    /// proven optimal up to `gap_tol`).
    pub proven_optimal: bool,
    /// Objective of the root relaxation (a lower bound).
    pub root_bound: f64,
}

#[derive(Clone)]
struct NodeDecisions(Vec<(usize, f64, f64)>);

/// Solves `model` by branch-and-bound.
///
/// # Errors
///
/// * [`LpError::Infeasible`] if no integer-feasible point exists (search
///   completed).
/// * [`LpError::BudgetExhausted`] if limits were hit before any incumbent
///   was found.
/// * [`LpError::Unbounded`] if the root relaxation is unbounded.
pub fn solve(model: &Model, opts: &MilpOptions) -> Result<(Solution, MilpStats), LpError> {
    let start = Instant::now();
    let mut work = model.clone();
    let int_vars: Vec<usize> = model
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind != VarKind::Continuous)
        .map(|(i, _)| i)
        .collect();

    let mut stats = MilpStats {
        nodes_explored: 0,
        proven_optimal: true,
        root_bound: f64::NEG_INFINITY,
    };
    let mut incumbent: Option<Solution> = match &opts.initial {
        Some(values) => check_initial(model, values, opts.int_tol).map(|objective| Solution {
            values: values.clone(),
            objective,
        }),
        None => None,
    };
    let mut stack: Vec<NodeDecisions> = vec![NodeDecisions(Vec::new())];

    while let Some(node) = stack.pop() {
        if stats.nodes_explored >= opts.max_nodes {
            stats.proven_optimal = false;
            break;
        }
        if let Some(limit) = opts.time_limit {
            if start.elapsed() >= limit {
                stats.proven_optimal = false;
                break;
            }
        }
        // Apply node bounds onto the working model.
        let saved: Vec<(usize, f64, f64)> = node
            .0
            .iter()
            .map(|&(i, _, _)| {
                let v = &work.vars[i];
                (i, v.lo, v.hi)
            })
            .collect();
        for &(i, lo, hi) in &node.0 {
            work.vars[i].lo = lo;
            work.vars[i].hi = hi;
        }
        let relax = work.solve_relaxation();
        // Restore before analyzing (so stack processing stays stateless).
        for &(i, lo, hi) in saved.iter().rev() {
            work.vars[i].lo = lo;
            work.vars[i].hi = hi;
        }
        stats.nodes_explored += 1;

        let sol = match relax {
            Ok(s) => s,
            Err(LpError::Infeasible) => continue,
            Err(LpError::Unbounded) if stats.nodes_explored == 1 => {
                return Err(LpError::Unbounded);
            }
            Err(LpError::Unbounded) => continue,
            Err(LpError::IterationLimit) => {
                // Numerical trouble: skip the node but drop the optimality
                // claim.
                stats.proven_optimal = false;
                continue;
            }
            Err(e) => return Err(e),
        };
        if stats.nodes_explored == 1 {
            stats.root_bound = sol.objective();
        }
        if let Some(inc) = &incumbent {
            if sol.objective() >= inc.objective() - opts.gap_tol {
                continue;
            }
        }
        // Most fractional integer variable.
        let mut branch: Option<(usize, f64)> = None;
        let mut best_frac = opts.int_tol;
        for &i in &int_vars {
            let x = sol.values()[i];
            let frac = (x - x.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch = Some((i, x));
            }
        }
        match branch {
            None => {
                // Integral: snap values and accept as incumbent.
                let mut values = sol.values().to_vec();
                for &i in &int_vars {
                    values[i] = values[i].round();
                }
                let objective = sol.objective();
                let better = incumbent
                    .as_ref()
                    .is_none_or(|inc| objective < inc.objective() - opts.gap_tol);
                if better {
                    incumbent = Some(Solution { values, objective });
                }
            }
            Some((i, x)) => {
                let floor = x.floor();
                let (lo, hi) = {
                    let v = &model.vars[i];
                    // Intersect with the node's own bounds if it re-branches
                    // on the same variable.
                    let nb = node
                        .0
                        .iter()
                        .rev()
                        .find(|&&(j, _, _)| j == i)
                        .map(|&(_, l, h)| (l, h));
                    nb.unwrap_or((v.lo, v.hi))
                };
                // Down child: x <= floor.
                if floor >= lo - opts.int_tol {
                    let mut d = node.0.clone();
                    d.push((i, lo, floor.max(lo)));
                    stack.push(NodeDecisions(d));
                }
                // Up child pushed last so it is explored first (diving).
                if floor + 1.0 <= hi + opts.int_tol {
                    let mut d = node.0.clone();
                    d.push((i, (floor + 1.0).min(hi), hi));
                    stack.push(NodeDecisions(d));
                }
            }
        }
    }

    match incumbent {
        Some(sol) => Ok((sol, stats)),
        None if stats.proven_optimal => Err(LpError::Infeasible),
        None => Err(LpError::BudgetExhausted),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Model, VarKind};

    #[test]
    fn knapsack_optimum() {
        // max 10a + 13b + 7c, 3a + 4b + 2c <= 6 -> a + c (17) vs b+c (20).
        let mut m = Model::minimize();
        let a = m.add_binary(-10.0);
        let b = m.add_binary(-13.0);
        let c = m.add_binary(-7.0);
        m.add_constraint(vec![(a, 3.0), (b, 4.0), (c, 2.0)], Cmp::Le, 6.0);
        let (sol, stats) = solve(&m, &MilpOptions::default()).expect("feasible");
        assert!((sol.objective() + 20.0).abs() < 1e-6);
        assert!(stats.proven_optimal);
        assert!(sol.value(b) > 0.5 && sol.value(c) > 0.5 && sol.value(a) < 0.5);
    }

    #[test]
    fn milp_differs_from_lp_relaxation() {
        // max x, 2x <= 3, x integer in [0, 5]: LP gives 1.5, MILP 1.
        let mut m = Model::minimize();
        let x = m.add_var(VarKind::Integer, 0.0, 5.0, -1.0);
        m.add_constraint(vec![(x, 2.0)], Cmp::Le, 3.0);
        let relax = m.solve_relaxation().expect("lp");
        assert!((relax.value(x) - 1.5).abs() < 1e-7);
        let (sol, _) = solve(&m, &MilpOptions::default()).expect("milp");
        assert!((sol.value(x) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_integrality() {
        // 2x = 1 with x binary has no integer solution.
        let mut m = Model::minimize();
        let x = m.add_binary(1.0);
        m.add_constraint(vec![(x, 2.0)], Cmp::Eq, 1.0);
        assert_eq!(
            solve(&m, &MilpOptions::default()).unwrap_err(),
            LpError::Infeasible
        );
    }

    #[test]
    fn budget_exhausted_without_incumbent() {
        let mut m = Model::minimize();
        let x = m.add_binary(1.0);
        let y = m.add_binary(1.0);
        m.add_constraint(vec![(x, 2.0), (y, 2.0)], Cmp::Eq, 2.0);
        // Zero nodes allowed: no incumbent possible.
        let opts = MilpOptions {
            max_nodes: 0,
            ..MilpOptions::default()
        };
        assert_eq!(solve(&m, &opts).unwrap_err(), LpError::BudgetExhausted);
    }

    #[test]
    fn choice_rows_give_one_hot_solutions() {
        // Two "flows", each choosing between 2 "paths"; shared resource
        // makes one combination optimal. Mirrors the BSOR path MILP shape.
        let mut m = Model::minimize();
        let u = m.add_var(VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
        let p = [m.add_binary(0.0), m.add_binary(0.0)];
        let q = [m.add_binary(0.0), m.add_binary(0.0)];
        for v in p.iter().chain(q.iter()) {
            m.set_ub_implied(*v);
        }
        m.add_constraint(vec![(p[0], 1.0), (p[1], 1.0)], Cmp::Eq, 1.0);
        m.add_constraint(vec![(q[0], 1.0), (q[1], 1.0)], Cmp::Eq, 1.0);
        // Link A carries p0 and q0; link B carries p1; link C carries q1.
        m.add_constraint(vec![(p[0], 5.0), (q[0], 5.0), (u, -1.0)], Cmp::Le, 0.0);
        m.add_constraint(vec![(p[1], 5.0), (u, -1.0)], Cmp::Le, 0.0);
        m.add_constraint(vec![(q[1], 5.0), (u, -1.0)], Cmp::Le, 0.0);
        let (sol, stats) = solve(&m, &MilpOptions::default()).expect("feasible");
        // Optimal: flows on different links, U = 5.
        assert!((sol.objective() - 5.0).abs() < 1e-6);
        assert!(stats.proven_optimal);
        let one_hot = |a: f64, b: f64| {
            (a - 1.0).abs() < 1e-6 && b.abs() < 1e-6 || a.abs() < 1e-6 && (b - 1.0).abs() < 1e-6
        };
        assert!(one_hot(sol.value(p[0]), sol.value(p[1])));
        assert!(one_hot(sol.value(q[0]), sol.value(q[1])));
    }

    #[test]
    fn general_integer_branching() {
        // min 3x + 4y s.t. x + 2y >= 5, integers: candidates (5,0)=15,
        // (3,1)=13, (1,2)=11.
        let mut m = Model::minimize();
        let x = m.add_var(VarKind::Integer, 0.0, 10.0, 3.0);
        let y = m.add_var(VarKind::Integer, 0.0, 10.0, 4.0);
        m.add_constraint(vec![(x, 1.0), (y, 2.0)], Cmp::Ge, 5.0);
        let (sol, _) = solve(&m, &MilpOptions::default()).expect("feasible");
        assert!((sol.objective() - 11.0).abs() < 1e-6);
        assert!((sol.value(x) - 1.0).abs() < 1e-6);
        assert!((sol.value(y) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn root_bound_reported() {
        let mut m = Model::minimize();
        let x = m.add_var(VarKind::Integer, 0.0, 5.0, -1.0);
        m.add_constraint(vec![(x, 2.0)], Cmp::Le, 3.0);
        let (_, stats) = solve(&m, &MilpOptions::default()).expect("feasible");
        assert!((stats.root_bound + 1.5).abs() < 1e-6);
        assert!(stats.nodes_explored >= 1);
    }

    #[test]
    fn warm_start_seeds_incumbent() {
        // With zero nodes allowed, the result IS the warm start.
        let mut m = Model::minimize();
        let a = m.add_binary(-1.0);
        let b = m.add_binary(-1.0);
        m.add_constraint(vec![(a, 1.0), (b, 1.0)], Cmp::Le, 1.0);
        let opts = MilpOptions {
            max_nodes: 0,
            initial: Some(vec![1.0, 0.0]),
            ..MilpOptions::default()
        };
        let (sol, _) = solve(&m, &opts).expect("warm start is feasible");
        assert!((sol.objective() + 1.0).abs() < 1e-9);
        // With full search, the optimum matches the warm start here.
        let opts = MilpOptions {
            initial: Some(vec![1.0, 0.0]),
            ..MilpOptions::default()
        };
        let (sol, _) = solve(&m, &opts).expect("feasible");
        assert!((sol.objective() + 1.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_warm_start_ignored() {
        let mut m = Model::minimize();
        let a = m.add_binary(-1.0);
        m.add_constraint(vec![(a, 1.0)], Cmp::Le, 0.0);
        let opts = MilpOptions {
            initial: Some(vec![1.0]), // violates a <= 0
            ..MilpOptions::default()
        };
        let (sol, _) = solve(&m, &opts).expect("search finds a = 0");
        assert!(sol.value(a).abs() < 1e-9);
    }

    #[test]
    fn continuous_model_through_solve() {
        let mut m = Model::minimize();
        let x = m.add_var(VarKind::Continuous, 0.0, 4.0, -1.0);
        let s = m.solve().expect("lp path");
        assert!((s.value(x) - 4.0).abs() < 1e-7);
    }
}
