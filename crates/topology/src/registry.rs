//! Name-keyed topology construction.
//!
//! The paper stresses that BSOR is topology independent; this registry
//! makes that independence operational: drivers (the sweep CLI, tests,
//! examples) enumerate and build topologies by name instead of
//! hard-wiring constructor calls, so adding a topology family is a
//! one-file plug-in rather than an edit to every binary.
//!
//! All factories take `(width, height)` grid dimensions; families that
//! are not grids reinterpret them (`ring` uses `width × height` nodes,
//! `hypercube` needs `width × height` to be a power of two and uses its
//! log2 as the dimension), so one CLI syntax — `name:WxH` — covers every
//! family.

use crate::net::Topology;
use std::error::Error;
use std::fmt;

/// Why a registry lookup or build failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// No factory is registered under the requested name.
    UnknownTopology {
        /// The name that failed to resolve.
        name: String,
    },
    /// The dimensions are invalid for the requested family.
    BadDimensions {
        /// Topology family name.
        name: String,
        /// Requested width.
        width: u16,
        /// Requested height.
        height: u16,
        /// Human-readable constraint that was violated.
        reason: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownTopology { name } => write!(f, "unknown topology '{name}'"),
            TopologyError::BadDimensions {
                name,
                width,
                height,
                reason,
            } => write!(f, "topology '{name}' rejects {width}x{height}: {reason}"),
        }
    }
}

impl Error for TopologyError {}

/// A topology constructor: `(width, height)` in, topology out.
pub type TopologyFactory = Box<dyn Fn(u16, u16) -> Result<Topology, TopologyError> + Send + Sync>;

/// Name-keyed registry of topology factories.
///
/// ```
/// use bsor_topology::{TopologyKind, TopologyRegistry};
///
/// let registry = TopologyRegistry::standard();
/// assert_eq!(registry.names(), vec!["mesh", "torus", "ring", "hypercube"]);
/// let torus = registry.build("torus", 4, 4).expect("valid dims");
/// assert_eq!(torus.kind(), TopologyKind::Torus2D);
/// // 8 nodes in a 4x2 footprint fold into a dimension-3 hypercube.
/// let cube = registry.build("hypercube", 4, 2).expect("power of two");
/// assert_eq!(cube.num_nodes(), 8);
/// ```
#[derive(Default)]
pub struct TopologyRegistry {
    entries: Vec<(String, TopologyFactory)>,
}

impl TopologyRegistry {
    /// An empty registry.
    pub fn new() -> TopologyRegistry {
        TopologyRegistry::default()
    }

    /// The four built-in families: `mesh`, `torus`, `ring`, `hypercube`.
    pub fn standard() -> TopologyRegistry {
        let mut r = TopologyRegistry::new();
        r.register("mesh", |w, h| {
            if w == 0 || h == 0 || (w as usize * h as usize) < 2 {
                return Err(bad("mesh", w, h, "needs positive dims and >= 2 nodes"));
            }
            Ok(Topology::mesh2d(w, h))
        });
        r.register("torus", |w, h| {
            if w < 3 || h < 3 {
                return Err(bad("torus", w, h, "both dimensions must be >= 3"));
            }
            Ok(Topology::torus2d(w, h))
        });
        r.register("ring", |w, h| {
            let n = w as usize * h as usize;
            if n < 3 || n > u16::MAX as usize {
                return Err(bad("ring", w, h, "needs 3..=65535 nodes (width x height)"));
            }
            Ok(Topology::ring(n as u16))
        });
        r.register("hypercube", |w, h| {
            let n = w as usize * h as usize;
            if n < 2 || !n.is_power_of_two() || n > 1 << 10 {
                return Err(bad(
                    "hypercube",
                    w,
                    h,
                    "width x height must be a power of two in 2..=1024",
                ));
            }
            Ok(Topology::hypercube(n.trailing_zeros() as u8))
        });
        r
    }

    /// Registers (or replaces) a factory under `name`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(u16, u16) -> Result<Topology, TopologyError> + Send + Sync + 'static,
    ) {
        let name = name.into();
        self.entries.retain(|(n, _)| *n != name);
        self.entries.push((name, Box::new(factory)));
    }

    /// The factory registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&TopologyFactory> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, f)| f)
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Builds the topology `name` with the given grid dimensions.
    ///
    /// # Errors
    ///
    /// [`TopologyError::UnknownTopology`] for unregistered names,
    /// [`TopologyError::BadDimensions`] when the family rejects the
    /// dimensions.
    pub fn build(&self, name: &str, width: u16, height: u16) -> Result<Topology, TopologyError> {
        let factory = self
            .get(name)
            .ok_or_else(|| TopologyError::UnknownTopology {
                name: name.to_owned(),
            })?;
        factory(width, height)
    }
}

fn bad(name: &str, width: u16, height: u16, reason: &str) -> TopologyError {
    TopologyError::BadDimensions {
        name: name.to_owned(),
        width,
        height,
        reason: reason.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::TopologyKind;

    #[test]
    fn standard_names_round_trip() {
        let r = TopologyRegistry::standard();
        for name in r.names() {
            assert!(r.get(name).is_some());
        }
        assert!(r.get("klein-bottle").is_none());
    }

    #[test]
    fn builds_every_family() {
        let r = TopologyRegistry::standard();
        assert_eq!(r.build("mesh", 4, 4).unwrap().kind(), TopologyKind::Mesh2D);
        assert_eq!(
            r.build("torus", 4, 4).unwrap().kind(),
            TopologyKind::Torus2D
        );
        let ring = r.build("ring", 6, 1).unwrap();
        assert_eq!(ring.kind(), TopologyKind::Ring);
        assert_eq!(ring.num_nodes(), 6);
        let cube = r.build("hypercube", 8, 2).unwrap();
        assert_eq!(cube.kind(), TopologyKind::Hypercube);
        assert_eq!(cube.num_nodes(), 16);
    }

    #[test]
    fn bad_dimensions_are_typed_errors_not_panics() {
        let r = TopologyRegistry::standard();
        assert!(matches!(
            r.build("torus", 2, 4),
            Err(TopologyError::BadDimensions { .. })
        ));
        assert!(matches!(
            r.build("hypercube", 3, 1),
            Err(TopologyError::BadDimensions { .. })
        ));
        assert!(matches!(
            r.build("ring", 2, 1),
            Err(TopologyError::BadDimensions { .. })
        ));
        assert!(matches!(
            r.build("mesh", 0, 5),
            Err(TopologyError::BadDimensions { .. })
        ));
        let err = r.build("nope", 4, 4).unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn custom_registration_replaces() {
        let mut r = TopologyRegistry::new();
        r.register("line", |w, _| Ok(Topology::mesh2d(w, 1)));
        assert_eq!(r.names(), vec!["line"]);
        r.register("line", |w, _| Ok(Topology::mesh2d(w.max(2), 1)));
        assert_eq!(r.names().len(), 1);
        assert_eq!(r.build("line", 1, 1).unwrap().num_nodes(), 2);
    }
}
