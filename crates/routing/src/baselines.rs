//! The oblivious baselines the paper compares against (§2.1, §6):
//! dimension-order XY and YX, O1TURN, ROMM and Valiant.

use crate::route::{Route, RouteHop, RouteSet, VcMask};
use crate::selector::SelectError;
use bsor_flow::FlowSet;
use bsor_topology::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A traditional oblivious routing algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Baseline {
    /// Dimension-order: X first, then Y.
    XY,
    /// Dimension-order: Y first, then X.
    YX,
    /// O1TURN: each flow picks XY or YX uniformly at random; XY traffic
    /// uses the lower half of the VCs and YX the upper half.
    O1Turn {
        /// RNG seed for the per-flow choice.
        seed: u64,
    },
    /// ROMM: two-phase with a random intermediate node drawn from the
    /// minimal quadrant; phase 1 on the lower VC half, phase 2 on the
    /// upper (per-flow intermediate selection, as in the paper's
    /// experiments).
    Romm {
        /// RNG seed for intermediate selection.
        seed: u64,
    },
    /// Valiant: two-phase with a uniformly random intermediate anywhere
    /// in the network; same VC discipline as ROMM.
    Valiant {
        /// RNG seed for intermediate selection.
        seed: u64,
    },
}

impl Baseline {
    /// Short display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Baseline::XY => "XY",
            Baseline::YX => "YX",
            Baseline::O1Turn { .. } => "O1TURN",
            Baseline::Romm { .. } => "ROMM",
            Baseline::Valiant { .. } => "Valiant",
        }
    }

    /// Number of virtual channels the algorithm needs for deadlock
    /// freedom.
    pub fn required_vcs(&self) -> u8 {
        match self {
            Baseline::XY | Baseline::YX => 1,
            _ => 2,
        }
    }

    /// Computes one route per flow.
    ///
    /// **Deprecation note:** this topology-and-VC-count signature is the
    /// legacy entry point. New code should run baselines through the
    /// unified `RouteAlgorithm` trait (`bsor_sim::RouteAlgorithm`, which
    /// `Baseline` implements) and the `Scenario` pipeline, which adds
    /// mandatory Lemma-1 deadlock validation; this method remains as the
    /// construction kernel the trait impl delegates to.
    ///
    /// # Errors
    ///
    /// [`SelectError::NeedsVirtualChannels`] when `vcs` is below
    /// [`Baseline::required_vcs`] (the paper sets 2 VCs "to guarantee
    /// deadlock freedom to the ROMM and Valiant algorithms").
    pub fn select(
        &self,
        topo: &Topology,
        flows: &FlowSet,
        vcs: u8,
    ) -> Result<RouteSet, SelectError> {
        if vcs < self.required_vcs() {
            return Err(SelectError::NeedsVirtualChannels {
                required: self.required_vcs(),
                available: vcs,
            });
        }
        let mut rng = StdRng::seed_from_u64(match self {
            Baseline::O1Turn { seed } | Baseline::Romm { seed } | Baseline::Valiant { seed } => {
                *seed
            }
            _ => 0,
        });
        let routes = flows
            .iter()
            .map(|f| {
                let hops = match self {
                    Baseline::XY => dor_hops(topo, f.src, f.dst, true, VcMask::all(vcs)),
                    Baseline::YX => dor_hops(topo, f.src, f.dst, false, VcMask::all(vcs)),
                    Baseline::O1Turn { .. } => {
                        let use_xy = rng.gen_bool(0.5);
                        if use_xy {
                            dor_hops(topo, f.src, f.dst, true, VcMask::low_half(vcs))
                        } else {
                            dor_hops(topo, f.src, f.dst, false, VcMask::high_half(vcs))
                        }
                    }
                    Baseline::Romm { .. } => {
                        let mid = random_quadrant_node(topo, f.src, f.dst, &mut rng);
                        two_phase_hops(topo, f.src, mid, f.dst, vcs)
                    }
                    Baseline::Valiant { .. } => {
                        let mid = NodeId(rng.gen_range(0..topo.num_nodes() as u32));
                        two_phase_hops(topo, f.src, mid, f.dst, vcs)
                    }
                };
                Route { flow: f.id, hops }
            })
            .collect();
        Ok(RouteSet::from_routes(routes))
    }
}

/// Dimension-order walk from `src` to `dst`; `x_first` selects XY vs YX.
fn dor_path(topo: &Topology, src: NodeId, dst: NodeId, x_first: bool) -> Vec<NodeId> {
    let mut nodes = vec![src];
    let mut cur = topo.coord(src);
    let goal = topo.coord(dst);
    let push = |x: u16, y: u16, nodes: &mut Vec<NodeId>| {
        nodes.push(topo.node_at(x, y).expect("dimension-order stays in range"));
    };
    if x_first {
        while cur.x != goal.x {
            cur.x = if cur.x < goal.x { cur.x + 1 } else { cur.x - 1 };
            push(cur.x, cur.y, &mut nodes);
        }
        while cur.y != goal.y {
            cur.y = if cur.y < goal.y { cur.y + 1 } else { cur.y - 1 };
            push(cur.x, cur.y, &mut nodes);
        }
    } else {
        while cur.y != goal.y {
            cur.y = if cur.y < goal.y { cur.y + 1 } else { cur.y - 1 };
            push(cur.x, cur.y, &mut nodes);
        }
        while cur.x != goal.x {
            cur.x = if cur.x < goal.x { cur.x + 1 } else { cur.x - 1 };
            push(cur.x, cur.y, &mut nodes);
        }
    }
    nodes
}

fn nodes_to_hops(topo: &Topology, nodes: &[NodeId], vcs: VcMask) -> Vec<RouteHop> {
    nodes
        .windows(2)
        .map(|w| RouteHop {
            link: topo
                .find_link(w[0], w[1])
                .expect("consecutive dimension-order nodes are adjacent"),
            vcs,
        })
        .collect()
}

fn dor_hops(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    x_first: bool,
    vcs: VcMask,
) -> Vec<RouteHop> {
    nodes_to_hops(topo, &dor_path(topo, src, dst, x_first), vcs)
}

/// Uniformly random node in the minimal quadrant spanned by `src` and
/// `dst` (inclusive), ROMM's intermediate-node domain.
fn random_quadrant_node(topo: &Topology, src: NodeId, dst: NodeId, rng: &mut StdRng) -> NodeId {
    let a = topo.coord(src);
    let b = topo.coord(dst);
    let (x0, x1) = (a.x.min(b.x), a.x.max(b.x));
    let (y0, y1) = (a.y.min(b.y), a.y.max(b.y));
    let x = rng.gen_range(x0..=x1);
    let y = rng.gen_range(y0..=y1);
    topo.node_at(x, y).expect("quadrant nodes are in range")
}

/// Two-phase route: XY to `mid` on the low VC half, then XY to `dst` on
/// the high half. Empty phases collapse naturally.
fn two_phase_hops(
    topo: &Topology,
    src: NodeId,
    mid: NodeId,
    dst: NodeId,
    vcs: u8,
) -> Vec<RouteHop> {
    let mut hops = dor_hops(topo, src, mid, true, VcMask::low_half(vcs));
    hops.extend(dor_hops(topo, mid, dst, true, VcMask::high_half(vcs)));
    hops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadlock;
    use bsor_flow::FlowSet;

    fn all_pairs_flows(topo: &Topology) -> FlowSet {
        let mut fs = FlowSet::new();
        for s in topo.node_ids() {
            for d in topo.node_ids() {
                if s != d {
                    fs.push(s, d, 1.0);
                }
            }
        }
        fs
    }

    #[test]
    fn xy_routes_are_minimal_and_valid() {
        let topo = Topology::mesh2d(4, 4);
        let flows = all_pairs_flows(&topo);
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy works");
        routes.validate(&topo, &flows, 2).expect("valid");
        for r in routes.iter() {
            let f = flows.flow(r.flow);
            assert_eq!(r.len(), topo.min_hops(f.src, f.dst), "XY is minimal");
        }
        assert!(deadlock::is_deadlock_free(&topo, &routes, 2));
    }

    #[test]
    fn yx_routes_are_minimal_and_deadlock_free() {
        let topo = Topology::mesh2d(4, 4);
        let flows = all_pairs_flows(&topo);
        let routes = Baseline::YX.select(&topo, &flows, 1).expect("yx works");
        routes.validate(&topo, &flows, 1).expect("valid");
        assert!(deadlock::is_deadlock_free(&topo, &routes, 1));
    }

    #[test]
    fn xy_and_yx_differ() {
        let topo = Topology::mesh2d(3, 3);
        let mut flows = FlowSet::new();
        flows.push(
            topo.node_at(0, 0).unwrap(),
            topo.node_at(2, 2).unwrap(),
            1.0,
        );
        let xy = Baseline::XY.select(&topo, &flows, 1).expect("xy");
        let yx = Baseline::YX.select(&topo, &flows, 1).expect("yx");
        assert_ne!(
            xy.route(bsor_flow::FlowId(0)).hops,
            yx.route(bsor_flow::FlowId(0)).hops
        );
    }

    #[test]
    fn romm_and_valiant_need_two_vcs() {
        let topo = Topology::mesh2d(3, 3);
        let flows = all_pairs_flows(&topo);
        for algo in [
            Baseline::Romm { seed: 1 },
            Baseline::Valiant { seed: 1 },
            Baseline::O1Turn { seed: 1 },
        ] {
            let err = algo.select(&topo, &flows, 1).unwrap_err();
            assert!(matches!(
                err,
                SelectError::NeedsVirtualChannels {
                    required: 2,
                    available: 1
                }
            ));
        }
    }

    #[test]
    fn romm_stays_in_minimal_quadrant() {
        let topo = Topology::mesh2d(8, 8);
        let flows = all_pairs_flows(&topo);
        let routes = Baseline::Romm { seed: 7 }
            .select(&topo, &flows, 2)
            .expect("romm");
        routes.validate(&topo, &flows, 2).expect("valid");
        for r in routes.iter() {
            let f = flows.flow(r.flow);
            // Minimal-quadrant two-phase routes are themselves minimal.
            assert_eq!(
                r.len(),
                topo.min_hops(f.src, f.dst),
                "ROMM is minimal routing"
            );
        }
        assert!(deadlock::is_deadlock_free(&topo, &routes, 2));
    }

    #[test]
    fn valiant_can_be_nonminimal_but_is_deadlock_free() {
        let topo = Topology::mesh2d(6, 6);
        let flows = all_pairs_flows(&topo);
        let routes = Baseline::Valiant { seed: 3 }
            .select(&topo, &flows, 2)
            .expect("valiant");
        routes.validate(&topo, &flows, 2).expect("valid");
        assert!(deadlock::is_deadlock_free(&topo, &routes, 2));
        let total_min: usize = flows.iter().map(|f| topo.min_hops(f.src, f.dst)).sum();
        let total_actual: usize = routes.iter().map(|r| r.len()).sum();
        assert!(
            total_actual > total_min,
            "Valiant's detours should exceed minimal length in aggregate"
        );
    }

    #[test]
    fn o1turn_balances_and_is_deadlock_free() {
        let topo = Topology::mesh2d(6, 6);
        let flows = all_pairs_flows(&topo);
        let routes = Baseline::O1Turn { seed: 5 }
            .select(&topo, &flows, 2)
            .expect("o1turn");
        routes.validate(&topo, &flows, 2).expect("valid");
        assert!(deadlock::is_deadlock_free(&topo, &routes, 2));
        // Both VC halves should be in use.
        let mut low = 0;
        let mut high = 0;
        for r in routes.iter() {
            for h in &r.hops {
                if h.vcs == VcMask::low_half(2) {
                    low += 1;
                }
                if h.vcs == VcMask::high_half(2) {
                    high += 1;
                }
            }
        }
        assert!(low > 0 && high > 0);
    }

    #[test]
    fn baselines_are_reproducible() {
        let topo = Topology::mesh2d(5, 5);
        let flows = all_pairs_flows(&topo);
        let a = Baseline::Valiant { seed: 11 }
            .select(&topo, &flows, 2)
            .expect("a");
        let b = Baseline::Valiant { seed: 11 }
            .select(&topo, &flows, 2)
            .expect("b");
        assert_eq!(a, b);
        let c = Baseline::Valiant { seed: 12 }
            .select(&topo, &flows, 2)
            .expect("c");
        assert_ne!(a, c, "different seeds should give different intermediates");
    }

    #[test]
    fn bit_complement_xy_mcl_matches_paper_scale() {
        // On an 8x8 mesh with 25 MB/s flows, bit-complement under XY has
        // MCL 100 (Table 6.3).
        let topo = Topology::mesh2d(8, 8);
        let mut flows = FlowSet::new();
        for n in topo.node_ids() {
            let c = topo.coord(n);
            let d = topo.node_at(7 - c.x, 7 - c.y).expect("complement in range");
            if n != d {
                flows.push(n, d, 25.0);
            }
        }
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        assert_eq!(routes.mcl(&topo, &flows), 100.0);
    }
}
