//! The cycle-accurate simulation engine.
//!
//! Router model (per cycle, single-cycle per hop as in paper §6.1):
//!
//! 1. **Generation** — Bernoulli or on/off bursty packet arrivals per
//!    flow (optionally Markov-modulated, optionally phase-scheduled)
//!    into per-node source queues.
//! 2. **RC + VA** — head flits at buffer fronts look up the node table
//!    (packets carry a table index, paper §4.2.1) and request an output
//!    VC within the hop's VC mask. VC allocation is *atomic*: a VC buffer
//!    holds at most one packet at a time, and a new packet acquires it
//!    only after the previous tail has departed.
//! 3. **SA + ST** — each output channel moves at most one flit per cycle
//!    and each input port forwards at most one flit per cycle (rotating
//!    arbiters); the ejection "channel" moves up to `local_bandwidth`
//!    flits per cycle (the paper's 4× resource links). Arrivals land in
//!    the downstream buffer at the end of the cycle.
//! 4. **Injection** — up to `local_bandwidth` flits move from the source
//!    queue into the injection port's VC buffers.
//!
//! Credits are modelled as direct downstream-occupancy checks (an ideal
//! zero-latency credit loop). A progress watchdog aborts the run and
//! flags `deadlocked` when in-network flits stop moving entirely, which
//! is how the deadlock tests in this crate observe cyclic routings
//! actually jam.

use crate::config::{SimConfig, SimError};
use crate::stats::{FlowStats, RunTiming, SimReport};
use crate::traffic::{BurstState, InjectionProcess, TrafficSpec, VariationState};
use bsor_flow::{FlowId, FlowSet};
use bsor_routing::tables::NodeTables;
use bsor_routing::RouteSet;
use bsor_topology::{LinkId, NodeId, TopoIndex, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::time::Instant;

#[derive(Clone, Copy, Debug)]
struct Flit {
    /// Slot in the simulator's packet arena (unique while the packet is
    /// alive; recycled after the tail ejects).
    packet: u32,
    flow: FlowId,
    is_head: bool,
    is_tail: bool,
    /// Node-table index for the next lookup; `None` on a head means
    /// "eject at the next router". Only meaningful on head flits.
    cursor: Option<u16>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OutKind {
    Forward(LinkId),
    Eject,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PortState {
    /// No packet is being forwarded from this VC buffer.
    Idle,
    /// The head was routed but no output VC is allocated yet.
    Routed {
        out: LinkId,
        mask: u8,
        next_cursor: Option<u16>,
    },
    /// Output VC allocated; body flits follow the head.
    Active {
        out: OutKind,
        out_vc: u8,
        next_cursor: Option<u16>,
    },
}

/// One virtual-channel flit buffer plus its control state.
#[derive(Clone, Debug)]
struct VcBuffer {
    flits: VecDeque<Flit>,
    /// Packet currently allowed to occupy this buffer (atomic VCs).
    owner: Option<u32>,
    state: PortState,
}

impl VcBuffer {
    fn new(depth: usize) -> VcBuffer {
        VcBuffer {
            flits: VecDeque::with_capacity(depth),
            owner: None,
            state: PortState::Idle,
        }
    }
}

/// Streaming state of a source queue into the injection port.
#[derive(Clone, Copy, Debug)]
struct InjectionProgress {
    vc: u8,
    remaining: usize,
}

/// Per-packet bookkeeping, indexed by the arena slot the packet's flits
/// carry. Slots are recycled when the tail ejects, so the arena stays as
/// small as the peak number of live packets — no hashing, no growth.
#[derive(Clone, Copy, Debug, Default)]
struct PacketSlot {
    /// Cycle the head flit entered the network (injection-port write).
    entry_cycle: u64,
    /// Whether the packet was generated during measurement (latency and
    /// delivery statistics follow only tracked packets).
    tracked: bool,
}

#[derive(Clone, Debug, Default)]
struct PacketArena {
    slots: Vec<PacketSlot>,
    free: Vec<u32>,
}

impl PacketArena {
    fn alloc(&mut self, tracked: bool) -> u32 {
        let slot = PacketSlot {
            entry_cycle: 0,
            tracked,
        };
        match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = slot;
                id
            }
            None => {
                let id = u32::try_from(self.slots.len()).expect("live packets exceed u32 slots");
                self.slots.push(slot);
                id
            }
        }
    }

    fn release(&mut self, id: u32) {
        self.free.push(id);
    }
}

/// Scratch buffers reused across cycles so the per-cycle loop never
/// allocates. Taken out of the simulator while `switch_and_traverse`
/// iterates (to sidestep aliasing with `&mut self` calls) and put back
/// when the pass finishes.
#[derive(Clone, Debug, Default)]
struct SwitchScratch {
    /// `port_forwarded` flags, sized to the widest router.
    port_forwarded: Vec<bool>,
    /// Per output-link candidate buckets `(input port, buffer index)`,
    /// indexed by the link's position in its node's out-link list and
    /// filled in input-buffer order (the arbitration order).
    forward: Vec<Vec<(u32, u32)>>,
    /// Eject candidates in input-buffer order.
    eject: Vec<(u32, u32)>,
    /// A bucket filtered down to this instant's eligible candidates.
    eligible: Vec<(u32, u32)>,
    /// The current node's output links (copied so arbitration can call
    /// `&mut self` methods while iterating).
    outs: Vec<LinkId>,
}

/// The simulator. Construct with [`Simulator::new`], execute with
/// [`Simulator::run`].
///
/// All per-cycle state lives in flat arenas keyed by the dense
/// `NodeId`/`LinkId`/VC indices of a [`TopoIndex`] snapshot: VC buffers
/// in one `Vec` (`link * vcs + vc`, then injection ports), per-packet
/// bookkeeping in a recycled slot arena, and per-node input-port lists
/// in a precomputed CSR. The cycle loop performs no hashing and no
/// allocation.
pub struct Simulator<'a> {
    topo: &'a Topology,
    flows: &'a FlowSet,
    config: SimConfig,
    /// Borrowed when a caller (a `RoutePlan` evaluation) already holds
    /// compiled tables; owned when built here. The hot path reads
    /// through `Deref` either way.
    tables: std::borrow::Cow<'a, NodeTables>,
    traffic: TrafficSpec,
    rng: StdRng,
    var_states: Vec<VariationState>,
    burst_states: Vec<BurstState>,
    index: TopoIndex,

    /// All VC buffers in one arena: the buffer downstream of link `l` on
    /// VC `v` is `bufs[l * vcs + v]`; node `n`'s injection-port buffer on
    /// VC `v` is `bufs[inj_base + n * vcs + v]`.
    bufs: Vec<VcBuffer>,
    /// Offset of the first injection-port buffer in `bufs`.
    inj_base: u32,
    /// Per-node source queues (whole packets, flit by flit).
    src_queues: Vec<VecDeque<Flit>>,
    inj_progress: Vec<Option<InjectionProgress>>,

    /// Flits sent this cycle (flat link-buffer index), gathered before
    /// entering the pipeline.
    pending_sends: Vec<(u32, Flit)>,
    /// Arrivals in flight through the router pipeline: the back slot is
    /// this cycle's sends, the front slot delivers after
    /// `pipeline_latency` cycles.
    in_transit: VecDeque<Vec<(u32, Flit)>>,
    /// Undelivered flits already bound for each link buffer (claims
    /// buffer slots ahead of arrival), indexed like `bufs`.
    transit_counts: Vec<u8>,

    /// CSR of each node's input buffers in arbitration order (every
    /// in-link's VCs, then the injection VCs): node `n` reads
    /// `node_inputs[node_input_off[n] .. node_input_off[n + 1]]`.
    node_inputs: Vec<u32>,
    node_input_off: Vec<u32>,
    /// Each link's position within its source node's out-link list
    /// (selects the forward-candidate bucket during switch allocation).
    link_out_pos: Vec<u8>,

    rr_out: Vec<usize>,
    rr_eject: Vec<usize>,
    scratch: SwitchScratch,

    packets: PacketArena,

    in_network_flits: u64,
    cycle: u64,
    last_progress: u64,

    stats: Vec<FlowStats>,
    link_flits: Vec<u64>,
    generated_total: u64,
    delivered_total: u64,
    delivered_flits: u64,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator for `flows` routed by `routes` under `traffic`.
    ///
    /// # Errors
    ///
    /// [`SimError`] when routes, flows, traffic and VC configuration are
    /// inconsistent.
    pub fn new(
        topo: &'a Topology,
        flows: &'a FlowSet,
        routes: &RouteSet,
        traffic: TrafficSpec,
        config: SimConfig,
    ) -> Result<Simulator<'a>, SimError> {
        let tables = NodeTables::build(topo, routes);
        Simulator::assemble(
            topo,
            flows,
            routes,
            std::borrow::Cow::Owned(tables),
            traffic,
            config,
        )
    }

    /// Like [`Simulator::new`], but borrows `tables` already compiled
    /// from `routes` (e.g. the ones a `RoutePlan` carries) instead of
    /// rebuilding them — no per-run recompilation *or* copy.
    ///
    /// The caller is responsible for `tables` matching `routes`;
    /// `NodeTables::build` is deterministic, so a plan's compiled tables
    /// reproduce `Simulator::new` behavior bit for bit.
    ///
    /// # Errors
    ///
    /// [`SimError`] when routes, flows, traffic and VC configuration are
    /// inconsistent.
    pub fn with_tables(
        topo: &'a Topology,
        flows: &'a FlowSet,
        routes: &RouteSet,
        tables: &'a NodeTables,
        traffic: TrafficSpec,
        config: SimConfig,
    ) -> Result<Simulator<'a>, SimError> {
        Simulator::assemble(
            topo,
            flows,
            routes,
            std::borrow::Cow::Borrowed(tables),
            traffic,
            config,
        )
    }

    fn assemble(
        topo: &'a Topology,
        flows: &'a FlowSet,
        routes: &RouteSet,
        tables: std::borrow::Cow<'a, NodeTables>,
        traffic: TrafficSpec,
        config: SimConfig,
    ) -> Result<Simulator<'a>, SimError> {
        if routes.len() != flows.len() {
            return Err(SimError::RouteCountMismatch {
                flows: flows.len(),
                routes: routes.len(),
            });
        }
        if traffic.rates.len() != flows.len() {
            return Err(SimError::TrafficCountMismatch {
                flows: flows.len(),
                rates: traffic.rates.len(),
            });
        }
        for (i, &r) in traffic.rates.iter().enumerate() {
            if !(r.is_finite() && r >= 0.0) {
                return Err(SimError::BadRate { flow: i, rate: r });
            }
        }
        for route in routes.iter() {
            for hop in &route.hops {
                if hop.vcs.iter().any(|v| v >= config.vcs) {
                    return Err(SimError::VcOutOfRange { vcs: config.vcs });
                }
            }
        }
        let index = TopoIndex::new(topo);
        let nl = topo.num_links();
        let nn = topo.num_nodes();
        let vcs = config.vcs as usize;
        let inj_base = (nl * vcs) as u32;
        // Per-node input buffers in arbitration order: each in-link's
        // VCs, then the injection VCs — the order round-robin picks see.
        let mut node_inputs = Vec::with_capacity((nl + nn) * vcs);
        let mut node_input_off = Vec::with_capacity(nn + 1);
        node_input_off.push(0u32);
        for n in topo.node_ids() {
            for &l in index.in_links(n) {
                let base = l.index() * vcs;
                node_inputs.extend((base..base + vcs).map(|i| i as u32));
            }
            let base = inj_base as usize + n.index() * vcs;
            node_inputs.extend((base..base + vcs).map(|i| i as u32));
            node_input_off.push(node_inputs.len() as u32);
        }
        let max_ports = index.max_in_degree() + 1;
        let mut link_out_pos = vec![0u8; nl];
        let mut max_out_degree = 0usize;
        for n in topo.node_ids() {
            let outs = index.out_links(n);
            max_out_degree = max_out_degree.max(outs.len());
            for (i, &l) in outs.iter().enumerate() {
                link_out_pos[l.index()] = u8::try_from(i).expect("out degree fits u8");
            }
        }
        Ok(Simulator {
            topo,
            flows,
            rng: StdRng::seed_from_u64(config.seed),
            var_states: (0..flows.len()).map(|_| VariationState::new()).collect(),
            burst_states: (0..flows.len()).map(|_| BurstState::new()).collect(),
            tables,
            traffic,
            bufs: (0..(nl + nn) * vcs)
                .map(|_| VcBuffer::new(config.buffer_depth))
                .collect(),
            inj_base,
            src_queues: vec![VecDeque::new(); nn],
            inj_progress: vec![None; nn],
            pending_sends: Vec::new(),
            in_transit: VecDeque::new(),
            transit_counts: vec![0; nl * vcs],
            node_inputs,
            node_input_off,
            rr_out: vec![0; nl],
            rr_eject: vec![0; nn],
            scratch: SwitchScratch {
                port_forwarded: vec![false; max_ports],
                forward: vec![Vec::with_capacity(max_ports * vcs); max_out_degree],
                eject: Vec::with_capacity(max_ports * vcs),
                eligible: Vec::with_capacity(max_ports * vcs),
                outs: Vec::with_capacity(max_out_degree),
            },
            link_out_pos,
            packets: PacketArena::default(),
            in_network_flits: 0,
            cycle: 0,
            last_progress: 0,
            stats: vec![FlowStats::default(); flows.len()],
            link_flits: vec![0; nl],
            generated_total: 0,
            delivered_total: 0,
            delivered_flits: 0,
            index,
            config,
        })
    }

    fn in_measurement(&self) -> bool {
        self.cycle >= self.config.warmup
            && self.cycle < self.config.warmup + self.config.measurement
    }

    /// Runs warmup + measurement (+ drain) and returns the report.
    pub fn run(&mut self) -> SimReport {
        self.run_timed().0
    }

    /// Like [`Simulator::run`], additionally measuring wall-clock time.
    ///
    /// The report itself stays fully deterministic for a fixed seed; the
    /// timing travels separately so callers (the sweep harness, CI) can
    /// record cycles/sec without perturbing reproducibility checks.
    pub fn run_timed(&mut self) -> (SimReport, RunTiming) {
        let started = Instant::now();
        let total = self.config.total_cycles();
        let mut deadlocked = false;
        while self.cycle < total {
            let progress = self.step();
            if progress {
                self.last_progress = self.cycle;
            } else if self.in_network_flits > 0
                && self.cycle - self.last_progress > self.config.watchdog
            {
                deadlocked = true;
                break;
            }
            self.cycle += 1;
        }
        let report = SimReport {
            cycles: self.cycle,
            measured_cycles: self.config.measurement,
            generated_packets: self.generated_total,
            delivered_packets: self.delivered_total,
            delivered_flits: self.delivered_flits,
            per_flow: self.stats.clone(),
            link_flits: self.link_flits.clone(),
            deadlocked,
        };
        let timing = RunTiming::new(self.cycle, started.elapsed());
        (report, timing)
    }

    /// Executes one cycle; returns whether any flit moved.
    fn step(&mut self) -> bool {
        self.generate_packets();
        self.route_and_allocate();
        let mut progress = self.switch_and_traverse();
        progress |= self.inject();
        // This cycle's sends enter the pipeline; the oldest slot lands.
        self.in_transit
            .push_back(std::mem::take(&mut self.pending_sends));
        if self.in_transit.len() >= self.config.pipeline_latency as usize {
            let mut arrivals = self
                .in_transit
                .pop_front()
                .expect("nonempty by length check");
            for (buf, flit) in arrivals.drain(..) {
                self.transit_counts[buf as usize] -= 1;
                self.bufs[buf as usize].flits.push_back(flit);
            }
            // Hand the emptied Vec back as next cycle's send buffer so
            // the pipeline churns zero allocations at steady state.
            self.pending_sends = arrivals;
        }
        progress
    }

    fn generate_packets(&mut self) {
        let measuring = self.in_measurement();
        // Phase scaling is deterministic (no RNG), so the default
        // schedule-free path multiplies by exactly 1.0 and the seeded
        // packet stream is bit-identical to the pre-schedule engine.
        let phase_scale = self
            .traffic
            .phases
            .as_ref()
            .map_or(1.0, |s| s.scale_at(self.cycle));
        for i in 0..self.flows.len() {
            let flow = self.flows.flow(FlowId(i as u32));
            let mut p = self.traffic.rates[i] * phase_scale;
            if let Some(var) = self.traffic.variation {
                p *= self.var_states[i].step(&var, &mut self.rng);
            }
            if let InjectionProcess::OnOff(burst) = self.traffic.injection {
                p = if self.burst_states[i].step(&burst, &mut self.rng) {
                    p * burst.on_multiplier()
                } else {
                    0.0
                };
            }
            while p > 0.0 {
                let fire = if p >= 1.0 { true } else { self.rng.gen_bool(p) };
                if fire {
                    self.spawn_packet(flow.id, flow.src, measuring);
                }
                p -= 1.0;
            }
        }
    }

    fn spawn_packet(&mut self, flow: FlowId, src: NodeId, measuring: bool) {
        let packet = self.packets.alloc(measuring);
        let len = self.config.packet_len;
        let cursor = Some(self.tables.initial_index(flow));
        for k in 0..len {
            self.src_queues[src.index()].push_back(Flit {
                packet,
                flow,
                is_head: k == 0,
                is_tail: k == len - 1,
                cursor: if k == 0 { cursor } else { None },
            });
        }
        if measuring {
            self.stats[flow.index()].generated += 1;
            self.generated_total += 1;
        }
    }

    /// RC + VA for every buffer front.
    fn route_and_allocate(&mut self) {
        let vcs = self.config.vcs as usize;
        for l in 0..self.topo.num_links() {
            let node = self.index.link_dst(LinkId(l as u32));
            for v in 0..vcs {
                self.progress_front((l * vcs + v) as u32, node);
            }
        }
        let inj_base = self.inj_base as usize;
        for n in 0..self.topo.num_nodes() {
            for v in 0..vcs {
                self.progress_front((inj_base + n * vcs + v) as u32, NodeId(n as u32));
            }
        }
    }

    fn progress_front(&mut self, r: u32, node: NodeId) {
        let buf = &self.bufs[r as usize];
        let Some(front) = buf.flits.front().copied() else {
            return;
        };
        // RC: a head flit at the front of an Idle buffer gets routed.
        if buf.state == PortState::Idle {
            debug_assert!(front.is_head, "body flit at front of idle buffer");
            let state = match front.cursor {
                None => PortState::Active {
                    out: OutKind::Eject,
                    out_vc: 0,
                    next_cursor: None,
                },
                Some(idx) => {
                    let entry = *self.tables.lookup(node, idx);
                    PortState::Routed {
                        out: entry.out_link,
                        mask: entry.vcs.0,
                        next_cursor: entry.next_index,
                    }
                }
            };
            self.bufs[r as usize].state = state;
        }
        // VA: try to claim a downstream VC within the mask.
        if let PortState::Routed {
            out,
            mask,
            next_cursor,
        } = self.bufs[r as usize].state
        {
            let packet = front.packet;
            let out_base = out.index() * self.config.vcs as usize;
            let chosen = (0..self.config.vcs)
                .filter(|v| mask & (1 << v) != 0)
                .find(|&v| self.bufs[out_base + v as usize].owner.is_none());
            if let Some(v) = chosen {
                self.bufs[out_base + v as usize].owner = Some(packet);
                self.bufs[r as usize].state = PortState::Active {
                    out: OutKind::Forward(out),
                    out_vc: v,
                    next_cursor,
                };
            }
        }
    }

    /// SA + ST for every router; returns whether any flit moved.
    ///
    /// One pass over the node's input buffers buckets forward candidates
    /// per output link and collects eject candidates; the per-output and
    /// per-eject arbitration then works off the buckets. This visits each
    /// buffer once instead of once per output channel, and is exactly
    /// equivalent to rescanning: within a node, a move on output `X` can
    /// only change `X`'s own downstream occupancy (checked before any
    /// move) and the mover's port flag (filtered at pick time), and
    /// ejections only mutate the ejecting buffer itself.
    fn switch_and_traverse(&mut self) -> bool {
        let mut progress = false;
        let vcs = self.config.vcs as usize;
        // Detach the scratch buffers so the candidate scans can read
        // `self.bufs` while `move_flit`/`eject_flit` mutate `self`.
        let mut scratch = std::mem::take(&mut self.scratch);
        for n in 0..self.topo.num_nodes() {
            let node = NodeId(n as u32);
            let ports_start = self.node_input_off[n] as usize;
            let ports_end = self.node_input_off[n + 1] as usize;
            let num_ports = (ports_end - ports_start) / vcs;
            scratch.port_forwarded[..num_ports].fill(false);
            scratch.outs.clear();
            scratch.outs.extend_from_slice(self.index.out_links(node));
            for bucket in &mut scratch.forward[..scratch.outs.len()] {
                bucket.clear();
            }
            scratch.eject.clear();

            // Single scan: sort every occupied, allocated buffer front
            // into its output's bucket (space permitting) or the eject
            // list, in input order.
            for bi in 0..ports_end - ports_start {
                let r = self.node_inputs[ports_start + bi];
                let buf = &self.bufs[r as usize];
                if buf.flits.is_empty() {
                    continue;
                }
                match buf.state {
                    PortState::Active {
                        out: OutKind::Forward(l),
                        out_vc,
                        ..
                    } => {
                        let dst = l.index() * vcs + out_vc as usize;
                        let occupied =
                            self.bufs[dst].flits.len() + self.transit_counts[dst] as usize;
                        if occupied < self.config.buffer_depth {
                            scratch.forward[self.link_out_pos[l.index()] as usize]
                                .push(((bi / vcs) as u32, r));
                        }
                    }
                    PortState::Active {
                        out: OutKind::Eject,
                        ..
                    } => scratch.eject.push(((bi / vcs) as u32, r)),
                    _ => {}
                }
            }

            // Forward outputs: one flit per output channel and per input
            // port per cycle.
            for (oi, &out) in scratch.outs.iter().enumerate() {
                scratch.eligible.clear();
                scratch.eligible.extend(
                    scratch.forward[oi]
                        .iter()
                        .copied()
                        .filter(|&(port, _)| !scratch.port_forwarded[port as usize]),
                );
                if scratch.eligible.is_empty() {
                    continue;
                }
                let pick = self.rr_out[out.index()] % scratch.eligible.len();
                self.rr_out[out.index()] = self.rr_out[out.index()].wrapping_add(1);
                let (port, r) = scratch.eligible[pick];
                scratch.port_forwarded[port as usize] = true;
                self.move_flit(r, out);
                progress = true;
            }

            // Ejection: up to local_bandwidth flits per cycle (the 4×
            // resource channel); independent of the forward crossbar.
            // After each ejection only the picked buffer can drop out of
            // the candidate list, so the list shrinks in place.
            let mut budget = self.config.local_bandwidth;
            while budget > 0 && !scratch.eject.is_empty() {
                let pick = self.rr_eject[n] % scratch.eject.len();
                self.rr_eject[n] = self.rr_eject[n].wrapping_add(1);
                let (_, r) = scratch.eject[pick];
                self.eject_flit(r);
                budget -= 1;
                progress = true;
                let buf = &self.bufs[r as usize];
                let still_candidate = !buf.flits.is_empty()
                    && matches!(
                        buf.state,
                        PortState::Active {
                            out: OutKind::Eject,
                            ..
                        }
                    );
                if !still_candidate {
                    scratch.eject.remove(pick);
                }
            }
        }
        self.scratch = scratch;
        progress
    }

    fn move_flit(&mut self, r: u32, out: LinkId) {
        let buf = &mut self.bufs[r as usize];
        let (out_vc, next_cursor) = match buf.state {
            PortState::Active {
                out_vc,
                next_cursor,
                ..
            } => (out_vc, next_cursor),
            _ => unreachable!("move_flit on non-active buffer"),
        };
        let mut flit = buf.flits.pop_front().expect("candidate had a front flit");
        if flit.is_head {
            flit.cursor = next_cursor;
        }
        if flit.is_tail {
            // The vacated buffer frees its ownership and control state.
            buf.owner = None;
            buf.state = PortState::Idle;
        }
        let dst = (out.index() * self.config.vcs as usize + out_vc as usize) as u32;
        self.transit_counts[dst as usize] += 1;
        self.pending_sends.push((dst, flit));
        if self.in_measurement() {
            self.link_flits[out.index()] += 1;
        }
    }

    fn eject_flit(&mut self, r: u32) {
        let buf = &mut self.bufs[r as usize];
        let flit = buf.flits.pop_front().expect("candidate had a front flit");
        if flit.is_tail {
            buf.owner = None;
            buf.state = PortState::Idle;
        }
        self.in_network_flits -= 1;
        let measuring = self.in_measurement();
        if measuring {
            self.delivered_flits += 1;
        }
        if flit.is_tail {
            if measuring {
                self.stats[flit.flow.index()].delivered += 1;
                self.delivered_total += 1;
            }
            let slot = self.packets.slots[flit.packet as usize];
            self.packets.release(flit.packet);
            if slot.tracked {
                let latency = self.cycle - slot.entry_cycle;
                let fs = &mut self.stats[flit.flow.index()];
                fs.latency_sum += latency;
                fs.latency_count += 1;
                fs.latency_max = fs.latency_max.max(latency);
                fs.histogram.record(latency);
            }
        }
    }

    /// Moves flits from source queues into injection-port buffers.
    fn inject(&mut self) -> bool {
        let mut progress = false;
        let vcs = self.config.vcs as usize;
        let inj_base = self.inj_base as usize;
        for n in 0..self.topo.num_nodes() {
            let mut budget = self.config.local_bandwidth;
            while budget > 0 && !self.src_queues[n].is_empty() {
                match self.inj_progress[n] {
                    Some(InjectionProgress { vc, remaining }) => {
                        let buf = &mut self.bufs[inj_base + n * vcs + vc as usize];
                        if buf.flits.len() >= self.config.buffer_depth {
                            break;
                        }
                        let flit = self.src_queues[n].pop_front().expect("nonempty");
                        buf.flits.push_back(flit);
                        self.in_network_flits += 1;
                        progress = true;
                        budget -= 1;
                        self.inj_progress[n] = (remaining > 1).then_some(InjectionProgress {
                            vc,
                            remaining: remaining - 1,
                        });
                    }
                    None => {
                        let head = *self.src_queues[n].front().expect("nonempty");
                        debug_assert!(head.is_head, "packet streams are contiguous");
                        let chosen = (0..self.config.vcs).find(|&v| {
                            let buf = &self.bufs[inj_base + n * vcs + v as usize];
                            buf.owner.is_none() && buf.flits.len() < self.config.buffer_depth
                        });
                        let Some(v) = chosen else { break };
                        let flit = self.src_queues[n].pop_front().expect("nonempty");
                        let buf = &mut self.bufs[inj_base + n * vcs + v as usize];
                        buf.owner = Some(head.packet);
                        buf.flits.push_back(flit);
                        self.in_network_flits += 1;
                        self.packets.slots[head.packet as usize].entry_cycle = self.cycle;
                        progress = true;
                        budget -= 1;
                        if self.config.packet_len > 1 {
                            self.inj_progress[n] = Some(InjectionProgress {
                                vc: v,
                                remaining: self.config.packet_len - 1,
                            });
                        }
                    }
                }
            }
        }
        progress
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsor_routing::Baseline;

    fn mesh_and_flows() -> (Topology, FlowSet) {
        let topo = Topology::mesh2d(4, 4);
        let mut flows = FlowSet::new();
        for n in topo.node_ids() {
            let c = topo.coord(n);
            let d = topo.node_at(3 - c.x, 3 - c.y).expect("in range");
            if n != d {
                flows.push(n, d, 25.0);
            }
        }
        (topo, flows)
    }

    fn quick_config() -> SimConfig {
        SimConfig::new(2)
            .with_warmup(500)
            .with_measurement(4_000)
            .with_packet_len(4)
    }

    #[test]
    fn light_load_delivers_everything_generated() {
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let traffic = TrafficSpec::proportional(&flows, 0.05);
        let mut sim =
            Simulator::new(&topo, &flows, &routes, traffic, quick_config()).expect("valid");
        let report = sim.run();
        assert!(!report.deadlocked);
        assert!(report.generated_packets > 0);
        // At 0.05 packets/cycle across 16 flows the network is nearly
        // idle: throughput tracks offered load closely.
        let ratio = report.throughput() / report.offered();
        assert!(
            (0.9..=1.1).contains(&ratio),
            "delivery ratio {ratio} at light load"
        );
    }

    #[test]
    fn latency_at_least_hop_count() {
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let traffic = TrafficSpec::proportional(&flows, 0.02);
        let mut sim =
            Simulator::new(&topo, &flows, &routes, traffic, quick_config()).expect("valid");
        let report = sim.run();
        let min_hops = flows
            .iter()
            .map(|f| topo.min_hops(f.src, f.dst))
            .min()
            .expect("flows");
        // A packet takes at least one cycle per hop plus serialization.
        assert!(
            report.mean_latency().expect("packets delivered") >= min_hops as f64,
            "latency below physical minimum"
        );
    }

    #[test]
    fn zero_rate_generates_nothing() {
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let traffic = TrafficSpec::proportional(&flows, 0.0);
        let mut sim =
            Simulator::new(&topo, &flows, &routes, traffic, quick_config()).expect("valid");
        let report = sim.run();
        assert_eq!(report.generated_packets, 0);
        assert_eq!(report.delivered_packets, 0);
        assert!(!report.deadlocked);
    }

    #[test]
    fn saturation_caps_throughput() {
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let light = TrafficSpec::proportional(&flows, 0.05);
        let heavy = TrafficSpec::proportional(&flows, 5.0);
        let light_tp = Simulator::new(&topo, &flows, &routes, light, quick_config())
            .expect("valid")
            .run()
            .throughput();
        let heavy_report = Simulator::new(&topo, &flows, &routes, heavy, quick_config())
            .expect("valid")
            .run();
        assert!(!heavy_report.deadlocked, "XY cannot deadlock");
        assert!(
            heavy_report.throughput() > light_tp,
            "more load, more delivered"
        );
        assert!(
            heavy_report.throughput() < heavy_report.offered() * 0.9,
            "saturated network cannot deliver everything offered"
        );
    }

    #[test]
    fn cyclic_routing_deadlocks_and_watchdog_fires() {
        // Hand-built cyclic routes (the canonical 2x2 turning ring) must
        // jam the wormhole network; the watchdog reports it.
        use bsor_flow::FlowId;
        use bsor_routing::{Route, RouteHop, RouteSet, VcMask};
        let topo = Topology::mesh2d(2, 2);
        let n = |x, y| topo.node_at(x, y).expect("in range");
        let hop = |a, b| RouteHop {
            link: topo.find_link(a, b).expect("adjacent"),
            vcs: VcMask::all(1),
        };
        // Each flow travels 3/4 of the way around the square, so packets
        // block while holding intermediate channels.
        let mut flows = FlowSet::new();
        flows.push(n(0, 0), n(1, 0), 1.0);
        flows.push(n(0, 1), n(0, 0), 1.0);
        flows.push(n(1, 1), n(0, 1), 1.0);
        flows.push(n(1, 0), n(1, 1), 1.0);
        let routes = RouteSet::from_routes(vec![
            Route {
                flow: FlowId(0),
                hops: vec![
                    hop(n(0, 0), n(0, 1)),
                    hop(n(0, 1), n(1, 1)),
                    hop(n(1, 1), n(1, 0)),
                ],
            },
            Route {
                flow: FlowId(1),
                hops: vec![
                    hop(n(0, 1), n(1, 1)),
                    hop(n(1, 1), n(1, 0)),
                    hop(n(1, 0), n(0, 0)),
                ],
            },
            Route {
                flow: FlowId(2),
                hops: vec![
                    hop(n(1, 1), n(1, 0)),
                    hop(n(1, 0), n(0, 0)),
                    hop(n(0, 0), n(0, 1)),
                ],
            },
            Route {
                flow: FlowId(3),
                hops: vec![
                    hop(n(1, 0), n(0, 0)),
                    hop(n(0, 0), n(0, 1)),
                    hop(n(0, 1), n(1, 1)),
                ],
            },
        ]);
        assert!(!bsor_routing::deadlock::is_deadlock_free(&topo, &routes, 1));
        let config = SimConfig::new(1)
            .with_warmup(0)
            .with_measurement(10_000)
            .with_watchdog(1_000)
            .with_buffer_depth(4)
            .with_packet_len(64); // spans the whole route: hold-and-wait
        let traffic = TrafficSpec::uniform(&flows, 1.0); // all inject at cycle 0
        let mut sim = Simulator::new(&topo, &flows, &routes, traffic, config).expect("valid");
        let report = sim.run();
        assert!(report.deadlocked, "the turning ring must deadlock");
    }

    #[test]
    fn static_vc_routes_simulate() {
        use bsor_cdg::{AcyclicCdg, TurnModel};
        use bsor_flow::FlowNetwork;
        use bsor_routing::selectors::DijkstraSelector;
        let (topo, flows) = mesh_and_flows();
        let acyclic = AcyclicCdg::turn_model(&topo, 2, &TurnModel::west_first()).expect("valid");
        let net = FlowNetwork::new(&topo, &acyclic);
        let routes = DijkstraSelector::new()
            .select(&net, &flows)
            .expect("routable");
        let traffic = TrafficSpec::proportional(&flows, 0.1);
        let mut sim =
            Simulator::new(&topo, &flows, &routes, traffic, quick_config()).expect("valid");
        let report = sim.run();
        assert!(!report.deadlocked);
        assert!(report.delivered_packets > 0);
    }

    #[test]
    fn vc_count_must_cover_routes() {
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::Romm { seed: 1 }
            .select(&topo, &flows, 4)
            .expect("romm");
        let traffic = TrafficSpec::proportional(&flows, 0.1);
        let err = Simulator::new(&topo, &flows, &routes, traffic, SimConfig::new(2))
            .err()
            .expect("4-VC routes cannot run on 2 VCs");
        assert_eq!(err, SimError::VcOutOfRange { vcs: 2 });
    }

    #[test]
    fn reports_are_reproducible_for_a_seed() {
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let run = |seed: u64| {
            let traffic = TrafficSpec::proportional(&flows, 0.2);
            let config = quick_config().with_seed(seed);
            Simulator::new(&topo, &flows, &routes, traffic, config)
                .expect("valid")
                .run()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.delivered_packets, b.delivered_packets);
        assert_eq!(a.generated_packets, b.generated_packets);
        assert_eq!(a.mean_latency(), b.mean_latency());
        let c = run(43);
        assert_ne!(
            (a.generated_packets, a.delivered_flits),
            (c.generated_packets, c.delivered_flits),
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn pipeline_latency_scales_packet_latency() {
        // The Chapter 4 four-stage pipeline costs ~4x the single-cycle
        // router's per-hop latency at light load.
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let run = |pipe: u8| {
            let traffic = TrafficSpec::proportional(&flows, 0.02);
            let config = quick_config().with_pipeline_latency(pipe);
            Simulator::new(&topo, &flows, &routes, traffic, config)
                .expect("valid")
                .run()
                .mean_latency()
                .expect("light load delivers")
        };
        let l1 = run(1);
        let l4 = run(4);
        assert!(
            l4 > l1 * 2.0,
            "4-stage pipeline latency {l4:.1} should far exceed single-cycle {l1:.1}"
        );
    }

    #[test]
    fn bursty_injection_preserves_mean_load_but_clusters_arrivals() {
        use crate::traffic::BurstyOnOff;
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let config = quick_config().with_measurement(20_000);
        let flat = Simulator::new(
            &topo,
            &flows,
            &routes,
            TrafficSpec::proportional(&flows, 0.3),
            config.clone(),
        )
        .expect("valid")
        .run();
        let bursty = Simulator::new(
            &topo,
            &flows,
            &routes,
            TrafficSpec::proportional(&flows, 0.3).with_burst(BurstyOnOff::new(50.0, 150.0)),
            config,
        )
        .expect("valid")
        .run();
        // Same long-run offered load (within sampling noise)...
        let ratio = bursty.offered() / flat.offered();
        assert!(
            (0.85..=1.15).contains(&ratio),
            "bursty offered load drifted: {ratio}"
        );
        // ...but clustered arrivals queue longer.
        let flat_p95 = flat.p95_latency().expect("delivers") as f64;
        let bursty_p95 = bursty.p95_latency().expect("delivers") as f64;
        assert!(
            bursty_p95 > flat_p95,
            "bursts must stretch the latency tail: flat p95 {flat_p95}, bursty p95 {bursty_p95}"
        );
    }

    #[test]
    fn phase_schedule_gates_generation_at_cycle_boundaries() {
        use crate::traffic::PhaseSchedule;
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        // Phase 1 covers exactly the warmup, phase 2 (silent) the rest:
        // nothing may be generated inside the measurement window.
        let config = SimConfig::new(2).with_warmup(500).with_measurement(2_000);
        let traffic = TrafficSpec::proportional(&flows, 0.5)
            .with_phases(PhaseSchedule::from_pairs([(500, 1.0), (2_000, 0.0)]));
        let report = Simulator::new(&topo, &flows, &routes, traffic, config)
            .expect("valid")
            .run();
        assert_eq!(
            report.generated_packets, 0,
            "the zero-scale phase must silence measurement-window generation"
        );
        // Flip the phases: generation only happens during measurement.
        let config = SimConfig::new(2).with_warmup(500).with_measurement(2_000);
        let traffic = TrafficSpec::proportional(&flows, 0.5)
            .with_phases(PhaseSchedule::from_pairs([(500, 0.0), (2_000, 1.0)]));
        let report = Simulator::new(&topo, &flows, &routes, traffic, config)
            .expect("valid")
            .run();
        assert!(report.generated_packets > 0);
    }

    #[test]
    fn default_injection_is_bit_identical_with_traffic_extensions_compiled_in() {
        // The no-burst/no-phase path must not consume any extra RNG
        // draws: a spec with an explicit one-phase schedule of scale 1.0
        // produces the same packet stream as the plain spec.
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        use crate::traffic::PhaseSchedule;
        let plain = Simulator::new(
            &topo,
            &flows,
            &routes,
            TrafficSpec::proportional(&flows, 0.4),
            quick_config(),
        )
        .expect("valid")
        .run();
        let scaled = Simulator::new(
            &topo,
            &flows,
            &routes,
            TrafficSpec::proportional(&flows, 0.4)
                .with_phases(PhaseSchedule::from_pairs([(7, 1.0)])),
            quick_config(),
        )
        .expect("valid")
        .run();
        assert_eq!(plain, scaled);
    }

    #[test]
    fn histograms_agree_with_scalar_latency_stats() {
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let traffic = TrafficSpec::proportional(&flows, 0.2);
        let report = Simulator::new(&topo, &flows, &routes, traffic, quick_config())
            .expect("valid")
            .run();
        let hist = report.latency_histogram();
        let tracked: u64 = report.per_flow.iter().map(|f| f.latency_count).sum();
        assert_eq!(hist.count(), tracked, "every tracked packet is recorded");
        let p50 = report.p50_latency().expect("delivers") as f64;
        let p99 = report.p99_latency().expect("delivers");
        let mean = report.mean_latency().expect("delivers");
        assert!(p50 <= p99 as f64);
        assert!(report.max_latency() >= p99);
        // The histogram's quantiles bracket the mean at light load.
        assert!(p50 <= mean * 1.5 && mean <= report.max_latency() as f64);
    }

    #[test]
    fn link_flit_counts_reflect_routes() {
        let (topo, flows) = mesh_and_flows();
        let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy");
        let traffic = TrafficSpec::proportional(&flows, 0.1);
        let mut sim =
            Simulator::new(&topo, &flows, &routes, traffic, quick_config()).expect("valid");
        let report = sim.run();
        // Links not on any route carry nothing.
        let mut used = vec![false; topo.num_links()];
        for r in routes.iter() {
            for h in &r.hops {
                used[h.link.index()] = true;
            }
        }
        for (li, &flits) in report.link_flits.iter().enumerate() {
            if !used[li] {
                assert_eq!(flits, 0, "unused link {li} carried flits");
            }
        }
        assert!(report.max_link_flits() > 0);
    }
}
