//! # bsor-cdg
//!
//! Channel dependence graphs (CDGs) and the cycle-breaking strategies that
//! turn them into acyclic CDGs, the deadlock-freedom foundation of BSOR
//! (paper §3.1–3.4, §3.7).
//!
//! A CDG has one vertex per directed channel of the network (per virtual
//! channel when `vcs > 1`) and an edge between two vertices when a packet
//! can traverse the corresponding channels consecutively; 180° turns are
//! disallowed from the start. By Dally & Aoki's theorem (paper Lemma 1),
//! any set of routes conforming to an *acyclic* CDG is deadlock-free, so
//! this crate provides several ways to remove cycles:
//!
//! * [`TurnModel`] two-turn prohibitions (west-first, north-last,
//!   negative-first, and the full set of 12 deadlock-free combinations on
//!   a 2-D mesh),
//! * ad-hoc randomized cycle breaking ([`AcyclicCdg::ad_hoc`]),
//! * random-priority-order breaking ([`AcyclicCdg::random_order`]),
//! * virtual-channel expansions: per-layer virtual networks
//!   ([`AcyclicCdg::virtual_networks`]) and the "any turn if the packet
//!   climbs to a higher VC" expansion ([`AcyclicCdg::escalating_vc`]).
//!
//! ```
//! use bsor_topology::Topology;
//! use bsor_cdg::{AcyclicCdg, Cdg, TurnModel};
//!
//! let mesh = Topology::mesh2d(3, 3);
//! let full = Cdg::build(&mesh, 1);
//! assert_eq!(full.graph().node_count(), 24); // one vertex per channel
//!
//! let acyclic = AcyclicCdg::turn_model(&mesh, 1, &TurnModel::west_first())
//!     .expect("west-first breaks all mesh CDG cycles");
//! // The paper's Figure 3-3: the turn model removes 8 dependence edges
//! // from the 3x3 mesh CDG.
//! assert_eq!(acyclic.removed_edges(), 8);
//! ```

pub mod acyclic;
pub mod cdg;
pub mod render;
pub mod turn;

pub use acyclic::{AcyclicCdg, LayerRecipe};
pub use cdg::{Cdg, CdgError, CdgVertex, VcId};
pub use turn::{Turn, TurnModel};
