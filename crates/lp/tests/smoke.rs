//! Crate-level smoke test: the simplex core solves a small LP with a
//! known optimum, and branch-and-bound solves a small integer program.

use bsor_lp::{Cmp, MilpOptions, Model, VarKind};

#[test]
fn simplex_solves_tiny_lp() {
    // max 3x + 5y  s.t.  x <= 4, 2y <= 12, 3x + 2y <= 18  (the classic
    // Dantzig example): optimum 36 at (2, 6).
    let mut m = Model::minimize();
    let x = m.add_var(VarKind::Continuous, 0.0, 4.0, -3.0);
    let y = m.add_var(VarKind::Continuous, 0.0, 6.0, -5.0);
    m.add_constraint(vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
    let sol = m.solve().expect("feasible and bounded");
    assert!((sol.objective() - (-36.0)).abs() < 1e-6);
    assert!((sol.value(x) - 2.0).abs() < 1e-6);
    assert!((sol.value(y) - 6.0).abs() < 1e-6);
}

#[test]
fn branch_and_bound_solves_tiny_knapsack() {
    // max 10a + 13b + 7c with weights 3, 4, 2 and capacity 6:
    // best is {b, c} = 20 (weight 6).
    let mut m = Model::minimize();
    let a = m.add_binary(-10.0);
    let b = m.add_binary(-13.0);
    let c = m.add_binary(-7.0);
    m.add_constraint(vec![(a, 3.0), (b, 4.0), (c, 2.0)], Cmp::Le, 6.0);
    let (sol, stats) = m
        .solve_with(&MilpOptions::default())
        .expect("always feasible (all zero)");
    assert!((sol.objective() - (-20.0)).abs() < 1e-6);
    assert!(sol.value(a).abs() < 1e-6);
    assert!((sol.value(b) - 1.0).abs() < 1e-6);
    assert!((sol.value(c) - 1.0).abs() < 1e-6);
    assert!(stats.nodes_explored >= 1);
}
