//! Packet injection processes: proportional Bernoulli traffic and the
//! two-stage Markov-modulated bandwidth variation of paper §5.3.

use bsor_flow::FlowSet;
use rand::rngs::StdRng;
use rand::Rng;

/// Two-stage Markov-modulated rate variation (paper §5.3): each flow's
/// rate multiplier alternates between a *steady* stage (multiplier 1) and
/// a *deviated* stage (multiplier drawn uniformly from `1 ± fraction`);
/// each stage lasts a geometrically distributed number of cycles.
#[derive(Clone, Copy, Debug)]
pub struct MarkovVariation {
    /// Maximum relative deviation (0.10, 0.25 or 0.50 in the paper).
    pub fraction: f64,
    /// Mean dwell time in each stage, in cycles.
    pub mean_dwell: f64,
}

impl MarkovVariation {
    /// A variation process with the paper's percentages.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction < 1` and `mean_dwell >= 1`.
    pub fn new(fraction: f64, mean_dwell: f64) -> MarkovVariation {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "fraction must be in (0, 1)"
        );
        assert!(mean_dwell >= 1.0, "dwell time must be at least a cycle");
        MarkovVariation {
            fraction,
            mean_dwell,
        }
    }

    /// Samples `cycles` consecutive rate multipliers of one flow's
    /// modulation process — the trace plotted in the paper's Figure 5-4
    /// ("Transpose Node 52 Injection Rates when modeling burstiness").
    pub fn sample_trace(&self, seed: u64, cycles: usize) -> Vec<f64> {
        use rand::SeedableRng;
        let mut state = VariationState::new();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..cycles).map(|_| state.step(self, &mut rng)).collect()
    }
}

#[derive(Clone, Debug)]
pub(crate) struct VariationState {
    multiplier: f64,
    cycles_left: u64,
    deviated: bool,
}

impl VariationState {
    pub(crate) fn new() -> VariationState {
        VariationState {
            multiplier: 1.0,
            cycles_left: 0,
            deviated: true, // first toggle enters the steady stage
        }
    }

    /// Advances one cycle, returning the current rate multiplier.
    pub(crate) fn step(&mut self, params: &MarkovVariation, rng: &mut StdRng) -> f64 {
        if self.cycles_left == 0 {
            self.deviated = !self.deviated;
            // Geometric dwell with the configured mean (at least 1).
            let p = 1.0 / params.mean_dwell;
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            self.cycles_left = (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u64;
            self.multiplier = if self.deviated {
                1.0 + rng.gen_range(-params.fraction..=params.fraction)
            } else {
                1.0
            };
        }
        self.cycles_left -= 1;
        self.multiplier
    }
}

/// Per-flow injection rates in packets/cycle, with optional run-time
/// variation.
#[derive(Clone, Debug)]
pub struct TrafficSpec {
    /// Base injection rate of each flow, packets/cycle, indexed by flow.
    pub rates: Vec<f64>,
    /// Optional Markov-modulated variation applied multiplicatively.
    pub variation: Option<MarkovVariation>,
}

impl TrafficSpec {
    /// Splits a total offered rate (packets/cycle across the whole
    /// network) over the flows proportionally to their bandwidth demands —
    /// how the evaluation sweeps load while keeping the application's
    /// traffic mix.
    ///
    /// # Panics
    ///
    /// Panics if `total_rate` is negative or the flow set is empty.
    pub fn proportional(flows: &FlowSet, total_rate: f64) -> TrafficSpec {
        assert!(total_rate >= 0.0, "offered rate must be non-negative");
        assert!(!flows.is_empty(), "traffic needs at least one flow");
        let total_demand = flows.total_demand();
        TrafficSpec {
            rates: flows
                .iter()
                .map(|f| total_rate * f.demand / total_demand)
                .collect(),
            variation: None,
        }
    }

    /// Uniform per-flow rate (packets/cycle each).
    pub fn uniform(flows: &FlowSet, rate_per_flow: f64) -> TrafficSpec {
        assert!(rate_per_flow >= 0.0, "rate must be non-negative");
        TrafficSpec {
            rates: vec![rate_per_flow; flows.len()],
            variation: None,
        }
    }

    /// Adds Markov-modulated bandwidth variation.
    pub fn with_variation(mut self, variation: MarkovVariation) -> Self {
        self.variation = Some(variation);
        self
    }

    /// Total offered rate in packets/cycle.
    pub fn total_rate(&self) -> f64 {
        self.rates.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsor_topology::NodeId;
    use rand::SeedableRng;

    fn flows() -> FlowSet {
        let mut fs = FlowSet::new();
        fs.push(NodeId(0), NodeId(1), 30.0);
        fs.push(NodeId(1), NodeId(2), 10.0);
        fs
    }

    #[test]
    fn proportional_split() {
        let spec = TrafficSpec::proportional(&flows(), 0.4);
        assert!((spec.rates[0] - 0.3).abs() < 1e-12);
        assert!((spec.rates[1] - 0.1).abs() < 1e-12);
        assert!((spec.total_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn uniform_split() {
        let spec = TrafficSpec::uniform(&flows(), 0.05);
        assert_eq!(spec.rates, vec![0.05, 0.05]);
    }

    #[test]
    fn variation_multiplier_stays_in_band() {
        let params = MarkovVariation::new(0.25, 50.0);
        let mut state = VariationState::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut saw_deviation = false;
        for _ in 0..10_000 {
            let m = state.step(&params, &mut rng);
            assert!(
                (0.75..=1.25).contains(&m),
                "multiplier {m} escaped the 25% band"
            );
            if (m - 1.0).abs() > 1e-9 {
                saw_deviation = true;
            }
        }
        assert!(saw_deviation, "the deviated stage must occur");
    }

    #[test]
    fn variation_dwell_times_hold_rates_constant() {
        // Paper: "each rate is kept constant for a random number of
        // cycles" — multipliers change rarely relative to cycles.
        let params = MarkovVariation::new(0.5, 100.0);
        let mut state = VariationState::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mut changes = 0;
        let mut last = f64::NAN;
        for _ in 0..10_000 {
            let m = state.step(&params, &mut rng);
            if (m - last).abs() > 1e-12 {
                changes += 1;
            }
            last = m;
        }
        assert!(
            changes < 400,
            "multiplier changed {changes} times in 10k cycles"
        );
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn variation_rejects_out_of_band_fraction() {
        MarkovVariation::new(1.5, 10.0);
    }
}
