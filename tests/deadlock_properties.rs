//! Property-based tests of the framework's central invariant: whatever
//! the flows, CDG derivation and selector configuration, the routes that
//! come out are structurally valid and deadlock-free.

use bsor_repro::cdg::{AcyclicCdg, TurnModel};
use bsor_repro::flow::{FlowNetwork, FlowSet, WeightParams};
use bsor_repro::netgraph::algo;
use bsor_repro::routing::selectors::DijkstraSelector;
use bsor_repro::routing::{deadlock, FlowOrder};
use bsor_repro::topology::{NodeId, Topology};
use proptest::prelude::*;

fn arbitrary_flows(nodes: usize, max_flows: usize) -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    prop::collection::vec(
        (0..nodes as u32, 0..nodes as u32, 1.0..100.0f64),
        1..max_flows,
    )
    .prop_map(|v| v.into_iter().filter(|(s, d, _)| s != d).collect::<Vec<_>>())
    .prop_filter("at least one flow", |v| !v.is_empty())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dijkstra_routes_always_valid_and_deadlock_free(
        triples in arbitrary_flows(16, 24),
        model_idx in 0usize..12,
        vcs in 1u8..=4,
        m_const in 1.0..2000.0f64,
        order_seed in 0u64..1000,
    ) {
        let topo = Topology::mesh2d(4, 4);
        let models = TurnModel::valid_models(&topo).expect("grid");
        let acyclic = AcyclicCdg::turn_model(&topo, vcs, &models[model_idx % models.len()])
            .expect("valid model");
        let net = FlowNetwork::new(&topo, &acyclic);
        let mut flows = FlowSet::new();
        for (s, d, dem) in &triples {
            flows.push(NodeId(*s), NodeId(*d), *dem);
        }
        let routes = DijkstraSelector::new()
            .with_weights(WeightParams { m_const, vc_bias: 0.001 / m_const })
            .with_order(FlowOrder::Random { seed: order_seed })
            .select(&net, &flows)
            .expect("turn-model CDGs keep every pair routable");
        prop_assert!(routes.validate(&topo, &flows, vcs).is_ok());
        prop_assert!(deadlock::is_deadlock_free(&topo, &routes, vcs));
        // MCL is bounded below by the largest demand and above by total.
        let mcl = routes.mcl(&topo, &flows);
        prop_assert!(mcl >= flows.max_demand() - 1e-9);
        prop_assert!(mcl <= flows.total_demand() + 1e-9);
    }

    #[test]
    fn ad_hoc_routable_cdgs_route_everything(
        seed in 0u64..500,
        vcs in 1u8..=2,
    ) {
        let topo = Topology::mesh2d(4, 4);
        let acyclic = AcyclicCdg::ad_hoc_routable(&topo, vcs, seed).expect("grid");
        prop_assert!(algo::is_acyclic(acyclic.graph()));
        // All-pairs flows must route.
        let mut flows = FlowSet::new();
        for s in topo.node_ids() {
            for d in topo.node_ids() {
                if s != d {
                    flows.push(s, d, 1.0);
                }
            }
        }
        let net = FlowNetwork::new(&topo, &acyclic);
        let routes = DijkstraSelector::new().select(&net, &flows).expect("routable by construction");
        prop_assert!(deadlock::is_deadlock_free(&topo, &routes, vcs));
    }

    #[test]
    fn refinement_never_increases_mcl(
        triples in arbitrary_flows(16, 20),
        passes in 1usize..4,
    ) {
        // Rip-up/reroute only accepts a new path when the global MCL does
        // not grow, so refinement is monotone non-increasing in MCL.
        let topo = Topology::mesh2d(4, 4);
        let acyclic = AcyclicCdg::turn_model(&topo, 2, &TurnModel::west_first()).expect("valid");
        let net = FlowNetwork::new(&topo, &acyclic);
        let mut flows = FlowSet::new();
        for (s, d, dem) in &triples {
            flows.push(NodeId(*s), NodeId(*d), *dem);
        }
        let base = DijkstraSelector::new().select(&net, &flows).expect("routable");
        let refined = DijkstraSelector::new()
            .with_refinement(passes)
            .select(&net, &flows)
            .expect("routable");
        prop_assert!(
            refined.mcl(&topo, &flows) <= base.mcl(&topo, &flows) + 1e-9,
            "refined {} vs base {}",
            refined.mcl(&topo, &flows),
            base.mcl(&topo, &flows)
        );
        prop_assert!(refined.validate(&topo, &flows, 2).is_ok());
        prop_assert!(deadlock::is_deadlock_free(&topo, &refined, 2));
    }
}
