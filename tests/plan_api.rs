//! The plan/evaluate split, exercised end to end: plan-cache hits must
//! be structurally identical to fresh plans across topology × algorithm
//! × VC count (property test), the `StaticMclEvaluator`'s predicted MCL
//! must equal the LP objective on the paper's six workloads, and both
//! evaluator backends must agree on everything a plan pins down.

use bsor::{
    AlgorithmRegistry, EvalPoint, Evaluator, PlanCache, Planner, Scenario, SimEvaluator,
    StaticMclEvaluator,
};
use bsor_repro::flow::{FlowNetwork, FlowSet};
use bsor_repro::routing::selectors::MilpSelector;
use bsor_repro::routing::Baseline;
use bsor_repro::sim::{PlanError, SimConfig};
use bsor_repro::topology::{NodeId, Topology, TopologyRegistry};
use bsor_repro::workloads::all_six;
use proptest::prelude::*;

/// A shift pattern that exists on every topology: node i sends to
/// node (i + n/2) mod n.
fn shift_flows(topo: &Topology) -> FlowSet {
    let mut flows = FlowSet::new();
    let n = topo.num_nodes() as u32;
    for i in 0..n {
        let j = (i + n / 2) % n;
        if i != j {
            flows.push(NodeId(i), NodeId(j), 10.0);
        }
    }
    flows
}

fn smoke_dims(name: &str) -> (u16, u16) {
    match name {
        "mesh" | "torus" => (4, 4),
        "ring" => (6, 1),
        "hypercube" => (4, 2),
        other => panic!("add smoke dimensions for new topology '{other}'"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite acceptance: a cache-hit `RoutePlan` is structurally
    /// identical to a freshly planned one, across every registered
    /// topology × a spread of algorithms × VC counts.
    #[test]
    fn cache_hits_match_fresh_plans_everywhere(
        topo_idx in 0usize..4,
        algo_idx in 0usize..3,
        vcs in 2u8..=4,
    ) {
        let topologies = TopologyRegistry::standard();
        let algorithms = AlgorithmRegistry::standard();
        let topo_name = topologies.names()[topo_idx].to_owned();
        let algo_name = ["xy", "yx", "bsor-dijkstra"][algo_idx];
        let (w, h) = smoke_dims(&topo_name);
        let topo = topologies.build(&topo_name, w, h).expect("registered");
        let flows = shift_flows(&topo);
        let scenario = Scenario::builder(topo, flows).vcs(vcs).build().expect("valid");
        let algorithm = algorithms.get(algo_name).expect("registered");

        let cached = Planner::new().with_cache(PlanCache::shared());
        let first = cached.plan(&scenario, algorithm);
        let hit = cached.plan(&scenario, algorithm);
        let fresh = Planner::new().plan(&scenario, algorithm);
        match (first, hit, fresh) {
            (Ok(first), Ok(hit), Ok(fresh)) => {
                // The hit is the very artifact the first call built...
                prop_assert!(std::sync::Arc::ptr_eq(&first, &hit));
                prop_assert_eq!(cached.stats().solves, 1);
                prop_assert_eq!(cached.stats().cache_hits, 1);
                // ...and structurally identical to an uncached re-plan:
                // routes, certificate, tables, loads, MCL, id.
                prop_assert_eq!(&*hit, &*fresh);
                prop_assert!(hit.certificate().verify(fresh.routes()));
                prop_assert_eq!(
                    hit.predicted_mcl(),
                    fresh.routes().mcl(scenario.topology(), scenario.flows())
                );
            }
            // Some combinations legitimately fail (e.g. dimension-order
            // baselines on hypercubes); both paths must fail alike.
            (Err(a), Err(b), Err(c)) => {
                prop_assert_eq!(&a, &c);
                prop_assert_eq!(&a, &b);
                prop_assert!(matches!(a, PlanError::Algorithm(_)));
            }
            (a, _, c) => prop_assert!(false, "cache changed the outcome: {a:?} vs {c:?}"),
        }
    }
}

/// Tentpole acceptance: `StaticMclEvaluator`'s predicted MCL equals the
/// LP objective on the paper's six workloads — the MILP minimizes
/// exactly the static metric the plan carries.
#[test]
fn static_mcl_matches_lp_objective_on_the_six_workloads() {
    let topo = Topology::mesh2d(8, 8);
    // Deterministic budget (no wall-clock limit): the incumbent the
    // solver returns is reproducible, and its reported objective is by
    // construction the MCL of the routes it selected.
    let selector = MilpSelector::new()
        .with_hop_slack(2)
        .with_max_paths(6)
        .with_options(bsor_repro::lp::MilpOptions {
            max_nodes: 2,
            time_limit: None,
            ..bsor_repro::lp::MilpOptions::default()
        });
    let planner = Planner::new();
    let evaluator = StaticMclEvaluator::new();
    for workload in all_six(&topo).expect("8x8 fits all six") {
        let scenario = Scenario::builder(topo.clone(), workload.flows.clone())
            .named(workload.name.clone())
            .vcs(2)
            .build()
            .expect("valid");
        // The raw selector run on the scenario's own CDG yields the LP
        // report; the plan of the same selector must carry its objective.
        let net = FlowNetwork::new(scenario.topology(), scenario.cdg());
        let (routes, report) = selector
            .select(&net, scenario.flows())
            .unwrap_or_else(|e| panic!("{} unroutable: {e}", workload.name));
        let plan = planner
            .plan(&scenario, &selector)
            .unwrap_or_else(|e| panic!("{} unplannable: {e}", workload.name));
        assert_eq!(plan.routes(), &routes, "{}", workload.name);
        assert!(
            (plan.predicted_mcl() - report.objective).abs() < 1e-6,
            "{}: plan MCL {} vs LP objective {}",
            workload.name,
            plan.predicted_mcl(),
            report.objective
        );
        let ev = evaluator
            .evaluate(&plan, &EvalPoint::new(0.5, SimConfig::new(2)))
            .expect("static evaluation is total");
        assert_eq!(ev.predicted_mcl, plan.predicted_mcl(), "{}", workload.name);
    }
}

/// Both backends return the common `Evaluation` schema and agree on the
/// plan-determined fields; the analytical estimate tracks the simulated
/// channel load at light load.
#[test]
fn evaluator_backends_agree_on_plan_facts() {
    let topo = Topology::mesh2d(4, 4);
    let flows = shift_flows(&topo);
    let scenario = Scenario::builder(topo, flows)
        .vcs(2)
        .build()
        .expect("valid");
    let plan = Planner::new()
        .plan(&scenario, &Baseline::XY)
        .expect("plans");
    let config = SimConfig::new(2).with_warmup(500).with_measurement(5_000);
    let point = EvalPoint::new(0.2, config);
    let stat = StaticMclEvaluator::new()
        .evaluate(&plan, &point)
        .expect("static");
    let sim = SimEvaluator::new().evaluate(&plan, &point).expect("sim");
    assert_eq!(stat.backend, "static-mcl");
    assert_eq!(sim.backend, "sim");
    assert_eq!(stat.predicted_mcl, sim.predicted_mcl);
    assert_eq!(stat.rate, sim.rate);
    assert!(!stat.deadlocked && !sim.deadlocked);
    // At 0.2 packets/cycle the network is far from saturation: the
    // analytical load estimate must sit within 25% of the observed one.
    let rel = (stat.max_channel_load - sim.max_channel_load).abs() / sim.max_channel_load;
    assert!(
        rel < 0.25,
        "analytical {} vs observed {} channel load",
        stat.max_channel_load,
        sim.max_channel_load
    );
}
