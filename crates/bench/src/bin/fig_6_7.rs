//! Regenerates **Figure 6-7**: "Varying the number of VCs for transpose
//! and H.264 Decoder." Throughput vs offered rate with 1, 2, 4 and 8
//! virtual channels, BSOR selectors vs dimension-order routing. With a
//! single VC only the DOR algorithms and BSOR are compared (ROMM and
//! Valiant would deadlock), exactly as in §6.2.7. The whole sweep runs
//! through the unified scenario pipeline (`bsor_bench::write_vc_sweep`)
//! and streams rows as they are computed.
//!
//! ```text
//! cargo run -p bsor-bench --release --bin fig_6_7 [--quick] [--paper] [--csv]
//! ```

use bsor_bench::{csv_mode, run_mode, standard_mesh, write_vc_sweep, StdoutSink};

fn main() {
    write_vc_sweep(&mut StdoutSink, &standard_mesh(), run_mode(), csv_mode())
        .expect("stdout writes cannot fail");
}
