//! The oblivious selectors through the sweep harness: one grid, three
//! runner configurations — single-threaded cached, multi-threaded
//! cached, and cache-off — must produce byte-identical `--no-timings`
//! JSON, and the registry must resolve both selectors by name.

use bsor_bench::json::Json;
use bsor_bench::sweep::{run_grid_stats, sweep_json, GridSpec, SweepRegistries, TopoSpec};

fn oblivious_grid() -> GridSpec {
    let mut spec = GridSpec::smoke();
    spec.topologies = vec![TopoSpec::from_spec("2x2")];
    spec.workloads = vec!["uniform-random".into()];
    spec.algorithms = vec!["ac-oblivious".into(), "random-walk".into()];
    spec.vcs = vec![2];
    spec.rates = vec![0.1, 0.8];
    spec.warmup = 100;
    spec.measurement = 400;
    spec.record_timings = false;
    spec
}

#[test]
fn oblivious_sweep_is_byte_identical_across_threads_and_cache() {
    let spec = oblivious_grid();
    let regs = SweepRegistries::standard();
    let single_cached = run_grid_stats(&spec, 1, &regs, true);
    let multi_cached = run_grid_stats(&spec, 4, &regs, true);
    let uncached = run_grid_stats(&spec, 2, &regs, false);
    let render = |outcome: &bsor_bench::sweep::SweepOutcome, threads: usize| {
        sweep_json(&spec, &outcome.results, threads, 12.5).pretty()
    };
    let baseline = render(&single_cached, 1);
    assert_eq!(
        baseline,
        render(&multi_cached, 4),
        "thread count must not leak into the artifact"
    );
    assert_eq!(
        baseline,
        render(&uncached, 2),
        "the plan cache must not change any result"
    );
    // Sanity: the cases actually ran and carry numeric MCL cells for
    // both selectors (2x2 is inside the LP budget).
    let doc = Json::parse(&baseline).expect("valid JSON");
    let cases = doc.get("cases").and_then(Json::as_array).expect("cases");
    assert_eq!(cases.len(), 2, "ac-oblivious and random-walk");
    for case in cases {
        assert_eq!(case.get("error"), Some(&Json::Null), "no case errored");
        assert!(
            case.get("mcl_mb_s").and_then(Json::as_f64).is_some(),
            "every case has a numeric predicted MCL"
        );
    }
}
