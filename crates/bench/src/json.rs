//! A minimal, dependency-free JSON writer with deterministic output.
//!
//! `BENCH_sweep.json` must be byte-identical across runs at a fixed seed
//! so CI can diff two sweeps to detect nondeterminism. serde is not
//! available (crates.io is unreachable from the build environment), and
//! a hand-rolled emitter is easy to keep deterministic: object keys stay
//! in insertion order, floats print through Rust's shortest-round-trip
//! `Display`, and there is no reflection or hashing anywhere.

use std::fmt::Write as _;

/// A JSON value tree. Build with the `From` impls and
/// [`Json::object`]/[`Json::array`], serialize with [`Json::pretty`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integers (kept separate from floats so counts never print
    /// as `1.0`).
    Int(i64),
    /// Unsigned integers (JSON numbers are arbitrary precision, so the
    /// full `u64` range round-trips — seeds use all 64 bits).
    UInt(u64),
    /// Finite floats; NaN/infinity serialize as `null` per JSON rules.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered list.
    Array(Vec<Json>),
    /// Key/value pairs, serialized in insertion order.
    Object(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map(Into::into).unwrap_or(Json::Null)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// An object from `(key, value)` pairs, keeping their order.
    pub fn object(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// An array value.
    pub fn array(items: Vec<Json>) -> Json {
        Json::Array(items)
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                write!(out, "{i}").expect("string write");
            }
            Json::UInt(u) => {
                write!(out, "{u}").expect("string write");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // Shortest round-trip representation; force a ".0"
                    // so floats stay floats for downstream readers.
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        write!(out, "{f:.1}").expect("string write");
                    } else {
                        write!(out, "{f}").expect("string write");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("string write");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.pretty(), "null\n");
        assert_eq!(Json::from(true).pretty(), "true\n");
        assert_eq!(Json::from(42u64).pretty(), "42\n");
        assert_eq!(Json::from(u64::MAX).pretty(), "18446744073709551615\n");
        assert_eq!(Json::from(0.5).pretty(), "0.5\n");
        assert_eq!(Json::from(3.0).pretty(), "3.0\n");
        assert_eq!(Json::from(f64::NAN).pretty(), "null\n");
        assert_eq!(Json::from("a\"b").pretty(), "\"a\\\"b\"\n");
        assert_eq!(Json::from(None::<f64>).pretty(), "null\n");
    }

    #[test]
    fn structure_and_key_order_are_stable() {
        let doc = Json::object(vec![
            ("b", Json::from(1u64)),
            ("a", Json::array(vec![Json::Null, Json::from("x")])),
            ("empty", Json::object(vec![])),
        ]);
        let expected =
            "{\n  \"b\": 1,\n  \"a\": [\n    null,\n    \"x\"\n  ],\n  \"empty\": {}\n}\n";
        assert_eq!(doc.pretty(), expected);
        // Byte-identical on re-serialization.
        assert_eq!(doc.pretty(), doc.pretty());
    }

    #[test]
    fn control_chars_escape() {
        assert_eq!(Json::from("\u{1}").pretty(), "\"\\u0001\"\n");
        assert_eq!(Json::from("a\tb\nc").pretty(), "\"a\\tb\\nc\"\n");
    }
}
