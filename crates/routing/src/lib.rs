//! # bsor-routing
//!
//! Route selection for bandwidth-sensitive oblivious routing: the paper's
//! two BSOR selectors, the oblivious baselines it compares against,
//! deadlock validation, and the table-based router programming model.
//!
//! * [`selectors::MilpSelector`] — optimal (budget-bounded) route choice
//!   by mixed integer-linear programming over the flow network (paper
//!   §3.5).
//! * [`selectors::DijkstraSelector`] — the scalable weighted
//!   shortest-path heuristic (paper §3.6).
//! * [`selectors::AcObliviousSelector`] /
//!   [`selectors::RandomWalkSelector`] — demand-oblivious counterpoints:
//!   the Applegate–Cohen worst-case-optimal LP and a seeded random walk.
//! * [`Baseline`] — XY, YX, O1TURN, ROMM and Valiant.
//! * [`deadlock`] — rebuilds the channel dependence graph induced by a
//!   route set and checks acyclicity (paper Lemma 1).
//! * [`tables`] — source routing and node-table routing images
//!   (paper §4.2.1) consumed by the `bsor-sim` router model.
//!
//! ```
//! use bsor_topology::Topology;
//! use bsor_cdg::{AcyclicCdg, TurnModel};
//! use bsor_flow::{FlowNetwork, FlowSet};
//! use bsor_routing::selectors::DijkstraSelector;
//! use bsor_routing::deadlock;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mesh = Topology::mesh2d(4, 4);
//! let acyclic = AcyclicCdg::turn_model(&mesh, 2, &TurnModel::west_first())?;
//! let net = FlowNetwork::new(&mesh, &acyclic);
//! let mut flows = FlowSet::new();
//! flows.push(mesh.node_at(0, 0).unwrap(), mesh.node_at(3, 3).unwrap(), 25.0);
//! flows.push(mesh.node_at(3, 0).unwrap(), mesh.node_at(0, 3).unwrap(), 25.0);
//! let routes = DijkstraSelector::new().select(&net, &flows)?;
//! assert!(deadlock::is_deadlock_free(&mesh, &routes, 2));
//! assert_eq!(routes.mcl(&mesh, &flows), 25.0); // disjoint paths exist
//! # Ok(())
//! # }
//! ```

pub mod baselines;
pub mod compact;
pub mod deadlock;
pub mod route;
pub mod selector;
pub mod selectors {
    //! BSOR route selectors (`SF` instances in the paper's framework)
    //! and the demand-oblivious selectors they are compared against.
    pub mod dijkstra;
    pub mod milp;
    pub mod oblivious;

    pub use dijkstra::DijkstraSelector;
    pub use milp::{MilpObjective, MilpReport, MilpSelector};
    pub use oblivious::{AcObliviousSelector, ObliviousSolution, RandomWalkSelector};
}
pub mod tables;

pub use baselines::Baseline;
pub use compact::{AnyTables, CompactTables};
pub use route::{Route, RouteError, RouteHop, RouteSet, VcMask};
pub use selector::{FlowOrder, SelectError};
pub use tables::{NodeTables, RouteTables, SourceRouteTable, TableEntry};
