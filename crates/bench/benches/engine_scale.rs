//! Engine throughput on the paper's transpose scenarios — the
//! microbench behind `BENCH_engine.json`.
//!
//! Each case simulates a fixed-seed transpose workload under XY routing
//! and reports wall time for the whole run (warmup + measurement +
//! drain). The 8×8 case matches the golden-digest configuration; the
//! 32×32 cases match the saturation-sweep shape where the occupancy
//! tracker and idle fast-forward dominate. Simulation results are
//! byte-identical across every `engine_threads` / fast-forward setting
//! (see `crates/sim/tests/engine_determinism_properties.rs`), so this
//! bench measures pure wall-clock, never accuracy.
//!
//! ```text
//! BSOR_BENCH_JSON=BENCH_engine.json cargo bench -p bsor_bench --bench engine_scale
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bsor_routing::Baseline;
use bsor_sim::{SimConfig, SimReport, Simulator, TrafficSpec};
use bsor_topology::Topology;
use bsor_workloads::transpose;

struct Case {
    name: &'static str,
    side: u16,
    rate: f64,
    warmup: u64,
    measurement: u64,
}

const CASES: &[Case] = &[
    Case {
        name: "8x8_transpose_xy_r0.80",
        side: 8,
        rate: 0.8,
        warmup: 2_000,
        measurement: 10_000,
    },
    Case {
        name: "32x32_transpose_xy_r0.05",
        side: 32,
        rate: 0.05,
        warmup: 1_000,
        measurement: 5_000,
    },
    Case {
        name: "32x32_transpose_xy_r0.20",
        side: 32,
        rate: 0.2,
        warmup: 1_000,
        measurement: 5_000,
    },
    Case {
        name: "32x32_transpose_xy_r0.80",
        side: 32,
        rate: 0.8,
        warmup: 1_000,
        measurement: 5_000,
    },
];

fn run_case(case: &Case, threads: usize) -> SimReport {
    let topo = Topology::mesh2d(case.side, case.side);
    let w = transpose(&topo).expect("square power-of-two grid");
    let routes = Baseline::XY.select(&topo, &w.flows, 2).expect("xy");
    let traffic = TrafficSpec::proportional(&w.flows, case.rate);
    let config = SimConfig::new(2)
        .with_warmup(case.warmup)
        .with_measurement(case.measurement)
        .with_engine_threads(threads);
    let mut sim = Simulator::new(&topo, &w.flows, &routes, traffic, config).expect("valid");
    sim.run()
}

fn bench_engine_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_scale");
    g.sample_size(10);
    for case in CASES {
        // threads=1 exercises the serial schedule with occupancy
        // skipping and fast-forward; threads=0 would mean "one per
        // core" via the CLI, but the bench pins explicit values so the
        // JSON is comparable across machines.
        for threads in [1usize, 2] {
            g.bench_function(format!("{}_t{}", case.name, threads), |b| {
                b.iter(|| black_box(run_case(case, threads)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_engine_scale);
criterion_main!(benches);
