//! Construction of the (cyclic) channel dependence graph.

use bsor_netgraph::{DiGraph, NodeId as GraphNode};
use bsor_topology::{Direction, LinkId, NodeId, Topology};
use std::error::Error;
use std::fmt;

/// Identifier of a virtual channel within a physical channel.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VcId(pub u8);

impl VcId {
    /// Dense index of the virtual channel.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vc{}", self.0)
    }
}

impl fmt::Display for VcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vc{}", self.0)
    }
}

/// A CDG vertex: one virtual channel of one directed network channel.
///
/// Endpoint nodes and the grid direction are denormalized here so CDG
/// consumers don't need the topology at hand.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CdgVertex {
    /// The physical channel.
    pub link: LinkId,
    /// The virtual channel within it.
    pub vc: VcId,
    /// Upstream node of the channel.
    pub src: NodeId,
    /// Downstream node of the channel.
    pub dst: NodeId,
    /// Grid direction, when the topology is a grid.
    pub direction: Option<Direction>,
}

/// Errors from CDG derivation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CdgError {
    /// A turn-model strategy was applied to a topology without grid
    /// directions (e.g. a ring).
    NotAGrid,
    /// The requested strategy left cycles in the CDG (e.g. an invalid
    /// two-turn combination, or a turn model on a torus).
    StillCyclic {
        /// Human-readable name of the strategy that failed.
        strategy: String,
    },
    /// Zero virtual channels were requested.
    NoVirtualChannels,
}

impl fmt::Display for CdgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdgError::NotAGrid => {
                write!(
                    f,
                    "turn models require a grid topology with channel directions"
                )
            }
            CdgError::StillCyclic { strategy } => {
                write!(f, "strategy '{strategy}' does not break all CDG cycles")
            }
            CdgError::NoVirtualChannels => write!(f, "at least one virtual channel is required"),
        }
    }
}

impl Error for CdgError {}

/// The channel dependence graph of a topology, possibly expanded over
/// multiple virtual channels.
///
/// With `vcs = z`, each physical channel contributes `z` vertices and each
/// permitted consecutive-channel pair contributes `z²` edges (a packet may
/// switch virtual channels at each hop), exactly as in paper §3.7.
#[derive(Clone, Debug)]
pub struct Cdg {
    graph: DiGraph<CdgVertex, ()>,
    vcs: u8,
    num_links: usize,
}

impl Cdg {
    /// Builds the full (cyclic) CDG of `topo` with `vcs` virtual channels
    /// per physical channel. 180° turns are never represented.
    ///
    /// # Panics
    ///
    /// Panics if `vcs == 0`.
    pub fn build(topo: &Topology, vcs: u8) -> Cdg {
        assert!(vcs >= 1, "at least one virtual channel is required");
        let mut graph = DiGraph::with_capacity(
            topo.num_links() * vcs as usize,
            topo.num_links() * vcs as usize * 3,
        );
        for l in topo.link_ids() {
            let link = topo.link(l);
            for vc in 0..vcs {
                graph.add_node(CdgVertex {
                    link: l,
                    vc: VcId(vc),
                    src: link.src,
                    dst: link.dst,
                    direction: link.direction,
                });
            }
        }
        let cdg = Cdg {
            graph,
            vcs,
            num_links: topo.num_links(),
        };
        let mut edges: Vec<(GraphNode, GraphNode)> = Vec::new();
        for l1 in topo.link_ids() {
            let a = topo.link(l1);
            for &l2 in topo.out_links(a.dst) {
                let b = topo.link(l2);
                if b.dst == a.src {
                    continue; // 180° turn
                }
                for v1 in 0..vcs {
                    for v2 in 0..vcs {
                        edges.push((cdg.vertex_id(l1, VcId(v1)), cdg.vertex_id(l2, VcId(v2))));
                    }
                }
            }
        }
        let mut cdg = cdg;
        for (s, d) in edges {
            cdg.graph.add_edge(s, d, ());
        }
        cdg
    }

    /// Number of virtual channels per physical channel.
    pub fn vcs(&self) -> u8 {
        self.vcs
    }

    /// The underlying dependence graph.
    pub fn graph(&self) -> &DiGraph<CdgVertex, ()> {
        &self.graph
    }

    /// Mutable access to the dependence graph (for cycle-breaking).
    pub fn graph_mut(&mut self) -> &mut DiGraph<CdgVertex, ()> {
        &mut self.graph
    }

    /// Graph vertex id of `(link, vc)`.
    ///
    /// # Panics
    ///
    /// Panics if the link or vc index is out of range.
    pub fn vertex_id(&self, link: LinkId, vc: VcId) -> GraphNode {
        assert!(link.index() < self.num_links, "link out of range");
        assert!(vc.index() < self.vcs as usize, "vc out of range");
        GraphNode((link.index() * self.vcs as usize + vc.index()) as u32)
    }

    /// The `(link, vc)` payload of a graph vertex.
    pub fn vertex(&self, id: GraphNode) -> &CdgVertex {
        self.graph.node(id)
    }

    /// Vertices whose channel leaves network node `n` (per-flow source
    /// attachment points in the paper's flow-network derivation).
    pub fn vertices_leaving(&self, n: NodeId) -> Vec<GraphNode> {
        self.graph
            .nodes()
            .filter(|(_, v)| v.src == n)
            .map(|(id, _)| id)
            .collect()
    }

    /// Vertices whose channel enters network node `n` (per-flow sink
    /// attachment points).
    pub fn vertices_entering(&self, n: NodeId) -> Vec<GraphNode> {
        self.graph
            .nodes()
            .filter(|(_, v)| v.dst == n)
            .map(|(id, _)| id)
            .collect()
    }

    /// The `(from, to)` grid directions of a dependence edge, if the
    /// topology is a grid.
    pub fn edge_turn(&self, src: GraphNode, dst: GraphNode) -> Option<(Direction, Direction)> {
        let a = self.graph.node(src).direction?;
        let b = self.graph.node(dst).direction?;
        Some((a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsor_netgraph::algo;

    #[test]
    fn mesh3x3_cdg_shape() {
        // Paper Figure 3-1: vertices are the 24 directed channels.
        let t = Topology::mesh2d(3, 3);
        let cdg = Cdg::build(&t, 1);
        assert_eq!(cdg.graph().node_count(), 24);
        // Turn pairs: corners contribute 2, edges 6, center 12.
        assert_eq!(cdg.graph().edge_count(), 4 * 2 + 4 * 6 + 12);
        // The raw CDG is cyclic (paper: "Note that the CDG has cycles").
        assert!(!algo::is_acyclic(cdg.graph()));
    }

    #[test]
    fn no_180_degree_edges() {
        let t = Topology::mesh2d(4, 4);
        let cdg = Cdg::build(&t, 1);
        for (_, s, d, _) in cdg.graph().edges() {
            let a = cdg.vertex(s);
            let b = cdg.vertex(d);
            assert_eq!(a.dst, b.src, "edges join consecutive channels");
            assert_ne!(b.dst, a.src, "no 180 degree turns");
        }
    }

    #[test]
    fn vc_expansion_squares_edges() {
        // Paper Figure 3-6(a): 2x2 mesh, z = 2.
        let t = Topology::mesh2d(2, 2);
        let base = Cdg::build(&t, 1);
        let expanded = Cdg::build(&t, 2);
        assert_eq!(expanded.graph().node_count(), base.graph().node_count() * 2);
        assert_eq!(expanded.graph().edge_count(), base.graph().edge_count() * 4);
    }

    #[test]
    fn vertex_id_roundtrip() {
        let t = Topology::mesh2d(3, 3);
        let cdg = Cdg::build(&t, 2);
        for l in t.link_ids() {
            for vc in 0..2 {
                let id = cdg.vertex_id(l, VcId(vc));
                let v = cdg.vertex(id);
                assert_eq!(v.link, l);
                assert_eq!(v.vc, VcId(vc));
                let link = t.link(l);
                assert_eq!(v.src, link.src);
                assert_eq!(v.dst, link.dst);
            }
        }
    }

    #[test]
    fn leaving_and_entering_sets() {
        let t = Topology::mesh2d(3, 3);
        let cdg = Cdg::build(&t, 1);
        let corner = t.node_at(0, 0).expect("in range");
        assert_eq!(cdg.vertices_leaving(corner).len(), 2);
        assert_eq!(cdg.vertices_entering(corner).len(), 2);
        let center = t.node_at(1, 1).expect("in range");
        assert_eq!(cdg.vertices_leaving(center).len(), 4);
        assert_eq!(cdg.vertices_entering(center).len(), 4);
    }

    #[test]
    fn ring_cdg_builds_without_directions() {
        let t = Topology::ring(5);
        let cdg = Cdg::build(&t, 1);
        assert_eq!(cdg.graph().node_count(), 10);
        // Each channel has exactly one non-180° continuation.
        assert_eq!(cdg.graph().edge_count(), 10);
        let (s, d) = {
            let mut it = cdg.graph().edges();
            let (_, s, d, _) = it.next().expect("has edges");
            (s, d)
        };
        assert_eq!(cdg.edge_turn(s, d), None);
    }

    #[test]
    fn error_display() {
        assert!(!CdgError::NotAGrid.to_string().is_empty());
        assert!(!CdgError::NoVirtualChannels.to_string().is_empty());
        let e = CdgError::StillCyclic {
            strategy: "x".into(),
        };
        assert!(e.to_string().contains('x'));
    }
}
