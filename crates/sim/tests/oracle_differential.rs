//! Oracle-differential tests: a deliberately naive reference simulator
//! cross-checks the arena engine on small meshes at low load.
//!
//! The reference replays the engine's *exact* packet-generation RNG
//! stream (same `StdRng` seed, same per-flow `gen_bool` draw order), so
//! generated-packet counts must match the engine bit-for-bit — any
//! divergence in the engine's generation loop, flow indexing or
//! measurement-window accounting shows up as a hard count mismatch.
//! Delivery timing is then modeled with a single FIFO queue per link
//! (one flit per cycle, wormhole occupancy of `packet_len` cycles),
//! processing packets in injection order with no switch arbitration —
//! an O(packets × hops) loop with none of the engine's data structures.
//! At low load the two models agree closely on latency, so the mean
//! packet latency is compared under a tight relative tolerance, and the
//! reference (which under-approximates arbitration stalls) must never
//! exceed the engine by more than the quantization slack.

use bsor_flow::FlowSet;
use bsor_routing::{Baseline, RouteSet};
use bsor_sim::{
    BurstyOnOff, InjectionProcess, PhaseSchedule, SimConfig, SimReport, Simulator, TrafficSpec,
};
use bsor_topology::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// In-test replica of the engine's per-flow on/off stage tracker. The
/// engine's `BurstState` is crate-private by design; the oracle keeps
/// its own copy of the exact dwell-sampling logic so any drift in the
/// engine's RNG consumption order breaks the generation replay loudly.
#[derive(Clone)]
struct OracleBurst {
    on: bool,
    cycles_left: u64,
}

impl OracleBurst {
    fn new() -> OracleBurst {
        OracleBurst {
            on: false,
            cycles_left: 0,
        }
    }

    fn step(&mut self, params: &BurstyOnOff, rng: &mut StdRng) -> bool {
        if self.cycles_left == 0 {
            self.on = !self.on;
            let mean = if self.on {
                params.mean_on
            } else {
                params.mean_off
            };
            let p = 1.0 / mean;
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            self.cycles_left = (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u64;
        }
        self.cycles_left -= 1;
        self.on
    }
}

/// What the naive reference simulator observed.
struct OracleReport {
    /// Packets generated inside the measurement window, per flow.
    generated_per_flow: Vec<u64>,
    /// Packets (tracked or not) delivered inside the measurement window.
    delivered_in_window: u64,
    /// Mean latency over tracked packets.
    mean_latency: f64,
    /// Tracked packets delivered (all of them, in this infinite-horizon
    /// model).
    tracked: u64,
}

/// The naive single-queue reference: replay the engine's generation RNG
/// exactly, then push each packet through its route against per-link
/// FIFO availability times, in injection order.
fn oracle_run(
    topo: &Topology,
    flows: &FlowSet,
    routes: &RouteSet,
    traffic: &TrafficSpec,
    config: &SimConfig,
) -> OracleReport {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let total = config.warmup + config.measurement + config.drain;
    let window = config.warmup..config.warmup + config.measurement;
    let mut generated_per_flow = vec![0u64; flows.len()];
    assert!(
        traffic.variation.is_none(),
        "the oracle replays burst and phase schedules, not Markov variation"
    );
    let mut burst_states = vec![OracleBurst::new(); flows.len()];
    // (cycle, flow, tracked) in exact engine generation order.
    let mut packets: Vec<(u64, usize, bool)> = Vec::new();
    for cycle in 0..total {
        let phase_scale = traffic.phases.as_ref().map_or(1.0, |s| s.scale_at(cycle));
        for (i, &rate) in traffic.rates.iter().enumerate() {
            let mut p = rate * phase_scale;
            if let InjectionProcess::OnOff(burst) = traffic.injection {
                p = if burst_states[i].step(&burst, &mut rng) {
                    p * burst.on_multiplier()
                } else {
                    0.0
                };
            }
            while p > 0.0 {
                let fire = if p >= 1.0 { true } else { rng.gen_bool(p) };
                if fire {
                    let tracked = window.contains(&cycle);
                    if tracked {
                        generated_per_flow[i] += 1;
                    }
                    packets.push((cycle, i, tracked));
                }
                p -= 1.0;
            }
        }
    }
    // Naive timing: every link is one FIFO server moving one flit per
    // cycle; a packet occupies each link for `packet_len` cycles. The
    // zero-contention latency is `hops + packet_len`, matching the
    // engine's single-cycle-per-hop router plus tail ejection.
    let len = config.packet_len as u64;
    let hops: Vec<Vec<usize>> = routes
        .iter()
        .map(|r| r.hops.iter().map(|h| h.link.index()).collect())
        .collect();
    let mut link_free = vec![0u64; topo.num_links()];
    let mut latency_sum = 0u64;
    let mut tracked = 0u64;
    let mut delivered_in_window = 0u64;
    for &(cycle, flow, is_tracked) in &packets {
        let mut t = cycle;
        for &link in &hops[flow] {
            t = t.max(link_free[link]) + 1;
            link_free[link] = t + len - 1;
        }
        let delivery = t + len;
        if window.contains(&delivery) {
            delivered_in_window += 1;
        }
        if is_tracked {
            latency_sum += delivery - cycle;
            tracked += 1;
        }
    }
    OracleReport {
        generated_per_flow,
        delivered_in_window,
        mean_latency: if tracked == 0 {
            0.0
        } else {
            latency_sum as f64 / tracked as f64
        },
        tracked,
    }
}

fn cross_check(topo: Topology, flows: FlowSet, rate: f64, seed: u64) {
    let traffic = TrafficSpec::proportional(&flows, rate);
    cross_check_traffic(topo, flows, traffic, seed, 0.15);
}

/// Cross-checks an arbitrary traffic spec; `latency_tol` is the allowed
/// relative mean-latency divergence (the naive FIFO model undershoots
/// arbitration stalls more under clustered arrivals).
fn cross_check_traffic(
    topo: Topology,
    flows: FlowSet,
    traffic: TrafficSpec,
    seed: u64,
    latency_tol: f64,
) {
    let routes = Baseline::XY.select(&topo, &flows, 2).expect("xy routes");
    let mut config = SimConfig::new(2)
        .with_warmup(500)
        .with_measurement(5_000)
        .with_packet_len(4)
        .with_seed(seed);
    // Long drain: every tracked packet must leave the network so the
    // count comparison is exact, not truncated.
    config.drain = 2_000;
    let oracle = oracle_run(&topo, &flows, &routes, &traffic, &config);
    let report: SimReport = Simulator::new(&topo, &flows, &routes, traffic, config)
        .expect("valid sim")
        .run();
    assert!(!report.deadlocked, "XY at low load cannot deadlock");

    // 1. Generation replay: exact, per flow.
    let oracle_generated: u64 = oracle.generated_per_flow.iter().sum();
    assert_eq!(
        report.generated_packets, oracle_generated,
        "engine and oracle disagree on generated packets (seed {seed})"
    );
    for (i, fs) in report.per_flow.iter().enumerate() {
        assert_eq!(
            fs.generated, oracle.generated_per_flow[i],
            "flow {i} generation diverged (seed {seed})"
        );
    }

    // 2. Delivery accounting: with a drain longer than any low-load
    // latency, every tracked packet is delivered and latency-counted.
    let tracked: u64 = report.per_flow.iter().map(|f| f.latency_count).sum();
    assert_eq!(
        tracked, oracle.tracked,
        "engine lost tracked packets (seed {seed})"
    );
    // Window-delivered counts may differ only by packets straddling the
    // window edges (a handful at these rates).
    let diff = report
        .delivered_packets
        .abs_diff(oracle.delivered_in_window);
    assert!(
        diff <= 8,
        "windowed delivery counts diverged by {diff} (engine {}, oracle {}, seed {seed})",
        report.delivered_packets,
        oracle.delivered_in_window
    );

    // 3. Latency: the naive model tracks the engine closely at low load.
    let engine_mean = report.mean_latency().expect("packets delivered");
    let rel = (engine_mean - oracle.mean_latency).abs() / engine_mean;
    assert!(
        rel < latency_tol,
        "mean latency diverged {:.1}%: engine {engine_mean:.2}, oracle {:.2} (seed {seed})",
        rel * 100.0,
        oracle.mean_latency
    );
    // The FIFO model has no arbitration stalls: it may only undershoot
    // (modulo its fixed +2 pipeline slack).
    assert!(
        oracle.mean_latency <= engine_mean + 2.0,
        "oracle latency {:.2} above engine {engine_mean:.2} (seed {seed})",
        oracle.mean_latency
    );
}

/// All-pairs-shifted flows on a 3×3 mesh (synthetic patterns need
/// power-of-two grids; the oracle does not).
fn mesh3_flows(topo: &Topology) -> FlowSet {
    let n = topo.num_nodes() as u32;
    let mut flows = FlowSet::new();
    for i in 0..n {
        let j = (i + 4) % n;
        if i != j {
            flows.push(NodeId(i), NodeId(j), 10.0);
        }
    }
    flows
}

#[test]
fn oracle_matches_engine_on_3x3_mesh() {
    for seed in [1, 42, 0xB50B] {
        let topo = Topology::mesh2d(3, 3);
        let flows = mesh3_flows(&topo);
        cross_check(topo, flows, 0.05, seed);
    }
}

#[test]
fn oracle_matches_engine_on_4x4_transpose() {
    for seed in [7, 1234] {
        let topo = Topology::mesh2d(4, 4);
        let w = bsor_workloads::transpose(&topo).expect("4x4 is square");
        cross_check(topo, w.flows, 0.08, seed);
    }
}

#[test]
fn oracle_matches_engine_on_4x4_neighbor() {
    for seed in [3, 99] {
        let topo = Topology::mesh2d(4, 4);
        let w = bsor_workloads::neighbor(&topo).expect("4 columns");
        cross_check(topo, w.flows, 0.1, seed);
    }
}

#[test]
fn oracle_matches_engine_with_onoff_bursts() {
    // Equal dwell means: duty 0.5, so on-phase rates double. The oracle
    // replays the per-flow dwell sampling RNG draws exactly; clustered
    // arrivals stress the FIFO model harder, hence the looser latency
    // tolerance.
    for seed in [5, 77] {
        let topo = Topology::mesh2d(3, 3);
        let flows = mesh3_flows(&topo);
        let traffic =
            TrafficSpec::proportional(&flows, 0.05).with_burst(BurstyOnOff::new(100.0, 100.0));
        cross_check_traffic(topo, flows, traffic, seed, 0.25);
    }
}

#[test]
fn oracle_matches_engine_with_phase_schedule() {
    // An 800-cycle period inside a 5000-cycle window: the measurement
    // covers several full load swings, and the oracle must agree on
    // which cycles sit in which phase.
    for seed in [11, 4242] {
        let topo = Topology::mesh2d(4, 4);
        let w = bsor_workloads::transpose(&topo).expect("4x4 is square");
        let traffic = TrafficSpec::proportional(&w.flows, 0.08)
            .with_phases(PhaseSchedule::from_pairs([(400, 1.5), (400, 0.5)]));
        cross_check_traffic(topo, w.flows, traffic, seed, 0.15);
    }
}

#[test]
fn oracle_matches_engine_with_bursts_and_phases_combined() {
    // Both modifiers at once pins their RNG interleaving: the burst
    // state steps after the (RNG-free) phase scale is applied, every
    // cycle, for every flow.
    let topo = Topology::mesh2d(3, 3);
    let flows = mesh3_flows(&topo);
    let traffic = TrafficSpec::proportional(&flows, 0.05)
        .with_burst(BurstyOnOff::new(50.0, 150.0))
        .with_phases(PhaseSchedule::from_pairs([(300, 1.2), (300, 0.4)]));
    cross_check_traffic(topo, flows, traffic, 23, 0.25);
}
