//! GraphViz (DOT) rendering of channel dependence graphs — regenerates
//! the paper's CDG illustrations (Figure 3-1: the full cyclic CDG of the
//! 3×3 mesh; Figures 3-3/3-4: acyclic derivations) for any topology.

use crate::acyclic::AcyclicCdg;
use crate::cdg::Cdg;
use bsor_topology::Topology;
use std::fmt::Write as _;

/// Human-readable vertex label: `A->B` style endpoint names (letters for
/// up to 26 nodes, as in the paper's figures, falling back to numeric
/// ids), with a `/vcN` suffix on multi-VC CDGs.
fn vertex_label(cdg: &Cdg, v: bsor_netgraph::NodeId) -> String {
    let cv = cdg.vertex(v);
    let name = |n: bsor_topology::NodeId| -> String {
        if n.0 < 26 {
            char::from(b'A' + n.0 as u8).to_string()
        } else {
            format!("{}", n.0)
        }
    };
    if cdg.vcs() > 1 {
        format!("{}{}/vc{}", name(cv.src), name(cv.dst), cv.vc.0)
    } else {
        format!("{}{}", name(cv.src), name(cv.dst))
    }
}

fn dot_of(cdg: &Cdg, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{title}\" {{");
    let _ = writeln!(out, "  label=\"{title}\";");
    let _ = writeln!(out, "  node [shape=box, fontsize=10];");
    for v in cdg.graph().node_ids() {
        let _ = writeln!(
            out,
            "  v{} [label=\"{}\"];",
            v.index(),
            vertex_label(cdg, v)
        );
    }
    for (_, s, d, _) in cdg.graph().edges() {
        let _ = writeln!(out, "  v{} -> v{};", s.index(), d.index());
    }
    out.push_str("}\n");
    out
}

/// Renders the full (cyclic) CDG of a topology as DOT — paper Figure 3-1
/// when called on the 3×3 mesh.
pub fn cdg_to_dot(topo: &Topology, vcs: u8, title: &str) -> String {
    dot_of(&Cdg::build(topo, vcs), title)
}

/// Renders an acyclic CDG as DOT — paper Figures 3-3/3-4 when called on
/// turn-model / ad-hoc derivations over the 3×3 mesh.
pub fn acyclic_to_dot(acyclic: &AcyclicCdg, title: &str) -> String {
    dot_of(acyclic.cdg(), title)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::turn::TurnModel;

    #[test]
    fn figure_3_1_dot_has_all_channels() {
        let t = Topology::mesh2d(3, 3);
        let dot = cdg_to_dot(&t, 1, "Figure 3-1");
        // 24 vertices and 44 dependence edges.
        assert_eq!(dot.matches("[label=").count(), 24);
        assert_eq!(dot.matches(" -> ").count(), 44);
        // Letters name the nodes as in the paper (A..I for 3x3).
        assert!(dot.contains("\"AB\""));
        assert!(dot.contains("digraph"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn figure_3_3_dot_prunes_prohibited_turns() {
        let t = Topology::mesh2d(3, 3);
        let a =
            crate::acyclic::AcyclicCdg::turn_model(&t, 1, &TurnModel::west_first()).expect("valid");
        let dot = acyclic_to_dot(&a, "Figure 3-3(b)");
        assert_eq!(dot.matches(" -> ").count(), 44 - 8);
    }

    #[test]
    fn multi_vc_labels_carry_the_vc() {
        let t = Topology::mesh2d(2, 2);
        let dot = cdg_to_dot(&t, 2, "Figure 3-6(a)");
        assert!(dot.contains("/vc0"));
        assert!(dot.contains("/vc1"));
    }
}
